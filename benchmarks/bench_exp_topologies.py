"""Benchmark E14 — extension: the protocol on non-complete topologies."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_topologies


def test_bench_exp_topologies(benchmark):
    """Regenerate the E14 table (success vs. topology density)."""
    table = run_experiment_benchmark(
        benchmark, exp_topologies, exp_topologies.TopologyConfig.quick()
    )
    complete_rows = [
        record for record in table if record["topology"].startswith("complete")
    ]
    assert complete_rows[0]["success_rate"] >= 0.5
