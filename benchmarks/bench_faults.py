"""Benchmark: fault-injection overhead on the counts engine.

The oblivious adversaries (crash, omission, random-liar) keep the
counts-tier sufficient-statistics reduction: a faulted phase adds one
ball-delta histogram per round on top of the fault-free delivery law, so
the per-round cost stays ``O(k^2)`` per trial regardless of ``n``.  The
acceptance target of the fault subsystem's performance story:

* at ``n = 10^5``, ``R = 64`` (rumor workload, uniform noise
  ``eps = 0.3``, ``k = 3``) every oblivious faulted counts run must stay
  within **2x** of the fault-free counts wall time.

All per-family timings are recorded to ``BENCH_faults.json`` in one
schema-versioned document via :func:`record.record_benchmark_results`,
and CI prints that file on every run.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -s \
        -o python_files="bench_*.py"

``test_faulted_counts_overhead`` asserts the target directly with
``time.perf_counter`` so it also runs without the pytest-benchmark plugin.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path

from record import record_benchmark_results

from repro.faults import FaultModel
from repro.sim import Scenario, simulate

NUM_NODES = 100_000
NUM_TRIALS = 64
NUM_OPINIONS = 3
EPSILON = 0.3
OVERHEAD_TARGET = 2.0
REPEATS = 3
RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_faults.json"

FAULT_CASES = (
    ("crash", FaultModel(kind="crash", fraction=0.1, crash_round=3)),
    ("omission", FaultModel(kind="omission", fraction=0.1, drop_rate=0.5)),
    ("liar", FaultModel(kind="liar", fraction=0.1)),
)


def base_scenario() -> Scenario:
    return Scenario(
        workload="rumor",
        num_nodes=NUM_NODES,
        num_opinions=NUM_OPINIONS,
        epsilon=EPSILON,
        engine="counts",
        num_trials=NUM_TRIALS,
        seed=0,
    )


def best_of(scenario: Scenario, repeats: int = REPEATS) -> float:
    """The fastest of ``repeats`` timed simulate() calls (one warmup)."""
    simulate(scenario)
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        simulate(scenario)
        timings.append(time.perf_counter() - started)
    return min(timings)


def test_faulted_counts_overhead():
    """Oblivious faulted counts runs stay within 2x of fault-free."""
    fault_free = base_scenario()
    baseline = best_of(fault_free)

    entries = {
        "counts_fault_free": {
            "num_nodes": NUM_NODES,
            "num_trials": NUM_TRIALS,
            "num_opinions": NUM_OPINIONS,
            "epsilon": EPSILON,
            "seconds": round(baseline, 4),
        }
    }
    overheads = {}
    for label, faults in FAULT_CASES:
        seconds = best_of(dataclasses.replace(fault_free, faults=faults))
        overheads[label] = seconds / baseline
        entries[f"counts_faulted_{label}"] = {
            "num_nodes": NUM_NODES,
            "num_trials": NUM_TRIALS,
            "fraction": faults.fraction,
            "seconds": round(seconds, 4),
            "overhead_vs_fault_free": round(seconds / baseline, 3),
            "overhead_target": OVERHEAD_TARGET,
        }

    record_benchmark_results(RESULTS_PATH, entries)
    print(
        f"\nfault overhead at n={NUM_NODES}, R={NUM_TRIALS} "
        f"(fault-free {baseline:.3f}s): "
        + ", ".join(
            f"{label} {ratio:.2f}x" for label, ratio in overheads.items()
        )
    )
    for label, ratio in overheads.items():
        assert ratio <= OVERHEAD_TARGET, (
            f"{label}: faulted counts run is {ratio:.2f}x the fault-free "
            f"wall time (target <= {OVERHEAD_TARGET}x)"
        )
