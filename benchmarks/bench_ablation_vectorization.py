"""Benchmark E13 — ablations: Stage-2 voting rule and engine vectorization.

In addition to regenerating the E13 table, this module benchmarks the two
delivery-engine implementations head-to-head with pytest-benchmark so the
vectorization speedup (the design decision recorded in DESIGN.md) is measured
by the benchmark harness itself rather than by ad-hoc timers.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_ablation_sampling
from repro.network.push_model import UniformPushModel
from repro.noise.families import uniform_noise_matrix

_NUM_NODES = 300
_NUM_ROUNDS = 10


def _make_workload():
    rng = np.random.default_rng(0)
    noise = uniform_noise_matrix(3, 0.3)
    engine = UniformPushModel(_NUM_NODES, noise, rng)
    senders = rng.integers(1, 4, size=_NUM_NODES)
    return engine, senders


def test_bench_exp_ablation(benchmark):
    """Regenerate the E13 table (voting-rule and engine ablations)."""
    table = run_experiment_benchmark(
        benchmark,
        exp_ablation_sampling,
        exp_ablation_sampling.AblationConfig.quick(),
    )
    voting_rows = table.filtered(ablation="stage2 voting rule")
    assert len(voting_rows) == 3


def test_bench_push_engine_vectorized(benchmark):
    """Throughput of the vectorized push engine on a fixed phase workload."""
    engine, senders = _make_workload()
    result = benchmark(engine.run_phase, senders, _NUM_ROUNDS)
    assert result.total_messages() == _NUM_NODES * _NUM_ROUNDS


def test_bench_push_engine_naive(benchmark):
    """Throughput of the naive per-message reference engine (same workload)."""
    engine, senders = _make_workload()
    result = benchmark.pedantic(
        engine.run_phase_naive,
        args=(senders, _NUM_ROUNDS),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.total_messages() == _NUM_NODES * _NUM_ROUNDS
