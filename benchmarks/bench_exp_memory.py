"""Benchmark E11 — memory: per-node bits vs. the O(log log n + log 1/eps) bound."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_memory


def test_bench_exp_memory(benchmark):
    """Regenerate the E11 table (measured bits vs. the asymptotic bound)."""
    table = run_experiment_benchmark(
        benchmark, exp_memory, exp_memory.MemoryConfig.quick()
    )
    assert max(table.column("measured_over_bound")) < 10.0
