"""Benchmark: ``simulate_sweep`` vs. the serial ``simulate()`` loop.

The vectorized sweep engine's acceptance target: running a 256-point
epsilon grid of counts-tier voter dynamics through one
:func:`~repro.sim.simulate_sweep` call must be at least **5x** faster than
the serial reference loop ``[simulate(s) for s in grid.scenarios()]`` —
while staying *bitwise identical* to it, point by point.  The bench
measures both halves of that contract:

* **Speedup curve** — grid sizes 16 / 64 / 256 over the same epsilon
  range, serial loop vs. fused sweep, recorded to ``BENCH_sweep.json``;
  the ``>= 5x`` target is asserted at the 256-point grid.
* **Bitwise equivalence** — every per-point result of every measured grid
  is compared field-for-field against its serial counterpart (the
  deeper axis/tier matrix lives in ``tests/sim/test_sweep.py``; the bench
  re-checks it on the exact grids it times so the speedup number can
  never come from a semantics drift).

A protocol-workload grid (counts tier, rumor spreading) is measured as
well — best-of-3 timings at a trial count large enough that the fused
path's advantage is measurable, in both draw modes (per-trial, which is
bitwise-checked here, and batched, which is distribution-pinned by the
``pytest -m agreement`` suite) — and recorded without an assertion; the
``>= 3x`` protocol-sweep floor is asserted by
``bench_protocol_fastpath.py``.  The ``maj()`` vote-law cache counters
are recorded too, showing how much tabulation work grid points shared.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py -s \
        -o python_files="bench_*.py"

``test_sweep_speedup_and_equivalence`` asserts the target directly with
``time.perf_counter`` so it also runs without the pytest-benchmark plugin.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from record import record_benchmark_results

from repro.network.pull_model import vote_law_cache_info
from repro.sim import Scenario, ScenarioGrid, simulate, simulate_sweep

# Epsilon grids over [0.02, 0.30]: deep in the noisy regime, so every
# trial runs its full round budget and the measurement is dominated by
# round-loop throughput rather than early-consensus luck.
GRID_SIZES = (16, 64, 256)
EPSILON_LOW, EPSILON_HIGH = 0.02, 0.30
#: The acceptance point: the 256-point dynamics grid must fuse >= 5x.
ACCEPTANCE_GRID_SIZE = 256
MIN_SPEEDUP = 5.0

PROTOCOL_GRID_SIZE = 16
#: Enough trials that the fused path's advantage is measurable: at
#: ``num_trials=2`` the constant per-grid setup cost swamps the per-trial
#: signal and a single timing run reports noise (the old 1.15x number).
PROTOCOL_TRIALS = 32
#: Protocol timings are best-of-N; sub-second measurements jitter badly.
PROTOCOL_REPEATS = 3
RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"

#: Every field of :class:`~repro.sim.result.SimulationResult` that carries
#: simulation output (provenance intentionally excluded: wall times and
#: sweep bookkeeping legitimately differ between the two execution paths).
_RESULT_FIELDS = (
    "successes",
    "converged",
    "rounds",
    "final_biases",
    "final_opinion_counts",
    "consensus_opinions",
    "bias_after_stage1",
    "stage1_rounds",
    "trajectories",
    "expected_bias_after_stage1",
)


def _dynamics_grid(size: int) -> ScenarioGrid:
    """A ``size``-point counts-tier voter epsilon grid (the ISSUE target)."""
    return ScenarioGrid(
        Scenario(
            workload="dynamics",
            rule="voter",
            num_nodes=600,
            num_opinions=2,
            epsilon=EPSILON_LOW,
            engine="counts",
            num_trials=1,
            max_rounds=200,
            seed=7,
            record_trajectories=False,
        ),
        {"epsilon": tuple(np.linspace(EPSILON_LOW, EPSILON_HIGH, size))},
    )


def _protocol_grid(size: int) -> ScenarioGrid:
    """A counts-tier rumor-spreading epsilon grid (reported, not asserted)."""
    return ScenarioGrid(
        Scenario(
            workload="rumor",
            num_nodes=100_000,
            num_opinions=2,
            epsilon=0.2,
            engine="counts",
            num_trials=PROTOCOL_TRIALS,
            seed=11,
        ),
        {"epsilon": tuple(np.linspace(0.2, 0.45, size))},
    )


def _assert_point_equal(index: int, serial, fused) -> None:
    """Field-for-field bitwise comparison of one grid point's results."""
    for name in _RESULT_FIELDS:
        left = getattr(serial, name)
        right = getattr(fused, name)
        if left is None or right is None:
            assert left is None and right is None, (
                f"grid point {index}: field {name!r} is "
                f"{'set' if left is not None else 'None'} serially but "
                f"{'set' if right is not None else 'None'} in the sweep"
            )
            continue
        assert np.array_equal(np.asarray(left), np.asarray(right)), (
            f"grid point {index}: field {name!r} differs between the "
            "serial loop and simulate_sweep - the fused engine is not "
            "bitwise equivalent"
        )


def _measure(grid: ScenarioGrid, repeats: int = 1, draw_mode: str = "per-trial"):
    """(serial seconds, sweep seconds) for one grid, equivalence-checked.

    Both sides are timed ``repeats`` times and the minimum is kept —
    best-of-N is the standard estimator for the deterministic cost of a
    computation (every perturbation is additive noise).  Bitwise
    equivalence is only asserted for the per-trial draw mode; the batched
    mode reorders raw draws and is pinned distributionally by the
    ``pytest -m agreement`` suite instead.
    """
    serial_seconds = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        serial_results = [simulate(scenario) for scenario in grid.scenarios()]
        serial_seconds = min(serial_seconds, time.perf_counter() - started)

    sweep_seconds = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        sweep = simulate_sweep(grid, draw_mode=draw_mode)
        sweep_seconds = min(sweep_seconds, time.perf_counter() - started)

    if draw_mode == "per-trial":
        for index, (serial, fused) in enumerate(zip(serial_results, sweep)):
            _assert_point_equal(index, serial, fused)
    return serial_seconds, sweep_seconds


def test_sweep_speedup_and_equivalence(capsys):
    # Warm-up: one tiny point per workload so one-time import costs and
    # numpy caches do not pollute the serial measurement.
    simulate(_dynamics_grid(2).scenario(0))
    simulate(_protocol_grid(2).scenario(0))

    curve = {}
    for size in GRID_SIZES:
        serial_seconds, sweep_seconds = _measure(_dynamics_grid(size))
        curve[f"grid_{size}"] = {
            "points": size,
            "serial_seconds": round(serial_seconds, 4),
            "sweep_seconds": round(sweep_seconds, 4),
            "speedup": round(serial_seconds / max(sweep_seconds, 1e-9), 2),
        }

    protocol_serial, protocol_sweep = _measure(
        _protocol_grid(PROTOCOL_GRID_SIZE), repeats=PROTOCOL_REPEATS
    )
    _, protocol_batched = _measure(
        _protocol_grid(PROTOCOL_GRID_SIZE),
        repeats=PROTOCOL_REPEATS,
        draw_mode="batched",
    )
    protocol_entry = {
        "points": PROTOCOL_GRID_SIZE,
        "timing_repeats": PROTOCOL_REPEATS,
        "serial_seconds": round(protocol_serial, 4),
        "sweep_seconds": round(protocol_sweep, 4),
        "speedup": round(protocol_serial / max(protocol_sweep, 1e-9), 2),
        "batched_sweep_seconds": round(protocol_batched, 4),
        "batched_speedup": round(
            protocol_serial / max(protocol_batched, 1e-9), 2
        ),
    }
    cache_info = vote_law_cache_info()

    with capsys.disabled():
        dynamics_curve = ", ".join(
            f"{entry['points']} pts {entry['speedup']:.1f}x"
            for entry in curve.values()
        )
        print(
            f"\n[bench_sweep] dynamics epsilon grids (voter, n=600, "
            f"max_rounds=200): {dynamics_curve} (target >= "
            f"{MIN_SPEEDUP:.0f}x at {ACCEPTANCE_GRID_SIZE}); protocol grid "
            f"(rumor, n=100k, R={PROTOCOL_TRIALS}, {PROTOCOL_GRID_SIZE} pts, "
            f"best of {PROTOCOL_REPEATS}) {protocol_entry['speedup']:.1f}x "
            f"per-trial / {protocol_entry['batched_speedup']:.1f}x batched; "
            f"every per-trial point bitwise equal; "
            f"vote-law cache {cache_info['law_hits']} hits / "
            f"{cache_info['law_misses']} misses"
        )

    record_benchmark_results(
        RESULTS_PATH,
        {
            "sweep_dynamics_epsilon_grid": {
                "workload": "dynamics/voter",
                "num_nodes": 600,
                "num_opinions": 2,
                "max_rounds": 200,
                "epsilon_range": [EPSILON_LOW, EPSILON_HIGH],
                "min_speedup_target": MIN_SPEEDUP,
                "acceptance_grid_size": ACCEPTANCE_GRID_SIZE,
                "bitwise_equal": True,
                "scaling": curve,
            },
            "sweep_protocol_epsilon_grid": {
                "workload": "rumor",
                "num_nodes": 100_000,
                "num_opinions": 2,
                "num_trials": PROTOCOL_TRIALS,
                "bitwise_equal": True,
                **protocol_entry,
            },
            "sweep_vote_law_cache": dict(cache_info),
        },
    )

    acceptance = curve[f"grid_{ACCEPTANCE_GRID_SIZE}"]
    assert acceptance["speedup"] >= MIN_SPEEDUP, (
        f"simulate_sweep over the {ACCEPTANCE_GRID_SIZE}-point counts-tier "
        f"epsilon grid is only {acceptance['speedup']:.2f}x faster than the "
        f"serial simulate() loop (serial {acceptance['serial_seconds']:.2f}s, "
        f"sweep {acceptance['sweep_seconds']:.2f}s); the acceptance target "
        f"is >= {MIN_SPEEDUP:.0f}x"
    )
