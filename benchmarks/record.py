"""Machine-readable benchmark recording.

The speedup benchmarks (``bench_ensemble.py``, ``bench_ensemble_dynamics.py``,
``bench_counts_engine.py``) assert their acceptance targets with plain
``time.perf_counter`` timings; this helper persists those measurements as
JSON so the performance trajectory of the repo is tracked as data rather than
only as pass/fail assertions.  The CI benchmark step prints the recorded
files after running the benchmarks.

The schema is deliberately small::

    {
      "schema": 1,
      "benchmarks": {
        "<name>": {
          "recorded_at": "2026-07-29T12:00:00Z",
          "python": "3.11.7",
          "numpy": "2.1.0",
          ... caller-supplied metrics (seconds, speedups, parameters) ...
        }
      }
    }

Repeated runs overwrite their own entries and leave the others untouched, so
one file can accumulate every benchmark's latest numbers.  A benchmark that
measures several workloads (e.g. protocol + dynamics + speedup in
``bench_counts_engine.py``) records them in one shot with
:func:`record_benchmark_results`, which performs a single read-merge-write.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

SCHEMA_VERSION = 1

__all__ = [
    "record_benchmark_result",
    "record_benchmark_results",
    "load_benchmark_results",
]


def load_benchmark_results(path: Union[str, Path]) -> Dict[str, Any]:
    """The recorded benchmark document at ``path`` (empty skeleton if absent)."""
    path = Path(path)
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError:
            document = {}
        if isinstance(document, dict) and isinstance(
            document.get("benchmarks"), dict
        ):
            document["schema"] = SCHEMA_VERSION
            return document
    return {"schema": SCHEMA_VERSION, "benchmarks": {}}


def _stamped_entry(metrics: Mapping[str, Any]) -> Dict[str, Any]:
    """Caller metrics plus the automatic environment provenance."""
    return {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "numpy": np.__version__,
        **metrics,
    }


def record_benchmark_results(
    path: Union[str, Path], entries: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Merge several benchmarks' metrics into the JSON document at ``path``.

    ``entries`` maps benchmark name to its metrics dictionary; every entry
    is stamped with environment provenance (timestamp, python and numpy
    versions), existing entries under other names are left untouched, and
    the whole document is written once.  Returns the stamped entries.
    """
    path = Path(path)
    document = load_benchmark_results(path)
    stamped = {name: _stamped_entry(metrics) for name, metrics in entries.items()}
    document["benchmarks"].update(stamped)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return stamped


def record_benchmark_result(
    path: Union[str, Path], name: str, metrics: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge one benchmark's ``metrics`` into the JSON document at ``path``.

    Single-entry convenience wrapper over :func:`record_benchmark_results`;
    the updated (stamped) entry is returned.
    """
    return record_benchmark_results(path, {name: metrics})[name]
