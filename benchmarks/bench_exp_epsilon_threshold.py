"""Benchmark E9 — Appendix D: success across the eps ~ n^(-1/4) threshold."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_epsilon_threshold


def test_bench_exp_epsilon_threshold(benchmark):
    """Regenerate the E9 table (success rate vs. eps / n^(-1/4))."""
    table = run_experiment_benchmark(
        benchmark,
        exp_epsilon_threshold,
        exp_epsilon_threshold.EpsilonThresholdConfig.quick(),
    )
    above_threshold = [r for r in table if r["eps_over_threshold"] >= 2.0]
    assert above_threshold
    assert all(record["success_rate"] >= 0.5 for record in above_threshold)
