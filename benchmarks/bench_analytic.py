"""Benchmark: the analytic (sampling-free) tier.

The analytic tier's costs are structural, not statistical: the exact
Markov tier pays ``O(S^2)`` to build the one-round kernel over the
``S = C(n + k, k)`` count states and ``O(S^2)`` per round to evolve the
distribution, while the mean-field tier pays ``O(k^2)`` per round
regardless of ``n``.  This bench pins those costs at the tier's
operating points so regressions in the kernel convolution or the
mean-field recursion show up as data:

* exact kernel construction and distribution evolution at ``n = 40``,
  ``k = 2`` (``S = 861``, near the default state budget) for 3-majority
  dynamics under uniform noise;
* an exact two-stage protocol run at ``n = 14`` (the agreement suite's
  protocol operating point);
* mean-field dynamics at ``n = 10^6`` and a mean-field protocol run at
  ``n = 10^5`` — both must be near-instant, since neither touches an
  ``n``-sized object.

All measurements are recorded to ``BENCH_analytic.json`` in one
schema-versioned document via :func:`record.record_benchmark_results`,
and CI prints that file on every run.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_analytic.py -s \
        -o python_files="bench_*.py"

``test_analytic_tier_timings`` asserts the targets directly with
``time.perf_counter`` so it also runs without the pytest-benchmark
plugin.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from record import record_benchmark_results

from repro.core.analytic import AnalyticProtocol, MeanFieldProtocol
from repro.dynamics.analytic import (
    _KERNEL_CACHE,
    ExactDynamicsChain,
    MeanFieldDynamics,
)
from repro.noise.families import uniform_noise_matrix

RULE = "3-majority"
EPSILON = 0.4
MAX_ROUNDS = 80

EXACT_NODES = 40  # C(42, 2) = 861 states: near the default state budget
EXACT_INITIAL = np.array([22, 15])  # 3 undecided nodes
PROTOCOL_NODES = 14
PROTOCOL_INITIAL = np.array([6, 5])
PROTOCOL_EPSILON = 0.3
MEAN_FIELD_NODES = 1_000_000
MEAN_FIELD_PROTOCOL_NODES = 100_000
RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_analytic.json"


def build_exact_chain():
    noise = uniform_noise_matrix(2, EPSILON)
    return ExactDynamicsChain(RULE, EXACT_NODES, noise)


def run_mean_field_dynamics():
    noise = uniform_noise_matrix(2, EPSILON)
    initial = np.array([550_000, 375_000])  # 75k undecided
    dynamic = MeanFieldDynamics(RULE, MEAN_FIELD_NODES, noise)
    return dynamic.run(initial, MAX_ROUNDS, target_opinion=1)


def run_exact_protocol():
    noise = uniform_noise_matrix(2, PROTOCOL_EPSILON)
    protocol = AnalyticProtocol(
        PROTOCOL_NODES, noise, epsilon=PROTOCOL_EPSILON
    )
    return protocol.run(PROTOCOL_INITIAL, target_opinion=1)


def run_mean_field_protocol():
    noise = uniform_noise_matrix(2, PROTOCOL_EPSILON)
    protocol = MeanFieldProtocol(
        MEAN_FIELD_PROTOCOL_NODES, noise, epsilon=PROTOCOL_EPSILON
    )
    initial = np.zeros(2, dtype=np.int64)
    initial[0] = 1  # rumor source; everyone else undecided
    return protocol.run(initial, target_opinion=1)


def test_analytic_tier_timings():
    """Kernel construction, exact evolution, and both mean-field
    integrations stay within their structural cost envelopes; the
    measurements land together in BENCH_analytic.json."""
    _KERNEL_CACHE.clear()  # time a cold kernel build, not a cache hit

    started = time.perf_counter()
    chain = build_exact_chain()
    chain.transition_kernel()  # built lazily; force the S x S convolution
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    exact = chain.run(EXACT_INITIAL, MAX_ROUNDS, target_opinion=1)
    evolve_seconds = time.perf_counter() - started

    started = time.perf_counter()
    protocol = run_exact_protocol()
    protocol_seconds = time.perf_counter() - started

    started = time.perf_counter()
    mean_field = run_mean_field_dynamics()
    mean_field_seconds = time.perf_counter() - started

    started = time.perf_counter()
    mf_protocol = run_mean_field_protocol()
    mf_protocol_seconds = time.perf_counter() - started

    num_states = len(chain.states)
    entries = record_benchmark_results(
        RESULTS_PATH,
        {
            "exact_dynamics_3majority": {
                "num_nodes": EXACT_NODES,
                "num_opinions": 2,
                "epsilon": EPSILON,
                "num_states": num_states,
                "max_rounds": MAX_ROUNDS,
                "kernel_build_seconds": round(build_seconds, 4),
                "evolve_seconds": round(evolve_seconds, 4),
                "rounds_evolved": len(exact.bias_trajectory),
                "expected_rounds": round(exact.expected_rounds, 2),
                "success_probability": exact.success_probability,
            },
            "exact_protocol": {
                "num_nodes": PROTOCOL_NODES,
                "num_opinions": 2,
                "epsilon": PROTOCOL_EPSILON,
                "seconds": round(protocol_seconds, 4),
                "success_probability": protocol.success_probability,
            },
            "mean_field_dynamics_3majority": {
                "num_nodes": MEAN_FIELD_NODES,
                "num_opinions": 2,
                "epsilon": EPSILON,
                "max_rounds": MAX_ROUNDS,
                "seconds": round(mean_field_seconds, 4),
                "success_probability": mean_field.success_probability,
            },
            "mean_field_protocol": {
                "num_nodes": MEAN_FIELD_PROTOCOL_NODES,
                "num_opinions": 2,
                "epsilon": PROTOCOL_EPSILON,
                "seconds": round(mf_protocol_seconds, 4),
                "success_probability": mf_protocol.success_probability,
            },
        },
    )
    print(
        f"\nexact n={EXACT_NODES} (S={num_states}): kernel build "
        f"{build_seconds:.3f} s, {len(exact.bias_trajectory)}-round evolution "
        f"{evolve_seconds:.3f} s, P(success)={exact.success_probability:.4f}"
        f"\nexact protocol n={PROTOCOL_NODES}: {protocol_seconds:.3f} s, "
        f"P(success)={protocol.success_probability:.4f}"
        f"\nmean-field n={MEAN_FIELD_NODES:,}: dynamics "
        f"{mean_field_seconds:.3f} s, protocol (n={MEAN_FIELD_PROTOCOL_NODES:,}) "
        f"{mf_protocol_seconds:.3f} s (recorded to {RESULTS_PATH.name})"
    )
    assert set(entries) == {
        "exact_dynamics_3majority",
        "exact_protocol",
        "mean_field_dynamics_3majority",
        "mean_field_protocol",
    }
    assert 0.0 <= exact.success_probability <= 1.0
    assert 0.0 <= mf_protocol.success_probability <= 1.0
    # Structural envelopes, generous enough for slow CI runners: the
    # S = 861 kernel must build and evolve in seconds, and the
    # mean-field tiers must not secretly scale with n.
    assert build_seconds < 60.0, (
        f"exact kernel build took {build_seconds:.1f} s at S={num_states} "
        "(target: seconds, < 60 s)"
    )
    assert evolve_seconds < 30.0, (
        f"exact evolution took {evolve_seconds:.1f} s (target: < 30 s)"
    )
    assert mean_field_seconds < 5.0, (
        f"mean-field dynamics took {mean_field_seconds:.1f} s at "
        f"n={MEAN_FIELD_NODES:,} (must be n-independent, < 5 s)"
    )
    assert mf_protocol_seconds < 5.0, (
        f"mean-field protocol took {mf_protocol_seconds:.1f} s at "
        f"n={MEAN_FIELD_PROTOCOL_NODES:,} (must be n-independent, < 5 s)"
    )
