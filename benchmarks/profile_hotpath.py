"""Profile the hot path of every engine tier with cProfile.

Perf PRs should start from data, not guesses: this script runs one
representative scenario per engine tier (plus the fused protocol sweep,
the subject of the counts-tier fast path work) under :mod:`cProfile` and
prints the top-20 cumulative-time functions for each.  The same report is
available for a single ad-hoc run via ``repro simulate --profile``.

Run with::

    PYTHONPATH=src python benchmarks/profile_hotpath.py
    PYTHONPATH=src python benchmarks/profile_hotpath.py --tier counts --limit 30

Scenario sizes are chosen so each tier profiles in roughly a second —
large enough that the round loop dominates over one-time setup, small
enough to iterate on.  Pass ``--scale`` to multiply the node counts when
hunting size-dependent costs.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
from typing import Callable, Dict

from repro.sim import Scenario, ScenarioGrid, simulate, simulate_sweep


def _tier_scenario(engine: str, num_nodes: int) -> Scenario:
    return Scenario(
        workload="rumor",
        num_nodes=num_nodes,
        num_opinions=2,
        epsilon=0.3,
        engine=engine,
        num_trials=8 if engine == "sequential" else 32,
        seed=7,
    )


def _profile_sweep(scale: float) -> None:
    grid = ScenarioGrid(
        Scenario(
            workload="rumor",
            num_nodes=int(50_000 * scale),
            num_opinions=2,
            epsilon=0.2,
            engine="counts",
            num_trials=16,
            seed=11,
        ),
        {"epsilon": (0.2, 0.25, 0.3, 0.35, 0.4, 0.45)},
    )
    simulate_sweep(grid)


def _workloads(scale: float) -> Dict[str, Callable[[], None]]:
    return {
        "sequential": lambda: simulate(
            _tier_scenario("sequential", int(400 * scale))
        ),
        "batched": lambda: simulate(
            _tier_scenario("batched", int(5_000 * scale))
        ),
        "counts": lambda: simulate(
            _tier_scenario("counts", int(1_000_000 * scale))
        ),
        "sweep": lambda: _profile_sweep(scale),
    }


def _profile(name: str, workload: Callable[[], None], limit: int) -> None:
    # One unprofiled warm-up run so lazily built tables (vote laws,
    # Poisson tails) and import costs do not drown the steady-state
    # round-loop numbers the report is meant to expose.
    workload()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        workload()
    finally:
        profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(
        limit
    )
    print(f"=== {name} ===")
    print(stream.getvalue().rstrip())
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tier",
        action="append",
        choices=("sequential", "batched", "counts", "sweep"),
        help="profile only these tiers (repeatable; default: all)",
    )
    parser.add_argument(
        "--limit", type=int, default=20,
        help="number of functions to print per tier (default 20)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="multiply every tier's node count by this factor (default 1)",
    )
    args = parser.parse_args(argv)
    workloads = _workloads(args.scale)
    tiers = args.tier or list(workloads)
    for name in tiers:
        _profile(name, workloads[name], args.limit)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
