"""Benchmark E10 — Lemma 17: sample-size parity and monotonicity."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_parity


def test_bench_exp_parity(benchmark):
    """Regenerate the E10 table (Pr[maj] for l, l+1, l+2)."""
    table = run_experiment_benchmark(
        benchmark, exp_parity, exp_parity.ParityConfig.quick()
    )
    assert all(record["lemma_holds"] for record in table)
