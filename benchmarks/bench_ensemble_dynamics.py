"""Benchmark: batched ensemble dynamics vs. the sequential trial loop.

The acceptance target of the ensemble dynamics work: at ``n = 2000``,
``R = 32`` (3-majority dynamics, uniform noise ``eps = 0.3``, ``k = 3``) the
batched :class:`~repro.dynamics.EnsembleThreeMajorityDynamics` must be at
least 3x faster than the sequential loop of
:class:`~repro.dynamics.ThreeMajorityDynamics` runs.  In practice the
measured speedup is around an order of magnitude: the batched engine samples
the compound observation channel (and, for h-majority, the closed-form
``maj()`` vote law) with one uniform block per trial per round instead of
simulating individual observations.

The measured wall-clock costs and the speedup are persisted to
``BENCH_dynamics.json`` at the repo root via :mod:`record`, so the
performance trajectory is tracked as data.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_ensemble_dynamics.py -s \
        -o python_files="bench_*.py"

``test_batched_speedup_at_acceptance_point`` asserts the 3x target directly
with ``time.perf_counter`` so it also runs without the pytest-benchmark
plugin.
"""

from __future__ import annotations

import time
from pathlib import Path

from record import record_benchmark_result

from repro.dynamics import EnsembleThreeMajorityDynamics, ThreeMajorityDynamics
from repro.experiments.workloads import biased_population
from repro.noise.families import uniform_noise_matrix

NUM_NODES = 2000
NUM_TRIALS = 32
NUM_OPINIONS = 3
EPSILON = 0.3
INITIAL_BIAS = 0.1
MAX_ROUNDS = 60
RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_dynamics.json"


def make_workload():
    noise = uniform_noise_matrix(NUM_OPINIONS, EPSILON)
    initial_state = biased_population(
        NUM_NODES, NUM_OPINIONS, INITIAL_BIAS, random_state=0
    )
    return noise, initial_state


def run_batched(seed: int = 0):
    """All trials as one vectorized batch."""
    noise, initial_state = make_workload()
    dynamic = EnsembleThreeMajorityDynamics(
        NUM_NODES, noise, random_state=seed
    )
    return dynamic.run(
        initial_state, MAX_ROUNDS, NUM_TRIALS, target_opinion=1
    )


def run_sequential(seed: int = 0, num_trials: int = NUM_TRIALS):
    """The reference implementation: one dynamics run per trial."""
    noise, initial_state = make_workload()
    results = []
    for trial in range(num_trials):
        dynamic = ThreeMajorityDynamics(
            NUM_NODES, noise, random_state=seed + trial
        )
        results.append(
            dynamic.run(initial_state, MAX_ROUNDS, target_opinion=1)
        )
    return results


def test_bench_ensemble_dynamics_batched(benchmark):
    """A full 32-trial 3-majority batch at n = 2000 through the ensemble."""
    result = benchmark.pedantic(
        run_batched, rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.num_trials == NUM_TRIALS


def test_bench_ensemble_dynamics_sequential_reference(benchmark):
    """The same 32 trials as a sequential loop (the pre-ensemble path)."""
    results = benchmark.pedantic(
        run_sequential, rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(results) == NUM_TRIALS


def test_batched_speedup_at_acceptance_point():
    """The batched dynamics engine is >= 3x faster than the sequential loop,
    and the measurement lands in BENCH_dynamics.json."""
    run_batched()  # warm the vote-law table cache out of the timed region

    started = time.perf_counter()
    batched = run_batched()
    batched_seconds = time.perf_counter() - started

    started = time.perf_counter()
    sequential = run_sequential()
    sequential_seconds = time.perf_counter() - started

    speedup = sequential_seconds / batched_seconds
    entry = record_benchmark_result(
        RESULTS_PATH,
        "ensemble_dynamics_3majority",
        {
            "num_nodes": NUM_NODES,
            "num_trials": NUM_TRIALS,
            "num_opinions": NUM_OPINIONS,
            "epsilon": EPSILON,
            "max_rounds": MAX_ROUNDS,
            "batched_seconds": round(batched_seconds, 4),
            "sequential_seconds": round(sequential_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"\nn={NUM_NODES}, R={NUM_TRIALS} (3-majority, noisy): "
        f"batched {batched_seconds:.3f} s, sequential {sequential_seconds:.3f} s "
        f"-> speedup {speedup:.1f}x (recorded to {RESULTS_PATH.name})"
    )
    assert batched.num_trials == NUM_TRIALS
    assert len(sequential) == NUM_TRIALS
    assert entry["speedup"] == round(speedup, 2)
    assert speedup >= 3.0, (
        f"batched ensemble dynamics only {speedup:.2f}x faster than the "
        f"sequential loop (target: >= 3x)"
    )
