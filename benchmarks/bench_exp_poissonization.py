"""Benchmark E8 — Claim 1 / Lemma 2: process equivalence O vs B vs P."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_poissonization


def test_bench_exp_poissonization(benchmark):
    """Regenerate the E8 table (TV distances and dynamic agreement)."""
    table = run_experiment_benchmark(
        benchmark, exp_poissonization, exp_poissonization.PoissonizationConfig.quick()
    )
    static_rows = table.filtered(check="static")
    assert all(record["tv_total_counts"] < 0.15 for record in static_rows)
