"""Benchmark E6 — Lemma 12: Stage-2 bias amplification trajectory."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_stage2_trajectory


def test_bench_exp_stage2_trajectory(benchmark):
    """Regenerate the E6 table (per-phase bias during Stage 2)."""
    table = run_experiment_benchmark(
        benchmark,
        exp_stage2_trajectory,
        exp_stage2_trajectory.Stage2TrajectoryConfig.quick(),
    )
    assert table.records[-1]["mean_bias_after"] > 0.9
