"""Benchmark: batched ensemble engine vs. the sequential trial loop.

The acceptance target of the ensemble work: at ``n = 2000``, ``R = 32``
(uniform noise, ``eps = 0.3``, ``k = 3``) the batched
:class:`~repro.core.protocol.EnsembleProtocol` must be at least 3x faster
than the sequential loop of :class:`~repro.core.protocol.TwoStageProtocol`
runs.  In practice the measured speedup is far larger (tens of x): the
batched engine replaces the per-round delivery loop with per-phase sampling
of the balls-into-bins reformulation (Claim 1) and carries the trial axis
through every numpy operation.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_ensemble.py -s \
        -o python_files="bench_*.py"

The pytest-benchmark fixtures record the two wall-clock costs alongside the
other benches; ``test_batched_speedup_at_acceptance_point`` asserts the 3x
target directly with ``time.perf_counter`` so it also runs without the
plugin.
"""

from __future__ import annotations

import time

from repro.core.protocol import EnsembleProtocol, TwoStageProtocol
from repro.experiments.workloads import rumor_instance
from repro.noise.families import uniform_noise_matrix

NUM_NODES = 2000
NUM_TRIALS = 32
NUM_OPINIONS = 3
EPSILON = 0.3


def run_batched(seed: int = 0):
    """All trials as one vectorized batch."""
    protocol = EnsembleProtocol(
        NUM_NODES,
        uniform_noise_matrix(NUM_OPINIONS, EPSILON),
        epsilon=EPSILON,
        random_state=seed,
    )
    return protocol.run(
        rumor_instance(NUM_NODES, NUM_OPINIONS, 1),
        NUM_TRIALS,
        target_opinion=1,
    )


def run_sequential(seed: int = 0, num_trials: int = NUM_TRIALS):
    """The reference implementation: one protocol run per trial."""
    noise = uniform_noise_matrix(NUM_OPINIONS, EPSILON)
    initial_state = rumor_instance(NUM_NODES, NUM_OPINIONS, 1)
    results = []
    for trial in range(num_trials):
        protocol = TwoStageProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=seed + trial
        )
        results.append(protocol.run(initial_state, target_opinion=1))
    return results


def test_bench_ensemble_batched(benchmark):
    """A full 32-trial batch at n = 2000 through the ensemble engine."""
    result = benchmark.pedantic(
        run_batched, rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.num_trials == NUM_TRIALS
    assert result.success_rate >= 0.9


def test_bench_ensemble_sequential_reference(benchmark):
    """The same 32 trials as a sequential loop (the pre-ensemble path)."""
    results = benchmark.pedantic(
        run_sequential, rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(results) == NUM_TRIALS


def test_batched_speedup_at_acceptance_point():
    """The batched ensemble is >= 3x faster than the sequential loop."""
    started = time.perf_counter()
    batched = run_batched()
    batched_seconds = time.perf_counter() - started

    started = time.perf_counter()
    run_sequential()
    sequential_seconds = time.perf_counter() - started

    speedup = sequential_seconds / batched_seconds
    print(
        f"\nn={NUM_NODES}, R={NUM_TRIALS}: "
        f"batched {batched_seconds:.3f} s, sequential {sequential_seconds:.3f} s "
        f"-> speedup {speedup:.1f}x"
    )
    assert batched.num_trials == NUM_TRIALS
    assert speedup >= 3.0, (
        f"batched ensemble only {speedup:.2f}x faster than the sequential "
        f"loop (target: >= 3x)"
    )
