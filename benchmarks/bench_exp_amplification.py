"""Benchmark E5 — Proposition 1: sample-majority amplification vs. the bound."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_amplification


def test_bench_exp_amplification(benchmark):
    """Regenerate the E5 table (measured gap vs. the Proposition 1 bound)."""
    table = run_experiment_benchmark(
        benchmark, exp_amplification, exp_amplification.AmplificationConfig.quick()
    )
    assert all(record["bound_holds"] for record in table)
