"""Micro-benchmarks of the core simulation primitives.

These are not tied to a specific paper statement; they track the raw cost of
the building blocks (noise application, a full protocol run, the LP checker)
so that performance regressions in the library are visible in the benchmark
suite alongside the per-experiment tables.
"""

from __future__ import annotations

import numpy as np

from repro.core.rumor import RumorSpreading
from repro.network.mailbox import ReceivedMessages
from repro.noise.families import uniform_noise_matrix
from repro.noise.majority_preserving import check_majority_preserving


def test_bench_noise_application(benchmark):
    """Per-message noise application on a large batch of opinions."""
    rng = np.random.default_rng(0)
    noise = uniform_noise_matrix(5, 0.2)
    opinions = rng.integers(1, 6, size=100_000)
    received = benchmark(noise.apply_to_opinions, opinions, rng)
    assert received.shape == opinions.shape


def test_bench_majority_votes(benchmark):
    """Row-wise sample-majority voting over a large received-count matrix."""
    rng = np.random.default_rng(1)
    counts = rng.integers(0, 20, size=(20_000, 4))
    received = ReceivedMessages(counts)
    votes = benchmark(received.majority_votes, rng, sample_size=15)
    assert votes.shape == (20_000,)


def test_bench_full_rumor_run(benchmark):
    """A complete two-stage rumor-spreading run at n = 2000, k = 3."""
    noise = uniform_noise_matrix(3, 0.3)

    def run_once():
        return RumorSpreading(
            2000, 3, noise, 0.3, correct_opinion=1, random_state=0
        ).run()

    result = benchmark.pedantic(run_once, rounds=1, iterations=1, warmup_rounds=0)
    assert result.success


def test_bench_mp_lp_checker(benchmark):
    """The Definition-2 LP verification for a 6-opinion matrix."""
    noise = uniform_noise_matrix(6, 0.15)
    report = benchmark(check_majority_preserving, noise, 0.15, 0.1)
    assert report.is_majority_preserving
