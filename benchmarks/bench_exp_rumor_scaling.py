"""Benchmark E1 — Theorem 1: rumor-spreading scaling (rounds vs. log n / eps^2)."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_rumor_scaling


def test_bench_exp_rumor_scaling(benchmark):
    """Regenerate the E1 table (success rate and round count vs. n, eps)."""
    table = run_experiment_benchmark(
        benchmark, exp_rumor_scaling, exp_rumor_scaling.RumorScalingConfig.quick()
    )
    assert all(record["success_rate"] >= 0.5 for record in table)
