"""Benchmark E12 — protocol vs. elementary dynamics with and without noise."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_baselines


def test_bench_exp_baselines(benchmark):
    """Regenerate the E12 comparison table."""
    table = run_experiment_benchmark(
        benchmark, exp_baselines, exp_baselines.BaselineComparisonConfig.quick()
    )
    protocol_noisy = table.filtered(
        algorithm="two-stage protocol (this paper)", channel="noisy"
    )[0]
    assert protocol_noisy["success_rate"] >= 0.5
