"""Benchmark: the counts-tier protocol fast path and its floors.

Two acceptance floors guard the protocol fast-path work (per-phase law
precomputation, round-loop fusion, batched sweep draws):

* **Million-node protocol** — the ``counts_protocol_million`` config
  (two-stage protocol, ``n = 10^6``, ``R = 64``, ``k = 3``, uniform noise
  ``eps = 0.3``) must run at least **3x** faster than the 11.36 s the
  pre-fast-path engine recorded in ``BENCH_counts.json``.
* **Protocol sweep** — the 16-point protocol epsilon grid (rumor,
  ``n = 10^5``, ``R = 32``) must reach at least **3x** over the serial
  ``simulate()`` loop (it was 1.15x), using the batched draw mode.  The
  bitwise per-trial mode is measured and recorded alongside it; the
  batched mode's distributional correctness is pinned by the
  ``pytest -m agreement`` suite (``test_batched_draw_agreement.py``).

All timings are best-of-3 (the deterministic cost of a computation is the
minimum over repeats; perturbations are additive noise) and recorded to
``BENCH_counts.json`` / ``BENCH_sweep.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_protocol_fastpath.py -s \
        -o python_files="bench_*.py"

Both floors are asserted directly with ``time.perf_counter`` so the file
also runs without the pytest-benchmark plugin.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from record import record_benchmark_results

from repro.core.protocol import CountsProtocol
from repro.experiments.workloads import rumor_instance
from repro.noise.families import uniform_noise_matrix
from repro.sim import Scenario, ScenarioGrid, simulate, simulate_sweep

REPEATS = 3

# The counts_protocol_million configuration of bench_counts_engine.py.
MILLION_NODES = 1_000_000
MILLION_TRIALS = 64
MILLION_OPINIONS = 3
MILLION_EPSILON = 0.3
#: What BENCH_counts.json recorded for this config before the fast path.
MILLION_BASELINE_SECONDS = 11.36
MILLION_MIN_SPEEDUP = 3.0

# The 16-point protocol epsilon sweep of bench_sweep.py.
SWEEP_POINTS = 16
SWEEP_NODES = 100_000
SWEEP_TRIALS = 32
SWEEP_MIN_SPEEDUP = 3.0

COUNTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_counts.json"
SWEEP_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"


def _best_of(workload, repeats: int = REPEATS):
    """(best seconds, last result) over ``repeats`` timed runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = workload()
        best = min(best, time.perf_counter() - started)
    return best, result


def _run_million_protocol():
    noise = uniform_noise_matrix(MILLION_OPINIONS, MILLION_EPSILON)
    initial_state = rumor_instance(MILLION_NODES, MILLION_OPINIONS, 1)
    return CountsProtocol(
        MILLION_NODES, noise, epsilon=MILLION_EPSILON, random_state=0
    ).run(initial_state, MILLION_TRIALS, target_opinion=1)


def _sweep_grid() -> ScenarioGrid:
    return ScenarioGrid(
        Scenario(
            workload="rumor",
            num_nodes=SWEEP_NODES,
            num_opinions=2,
            epsilon=0.2,
            engine="counts",
            num_trials=SWEEP_TRIALS,
            seed=11,
        ),
        {"epsilon": tuple(np.linspace(0.2, 0.45, SWEEP_POINTS))},
    )


def test_protocol_fastpath_floors(capsys):
    # Warm-up: build the vote/Poisson law caches once outside the timers.
    simulate(_sweep_grid().scenario(0))

    million_seconds, million = _best_of(_run_million_protocol)
    million_speedup = MILLION_BASELINE_SECONDS / max(million_seconds, 1e-9)

    serial_seconds, _ = _best_of(
        lambda: [simulate(s) for s in _sweep_grid().scenarios()]
    )
    per_trial_seconds, _ = _best_of(
        lambda: simulate_sweep(_sweep_grid(), draw_mode="per-trial")
    )
    batched_seconds, _ = _best_of(
        lambda: simulate_sweep(_sweep_grid(), draw_mode="batched")
    )
    per_trial_speedup = serial_seconds / max(per_trial_seconds, 1e-9)
    batched_speedup = serial_seconds / max(batched_seconds, 1e-9)

    with capsys.disabled():
        print(
            f"\n[bench_protocol_fastpath] million-node protocol "
            f"(n=10^6, R={MILLION_TRIALS}, k={MILLION_OPINIONS}): "
            f"{million_seconds:.2f}s, {million_speedup:.1f}x over the "
            f"{MILLION_BASELINE_SECONDS:.2f}s baseline (floor "
            f">= {MILLION_MIN_SPEEDUP:.0f}x); {SWEEP_POINTS}-point protocol "
            f"sweep (n=10^5, R={SWEEP_TRIALS}): serial {serial_seconds:.2f}s, "
            f"per-trial {per_trial_speedup:.1f}x, batched "
            f"{batched_speedup:.1f}x (floor >= {SWEEP_MIN_SPEEDUP:.0f}x "
            f"batched); best of {REPEATS}"
        )

    record_benchmark_results(
        COUNTS_PATH,
        {
            "counts_protocol_million_fastpath": {
                "num_nodes": MILLION_NODES,
                "num_trials": MILLION_TRIALS,
                "num_opinions": MILLION_OPINIONS,
                "epsilon": MILLION_EPSILON,
                "timing_repeats": REPEATS,
                "counts_seconds": round(million_seconds, 4),
                "baseline_seconds": MILLION_BASELINE_SECONDS,
                "speedup_vs_baseline": round(million_speedup, 2),
                "min_speedup_target": MILLION_MIN_SPEEDUP,
                "success_rate": round(float(million.success_rate), 4),
                "total_rounds": int(million.total_rounds),
            },
        },
    )
    record_benchmark_results(
        SWEEP_PATH,
        {
            "sweep_protocol_fastpath_16pt": {
                "workload": "rumor",
                "num_nodes": SWEEP_NODES,
                "num_opinions": 2,
                "num_trials": SWEEP_TRIALS,
                "points": SWEEP_POINTS,
                "timing_repeats": REPEATS,
                "serial_seconds": round(serial_seconds, 4),
                "per_trial_sweep_seconds": round(per_trial_seconds, 4),
                "per_trial_speedup": round(per_trial_speedup, 2),
                "batched_sweep_seconds": round(batched_seconds, 4),
                "batched_speedup": round(batched_speedup, 2),
                "min_speedup_target": SWEEP_MIN_SPEEDUP,
            },
        },
    )

    assert million_speedup >= MILLION_MIN_SPEEDUP, (
        f"counts protocol at n=10^6, R={MILLION_TRIALS} took "
        f"{million_seconds:.2f}s — only {million_speedup:.2f}x over the "
        f"recorded {MILLION_BASELINE_SECONDS:.2f}s baseline; the fast-path "
        f"floor is >= {MILLION_MIN_SPEEDUP:.0f}x"
    )
    assert batched_speedup >= SWEEP_MIN_SPEEDUP, (
        f"the {SWEEP_POINTS}-point protocol epsilon sweep (batched draws) is "
        f"only {batched_speedup:.2f}x faster than the serial simulate() loop "
        f"(serial {serial_seconds:.2f}s, batched {batched_seconds:.2f}s); "
        f"the floor is >= {SWEEP_MIN_SPEEDUP:.0f}x"
    )
