"""Benchmarks E3/E4 — Stage 1: end-of-stage bias and per-phase growth."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_stage1_bias, exp_stage1_growth


def test_bench_exp_stage1_bias(benchmark):
    """Regenerate the E3 table (opinionated fraction and bias after Stage 1)."""
    table = run_experiment_benchmark(
        benchmark, exp_stage1_bias, exp_stage1_bias.Stage1BiasConfig.quick()
    )
    assert all(record["mean_opinionated_fraction"] > 0.99 for record in table)


def test_bench_exp_stage1_growth(benchmark):
    """Regenerate the E4 table (per-phase growth of the opinionated set)."""
    table = run_experiment_benchmark(
        benchmark, exp_stage1_growth, exp_stage1_growth.Stage1GrowthConfig.quick()
    )
    fractions = table.column("mean_opinionated_fraction")
    assert fractions[-1] > 0.95
