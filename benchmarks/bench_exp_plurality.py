"""Benchmark E2 — Theorem 2: plurality consensus vs. support size and bias."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_plurality_consensus


def test_bench_exp_plurality_consensus(benchmark):
    """Regenerate the E2 table (success vs. |S| and initial bias)."""
    table = run_experiment_benchmark(
        benchmark,
        exp_plurality_consensus,
        exp_plurality_consensus.PluralityConsensusConfig.quick(),
    )
    well_seeded = [
        record
        for record in table
        if record["support_meets_theorem"] and record["bias_over_required"] >= 2.0
    ]
    assert well_seeded
    assert all(record["success_rate"] >= 0.5 for record in well_seeded)
