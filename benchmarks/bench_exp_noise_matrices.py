"""Benchmark E7 — Section 4: (eps, delta)-majority preservation of example matrices."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments import exp_noise_matrices


def test_bench_exp_noise_matrices(benchmark):
    """Regenerate the E7 table (LP verdicts for the Section-4 examples)."""
    table = run_experiment_benchmark(
        benchmark, exp_noise_matrices, exp_noise_matrices.NoiseMatrixConfig.quick()
    )
    counterexample_rows = [
        record for record in table if record["matrix"].startswith("diag-dominant")
    ]
    assert counterexample_rows
    assert not any(record["majority_preserving"] for record in counterexample_rows)
