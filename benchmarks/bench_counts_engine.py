"""Benchmark: the counts (sufficient-statistics) engine at large ``n``.

The acceptance targets of the counts-engine work:

* at ``n = 10^5``, ``R = 64`` (3-majority dynamics, uniform noise
  ``eps = 0.3``, ``k = 3``, run to convergence/round cap) the counts engine
  must be at least **20x** faster than the batched ``(R, n)`` engine — in
  practice it is thousands of times faster, because its per-round cost is
  ``O(k^2)`` per trial regardless of ``n``;
* at ``n = 10^6``, ``R = 64`` the same workload must finish in seconds —
  the batched engine would need a ~0.5 GB opinion matrix per temporary just
  to start.

A full two-stage protocol ensemble at ``n = 10^6`` is measured as well (the
counts protocol executors never allocate an ``n``-sized array either).  All
measurements are recorded to ``BENCH_counts.json`` in one schema-versioned
document via :func:`record.record_benchmark_results`, and CI prints that
file on every run.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_counts_engine.py -s \
        -o python_files="bench_*.py"

``test_counts_speedup_and_scale`` asserts the targets directly with
``time.perf_counter`` so it also runs without the pytest-benchmark plugin.
"""

from __future__ import annotations

import time
from pathlib import Path

from record import record_benchmark_results

from repro.core.protocol import CountsProtocol
from repro.dynamics import (
    EnsembleCountsThreeMajorityDynamics,
    EnsembleThreeMajorityDynamics,
)
from repro.experiments.workloads import biased_population, rumor_instance
from repro.noise.families import uniform_noise_matrix

NUM_TRIALS = 64
NUM_OPINIONS = 3
EPSILON = 0.3
INITIAL_BIAS = 0.1
MAX_ROUNDS = 40
SPEEDUP_NODES = 100_000
MILLION_NODES = 1_000_000
RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_counts.json"


def make_workload(num_nodes: int):
    noise = uniform_noise_matrix(NUM_OPINIONS, EPSILON)
    initial_state = biased_population(
        num_nodes, NUM_OPINIONS, INITIAL_BIAS, random_state=0
    )
    return noise, initial_state


def run_counts(num_nodes: int, seed: int = 0, max_rounds: int = MAX_ROUNDS):
    """3-majority to convergence (or the round cap) on the counts engine."""
    noise, initial_state = make_workload(num_nodes)
    dynamic = EnsembleCountsThreeMajorityDynamics(
        num_nodes, noise, random_state=seed
    )
    return dynamic.run(
        initial_state, max_rounds, NUM_TRIALS, target_opinion=1,
        record_history=False,
    )


def run_batched(num_nodes: int, seed: int = 0, max_rounds: int = MAX_ROUNDS):
    """The same workload on the batched (R, n) engine."""
    noise, initial_state = make_workload(num_nodes)
    dynamic = EnsembleThreeMajorityDynamics(
        num_nodes, noise, random_state=seed
    )
    return dynamic.run(
        initial_state, max_rounds, NUM_TRIALS, target_opinion=1,
        record_history=False,
    )


def run_counts_protocol(num_nodes: int, seed: int = 0):
    """A full two-stage protocol ensemble on the counts engine."""
    noise = uniform_noise_matrix(NUM_OPINIONS, EPSILON)
    initial_state = rumor_instance(num_nodes, NUM_OPINIONS, 1)
    return CountsProtocol(
        num_nodes, noise, epsilon=EPSILON, random_state=seed
    ).run(initial_state, NUM_TRIALS, target_opinion=1)


def test_bench_counts_dynamics_million_nodes(benchmark):
    """A 64-trial 3-majority batch at n = 10^6 through the counts engine."""
    result = benchmark.pedantic(
        run_counts, args=(MILLION_NODES,), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    assert result.num_trials == NUM_TRIALS


def test_bench_counts_protocol_million_nodes(benchmark):
    """A 64-trial two-stage protocol ensemble at n = 10^6, counts engine."""
    result = benchmark.pedantic(
        run_counts_protocol, args=(MILLION_NODES,), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    assert result.num_trials == NUM_TRIALS


def test_counts_speedup_and_scale():
    """The counts engine is >= 20x faster than the batched engine at
    n = 10^5, and runs n = 10^6 (dynamics and protocol) in seconds; the
    measurements land together in BENCH_counts.json."""
    run_counts(SPEEDUP_NODES)  # warm the vote-law table cache

    started = time.perf_counter()
    counts = run_counts(SPEEDUP_NODES)
    counts_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = run_batched(SPEEDUP_NODES)
    batched_seconds = time.perf_counter() - started

    started = time.perf_counter()
    million = run_counts(MILLION_NODES)
    million_seconds = time.perf_counter() - started

    started = time.perf_counter()
    protocol = run_counts_protocol(MILLION_NODES)
    protocol_seconds = time.perf_counter() - started

    speedup = batched_seconds / counts_seconds
    entries = record_benchmark_results(
        RESULTS_PATH,
        {
            "counts_dynamics_3majority_speedup": {
                "num_nodes": SPEEDUP_NODES,
                "num_trials": NUM_TRIALS,
                "num_opinions": NUM_OPINIONS,
                "epsilon": EPSILON,
                "max_rounds": MAX_ROUNDS,
                "counts_seconds": round(counts_seconds, 4),
                "batched_seconds": round(batched_seconds, 4),
                "speedup": round(speedup, 2),
            },
            "counts_dynamics_3majority_million": {
                "num_nodes": MILLION_NODES,
                "num_trials": NUM_TRIALS,
                "num_opinions": NUM_OPINIONS,
                "epsilon": EPSILON,
                "max_rounds": MAX_ROUNDS,
                "counts_seconds": round(million_seconds, 4),
            },
            "counts_protocol_million": {
                "num_nodes": MILLION_NODES,
                "num_trials": NUM_TRIALS,
                "num_opinions": NUM_OPINIONS,
                "epsilon": EPSILON,
                "counts_seconds": round(protocol_seconds, 4),
                "total_rounds": protocol.total_rounds,
                "success_rate": protocol.success_rate,
            },
        },
    )
    print(
        f"\nn={SPEEDUP_NODES:,}, R={NUM_TRIALS} (3-majority, noisy): "
        f"counts {counts_seconds:.3f} s, batched {batched_seconds:.3f} s "
        f"-> speedup {speedup:.0f}x"
        f"\nn={MILLION_NODES:,}, R={NUM_TRIALS}: dynamics "
        f"{million_seconds:.3f} s, two-stage protocol {protocol_seconds:.1f} s "
        f"(recorded to {RESULTS_PATH.name})"
    )
    assert counts.num_trials == NUM_TRIALS
    assert batched.num_trials == NUM_TRIALS
    assert million.num_trials == NUM_TRIALS
    assert protocol.success_rate > 0.9
    assert set(entries) == {
        "counts_dynamics_3majority_speedup",
        "counts_dynamics_3majority_million",
        "counts_protocol_million",
    }
    assert speedup >= 20.0, (
        f"counts engine only {speedup:.1f}x faster than the batched engine "
        f"at n = {SPEEDUP_NODES:,} (target: >= 20x)"
    )
    assert million_seconds < 30.0, (
        f"n = 10^6 counts dynamics took {million_seconds:.1f} s "
        "(target: seconds, < 30 s)"
    )
