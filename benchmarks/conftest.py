"""Shared helpers for the benchmark harness.

Every experiment benchmark runs the experiment's ``quick()`` configuration
exactly once under pytest-benchmark (so the wall-clock cost of regenerating
the table is itself recorded) and then prints the reproduced table, which is
the artifact recorded in EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the reproduced tables inline.
"""

from __future__ import annotations

import pytest


def run_experiment_benchmark(benchmark, experiment_module, config, random_state=0):
    """Benchmark one experiment run and print the resulting table."""
    table = benchmark.pedantic(
        experiment_module.run,
        args=(config,),
        kwargs={"random_state": random_state},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(table.to_text())
    return table
