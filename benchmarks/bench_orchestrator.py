"""Benchmark: the orchestrator's parallel sweep vs. serial execution.

The acceptance target of the orchestration layer: a ``run_all`` replication
sweep (the quick configurations of every registered experiment at three
base seeds — 45 jobs) must scale with worker count.  The bench measures
*per-core scaling*: serial first, then every parallel level in
``PARALLEL_LEVELS`` that the host can genuinely run in parallel
(``level <= cores``), and records the whole scaling curve to
``BENCH_experiments.json`` — on a 1-core host the record carries an
explicit ``scaling: {"skipped": ...}`` reason instead of a misleading
0.9x "speedup" (or an ambiguous empty dictionary).

Each measurable level has its own acceptance target
(``MIN_SPEEDUP[level]``); the targets are asserted for every level the
host can measure.  When *no* level is measurable (a 1-core host) the
bench skips with an explicit reason after recording — never a silent
pass, and never an assertion against time-slicing noise.  CI runs on
multi-core runners, so at least the 2-way target is enforced there.

A resume pass over the already-populated store is measured as well: every
job must report ``cached`` and the pass must cost a small fraction of the
original run.  All measurements are recorded in one schema-versioned
document via :func:`record.record_benchmark_results`, and CI prints that
file on every run.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_orchestrator.py -s \
        -o python_files="bench_*.py"

``test_run_all_parallel_scaling`` asserts the targets directly with
``time.perf_counter`` so it also runs without the pytest-benchmark plugin.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from record import record_benchmark_results

from repro.experiments.orchestrator import run_all
from repro.experiments.spec import registered_ids

# Parallel levels measured (when the host has at least that many cores)
# and the wall-clock speedup over serial each must reach.  The 4-way
# target is the orchestration layer's original >= 2x acceptance bar; the
# 2-way target tolerates pool/pickling overhead on small hosts.
PARALLEL_LEVELS = (2, 4)
MIN_SPEEDUP = {2: 1.3, 4: 2.0}
SWEEP_SEEDS = (0, 1, 2)
RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_experiments.json"


def run_sweep(jobs: int, store=None, resume: bool = False):
    """One replication sweep over all quick configs; (reports, seconds)."""
    started = time.perf_counter()
    reports = run_all(
        registered_ids(),
        jobs=jobs,
        seeds=SWEEP_SEEDS,
        store=store,
        resume=resume,
    )
    return reports, time.perf_counter() - started


def test_run_all_parallel_scaling(tmp_path, capsys):
    # Warm-up: one cheap experiment so one-time import/JIT costs (numpy
    # caches, schedule tables) do not pollute the serial measurement.
    run_all(["E11"], jobs=1)

    cores = os.cpu_count() or 1
    measurable = [level for level in PARALLEL_LEVELS if level <= cores]

    store = tmp_path / "results"
    serial_reports, serial_seconds = run_sweep(jobs=1, store=store)
    num_jobs = len(serial_reports)
    assert all(report.status == "ran" for report in serial_reports)

    scaling = {}
    if not measurable:
        # Leave a self-describing record rather than an empty dictionary:
        # a reader of BENCH_experiments.json should be able to tell "not
        # measurable on this host" apart from "the bench forgot to run".
        scaling["skipped"] = (
            f"only {cores} core(s) available; parallel levels "
            f"{PARALLEL_LEVELS} cannot beat serial on time-sliced hardware"
        )
    for level in measurable:
        parallel_reports, parallel_seconds = run_sweep(jobs=level)
        assert all(report.status == "ran" for report in parallel_reports)
        scaling[f"jobs_{level}"] = {
            "seconds": round(parallel_seconds, 4),
            "speedup": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
            "min_speedup_target": MIN_SPEEDUP[level],
        }

    resume_reports, resume_seconds = run_sweep(jobs=1, store=store, resume=True)
    assert all(report.status == "cached" for report in resume_reports)
    assert resume_seconds < serial_seconds / 2, (
        f"resume pass took {resume_seconds:.2f}s - the cache is not "
        "actually skipping work"
    )

    with capsys.disabled():
        curve = ", ".join(
            f"--jobs {level.split('_')[1]} {entry['speedup']:.1f}x"
            for level, entry in scaling.items()
            if level.startswith("jobs_")
        ) or "no parallel level measurable"
        print(
            f"\n[bench_orchestrator] run-all over {num_jobs} quick-config "
            f"jobs ({len(SWEEP_SEEDS)} seeds x {len(registered_ids())} "
            f"experiments): serial {serial_seconds:.2f}s; {curve}; "
            f"resume {resume_seconds:.3f}s ({cores} cores)"
        )

    record_benchmark_results(
        RESULTS_PATH,
        {
            "orchestrator_run_all_quick": {
                "num_jobs": num_jobs,
                "num_experiments": len(registered_ids()),
                "num_seeds": len(SWEEP_SEEDS),
                "cores": cores,
                "serial_seconds": round(serial_seconds, 4),
                "scaling": scaling,
                "resume_seconds": round(resume_seconds, 4),
            }
        },
    )

    if not measurable:
        pytest.skip(
            f"only {cores} core(s) available - none of the parallel levels "
            f"{PARALLEL_LEVELS} can beat serial on time-sliced hardware; "
            "serial + resume measurements recorded, speedup targets "
            "unmeasurable here (CI enforces them on multi-core runners)"
        )
    for level in measurable:
        speedup = scaling[f"jobs_{level}"]["speedup"]
        assert speedup >= MIN_SPEEDUP[level], (
            f"run-all --jobs {level} speedup {speedup:.2f}x is below the "
            f"{MIN_SPEEDUP[level]}x target at {cores} cores "
            f"(serial {serial_seconds:.2f}s, "
            f"parallel {scaling[f'jobs_{level}']['seconds']:.2f}s)"
        )
