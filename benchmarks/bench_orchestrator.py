"""Benchmark: the orchestrator's parallel sweep vs. serial execution.

The acceptance target of the orchestration layer: a ``run_all`` replication
sweep (the quick configurations of every registered experiment at three
base seeds — 42 jobs) must be at least **2x** faster with ``--jobs 4`` than
serially.  Parallel results are identical to serial results (the
per-experiment seeds derive from the job identity, not from execution
order), so the speedup is pure wall-clock — the property the orchestrator
test-suite verifies separately on records.

The speedup assertion needs real parallel hardware: on a machine with
fewer than ``PARALLEL_JOBS`` cores the measurement is still taken and
recorded, but the ≥2x target is skipped (time-slicing one core cannot
speed anything up).  CI runs on multi-core runners, so the target is
enforced there.

A resume pass over the already-populated store is measured as well: every
job must report ``cached`` and the pass must cost a small fraction of the
original run.  All measurements are recorded to ``BENCH_experiments.json``
in one schema-versioned document via
:func:`record.record_benchmark_results`, and CI prints that file on every
run.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_orchestrator.py -s \
        -o python_files="bench_*.py"

``test_run_all_parallel_speedup`` asserts the targets directly with
``time.perf_counter`` so it also runs without the pytest-benchmark plugin.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from record import record_benchmark_results

from repro.experiments.orchestrator import run_all
from repro.experiments.spec import registered_ids

PARALLEL_JOBS = 4
MIN_SPEEDUP = 2.0
SWEEP_SEEDS = (0, 1, 2)
RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_experiments.json"


def run_sweep(jobs: int, store=None, resume: bool = False):
    """One replication sweep over all quick configs; (reports, seconds)."""
    started = time.perf_counter()
    reports = run_all(
        registered_ids(),
        jobs=jobs,
        seeds=SWEEP_SEEDS,
        store=store,
        resume=resume,
    )
    return reports, time.perf_counter() - started


def test_run_all_parallel_speedup(tmp_path, capsys):
    # Warm-up: one cheap experiment so one-time import/JIT costs (numpy
    # caches, schedule tables) do not pollute the serial measurement.
    run_all(["E11"], jobs=1)

    serial_reports, serial_seconds = run_sweep(jobs=1)
    store = tmp_path / "results"
    parallel_reports, parallel_seconds = run_sweep(
        jobs=PARALLEL_JOBS, store=store
    )
    resume_reports, resume_seconds = run_sweep(
        jobs=PARALLEL_JOBS, store=store, resume=True
    )

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    num_jobs = len(serial_reports)
    cores = os.cpu_count() or 1

    with capsys.disabled():
        print(
            f"\n[bench_orchestrator] run-all over {num_jobs} quick-config "
            f"jobs ({len(SWEEP_SEEDS)} seeds x {len(registered_ids())} "
            f"experiments): serial {serial_seconds:.2f}s, "
            f"--jobs {PARALLEL_JOBS} {parallel_seconds:.2f}s "
            f"-> speedup {speedup:.1f}x; resume {resume_seconds:.3f}s "
            f"({cores} cores)"
        )

    assert all(report.status == "ran" for report in serial_reports)
    assert all(report.status == "ran" for report in parallel_reports)
    assert all(report.status == "cached" for report in resume_reports)
    assert resume_seconds < serial_seconds / 2, (
        f"resume pass took {resume_seconds:.2f}s - the cache is not "
        "actually skipping work"
    )

    record_benchmark_results(
        RESULTS_PATH,
        {
            "orchestrator_run_all_quick": {
                "num_jobs": num_jobs,
                "num_experiments": len(registered_ids()),
                "num_seeds": len(SWEEP_SEEDS),
                "jobs": PARALLEL_JOBS,
                "cores": cores,
                "serial_seconds": round(serial_seconds, 4),
                "parallel_seconds": round(parallel_seconds, 4),
                "speedup": round(speedup, 2),
                "resume_seconds": round(resume_seconds, 4),
                "min_speedup_target": MIN_SPEEDUP,
            }
        },
    )

    if cores < PARALLEL_JOBS:
        pytest.skip(
            f"only {cores} core(s) available - the >= {MIN_SPEEDUP}x "
            f"--jobs {PARALLEL_JOBS} target needs parallel hardware "
            "(measurement recorded above)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"run-all --jobs {PARALLEL_JOBS} speedup {speedup:.2f}x is below "
        f"the {MIN_SPEEDUP}x acceptance target "
        f"(serial {serial_seconds:.2f}s, parallel {parallel_seconds:.2f}s)"
    )
