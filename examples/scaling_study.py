#!/usr/bin/env python3
"""A small scaling study: measured rounds vs. the Theorem 1 clock.

Runs the full two-stage protocol across a grid of population sizes and noise
levels, fits the measured running time against the theoretical
``log(n)/eps^2`` clock, and prints the per-configuration table plus the fit —
the same computation as experiment E1, exposed as a standalone script that a
user can edit to explore their own parameter ranges.

Run with::

    python examples/scaling_study.py
"""

from __future__ import annotations

import numpy as np

from repro import RumorSpreading, uniform_noise_matrix
from repro.analysis.convergence import fit_round_complexity
from repro.core.schedule import theoretical_round_complexity
from repro.utils.tables import format_records

NUM_NODES_GRID = (1_000, 2_000, 4_000, 8_000)
EPSILON_GRID = (0.2, 0.3, 0.4)
NUM_OPINIONS = 3
TRIALS_PER_POINT = 3


def main() -> None:
    records = []
    nodes_for_fit, eps_for_fit, rounds_for_fit = [], [], []
    for num_nodes in NUM_NODES_GRID:
        for epsilon in EPSILON_GRID:
            noise = uniform_noise_matrix(NUM_OPINIONS, epsilon)
            rounds, successes = [], 0
            for seed in range(TRIALS_PER_POINT):
                result = RumorSpreading(
                    num_nodes,
                    NUM_OPINIONS,
                    noise,
                    epsilon,
                    correct_opinion=1,
                    random_state=seed,
                ).run()
                rounds.append(result.total_rounds)
                successes += int(result.success)
            mean_rounds = float(np.mean(rounds))
            clock = theoretical_round_complexity(num_nodes, epsilon)
            records.append(
                {
                    "n": num_nodes,
                    "epsilon": epsilon,
                    "success": f"{successes}/{TRIALS_PER_POINT}",
                    "mean rounds": round(mean_rounds, 1),
                    "log2(n)/eps^2": round(clock, 1),
                    "ratio": round(mean_rounds / clock, 2),
                }
            )
            nodes_for_fit.append(num_nodes)
            eps_for_fit.append(epsilon)
            rounds_for_fit.append(mean_rounds)

    print(format_records(records, title="Rounds to consensus vs. the Theorem 1 clock"))
    fit = fit_round_complexity(nodes_for_fit, eps_for_fit, rounds_for_fit)
    print()
    print(
        f"least-squares fit: rounds ~ {fit.constant:.2f} * log2(n)/eps^2 "
        f"(relative residual {fit.relative_residual:.1%})"
    )
    print(
        "A small residual means the measured running time scales exactly as "
        "Theorem 1 predicts - only the constant in front is implementation-specific."
    )


if __name__ == "__main__":
    main()
