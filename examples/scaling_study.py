#!/usr/bin/env python3
"""A scaling study: measured rounds vs. the Theorem 1 clock, across engines.

Runs the full two-stage protocol across a grid of population sizes and noise
levels, fits the measured running time against the theoretical
``log(n)/eps^2`` clock, and prints the per-configuration table plus the fit —
the same computation as experiment E1, exposed as a standalone script that a
user can edit to explore their own parameter ranges.

The whole grid is one declarative :class:`repro.sim.ScenarioGrid` executed
through :func:`repro.sim.simulate_sweep` with ``engine="auto"``: the small
points run on the batched ``(R, n)`` ensemble engine, while the large ones
switch to the counts (sufficient-statistics) engine — and every counts-tier
point is fused into a single heterogeneous batched computation whose
per-round cost is independent of ``n``, which is why this script can afford
a million-node row on a laptop.  Per-point results are bitwise identical to
a serial ``simulate()`` loop over the same scenarios.

Completed sweep points persist through the orchestrator's content-keyed
:class:`~repro.experiments.orchestrator.ResultStore` (the same ``results/``
artifacts as ``python -m repro run-all``), keyed on the scenario dictionary
itself, so an interrupted or re-run study *resumes*: already-computed grid
points load from disk instead of being recomputed, and editing the grid
only computes the new points.

Run with::

    python examples/scaling_study.py
"""

from __future__ import annotations

from repro import Scenario
from repro.analysis.convergence import fit_round_complexity
from repro.core.schedule import theoretical_round_complexity
from repro.experiments.orchestrator import ResultStore
from repro.sim import ScenarioGrid, simulate_sweep
from repro.utils.tables import format_records

NUM_NODES_GRID = (1_000, 4_000, 16_000, 100_000, 1_000_000)
EPSILON_GRID = (0.2, 0.3, 0.4)
NUM_OPINIONS = 3
TRIALS_PER_POINT = 3
SEED = 0
#: Populations at or above this size run on the counts engine.
COUNTS_THRESHOLD = 50_000
#: Where completed sweep points persist (shared with `repro run-all`).
STORE_DIR = "results"


def main() -> None:
    store = ResultStore(STORE_DIR)
    grid = ScenarioGrid(
        Scenario(
            workload="rumor",
            num_nodes=NUM_NODES_GRID[0],
            num_opinions=NUM_OPINIONS,
            epsilon=EPSILON_GRID[0],
            engine="auto",
            counts_threshold=COUNTS_THRESHOLD,
            num_trials=TRIALS_PER_POINT,
            seed=SEED,
        ),
        {"num_nodes": NUM_NODES_GRID, "epsilon": EPSILON_GRID},
    )
    # One call runs (or resumes) the whole grid: cached points are sliced
    # out of the batch, everything else runs fused, and fresh results are
    # written back to the store under the scenario-derived identity.
    sweep = simulate_sweep(grid, store=store, store_label="scaling_study")

    records = []
    nodes_for_fit, eps_for_fit, rounds_for_fit = [], [], []
    for index, result in enumerate(sweep.results):
        overrides = grid.point_overrides(index)
        num_nodes = overrides["num_nodes"]
        epsilon = overrides["epsilon"]
        mean_rounds = float(result.mean_rounds)
        clock = theoretical_round_complexity(num_nodes, epsilon)
        records.append(
            {
                "n": num_nodes,
                "epsilon": epsilon,
                "engine": sweep.engines[index],
                "success": f"{result.success_count}/{TRIALS_PER_POINT}",
                "mean rounds": round(mean_rounds, 1),
                "log2(n)/eps^2": round(clock, 1),
                "ratio": round(mean_rounds / clock, 2),
                "wall [s]": round(
                    float(result.provenance["wall_time_seconds"]), 2
                ),
                "from": "store" if sweep.from_cache[index] else "run",
            }
        )
        nodes_for_fit.append(num_nodes)
        eps_for_fit.append(epsilon)
        rounds_for_fit.append(mean_rounds)

    print(format_records(records, title="Rounds to consensus vs. the Theorem 1 clock"))
    fit = fit_round_complexity(nodes_for_fit, eps_for_fit, rounds_for_fit)
    print()
    print(
        f"least-squares fit: rounds ~ {fit.constant:.2f} * log2(n)/eps^2 "
        f"(relative residual {fit.relative_residual:.1%})"
    )
    print(
        "A small residual means the measured running time scales exactly as "
        "Theorem 1 predicts - only the constant in front is implementation-specific."
    )
    print(
        "Rows at n >= {:,} ran on the counts engine: per-round cost O(k^2) "
        "per trial, independent of n - and the sweep fused them into one "
        "batched computation.".format(COUNTS_THRESHOLD)
    )
    if sweep.cache_hits:
        print(
            f"{sweep.cache_hits}/{len(records)} grid points resumed from "
            f"{STORE_DIR}/ (delete the scaling_study_*.json artifacts to "
            "force a re-run)."
        )


if __name__ == "__main__":
    main()
