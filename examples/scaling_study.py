#!/usr/bin/env python3
"""A scaling study: measured rounds vs. the Theorem 1 clock, across engines.

Runs the full two-stage protocol across a grid of population sizes and noise
levels, fits the measured running time against the theoretical
``log(n)/eps^2`` clock, and prints the per-configuration table plus the fit —
the same computation as experiment E1, exposed as a standalone script that a
user can edit to explore their own parameter ranges.

Every grid point is one declarative :class:`repro.Scenario` executed through
:func:`repro.simulate` with ``engine="auto"``: the small points run on the
batched ``(R, n)`` ensemble engine, while the large ones switch to the
counts (sufficient-statistics) engine, whose per-round cost is independent
of ``n`` — which is why this script can afford a million-node row on a
laptop.

Completed sweep points persist through the orchestrator's content-keyed
:class:`~repro.experiments.orchestrator.ResultStore` (the same ``results/``
artifacts as ``python -m repro run-all``), keyed on the scenario dictionary
itself, so an interrupted or re-run study *resumes*: already-computed grid
points load from disk instead of being recomputed, and editing the grid
only computes the new points.

Run with::

    python examples/scaling_study.py
"""

from __future__ import annotations

from repro import Scenario, simulate
from repro.analysis.convergence import fit_round_complexity
from repro.core.schedule import theoretical_round_complexity
from repro.experiments.orchestrator import ResultStore
from repro.utils.tables import format_records

NUM_NODES_GRID = (1_000, 4_000, 16_000, 100_000, 1_000_000)
EPSILON_GRID = (0.2, 0.3, 0.4)
NUM_OPINIONS = 3
TRIALS_PER_POINT = 3
SEED = 0
#: Populations at or above this size run on the counts engine.
COUNTS_THRESHOLD = 50_000
#: Where completed sweep points persist (shared with `repro run-all`).
STORE_DIR = "results"


def measure_point(scenario: Scenario) -> dict:
    """Run one grid point through the facade and return its measurements."""
    result = simulate(scenario)
    return {
        "successes": result.success_count,
        "mean_rounds": result.mean_rounds,
        "seconds": result.provenance["wall_time_seconds"],
        "engine": result.engine,
    }


def main() -> None:
    store = ResultStore(STORE_DIR)
    records = []
    nodes_for_fit, eps_for_fit, rounds_for_fit = [], [], []
    resumed = 0
    for num_nodes in NUM_NODES_GRID:
        for epsilon in EPSILON_GRID:
            scenario = Scenario(
                workload="rumor",
                num_nodes=num_nodes,
                num_opinions=NUM_OPINIONS,
                epsilon=epsilon,
                engine="auto",
                counts_threshold=COUNTS_THRESHOLD,
                num_trials=TRIALS_PER_POINT,
                seed=SEED,
            )
            # The point's identity is the scenario itself: everything that
            # determines its outcome, already in canonical dictionary form.
            # Identical identity -> load from the store instead of re-running.
            identity = {"script": "scaling_study", "scenario": scenario.to_dict()}
            point = store.fetch("scaling_study", identity)
            cached = point is not None
            if cached:
                resumed += 1
            else:
                point = measure_point(scenario)
                store.store("scaling_study", identity, point)
            mean_rounds = float(point["mean_rounds"])
            clock = theoretical_round_complexity(num_nodes, epsilon)
            records.append(
                {
                    "n": num_nodes,
                    "epsilon": epsilon,
                    "engine": point["engine"],
                    "success": f"{int(point['successes'])}/{TRIALS_PER_POINT}",
                    "mean rounds": round(mean_rounds, 1),
                    "log2(n)/eps^2": round(clock, 1),
                    "ratio": round(mean_rounds / clock, 2),
                    "wall [s]": round(float(point["seconds"]), 2),
                    "from": "store" if cached else "run",
                }
            )
            nodes_for_fit.append(num_nodes)
            eps_for_fit.append(epsilon)
            rounds_for_fit.append(mean_rounds)

    print(format_records(records, title="Rounds to consensus vs. the Theorem 1 clock"))
    fit = fit_round_complexity(nodes_for_fit, eps_for_fit, rounds_for_fit)
    print()
    print(
        f"least-squares fit: rounds ~ {fit.constant:.2f} * log2(n)/eps^2 "
        f"(relative residual {fit.relative_residual:.1%})"
    )
    print(
        "A small residual means the measured running time scales exactly as "
        "Theorem 1 predicts - only the constant in front is implementation-specific."
    )
    print(
        "Rows at n >= {:,} ran on the counts engine: per-round cost O(k^2) "
        "per trial, independent of n.".format(COUNTS_THRESHOLD)
    )
    if resumed:
        print(
            f"{resumed}/{len(records)} grid points resumed from {STORE_DIR}/ "
            "(delete the scaling_study_*.json artifacts to force a re-run)."
        )


if __name__ == "__main__":
    main()
