#!/usr/bin/env python3
"""A gallery of noise patterns and their majority-preservation verdicts.

Section 4 of the paper characterizes which noise matrices allow plurality
consensus at all: the (eps, delta)-majority-preserving matrices.  This
example walks through the matrices discussed in the paper (and a couple of
extra shapes from the introduction), prints the exact LP verdict for a grid
of biases, the Eq. (17)/(18) sufficient condition where it applies, and the
worst-case delta-biased starting distribution for each matrix — then puts
the verdicts to the test empirically: each channel is dropped into the same
declarative :class:`repro.Scenario` and run through :func:`repro.simulate`
on the batched engine, showing that the LP's yes/no answer predicts whether
the protocol actually recovers the plurality.

Run with::

    python examples/noise_matrix_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Scenario,
    cyclic_shift_matrix,
    diagonally_dominant_counterexample,
    near_uniform_matrix,
    reset_matrix,
    simulate,
    uniform_noise_matrix,
)
from repro.noise.majority_preserving import (
    check_majority_preserving,
    epsilon_for_delta,
    sufficient_condition_epsilon,
    worst_case_distribution,
)
from repro.utils.tables import format_records

EPSILON = 0.1
DELTAS = (0.05, 0.1, 0.2, 0.4)


def gallery():
    """The matrices to analyse (name them as the paper does)."""
    rng = np.random.default_rng(0)
    return [
        ("Eq. (1) generalization, k=3", uniform_noise_matrix(3, EPSILON)),
        ("Eq. (1) generalization, k=6", uniform_noise_matrix(6, EPSILON)),
        ("diagonally dominant counterexample", diagonally_dominant_counterexample(EPSILON)),
        ("close-opinion (cyclic) noise, k=5", cyclic_shift_matrix(5, 3 * EPSILON)),
        ("reset-to-opinion-1 noise", reset_matrix(3, 3 * EPSILON)),
        ("random near-uniform (Eq. 17 form)", near_uniform_matrix(4, 0.55, 0.12, 0.18, rng)),
    ]


def main() -> None:
    records = []
    for label, matrix in gallery():
        sufficient_eps, sufficient_delta = sufficient_condition_epsilon(matrix)
        for delta in DELTAS:
            report = check_majority_preserving(matrix, EPSILON, delta)
            records.append(
                {
                    "matrix": label,
                    "delta": delta,
                    "worst gap": round(report.minimal_gap, 4),
                    "eps(delta)": round(epsilon_for_delta(matrix, delta), 3),
                    "(eps,delta)-m.p.": report.is_majority_preserving,
                    "plurality kept": report.preserves_plurality,
                    "Eq.(18) delta_min": (
                        round(sufficient_delta, 3)
                        if np.isfinite(sufficient_delta)
                        else "n/a"
                    ),
                }
            )
    print(format_records(records, title="Majority preservation across noise patterns"))

    print()
    print("Worst-case 0.1-biased starting distributions (the LP's adversary):")
    for label, matrix in gallery():
        worst = worst_case_distribution(matrix, 0.1, 1)
        formatted = ", ".join(f"{value:.2f}" for value in worst)
        print(f"  {label:<38} c* = ({formatted})")

    print()
    print(
        "Note the diagonally dominant counterexample: every diagonal entry "
        "dominates its row, yet a 0.1-biased distribution exists from which the "
        "noisy channel makes a rival opinion look most frequent - diagonal "
        "dominance is not sufficient for majority preservation."
    )

    print()
    print("Empirical check (8 protocol trials per channel via the facade):")
    empirical = []
    for label, matrix in (
        ("Eq. (1) generalization, k=3", uniform_noise_matrix(3, EPSILON)),
        (
            "diagonally dominant counterexample",
            diagonally_dominant_counterexample(EPSILON),
        ),
    ):
        result = simulate(
            Scenario(
                workload="plurality",
                num_nodes=800,
                num_opinions=matrix.num_opinions,
                epsilon=EPSILON,
                noise=matrix,
                engine="batched",
                support_size=800,
                bias=0.1,
                num_trials=8,
                seed=0,
            )
        )
        empirical.append(
            {
                "matrix": label,
                "LP verdict": check_majority_preserving(
                    matrix, EPSILON, 0.1
                ).is_majority_preserving,
                "consensus on plurality": (
                    f"{result.success_count}/{result.num_trials}"
                ),
                "mean final bias": round(result.mean_final_bias, 3),
            }
        )
    print(format_records(empirical))
    print(
        "The majority-preserving channel amplifies the 0.1 bias to "
        "consensus; the counterexample's worst-case geometry shows up as "
        "lost or flipped pluralities."
    )


if __name__ == "__main__":
    main()
