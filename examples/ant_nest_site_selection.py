#!/usr/bin/env python3
"""Scenario: an ant colony choosing among candidate nest sites.

House-hunting ants [21] solve a plurality-consensus problem: a minority of
scouts have assessed candidate nest sites and recruit nest-mates by signalling
their preferred site; recruitment signals (tandem runs, pheromones) are noisy.
This example compares two strategies under the *same* noisy channel:

* the paper's two-stage protocol (sample-majority over a bounded reservoir),
* the undecided-state dynamics (a classic model of ant recruitment), and
* the 3-majority dynamics,

starting from identical colonies, and reports which strategies still recover
the best (plurality) site once the channel is noisy.

Run with::

    python examples/ant_nest_site_selection.py
"""

from __future__ import annotations

import numpy as np

from repro import PluralityConsensus, PluralityInstance, uniform_noise_matrix
from repro.dynamics import ThreeMajorityDynamics, UndecidedStateDynamics
from repro.utils.tables import format_records

COLONY_SIZE = 3_000
NUM_SITES = 3
NUM_SCOUTS = 600
SITE_SHARES = [0.45, 0.35, 0.20]   # scout support per candidate site
SIGNAL_NOISE_EPSILON = 0.25        # the channel keeps a signal with prob 1/k + eps
MAX_DYNAMICS_ROUNDS = 400
NUM_TRIALS = 5


def build_instance() -> PluralityInstance:
    """Scouts have opinions; the rest of the colony is undecided."""
    return PluralityInstance.from_support_fractions(
        COLONY_SIZE, NUM_SCOUTS, SITE_SHARES
    )


def run_protocol(instance: PluralityInstance, noise, seed: int):
    result = PluralityConsensus(
        instance, noise, SIGNAL_NOISE_EPSILON, random_state=seed
    ).run()
    return result.success, result.total_rounds


def run_dynamic(dynamic_cls, instance: PluralityInstance, noise, seed: int):
    rng = np.random.default_rng(seed)
    dynamic = dynamic_cls(COLONY_SIZE, noise, rng)
    initial = instance.initial_state(rng)
    result = dynamic.run(
        initial, MAX_DYNAMICS_ROUNDS, target_opinion=instance.plurality_opinion()
    )
    return result.success, result.rounds_executed


def main() -> None:
    instance = build_instance()
    noise = uniform_noise_matrix(NUM_SITES, SIGNAL_NOISE_EPSILON)
    print(f"colony size     : {COLONY_SIZE}")
    print(f"scouts          : {instance.support_size}")
    print(f"candidate sites : {NUM_SITES} with scout shares {SITE_SHARES}")
    print(f"best site       : site {instance.plurality_opinion()}")
    print(f"signal noise    : {noise.name}")
    print()

    strategies = [
        ("two-stage protocol (paper)", lambda seed: run_protocol(instance, noise, seed)),
        (
            "undecided-state dynamics",
            lambda seed: run_dynamic(UndecidedStateDynamics, instance, noise, seed),
        ),
        (
            "3-majority dynamics",
            lambda seed: run_dynamic(ThreeMajorityDynamics, instance, noise, seed),
        ),
    ]
    records = []
    for name, runner in strategies:
        outcomes = [runner(seed) for seed in range(NUM_TRIALS)]
        successes = sum(1 for success, _ in outcomes if success)
        mean_rounds = float(np.mean([rounds for _, rounds in outcomes]))
        records.append(
            {
                "strategy": name,
                "trials": NUM_TRIALS,
                "chose best site": f"{successes}/{NUM_TRIALS}",
                "mean rounds": round(mean_rounds, 1),
            }
        )
    print(format_records(records, title="Nest-site selection under noisy recruitment"))
    print()
    print(
        "The elementary dynamics are not designed for per-message noise: the "
        "corrupted signals keep re-seeding minority sites, while the paper's "
        "protocol aggregates enough observations per phase to overcome them."
    )


if __name__ == "__main__":
    main()
