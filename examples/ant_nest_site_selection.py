#!/usr/bin/env python3
"""Scenario: an ant colony choosing among candidate nest sites.

House-hunting ants [21] solve a plurality-consensus problem: a minority of
scouts have assessed candidate nest sites and recruit nest-mates by signalling
their preferred site; recruitment signals (tandem runs, pheromones) are noisy.
This example compares three strategies under the *same* noisy channel:

* the paper's two-stage protocol (sample-majority over a bounded reservoir),
* the undecided-state dynamics (a classic model of ant recruitment), and
* the 3-majority dynamics,

starting from identical colonies.  Every strategy is one declarative
:class:`repro.Scenario` — same colony, same scouts, same channel — run
through the one :func:`repro.simulate` entry point; only the ``workload``
(and ``rule``) fields differ, which is exactly the point of the facade.

Run with::

    python examples/ant_nest_site_selection.py
"""

from __future__ import annotations

from repro import Scenario, simulate, uniform_noise_matrix
from repro.utils.tables import format_records

COLONY_SIZE = 3_000
NUM_SITES = 3
NUM_SCOUTS = 600
SITE_SHARES = (0.45, 0.35, 0.20)   # scout support per candidate site
SIGNAL_NOISE_EPSILON = 0.25        # the channel keeps a signal with prob 1/k + eps
MAX_DYNAMICS_ROUNDS = 400
NUM_TRIALS = 5
SEED = 0


def strategy_scenarios() -> list:
    """One Scenario per strategy; only workload/rule differ."""
    shared = dict(
        num_nodes=COLONY_SIZE,
        num_opinions=NUM_SITES,
        epsilon=SIGNAL_NOISE_EPSILON,
        support_size=NUM_SCOUTS,
        shares=SITE_SHARES,
        num_trials=NUM_TRIALS,
        seed=SEED,
    )
    return [
        (
            "two-stage protocol (paper)",
            Scenario(workload="plurality", engine="batched", **shared),
        ),
        (
            "undecided-state dynamics",
            Scenario(
                workload="dynamics", rule="undecided-state",
                engine="sequential", max_rounds=MAX_DYNAMICS_ROUNDS, **shared,
            ),
        ),
        (
            "3-majority dynamics",
            Scenario(
                workload="dynamics", rule="3-majority",
                engine="sequential", max_rounds=MAX_DYNAMICS_ROUNDS, **shared,
            ),
        ),
    ]


def main() -> None:
    scenarios = strategy_scenarios()
    instance = scenarios[0][1].plurality_instance()
    noise = uniform_noise_matrix(NUM_SITES, SIGNAL_NOISE_EPSILON)
    print(f"colony size     : {COLONY_SIZE}")
    print(f"scouts          : {instance.support_size}")
    print(f"candidate sites : {NUM_SITES} with scout shares {list(SITE_SHARES)}")
    print(f"best site       : site {instance.plurality_opinion()}")
    print(f"signal noise    : {noise.name}")
    print()

    records = []
    for name, scenario in scenarios:
        result = simulate(scenario)
        records.append(
            {
                "strategy": name,
                "trials": NUM_TRIALS,
                "chose best site": f"{result.success_count}/{NUM_TRIALS}",
                "mean rounds": round(result.mean_rounds, 1),
            }
        )
    print(format_records(records, title="Nest-site selection under noisy recruitment"))
    print()
    print(
        "The elementary dynamics are not designed for per-message noise: the "
        "corrupted signals keep re-seeding minority sites, while the paper's "
        "protocol aggregates enough observations per phase to overcome them."
    )


if __name__ == "__main__":
    main()
