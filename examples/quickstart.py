#!/usr/bin/env python3
"""Quickstart: spread a rumor through a noisy population.

This is the smallest end-to-end use of the library, built on the unified
simulation facade:

1. build the canonical uniform-noise matrix over ``k`` opinions (the
   Section-4 generalization of the paper's Eq. (1)) and verify it is
   (eps, delta)-majority-preserving with the exact LP checker;
2. describe the run as a declarative :class:`repro.Scenario` — one source
   node, everyone else undecided, the two-stage protocol;
3. hand it to :func:`repro.simulate`, which picks the engine tier;
4. print what happened, including the per-phase bias trajectory.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Scenario, check_majority_preserving, simulate

NUM_NODES = 5_000
NUM_OPINIONS = 4
EPSILON = 0.3
CORRECT_OPINION = 2


def main() -> None:
    # The scenario is plain data: what to run, at what scale, through which
    # channel, on which engine ("auto" picks the tier by population size).
    scenario = Scenario(
        workload="rumor",
        num_nodes=NUM_NODES,
        num_opinions=NUM_OPINIONS,
        epsilon=EPSILON,
        correct_opinion=CORRECT_OPINION,
        engine="auto",
        num_trials=1,
        seed=0,
    )

    # The channel: every message survives with probability 1/k + eps and is
    # switched to each other opinion with probability 1/k - eps/(k-1).
    noise = scenario.build_noise()
    report = check_majority_preserving(noise, EPSILON, delta=0.1)
    print(f"noise matrix: {noise.name}")
    print(f"  {report.summary()}")

    result = simulate(scenario)

    print()
    print(f"population size          : {result.num_nodes}")
    print(f"correct opinion          : {result.target_opinion}")
    print(f"engine tier              : {result.engine}")
    print(f"total rounds             : {int(result.rounds[0])}")
    print(f"  Stage 1 (spread)       : {result.stage1_rounds} rounds")
    print(f"bias after Stage 1       : {float(result.bias_after_stage1[0]):.4f}")
    print(f"success (full consensus) : {bool(result.successes[0])}")
    print(f"fraction holding rumor   : {float(result.correct_fractions()[0]):.4f}")
    print(f"wall time                : {result.provenance['wall_time_seconds']:.3f} s")

    print()
    print("bias toward the correct opinion after each protocol phase:")
    for phase, bias in enumerate(result.trajectories[0], start=1):
        print(f"  phase {phase}: bias {bias:.4f}")


if __name__ == "__main__":
    main()
