#!/usr/bin/env python3
"""Quickstart: spread a rumor through a noisy population.

This is the smallest end-to-end use of the library:

1. build the canonical uniform-noise matrix over ``k`` opinions (the
   Section-4 generalization of the paper's Eq. (1));
2. verify it is (eps, delta)-majority-preserving with the exact LP checker;
3. run the two-stage protocol from a single source node;
4. print what happened, phase by phase.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    RumorSpreading,
    check_majority_preserving,
    uniform_noise_matrix,
)

NUM_NODES = 5_000
NUM_OPINIONS = 4
EPSILON = 0.3
CORRECT_OPINION = 2


def main() -> None:
    # The channel: every message survives with probability 1/k + eps and is
    # switched to each other opinion with probability 1/k - eps/(k-1).
    noise = uniform_noise_matrix(NUM_OPINIONS, EPSILON)
    report = check_majority_preserving(noise, EPSILON, delta=0.1)
    print(f"noise matrix: {noise.name}")
    print(f"  {report.summary()}")

    # The problem: one node knows the correct opinion, everyone else is
    # undecided, and every transmission is corrupted by the matrix above.
    solver = RumorSpreading(
        num_nodes=NUM_NODES,
        num_opinions=NUM_OPINIONS,
        noise=noise,
        epsilon=EPSILON,
        correct_opinion=CORRECT_OPINION,
        random_state=0,
    )
    result = solver.run()

    print()
    print(f"population size          : {NUM_NODES}")
    print(f"correct opinion          : {CORRECT_OPINION}")
    print(f"total rounds             : {result.total_rounds}")
    print(f"  Stage 1 (spread)       : {result.stage1_rounds} rounds")
    print(f"  Stage 2 (amplify)      : {result.stage2_rounds} rounds")
    print(f"opinionated after Stage 1: {result.opinionated_after_stage1}")
    print(f"bias after Stage 1       : {result.bias_after_stage1:.4f}")
    print(f"success (full consensus) : {result.success}")
    print(f"fraction holding rumor   : {result.correct_fraction():.4f}")

    print()
    print("bias toward the correct opinion after each Stage-2 phase:")
    for record in result.stage2_records:
        print(
            f"  phase {record.phase_index}: sample size {record.sample_size:>4} "
            f"bias {record.bias_before:.4f} -> {record.bias_after:.4f}"
        )


if __name__ == "__main__":
    main()
