#!/usr/bin/env python3
"""Scenario: a flock of birds agreeing on a flight direction.

The paper motivates plurality consensus with collective-behaviour settings
such as direction election in flocking swarms [10].  Here each bird supports
one of ``k`` compass directions; a plurality of the informed birds prefers
one direction (say, toward the roost), and birds continuously signal their
current direction to random flock-mates.  Signals are *misread* with some
probability — and when they are, they are most likely misread as an adjacent
compass direction, which is exactly the "close opinion" (cyclic-shift) noise
pattern discussed in the paper's introduction.

The example:

1. builds the cyclic-shift noise matrix and asks the LP checker whether it is
   majority-preserving for the relevant bias (it is, for moderate noise);
2. derives the effective ``epsilon`` for the protocol's schedule from the LP;
3. describes the flock as a :class:`repro.Scenario` carrying that *custom*
   noise matrix (the facade accepts any channel, not just the uniform
   family) and runs it through :func:`repro.simulate`;
4. reports whether the flock locked onto the plurality direction, and how
   the bias evolved phase by phase.

Run with::

    python examples/flock_direction_consensus.py
"""

from __future__ import annotations

from repro import Scenario, cyclic_shift_matrix, simulate
from repro.noise.majority_preserving import check_majority_preserving, epsilon_for_delta

NUM_BIRDS = 4_000
NUM_DIRECTIONS = 8          # compass headings N, NE, E, ...
INFORMED_FRACTION = 0.25    # only a quarter of the flock has a preference
MISREAD_PROBABILITY = 0.35  # chance a signalled direction is misread
PLURALITY_SHARE = 0.30      # share of informed birds preferring the roost heading

DIRECTION_NAMES = ["N", "NE", "E", "SE", "S", "SW", "W", "NW"]


def build_scenario(noise, effective_epsilon: float) -> Scenario:
    """Informed birds split over all directions, with a plurality for one."""
    informed = int(NUM_BIRDS * INFORMED_FRACTION)
    remaining_share = (1.0 - PLURALITY_SHARE) / (NUM_DIRECTIONS - 1)
    shares = [remaining_share] * NUM_DIRECTIONS
    shares[0] = PLURALITY_SHARE
    return Scenario(
        workload="plurality",
        num_nodes=NUM_BIRDS,
        num_opinions=NUM_DIRECTIONS,
        epsilon=effective_epsilon,
        noise=noise,
        engine="sequential",
        support_size=informed,
        shares=tuple(shares),
        num_trials=1,
        seed=7,
    )


def main() -> None:
    noise = cyclic_shift_matrix(NUM_DIRECTIONS, MISREAD_PROBABILITY)
    # Probe the instance geometry first (bias within the informed set).
    probe = build_scenario(noise, effective_epsilon=0.05)
    instance = probe.plurality_instance()
    bias = instance.plurality_bias_within_support()

    report = check_majority_preserving(noise, epsilon=0.05, delta=bias)
    effective_epsilon = epsilon_for_delta(noise, bias)
    print(f"noise matrix        : {noise.name}")
    print(f"  {report.summary()}")
    print(f"  effective epsilon for the schedule: {effective_epsilon:.3f}")
    print()
    print(f"flock size          : {NUM_BIRDS}")
    print(f"informed birds      : {instance.support_size}")
    print(
        "preferred direction : "
        f"{DIRECTION_NAMES[instance.plurality_opinion() - 1]} "
        f"({PLURALITY_SHARE:.0%} of informed birds)"
    )
    print(f"plurality bias in S : {bias:.3f}")

    result = simulate(build_scenario(noise, effective_epsilon))

    print()
    print(f"rounds of signalling: {int(result.rounds[0])}")
    print(f"consensus reached   : {bool(result.successes[0])}")
    final_counts = result.final_opinion_counts[0]
    winner = int(final_counts.argmax()) + 1
    print(
        f"final heading       : {DIRECTION_NAMES[winner - 1]} "
        f"(supported by {int(final_counts[winner - 1])}/{NUM_BIRDS} birds)"
    )

    print()
    print("bias toward the preferred heading over the protocol phases:")
    for phase, phase_bias in enumerate(result.trajectories[0], start=1):
        print(f"  phase {phase}: bias {phase_bias:.3f}")


if __name__ == "__main__":
    main()
