#!/usr/bin/env python3
"""Scenario: running the protocol over an unknown, possibly sparse channel.

Two practical gaps between the paper's model and a deployment are (a) the
noise matrix is usually unknown and (b) the communication topology is rarely
the complete graph.  This example exercises both extensions of the library
through the unified facade:

1. **Channel calibration** — observe a batch of (sent, received) pairs on the
   real channel, estimate the noise matrix, and derive a schedule ``epsilon``
   from the exact LP (with a safety factor);
2. **Topology sensitivity** — describe the calibrated protocol as one
   :class:`repro.Scenario` and re-run it with only the ``topology`` /
   ``degree`` fields changed (complete graph, then random regular graphs of
   decreasing degree), showing where the complete-graph guarantee starts to
   erode.  Sparse topologies are per-node by nature, so the facade routes
   them to the sequential engine.

Run with::

    python examples/unknown_channel_calibration.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Scenario,
    calibrate_epsilon,
    collect_channel_observations,
    estimation_error,
    simulate,
    uniform_noise_matrix,
)
from repro.utils.tables import format_records

NUM_NODES = 2_000
NUM_OPINIONS = 3
TRUE_EPSILON = 0.3          # hidden from the "operator"
CALIBRATION_SAMPLES = 20_000
TARGET_BIAS = 0.1


def main() -> None:
    # The real channel (unknown to the operator).
    true_channel = uniform_noise_matrix(NUM_OPINIONS, TRUE_EPSILON)

    # Step 1: calibrate from observed transmissions.
    rng = np.random.default_rng(0)
    sent, received = collect_channel_observations(
        true_channel, CALIBRATION_SAMPLES, rng
    )
    epsilon, estimated_channel = calibrate_epsilon(
        sent, received, NUM_OPINIONS, delta=TARGET_BIAS, safety_factor=0.9
    )
    print(f"true channel          : {true_channel.name}")
    print(f"calibration samples   : {CALIBRATION_SAMPLES}")
    print(
        "estimation error      : "
        f"{estimation_error(estimated_channel, true_channel):.4f} "
        "(max per-row total variation)"
    )
    print(f"calibrated epsilon    : {epsilon:.3f} "
          f"(true effective value would be {TRUE_EPSILON * 1.5:.3f})")
    print()

    # Step 2: run the protocol, built from the *estimated* epsilon, on
    # progressively sparser topologies over the *true* channel.  One
    # Scenario per row; only topology/degree change.
    records = []
    for label, topology, degree in (
        ("complete graph", "complete", None),
        ("random regular, degree 128", "random_regular", 128),
        ("random regular, degree 16", "random_regular", 16),
        ("random regular, degree 6", "random_regular", 6),
    ):
        scenario = Scenario(
            workload="rumor",
            num_nodes=NUM_NODES,
            num_opinions=NUM_OPINIONS,
            epsilon=epsilon,
            noise=true_channel,
            engine="sequential",
            topology=topology,
            degree=degree,
            num_trials=1,
            seed=2,
        )
        result = simulate(scenario)
        records.append(
            {
                "topology": label,
                "degree": degree if degree is not None else NUM_NODES - 1,
                "rounds": int(result.rounds[0]),
                "consensus on rumor": bool(result.successes[0]),
                "correct fraction": round(
                    float(result.correct_fractions()[0]), 3
                ),
            }
        )
    print(format_records(records, title="Calibrated protocol across topologies"))
    print()
    print(
        "Dense topologies behave like the paper's complete graph; once the degree "
        "drops to a small constant the complete-graph analysis no longer applies "
        "and the rumor can be lost (see experiment E14 in EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
