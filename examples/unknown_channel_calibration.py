#!/usr/bin/env python3
"""Scenario: running the protocol over an unknown, possibly sparse channel.

Two practical gaps between the paper's model and a deployment are (a) the
noise matrix is usually unknown and (b) the communication topology is rarely
the complete graph.  This example exercises both extensions of the library:

1. **Channel calibration** — observe a batch of (sent, received) pairs on the
   real channel, estimate the noise matrix, and derive a schedule ``epsilon``
   from the exact LP (with a safety factor);
2. **Topology sensitivity** — run the calibrated protocol on the complete
   graph and on random regular graphs of decreasing degree, showing where the
   complete-graph guarantee starts to erode.

Run with::

    python examples/unknown_channel_calibration.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GraphPushModel,
    PopulationState,
    TwoStageProtocol,
    calibrate_epsilon,
    collect_channel_observations,
    estimation_error,
    standard_topology,
    uniform_noise_matrix,
)
from repro.utils.tables import format_records

NUM_NODES = 2_000
NUM_OPINIONS = 3
TRUE_EPSILON = 0.3          # hidden from the "operator"
CALIBRATION_SAMPLES = 20_000
TARGET_BIAS = 0.1


def main() -> None:
    # The real channel (unknown to the operator).
    true_channel = uniform_noise_matrix(NUM_OPINIONS, TRUE_EPSILON)

    # Step 1: calibrate from observed transmissions.
    rng = np.random.default_rng(0)
    sent, received = collect_channel_observations(
        true_channel, CALIBRATION_SAMPLES, rng
    )
    epsilon, estimated_channel = calibrate_epsilon(
        sent, received, NUM_OPINIONS, delta=TARGET_BIAS, safety_factor=0.9
    )
    print(f"true channel          : {true_channel.name}")
    print(f"calibration samples   : {CALIBRATION_SAMPLES}")
    print(
        "estimation error      : "
        f"{estimation_error(estimated_channel, true_channel):.4f} "
        "(max per-row total variation)"
    )
    print(f"calibrated epsilon    : {epsilon:.3f} "
          f"(true effective value would be {TRUE_EPSILON * 1.5:.3f})")
    print()

    # Step 2: run the protocol, built from the *estimated* epsilon, on
    # progressively sparser topologies over the *true* channel.
    records = []
    for label, name, kwargs in (
        ("complete graph", "complete", {}),
        ("random regular, degree 128", "random_regular", {"degree": 128}),
        ("random regular, degree 16", "random_regular", {"degree": 16}),
        ("random regular, degree 6", "random_regular", {"degree": 6}),
    ):
        graph = standard_topology(name, NUM_NODES, random_state=1, **kwargs)
        engine = GraphPushModel(graph, true_channel, random_state=2)
        protocol = TwoStageProtocol(
            NUM_NODES, true_channel, epsilon=epsilon, engine=engine, random_state=2
        )
        initial = PopulationState.single_source(NUM_NODES, NUM_OPINIONS, 1)
        result = protocol.run(initial, target_opinion=1)
        records.append(
            {
                "topology": label,
                "mean degree": round(float(engine.degrees().mean()), 1),
                "rounds": result.total_rounds,
                "consensus on rumor": result.success,
                "correct fraction": round(result.correct_fraction(), 3),
            }
        )
    print(format_records(records, title="Calibrated protocol across topologies"))
    print()
    print(
        "Dense topologies behave like the paper's complete graph; once the degree "
        "drops to a small constant the complete-graph analysis no longer applies "
        "and the rumor can be lost (see experiment E14 in EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
