#!/usr/bin/env python3
"""Scenario: running the protocol over an unknown, possibly sparse channel.

Two practical gaps between the paper's model and a deployment are (a) the
noise matrix is usually unknown and (b) the communication topology is rarely
the complete graph.  This example exercises both extensions of the library
through the unified facade:

1. **Channel calibration** — observe a batch of (sent, received) pairs on the
   real channel, estimate the noise matrix, and derive a schedule ``epsilon``
   from the exact LP (with a safety factor);
2. **Topology sensitivity** — describe the calibrated protocol as one
   :class:`repro.Scenario` and re-run it with only the ``topology`` /
   ``degree`` fields changed (complete graph, then random regular graphs of
   decreasing degree), showing where the complete-graph guarantee starts to
   erode.  The random-regular rows form one
   :class:`~repro.sim.ScenarioGrid` over the ``degree`` axis executed by
   :func:`~repro.sim.simulate_sweep`; sparse topologies are per-node by
   nature, so the sweep transparently falls back to per-point sequential
   simulation for them (the batched fusion only applies to counts-tier
   points) while keeping the grid bookkeeping — per-point derived seeds and
   sweep provenance — identical to any other sweep.

Run with::

    python examples/unknown_channel_calibration.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import (
    Scenario,
    calibrate_epsilon,
    collect_channel_observations,
    estimation_error,
    simulate,
    uniform_noise_matrix,
)
from repro.sim import ScenarioGrid, simulate_sweep
from repro.utils.tables import format_records

NUM_NODES = 2_000
NUM_OPINIONS = 3
TRUE_EPSILON = 0.3          # hidden from the "operator"
CALIBRATION_SAMPLES = 20_000
TARGET_BIAS = 0.1


def main() -> None:
    # The real channel (unknown to the operator).
    true_channel = uniform_noise_matrix(NUM_OPINIONS, TRUE_EPSILON)

    # Step 1: calibrate from observed transmissions.
    rng = np.random.default_rng(0)
    sent, received = collect_channel_observations(
        true_channel, CALIBRATION_SAMPLES, rng
    )
    epsilon, estimated_channel = calibrate_epsilon(
        sent, received, NUM_OPINIONS, delta=TARGET_BIAS, safety_factor=0.9
    )
    print(f"true channel          : {true_channel.name}")
    print(f"calibration samples   : {CALIBRATION_SAMPLES}")
    print(
        "estimation error      : "
        f"{estimation_error(estimated_channel, true_channel):.4f} "
        "(max per-row total variation)"
    )
    print(f"calibrated epsilon    : {epsilon:.3f} "
          f"(true effective value would be {TRUE_EPSILON * 1.5:.3f})")
    print()

    # Step 2: run the protocol, built from the *estimated* epsilon, on
    # progressively sparser topologies over the *true* channel.  The
    # complete-graph baseline is one Scenario; the random-regular rows are
    # the same Scenario with only topology/degree changed, expressed as a
    # one-axis ScenarioGrid over ``degree``.  (Scenario validation couples
    # degree to topology — complete graphs take no degree — so the
    # baseline cannot share the sparse rows' axis.)
    base = Scenario(
        workload="rumor",
        num_nodes=NUM_NODES,
        num_opinions=NUM_OPINIONS,
        epsilon=epsilon,
        noise=true_channel,
        engine="sequential",
        num_trials=1,
        seed=2,
    )
    complete_result = simulate(base)

    sparse_degrees = (128, 16, 6)
    grid = ScenarioGrid(
        dataclasses.replace(
            base, topology="random_regular", degree=sparse_degrees[0]
        ),
        {"degree": sparse_degrees},
    )
    # Sequential-topology points have no counts-tier fusion; the sweep
    # transparently falls back to per-point simulation while keeping the
    # per-point derived seeds and sweep provenance of any other grid.
    sweep = simulate_sweep(grid)

    def row(label, degree, result, trial=0):
        return {
            "topology": label,
            "degree": degree,
            "rounds": int(result.rounds[trial]),
            "consensus on rumor": bool(result.successes[trial]),
            "correct fraction": round(
                float(result.correct_fractions()[trial]), 3
            ),
        }

    records = [row("complete graph", NUM_NODES - 1, complete_result)]
    for index, result in enumerate(sweep.results):
        degree = grid.point_overrides(index)["degree"]
        records.append(
            row(f"random regular, degree {degree}", degree, result)
        )
    print(format_records(records, title="Calibrated protocol across topologies"))
    print()
    print(
        "Dense topologies behave like the paper's complete graph; once the degree "
        "drops to a small constant the complete-graph analysis no longer applies "
        "and the rumor can be lost (see experiment E14 in EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
