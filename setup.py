"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that legacy editable installs (``python setup.py develop``) keep working on
environments whose setuptools predates PEP 660 editable wheels.
"""

from setuptools import setup

setup()
