"""Tests for repro.dynamics.median_rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import PopulationState
from repro.dynamics.median_rule import MedianRuleDynamics
from repro.experiments.workloads import biased_population
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestMedianRuleDynamics:
    def test_converges_without_noise(self, identity3, rng):
        dynamic = MedianRuleDynamics(500, identity3, rng)
        initial = biased_population(500, 3, 0.3, random_state=rng)
        result = dynamic.run(initial, 400)
        assert result.converged

    def test_consensus_is_absorbing(self, identity3, rng):
        dynamic = MedianRuleDynamics(100, identity3, rng)
        state = PopulationState.from_counts(100, {2: 100}, 3, rng)
        dynamic.step(state)
        assert state.has_consensus_on(2)

    def test_converges_to_a_median_value_not_extremes(self, identity3):
        # Start with values 1 and 3 only (no 2s): the median rule converges to
        # 1 or 3 (medians of triples drawn from {1,3} are 1 or 3) - it never
        # invents the middle value.  With the bulk at 3, it should pick 3,
        # even if opinion 1 were the "plurality" of a two-block split.
        rng = np.random.default_rng(3)
        dynamic = MedianRuleDynamics(500, identity3, rng)
        initial = PopulationState.from_counts(500, {1: 150, 3: 350}, 3, rng)
        result = dynamic.run(initial, 300)
        assert result.converged
        assert result.consensus_opinion == 3

    def test_median_behaviour_differs_from_plurality(self, identity3):
        # 1 and 3 are individually more popular than 2, but the value
        # distribution's median is 2 when 2 sits between big extreme blocks;
        # the median rule is pulled toward the middle, unlike plurality rules.
        rng = np.random.default_rng(5)
        dynamic = MedianRuleDynamics(600, identity3, rng)
        initial = PopulationState.from_counts(600, {1: 250, 2: 110, 3: 240}, 3, rng)
        result = dynamic.run(initial, 400)
        assert result.converged
        assert result.consensus_opinion == 2

    def test_undecided_nodes_adopt_observations(self, identity3, rng):
        dynamic = MedianRuleDynamics(200, identity3, rng)
        initial = PopulationState.from_counts(200, {2: 100}, 3, rng)
        result = dynamic.run(initial, 200)
        assert result.final_state.opinionated_fraction() == pytest.approx(1.0)

    def test_step_keeps_opinions_in_range(self, uniform3, rng):
        dynamic = MedianRuleDynamics(100, uniform3, rng)
        state = biased_population(100, 3, 0.2, random_state=rng)
        for _ in range(10):
            dynamic.step(state)
        assert state.opinions.min() >= 0
        assert state.opinions.max() <= 3

    def test_median_of_three_is_exact(self, identity3):
        # Verify the vectorized median against a direct computation for one
        # synthetic round (all nodes opinionated, no noise).
        rng = np.random.default_rng(0)
        dynamic = MedianRuleDynamics(6, identity3, rng)
        state = PopulationState(np.array([1, 2, 3, 1, 2, 3]), 3)
        dynamic.step(state)
        assert state.opinions.min() >= 1 and state.opinions.max() <= 3
