"""Tests for the batched ensemble dynamics engine.

The central guarantee under test mirrors the ensemble protocol's: with
per-trial randomness sources, a batched run of ``R`` trials is *bitwise
identical* to ``R`` separate batch-size-1 runs with the same sources — the
trial axis is pure vectorization and never changes any trial's trajectory.
Agreement with the sequential per-message reference engine is
distributional and is checked statistically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import EnsembleState, PopulationState
from repro.dynamics import (
    DYNAMICS_RULES,
    EnsembleOpinionDynamics,
    EnsembleThreeMajorityDynamics,
    make_dynamics,
    make_ensemble_dynamics,
)
from repro.experiments.workloads import biased_population
from repro.noise.families import identity_matrix, uniform_noise_matrix

NUM_NODES = 250
SEEDS = [101, 202, 303]

RULE_PARAMS = [
    (rule, 5 if rule == "h-majority" else None) for rule in DYNAMICS_RULES
]


@pytest.fixture
def noise():
    return uniform_noise_matrix(3, 0.3)


@pytest.fixture
def initial_state():
    return biased_population(NUM_NODES, 3, 0.25, random_state=1)


def run_batched(rule, sample_size, noise, initial_state, random_state,
                num_trials, max_rounds=120, **kwargs):
    dynamic = make_ensemble_dynamics(
        rule, initial_state.num_nodes, noise, random_state,
        sample_size=sample_size,
    )
    return dynamic.run(
        initial_state, max_rounds, num_trials, target_opinion=1, **kwargs
    )


class TestSeedMatchedEquivalence:
    @pytest.mark.parametrize("rule,sample_size", RULE_PARAMS)
    def test_batched_equals_batch_size_one_runs(
        self, rule, sample_size, noise, initial_state
    ):
        """The acceptance-criterion equivalence: R batched trials == R
        batch-size-1 runs, seed for seed, bit for bit."""
        batched = run_batched(
            rule, sample_size, noise, initial_state, SEEDS, len(SEEDS)
        )
        for trial, seed in enumerate(SEEDS):
            single = run_batched(
                rule, sample_size, noise, initial_state, [seed], 1
            )
            assert np.array_equal(
                batched.final_states.opinions[trial],
                single.final_states.opinions[0],
            )
            assert batched.rounds_executed[trial] == single.rounds_executed[0]
            assert bool(batched.converged[trial]) == bool(single.converged[0])
            assert bool(batched.successes[trial]) == bool(single.successes[0])
            assert (
                batched.trial_result(trial).bias_history
                == single.trial_result(0).bias_history
            )

    @pytest.mark.parametrize("rule,sample_size", RULE_PARAMS)
    def test_early_stopping_matches_on_noise_free_channel(
        self, rule, sample_size, initial_state
    ):
        """Trials converge at staggered rounds on the clean channel; the
        active-trials bookkeeping must not perturb any trial's stream."""
        clean = identity_matrix(3)
        batched = run_batched(
            rule, sample_size, clean, initial_state, SEEDS, len(SEEDS),
            max_rounds=3000,
        )
        for trial, seed in enumerate(SEEDS):
            single = run_batched(
                rule, sample_size, clean, initial_state, [seed], 1,
                max_rounds=3000,
            )
            assert np.array_equal(
                batched.final_states.opinions[trial],
                single.final_states.opinions[0],
            )
            assert batched.rounds_executed[trial] == single.rounds_executed[0]

    def test_int_seed_spawns_stable_per_trial_streams(self, noise, initial_state):
        small = run_batched("3-majority", None, noise, initial_state, 7, 2)
        large = run_batched("3-majority", None, noise, initial_state, 7, 4)
        assert np.array_equal(
            small.final_states.opinions, large.final_states.opinions[:2]
        )

    def test_reproducible_with_fixed_seed(self, noise, initial_state):
        first = run_batched("median-rule", None, noise, initial_state, 3, 4)
        second = run_batched("median-rule", None, noise, initial_state, 3, 4)
        assert np.array_equal(
            first.final_states.opinions, second.final_states.opinions
        )


class TestStatisticalAgreementWithSequential:
    def test_success_rates_agree_on_small_grid(self):
        """Both engines implement the same dynamics, so success rates over a
        small (rule, channel) grid must agree within sampling noise."""
        trials = 16
        initial = biased_population(300, 3, 0.3, random_state=2)
        grid = [
            ("3-majority", None, identity_matrix(3)),
            ("undecided-state", None, identity_matrix(3)),
            ("3-majority", None, uniform_noise_matrix(3, 0.6)),
        ]
        for rule, sample_size, channel in grid:
            batched = make_ensemble_dynamics(
                rule, 300, channel, 0, sample_size=sample_size
            ).run(initial, 400, trials, target_opinion=1)
            sequential_successes = []
            for seed in range(trials):
                result = make_dynamics(
                    rule, 300, channel, 1000 + seed, sample_size=sample_size
                ).run(initial, 400, target_opinion=1)
                sequential_successes.append(result.success)
            assert batched.success_rate == pytest.approx(
                float(np.mean(sequential_successes)), abs=0.35
            )

    def test_three_majority_amplifies_bias_like_sequential(self, noise):
        """Mean one-round bias change of the batched engine matches the
        sequential engine (both sample the same observation channel)."""
        initial = biased_population(2000, 3, 0.2, random_state=3)
        batched = make_ensemble_dynamics("3-majority", 2000, noise, 0).run(
            initial, 1, 24, target_opinion=1, stop_at_consensus=False
        )
        sequential_biases = []
        for seed in range(24):
            result = make_dynamics("3-majority", 2000, noise, seed).run(
                initial, 1, target_opinion=1, stop_at_consensus=False
            )
            sequential_biases.append(result.bias_history[0])
        assert float(batched.bias_history[0].mean()) == pytest.approx(
            float(np.mean(sequential_biases)), abs=0.03
        )

    def test_noise_free_three_majority_always_succeeds(self, initial_state):
        batched = run_batched(
            "3-majority", None, identity_matrix(3), initial_state, 0, 8,
            max_rounds=400,
        )
        assert batched.success_rate == 1.0
        assert np.all(batched.rounds_executed < 400)


class TestEnsembleDynamicsApi:
    def test_result_shapes_and_types(self, noise, initial_state):
        result = run_batched("voter", None, noise, initial_state, 0, 5,
                             max_rounds=10)
        assert result.num_trials == 5
        assert result.successes.shape == (5,)
        assert result.successes.dtype == bool
        assert result.converged.shape == (5,)
        assert result.consensus_opinions.shape == (5,)
        assert result.rounds_executed.shape == (5,)
        assert result.final_biases.shape == (5,)
        assert result.bias_history.shape == (10, 5)
        assert 0.0 <= result.success_rate <= 1.0
        assert result.success_count == int(result.successes.sum())
        assert result.convergence_rate >= result.success_rate
        summary = result.summary()
        assert summary["num_trials"] == 5
        assert summary["target_opinion"] == 1

    def test_trial_result_is_a_dynamics_result(self, noise, initial_state):
        result = run_batched("3-majority", None, noise, initial_state, 0, 3,
                             max_rounds=10)
        trial = result.trial_result(1)
        assert trial.final_state.num_nodes == NUM_NODES
        assert trial.target_opinion == 1
        assert len(trial.bias_history) == trial.rounds_executed

    def test_accepts_prebuilt_ensemble_state(self, noise, initial_state):
        ensemble = EnsembleState.from_state(initial_state, 3)
        result = EnsembleThreeMajorityDynamics(NUM_NODES, noise, 0).run(
            ensemble, 10
        )
        assert result.num_trials == 3

    def test_rejects_num_trials_mismatch(self, noise, initial_state):
        ensemble = EnsembleState.from_state(initial_state, 3)
        with pytest.raises(ValueError):
            EnsembleThreeMajorityDynamics(NUM_NODES, noise, 0).run(
                ensemble, 10, 4
            )

    def test_requires_num_trials_for_population_state(self, noise, initial_state):
        with pytest.raises(ValueError):
            EnsembleThreeMajorityDynamics(NUM_NODES, noise, 0).run(
                initial_state, 10
            )

    def test_rejects_node_count_mismatch(self, noise):
        with pytest.raises(ValueError):
            EnsembleThreeMajorityDynamics(NUM_NODES, noise, 0).run(
                biased_population(NUM_NODES + 1, 3, 0.2, random_state=0), 10, 2
            )

    def test_rejects_opinion_count_mismatch(self, noise):
        with pytest.raises(ValueError):
            EnsembleThreeMajorityDynamics(NUM_NODES, noise, 0).run(
                biased_population(NUM_NODES, 5, 0.2, random_state=0), 10, 2
            )

    def test_rejects_bad_rng_mode(self, noise):
        with pytest.raises(ValueError):
            EnsembleThreeMajorityDynamics(NUM_NODES, noise, 0, rng_mode="bogus")

    def test_rejects_out_of_range_target(self, noise, initial_state):
        with pytest.raises(ValueError):
            EnsembleThreeMajorityDynamics(NUM_NODES, noise, 0).run(
                initial_state, 10, 2, target_opinion=7
            )

    def test_shared_rng_mode_runs(self, noise, initial_state):
        result = EnsembleThreeMajorityDynamics(
            NUM_NODES, noise, 0, rng_mode="shared"
        ).run(initial_state, 20, 4, target_opinion=1)
        assert result.num_trials == 4

    def test_no_early_stop_when_disabled(self, initial_state):
        result = run_batched(
            "3-majority", None, identity_matrix(3), initial_state, 0, 3,
            max_rounds=30, stop_at_consensus=False,
        )
        assert np.all(result.rounds_executed == 30)

    def test_history_can_be_disabled(self, noise, initial_state):
        result = run_batched("voter", None, noise, initial_state, 0, 3,
                             max_rounds=5, record_history=False)
        assert result.bias_history.shape == (0, 3)

    def test_initial_state_not_mutated(self, noise, initial_state):
        snapshot = initial_state.opinions.copy()
        run_batched("3-majority", None, noise, initial_state, 0, 3,
                    max_rounds=5)
        assert np.array_equal(initial_state.opinions, snapshot)

    def test_abstract_base_cannot_be_instantiated(self, noise):
        with pytest.raises(TypeError):
            EnsembleOpinionDynamics(NUM_NODES, noise)


class TestMakeDynamicsRegistry:
    def test_rejects_unknown_rule(self, noise):
        with pytest.raises(ValueError):
            make_dynamics("bogus", 10, noise)
        with pytest.raises(ValueError):
            make_ensemble_dynamics("bogus", 10, noise)

    def test_h_majority_requires_sample_size(self, noise):
        with pytest.raises(ValueError):
            make_dynamics("h-majority", 10, noise)
        with pytest.raises(ValueError):
            make_ensemble_dynamics("h-majority", 10, noise)

    def test_sample_size_rejected_for_other_rules(self, noise):
        with pytest.raises(ValueError):
            make_dynamics("voter", 10, noise, sample_size=3)
        with pytest.raises(ValueError):
            make_ensemble_dynamics("median-rule", 10, noise, sample_size=3)

    @pytest.mark.parametrize("rule,sample_size", RULE_PARAMS)
    def test_engines_share_names(self, rule, sample_size, noise):
        sequential = make_dynamics(
            rule, 10, noise, sample_size=sample_size
        )
        batched = make_ensemble_dynamics(
            rule, 10, noise, sample_size=sample_size
        )
        assert sequential.name == batched.name
