"""Tests for repro.dynamics.undecided_state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import PopulationState
from repro.dynamics.undecided_state import UndecidedStateDynamics
from repro.experiments.workloads import biased_population
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestUndecidedStateDynamics:
    def test_converges_without_noise(self, identity3, rng):
        dynamic = UndecidedStateDynamics(600, identity3, rng)
        initial = biased_population(600, 3, 0.25, random_state=rng)
        result = dynamic.run(initial, 500, target_opinion=1)
        assert result.converged
        assert result.success

    def test_consensus_is_absorbing(self, identity3, rng):
        dynamic = UndecidedStateDynamics(100, identity3, rng)
        initial = PopulationState.from_counts(100, {3: 100}, 3, rng)
        result = dynamic.run(initial, 20, stop_at_consensus=False)
        assert result.final_state.has_consensus_on(3)

    def test_conflicting_observation_creates_undecided_nodes(self, identity3):
        # With a 50/50 split and no noise, conflicts must appear immediately.
        rng = np.random.default_rng(0)
        dynamic = UndecidedStateDynamics(400, identity3, rng)
        state = PopulationState.from_counts(400, {1: 200, 2: 200}, 3, rng)
        dynamic.step(state)
        assert state.opinionated_count() < 400

    def test_undecided_nodes_adopt_observed_opinion(self, identity3):
        rng = np.random.default_rng(1)
        dynamic = UndecidedStateDynamics(50, identity3, rng)
        # One opinionated node among undecided ones: observers of that node
        # adopt its opinion, nobody can become "more undecided".
        state = PopulationState.from_counts(50, {2: 25}, 3, rng)
        before = state.opinionated_count()
        dynamic.step(state)
        assert state.opinionated_count() >= before - 25  # opinionated may drop only via conflict
        assert set(np.unique(state.opinions)).issubset({0, 2})

    def test_same_opinion_observation_is_stable(self, identity3, rng):
        dynamic = UndecidedStateDynamics(80, identity3, rng)
        state = PopulationState.from_counts(80, {1: 80}, 3, rng)
        dynamic.step(state)
        assert state.has_consensus_on(1)

    def test_step_keeps_opinions_in_range(self, uniform3, rng):
        dynamic = UndecidedStateDynamics(100, uniform3, rng)
        state = biased_population(100, 3, 0.2, random_state=rng)
        for _ in range(10):
            dynamic.step(state)
        assert state.opinions.min() >= 0
        assert state.opinions.max() <= 3

    def test_noise_slows_or_prevents_convergence(self, rng):
        noise = uniform_noise_matrix(3, 0.15)
        dynamic = UndecidedStateDynamics(600, noise, rng)
        initial = biased_population(600, 3, 0.1, random_state=rng)
        result = dynamic.run(initial, 80, target_opinion=1, stop_at_consensus=False)
        # Under noise the dynamics cannot lock in full consensus: corrupted
        # observations keep knocking nodes back to undecided.
        assert not result.final_state.has_consensus_on(1)
