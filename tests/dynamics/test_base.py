"""Tests for repro.dynamics.base.OpinionDynamics / DynamicsResult."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import PopulationState
from repro.dynamics.base import OpinionDynamics
from repro.dynamics.voter import VoterDynamics
from repro.noise.families import identity_matrix, uniform_noise_matrix


class ConstantDynamics(OpinionDynamics):
    """A trivial dynamic that forces every node to opinion 1 (test double)."""

    name = "constant"

    def step(self, state: PopulationState) -> None:
        state.opinions[:] = 1


class TestRunLoop:
    def test_abstract_base_cannot_be_instantiated(self, identity3):
        with pytest.raises(TypeError):
            OpinionDynamics(10, identity3)

    def test_state_size_mismatch_rejected(self, identity3, rng):
        dynamic = ConstantDynamics(10, identity3, rng)
        with pytest.raises(ValueError):
            dynamic.run(PopulationState.all_undecided(5, 3), 10)

    def test_state_opinion_mismatch_rejected(self, identity3, rng):
        dynamic = ConstantDynamics(10, identity3, rng)
        with pytest.raises(ValueError):
            dynamic.run(PopulationState.all_undecided(10, 5), 10)

    def test_max_rounds_validation(self, identity3, rng):
        dynamic = ConstantDynamics(10, identity3, rng)
        with pytest.raises(ValueError):
            dynamic.run(PopulationState.all_undecided(10, 3), 0)

    def test_stops_at_consensus(self, identity3, rng):
        dynamic = ConstantDynamics(10, identity3, rng)
        initial = PopulationState.from_counts(10, {2: 5, 3: 5}, 3, rng)
        result = dynamic.run(initial, 50)
        assert result.converged
        assert result.consensus_opinion == 1
        assert result.rounds_executed == 1

    def test_no_early_stop_when_disabled(self, identity3, rng):
        dynamic = ConstantDynamics(10, identity3, rng)
        initial = PopulationState.from_counts(10, {2: 5, 3: 5}, 3, rng)
        result = dynamic.run(initial, 7, stop_at_consensus=False)
        assert result.rounds_executed == 7

    def test_initial_state_not_mutated(self, identity3, rng):
        dynamic = ConstantDynamics(10, identity3, rng)
        initial = PopulationState.from_counts(10, {2: 5, 3: 5}, 3, rng)
        snapshot = initial.opinions.copy()
        dynamic.run(initial, 5)
        assert np.array_equal(initial.opinions, snapshot)

    def test_success_requires_target_opinion(self, identity3, rng):
        dynamic = ConstantDynamics(10, identity3, rng)
        initial = PopulationState.from_counts(10, {2: 6, 3: 4}, 3, rng)
        result = dynamic.run(initial, 5, target_opinion=2)
        assert result.converged and not result.success

    def test_bias_history_recorded(self, identity3, rng):
        dynamic = ConstantDynamics(10, identity3, rng)
        initial = PopulationState.from_counts(10, {1: 6, 2: 4}, 3, rng)
        result = dynamic.run(initial, 5, stop_at_consensus=False)
        assert len(result.bias_history) == 5
        assert result.bias_history[0] == pytest.approx(1.0)

    def test_history_can_be_disabled(self, identity3, rng):
        dynamic = ConstantDynamics(10, identity3, rng)
        initial = PopulationState.from_counts(10, {1: 6, 2: 4}, 3, rng)
        result = dynamic.run(
            initial, 5, record_history=False, stop_at_consensus=False
        )
        assert result.bias_history == []

    def test_target_defaults_to_initial_plurality(self, identity3, rng):
        dynamic = ConstantDynamics(10, identity3, rng)
        initial = PopulationState.from_counts(10, {1: 6, 2: 4}, 3, rng)
        result = dynamic.run(initial, 5)
        assert result.target_opinion == 1
        assert result.success

    def test_num_opinions_property(self, uniform3, rng):
        assert VoterDynamics(10, uniform3, rng).num_opinions == 3
