"""Tests for the counts-engine (sufficient-statistics) baseline dynamics.

Covers the per-rule update arithmetic (conservation laws, absorbing
noise-free consensus), trial-by-trial bitwise reproducibility of the
grouped-multinomial randomness contract, the registry, and the result API.
Cross-engine statistical agreement lives in
``tests/integration/test_engine_agreement.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import CountsState, EnsembleCountsState, PopulationState
from repro.dynamics import (
    DYNAMICS_RULES,
    CountsDynamicsResult,
    EnsembleCountsHMajorityDynamics,
    EnsembleCountsThreeMajorityDynamics,
    make_counts_dynamics,
)
from repro.experiments.workloads import biased_population
from repro.noise.families import identity_matrix, uniform_noise_matrix

NUM_NODES = 600
NUM_TRIALS = 6


@pytest.fixture
def noise():
    return uniform_noise_matrix(3, 0.3)


@pytest.fixture
def initial_state():
    return biased_population(NUM_NODES, 3, 0.2, random_state=0)


def run_counts(rule, sample_size, channel, initial, seed, trials,
               max_rounds=30, **kwargs):
    dynamic = make_counts_dynamics(
        rule, NUM_NODES, channel, seed, sample_size=sample_size
    )
    kwargs.setdefault("target_opinion", 1)
    return dynamic.run(initial, max_rounds, trials, **kwargs)


class TestCountsUpdateInvariants:
    @pytest.mark.parametrize("rule,sample_size", [
        ("voter", None),
        ("3-majority", None),
        ("h-majority", 5),
        ("undecided-state", None),
        ("median-rule", None),
    ])
    def test_population_is_conserved(self, rule, sample_size, noise,
                                     initial_state):
        result = run_counts(rule, sample_size, noise, initial_state, 0,
                            NUM_TRIALS, max_rounds=10,
                            stop_at_consensus=False)
        totals = result.final_states.opinionated_counts()
        assert np.all(totals <= NUM_NODES)
        assert np.all(result.final_states.counts >= 0)
        if rule != "undecided-state":
            # Only the undecided-state rule can demote opinionated nodes;
            # the others preserve full opinionation once reached.
            assert np.all(totals == NUM_NODES)

    @pytest.mark.parametrize("rule,sample_size", [
        ("voter", None),
        ("3-majority", None),
        ("h-majority", 5),
        ("undecided-state", None),
        ("median-rule", None),
    ])
    def test_noise_free_consensus_is_absorbing(self, rule, sample_size):
        consensus = CountsState([NUM_NODES, 0, 0], NUM_NODES)
        result = run_counts(rule, sample_size, identity_matrix(3),
                            consensus, 0, 3, max_rounds=3)
        assert result.success_rate == 1.0
        assert np.all(result.rounds_executed == 1)

    def test_noise_free_three_majority_succeeds_from_bias(self, initial_state):
        result = run_counts("3-majority", None, identity_matrix(3),
                            initial_state, 0, 8, max_rounds=200)
        assert result.success_rate == 1.0
        assert np.all(result.rounds_executed < 200)

    def test_all_undecided_voter_adopts_nothing(self, noise):
        empty = CountsState([0, 0, 0], NUM_NODES)
        result = run_counts("voter", None, noise, empty, 0, 2, max_rounds=2,
                            target_opinion=0, stop_at_consensus=False)
        assert np.all(result.final_states.counts == 0)


class TestReproducibility:
    @pytest.mark.parametrize("rule,sample_size", [
        ("voter", None),
        ("3-majority", None),
        ("undecided-state", None),
        ("median-rule", None),
    ])
    def test_batch_matches_batch_size_one_runs(self, rule, sample_size,
                                               noise, initial_state):
        """With per-trial sources, a counts batch is bitwise identical to
        batch-size-1 counts runs with the same sources."""
        seeds = [101, 102, 103]
        batched = make_counts_dynamics(
            rule, NUM_NODES, noise,
            [np.random.default_rng(seed) for seed in seeds],
            sample_size=sample_size,
        ).run(initial_state, 12, len(seeds), target_opinion=1)
        for trial, seed in enumerate(seeds):
            single = make_counts_dynamics(
                rule, NUM_NODES, noise, [np.random.default_rng(seed)],
                sample_size=sample_size,
            ).run(initial_state, 12, 1, target_opinion=1)
            assert np.array_equal(
                batched.final_states.counts[trial],
                single.final_states.counts[0],
            )
            assert batched.rounds_executed[trial] == single.rounds_executed[0]

    def test_reproducible_with_fixed_seed(self, noise, initial_state):
        first = run_counts("median-rule", None, noise, initial_state, 7, 4)
        second = run_counts("median-rule", None, noise, initial_state, 7, 4)
        assert np.array_equal(
            first.final_states.counts, second.final_states.counts
        )

    def test_int_seed_spawns_stable_per_trial_streams(self, noise,
                                                      initial_state):
        small = run_counts("3-majority", None, noise, initial_state, 9, 2)
        large = run_counts("3-majority", None, noise, initial_state, 9, 4)
        assert np.array_equal(
            small.final_states.counts, large.final_states.counts[:2]
        )


class TestRegistryAndApi:
    def test_all_rules_construct(self, noise):
        for rule in DYNAMICS_RULES:
            sample_size = 5 if rule == "h-majority" else None
            dynamic = make_counts_dynamics(
                rule, NUM_NODES, noise, 0, sample_size=sample_size
            )
            assert dynamic.num_opinions == 3

    def test_rejects_unknown_rule(self, noise):
        with pytest.raises(ValueError):
            make_counts_dynamics("gossip", NUM_NODES, noise)

    def test_h_majority_requires_sample_size(self, noise):
        with pytest.raises(ValueError):
            make_counts_dynamics("h-majority", NUM_NODES, noise)

    def test_intractable_vote_table_rejected_eagerly(self, noise):
        with pytest.raises(ValueError, match="intractable"):
            EnsembleCountsHMajorityDynamics(NUM_NODES, noise, 500)

    def test_result_shapes_and_types(self, noise, initial_state):
        result = run_counts("voter", None, noise, initial_state, 0, 5,
                            max_rounds=10, stop_at_consensus=False)
        assert isinstance(result, CountsDynamicsResult)
        assert result.num_trials == 5
        assert result.successes.shape == (5,)
        assert result.converged.shape == (5,)
        assert result.consensus_opinions.dtype == np.int64
        assert result.rounds_executed.shape == (5,)
        assert result.final_biases.shape == (5,)
        assert result.bias_history.shape == (10, 5)
        assert 0.0 <= result.success_rate <= 1.0
        assert result.convergence_rate >= result.success_rate
        summary = result.summary()
        assert summary["num_trials"] == 5
        assert summary["target_opinion"] == 1

    def test_accepts_all_state_types(self, noise, initial_state):
        dynamic = EnsembleCountsThreeMajorityDynamics(NUM_NODES, noise, 0)
        counts_single = CountsState.from_state(initial_state)
        counts_batch = EnsembleCountsState.from_counts_state(counts_single, 3)
        for initial, trials in [
            (initial_state, 3),
            (counts_single, 3),
            (counts_batch, None),
        ]:
            result = dynamic.run(initial, 5, trials, target_opinion=1,
                                 stop_at_consensus=False)
            assert result.num_trials == 3

    def test_state_size_mismatch_rejected(self, noise):
        dynamic = EnsembleCountsThreeMajorityDynamics(NUM_NODES, noise, 0)
        with pytest.raises(ValueError):
            dynamic.run(CountsState([1, 0, 0], NUM_NODES + 1), 5, 2)

    def test_billion_node_run_is_instant(self, noise):
        """The point of the tier: n = 10^9 costs the same as n = 10^3."""
        giant = CountsState(
            np.array([550_000_000, 250_000_000, 200_000_000]), 10**9
        )
        dynamic = EnsembleCountsThreeMajorityDynamics(10**9, noise, 0)
        result = dynamic.run(giant, 20, 4, target_opinion=1,
                             stop_at_consensus=False)
        assert result.num_trials == 4
        assert np.all(
            result.final_states.opinionated_counts() == 10**9
        )
