"""Tests for repro.dynamics.h_majority."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import PopulationState
from repro.dynamics.h_majority import HMajorityDynamics, ThreeMajorityDynamics
from repro.experiments.workloads import biased_population
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestThreeMajority:
    def test_name(self, identity3, rng):
        assert ThreeMajorityDynamics(10, identity3, rng).name == "3-majority"
        assert ThreeMajorityDynamics(10, identity3, rng).sample_size == 3

    def test_converges_quickly_without_noise(self, identity3, rng):
        dynamic = ThreeMajorityDynamics(800, identity3, rng)
        initial = biased_population(800, 3, 0.2, random_state=rng)
        result = dynamic.run(initial, 200, target_opinion=1)
        assert result.converged
        assert result.success
        assert result.rounds_executed < 60

    def test_consensus_is_absorbing(self, identity3, rng):
        dynamic = ThreeMajorityDynamics(100, identity3, rng)
        initial = PopulationState.from_counts(100, {2: 100}, 3, rng)
        result = dynamic.run(initial, 10, stop_at_consensus=False)
        assert result.final_state.has_consensus_on(2)

    def test_noise_prevents_stable_consensus_on_plurality(self, rng):
        # Under constant per-observation noise and a small initial bias, the
        # 3-majority dynamics lose most of the bias: the noisy channel keeps
        # re-injecting minority opinions.  We check that the final bias does
        # not approach 1 within the paper-protocol round budget.
        noise = uniform_noise_matrix(3, 0.2)
        dynamic = ThreeMajorityDynamics(1000, noise, rng)
        initial = biased_population(1000, 3, 0.1, random_state=rng)
        result = dynamic.run(initial, 120, target_opinion=1, stop_at_consensus=False)
        assert result.final_state.bias_toward(1) < 0.8


class TestHMajority:
    def test_sample_size_validation(self, identity3, rng):
        with pytest.raises(ValueError):
            HMajorityDynamics(10, identity3, 0, rng)

    def test_name_reflects_h(self, identity3, rng):
        assert HMajorityDynamics(10, identity3, 7, rng).name == "7-majority"

    def test_larger_h_converges_at_least_as_fast(self, identity3):
        rounds = {}
        for h in (3, 9):
            rng = np.random.default_rng(0)
            dynamic = HMajorityDynamics(600, identity3, h, rng)
            initial = biased_population(600, 3, 0.15, random_state=0)
            result = dynamic.run(initial, 300, target_opinion=1)
            assert result.success
            rounds[h] = result.rounds_executed
        assert rounds[9] <= rounds[3] + 2

    def test_h_one_behaves_like_voter(self, identity3, rng):
        # h = 1 copies a single observation; consensus is slow, so after a few
        # rounds the population should still be mixed.
        dynamic = HMajorityDynamics(500, identity3, 1, rng)
        initial = biased_population(500, 3, 0.1, random_state=rng)
        result = dynamic.run(initial, 10, stop_at_consensus=False)
        assert not result.converged

    def test_undecided_nodes_get_absorbed(self, identity3, rng):
        dynamic = ThreeMajorityDynamics(300, identity3, rng)
        initial = PopulationState.from_counts(300, {1: 100, 2: 50}, 3, rng)
        result = dynamic.run(initial, 100)
        assert result.final_state.opinionated_fraction() == pytest.approx(1.0)

    def test_step_keeps_opinions_in_range(self, uniform3, rng):
        dynamic = HMajorityDynamics(100, uniform3, 5, rng)
        state = biased_population(100, 3, 0.2, random_state=rng)
        for _ in range(5):
            dynamic.step(state)
        assert state.opinions.min() >= 0
        assert state.opinions.max() <= 3
