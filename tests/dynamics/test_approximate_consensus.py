"""Unit tests for the approximate-consensus baseline (all three tiers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import CountsState, PopulationState
from repro.dynamics.approximate_consensus import (
    ApproximateConsensusDynamics,
    EnsembleApproximateConsensusDynamics,
    EnsembleCountsApproximateConsensusDynamics,
    byzantine_fault_tolerance,
    interval_midpoint_law,
    phase_budget,
)
from repro.noise.families import uniform_noise_matrix
from repro.noise.matrix import NoiseMatrix


def identity_noise(num_opinions: int) -> NoiseMatrix:
    return NoiseMatrix(np.eye(num_opinions))


class TestParameters:
    def test_fault_tolerance_satisfies_n_over_3(self):
        for num_nodes in (1, 3, 4, 60, 100):
            fault_tolerance = byzantine_fault_tolerance(num_nodes)
            assert num_nodes > 3 * fault_tolerance
            assert num_nodes > 2 * fault_tolerance

    def test_phase_budget_grows_with_precision(self):
        loose = phase_budget(60, 4, 0.4)
        tight = phase_budget(60, 4, 0.01)
        assert tight > loose >= 1

    def test_phase_budget_floors_at_one_without_faults(self):
        assert phase_budget(3, 5, 0.01) == 1

    def test_epsilon_outside_unit_interval_rejected(self):
        noise = identity_noise(2)
        with pytest.raises(ValueError, match="epsilon"):
            ApproximateConsensusDynamics(10, noise, 0, epsilon=1.5)


class TestMidpointLaw:
    def test_consensus_input_is_absorbing(self):
        noise = identity_noise(3)
        law, has_mass = interval_midpoint_law(
            np.array([[0, 12, 0]]), 12, noise, 9
        )
        assert has_mass[0]
        assert np.allclose(law, [[0.0, 1.0, 0.0]])

    def test_all_undecided_row_is_masked(self):
        noise = identity_noise(3)
        law, has_mass = interval_midpoint_law(
            np.array([[0, 0, 0]]), 12, noise, 9
        )
        assert not has_mass[0]

    def test_two_opinions_midpoint_rounds_half_up(self):
        # Both extremes present almost surely => midpoint (1+2+1)//2 = 2.
        noise = identity_noise(2)
        law, _ = interval_midpoint_law(
            np.array([[500, 500]]), 1000, noise, 900
        )
        assert law[0, 1] > 0.99

    def test_law_is_a_distribution(self):
        noise = uniform_noise_matrix(4, 0.3)
        counts = np.array([[10, 0, 5, 3], [2, 2, 2, 2]])
        law, has_mass = interval_midpoint_law(counts, 20, noise, 14)
        assert has_mass.all()
        assert np.allclose(law.sum(axis=1), 1.0)
        assert (law >= 0).all()


class TestTierRuns:
    NOISE = uniform_noise_matrix(3, 0.3)

    def test_sequential_fully_opinionates_and_terminates(self):
        dynamics = ApproximateConsensusDynamics(30, self.NOISE, 0, epsilon=0.2)
        initial = PopulationState.from_counts(
            30, {1: 10, 2: 10}, 3, random_state=0
        )
        result = dynamics.run(
            initial, 40, target_opinion=1, stop_at_consensus=False
        )
        assert (result.final_state.opinions > 0).all()

    def test_phase_budget_freezes_the_state(self):
        dynamics = ApproximateConsensusDynamics(30, self.NOISE, 0, epsilon=0.2)
        initial = PopulationState.from_counts(
            30, {1: 10, 2: 10}, 3, random_state=0
        )
        first = dynamics.run(
            initial, dynamics.phase_budget, target_opinion=1,
            stop_at_consensus=False,
        )
        frozen = ApproximateConsensusDynamics(
            30, self.NOISE, 0, epsilon=0.2
        ).run(
            initial, dynamics.phase_budget + 25, target_opinion=1,
            stop_at_consensus=False,
        )
        assert np.array_equal(
            np.sort(first.final_state.opinions),
            np.sort(frozen.final_state.opinions),
        )

    def test_counts_tier_reaches_consensus_without_noise(self):
        dynamics = EnsembleCountsApproximateConsensusDynamics(
            31, identity_noise(2), 3, epsilon=0.2
        )
        result = dynamics.run(
            CountsState(np.array([15, 16]), 31), 20, 50,
            target_opinion=1, stop_at_consensus=False,
        )
        assert result.convergence_rate == 1.0

    def test_counts_run_is_repeatable(self):
        def run():
            return EnsembleCountsApproximateConsensusDynamics(
                30, self.NOISE, 5, epsilon=0.2
            ).run(
                CountsState(np.array([10, 10, 0]), 30), 20, 16,
                target_opinion=1, stop_at_consensus=False,
            )

        first, second = run(), run()
        assert np.array_equal(first.final_states.counts,
                              second.final_states.counts)

    def test_batched_trials_match_batch_of_one(self):
        initial = PopulationState.from_counts(
            24, {1: 8, 2: 8}, 3, random_state=0
        )
        from repro.utils.rng import spawn_generators

        batch = EnsembleApproximateConsensusDynamics(
            24, self.NOISE, None, epsilon=0.2
        )
        batch._random_state = spawn_generators(4, 12)
        batched = batch.run(
            initial, 15, 4, target_opinion=1, stop_at_consensus=False
        )
        for trial in range(4):
            single = EnsembleApproximateConsensusDynamics(
                24, self.NOISE, None, epsilon=0.2
            )
            single._random_state = [spawn_generators(4, 12)[trial]]
            lone = single.run(
                initial, 15, 1, target_opinion=1, stop_at_consensus=False
            )
            assert np.array_equal(
                lone.final_states.opinions[0], batched.final_states.opinions[trial]
            ), f"trial {trial} diverges from its batch-of-one run"
