"""Tests for repro.dynamics.voter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import PopulationState
from repro.dynamics.voter import VoterDynamics
from repro.experiments.workloads import biased_population
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestVoterDynamics:
    def test_consensus_is_absorbing_without_noise(self, identity3, rng):
        dynamic = VoterDynamics(100, identity3, rng)
        state = PopulationState.from_counts(100, {1: 100}, 3, rng)
        dynamic.step(state)
        assert state.has_consensus_on(1)

    def test_noise_breaks_absorbing_consensus(self, rng):
        noise = uniform_noise_matrix(3, 0.2)
        dynamic = VoterDynamics(300, noise, rng)
        state = PopulationState.from_counts(300, {1: 300}, 3, rng)
        dynamic.step(state)
        assert not state.has_consensus_on(1)

    def test_no_amplification_of_small_bias(self, identity3, rng):
        # The voter model drifts: after a handful of rounds the small initial
        # bias is essentially unchanged in expectation, so full consensus on
        # the plurality within few rounds would be extraordinary.
        dynamic = VoterDynamics(2000, identity3, rng)
        initial = biased_population(2000, 3, 0.05, random_state=rng)
        result = dynamic.run(initial, 20, stop_at_consensus=False)
        assert not result.converged
        assert abs(result.final_state.bias_toward(1) - 0.05) < 0.2

    def test_undecided_observers_keep_state_when_target_undecided(self, identity3, rng):
        dynamic = VoterDynamics(50, identity3, rng)
        state = PopulationState.all_undecided(50, 3)
        dynamic.step(state)
        assert state.opinionated_count() == 0

    def test_opinion_mass_conserved_in_expectation(self, identity3):
        rng = np.random.default_rng(0)
        dynamic = VoterDynamics(3000, identity3, rng)
        state = PopulationState.from_counts(3000, {1: 1800, 2: 1200}, 3, rng)
        dynamic.step(state)
        fraction_one = state.opinion_counts()[0] / 3000
        assert fraction_one == pytest.approx(0.6, abs=0.03)

    def test_step_keeps_opinions_in_range(self, uniform3, rng):
        dynamic = VoterDynamics(100, uniform3, rng)
        state = biased_population(100, 3, 0.2, random_state=rng)
        for _ in range(10):
            dynamic.step(state)
        assert state.opinions.min() >= 0
        assert state.opinions.max() <= 3
