"""Property-based tests for :class:`repro.sim.Scenario`.

Hypothesis generates random *valid* scenarios across the full
workload x engine x knob space and asserts the serialization contract
(``to_dict``/``from_dict`` is an exact identity and the dictionary is
plain JSON), then perturbs valid scenarios into every documented
rejection path and asserts the validation fires with an option-naming
message.  The example-based suite in ``test_scenario.py`` pins the
individual messages; this suite pins the *closure* of the contract under
random combinations.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamics import DYNAMICS_RULES
from repro.faults import FAULT_KINDS, FaultModel
from repro.network.delivery import DELIVERY_PROCESSES
from repro.noise.families import uniform_noise_matrix
from repro.sim import Scenario
from repro.sim.scenario import ENGINE_POLICIES, TOPOLOGIES, WORKLOADS

# Keep k and sample_size inside the closed-form maj() table budget so
# h-majority combinations stay valid on every engine policy.
OPINIONS = st.integers(min_value=2, max_value=5)
SEEDS = st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1))


@st.composite
def fault_models(draw, engine: str) -> FaultModel:
    """A valid :class:`FaultModel` for a scenario running on ``engine``.

    The adaptive adversary on the counts-capable policies must keep the
    degradation fallback enabled to stay a *valid* combination (the
    rejection of the disabled fallback is pinned separately).
    """
    kind = draw(st.sampled_from(FAULT_KINDS))
    knobs = {
        "kind": kind,
        # Capped below 1/2 so at least one honest node always survives
        # the rounded split at every population size.
        "fraction": draw(
            st.floats(min_value=0.05, max_value=0.45, allow_nan=False)
        ),
    }
    if kind == "crash":
        knobs["crash_round"] = draw(st.integers(min_value=0, max_value=30))
    if kind == "omission":
        knobs["drop_rate"] = draw(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
        )
    if kind == "adaptive" and engine in ("counts", "auto"):
        knobs["allow_degradation"] = True
    else:
        knobs["allow_degradation"] = draw(st.booleans())
    return FaultModel(**knobs)


@st.composite
def valid_scenarios(draw) -> Scenario:
    workload = draw(st.sampled_from(WORKLOADS))
    num_opinions = draw(OPINIONS)
    num_nodes = draw(st.integers(min_value=num_opinions, max_value=3000))
    engine = draw(st.sampled_from(ENGINE_POLICIES))
    # The canonical channel needs eps <= 1 - 1/k for non-negative entries.
    epsilon = draw(
        st.floats(
            min_value=0.05,
            max_value=1.0 - 1.0 / num_opinions - 0.01,
            allow_nan=False,
        )
    )

    knobs = {
        "workload": workload,
        "num_nodes": num_nodes,
        "num_opinions": num_opinions,
        "epsilon": epsilon,
        "engine": engine,
        "num_trials": draw(st.integers(min_value=1, max_value=8)),
        "seed": draw(SEEDS),
        "correct_opinion": draw(
            st.integers(min_value=1, max_value=num_opinions)
        ),
        "bias": draw(st.floats(min_value=0.0, max_value=0.9, allow_nan=False)),
        "record_trajectories": draw(st.booleans()),
    }
    if draw(st.booleans()):
        knobs["noise"] = uniform_noise_matrix(num_opinions, epsilon)
    if engine == "auto" and draw(st.booleans()):
        knobs["counts_threshold"] = draw(
            st.integers(min_value=1, max_value=5000)
        )

    if workload == "dynamics":
        rules = DYNAMICS_RULES
        if engine == "analytic":
            # The phase-tagged approximate-consensus rule has no analytic
            # kernel; the pair is a documented rejection, not a scenario.
            rules = tuple(
                rule for rule in rules if rule != "approximate-consensus"
            )
        rule = draw(st.sampled_from(rules))
        knobs["rule"] = rule
        if rule == "h-majority":
            knobs["sample_size"] = draw(st.integers(min_value=3, max_value=20))
        knobs["max_rounds"] = draw(st.integers(min_value=1, max_value=500))
        knobs["stop_at_consensus"] = draw(st.booleans())
    else:
        knobs["round_scale"] = draw(st.sampled_from([0.5, 1.0, 2.0]))
        if engine in ("batched", "sequential"):
            knobs["process"] = draw(st.sampled_from(DELIVERY_PROCESSES))
            if draw(st.booleans()):
                knobs["sampling_method"] = draw(
                    st.sampled_from(["without_replacement", "with_replacement"])
                )
                knobs["use_full_multiset"] = draw(st.booleans())
        if engine == "sequential" and workload != "dynamics" and draw(
            st.booleans()
        ):
            knobs["topology"] = "random_regular"
            knobs["degree"] = draw(
                st.integers(min_value=1, max_value=max(1, num_nodes - 1))
            )
        if (
            engine != "analytic"
            and knobs.get("process", "push") == "push"
            and "topology" not in knobs
            and draw(st.booleans())
        ):
            knobs["faults"] = draw(fault_models(engine))

    if workload in ("plurality", "dynamics"):
        if draw(st.booleans()):
            knobs["support_size"] = draw(
                st.integers(min_value=1, max_value=num_nodes)
            )
        if draw(st.booleans()):
            raw = draw(
                st.lists(
                    st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
                    min_size=num_opinions,
                    max_size=num_opinions,
                )
            )
            total = sum(raw)
            knobs["shares"] = tuple(value / total for value in raw)
    return Scenario(**knobs)


class TestRoundTripProperties:
    @settings(max_examples=80, deadline=None)
    @given(scenario=valid_scenarios())
    def test_to_dict_from_dict_is_identity(self, scenario):
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    @settings(max_examples=80, deadline=None)
    @given(scenario=valid_scenarios())
    def test_to_dict_is_plain_json(self, scenario):
        document = scenario.to_dict()
        restored = Scenario.from_dict(json.loads(json.dumps(document)))
        # JSON forces tuples into lists; equality must survive the trip.
        assert restored == scenario

    @settings(max_examples=40, deadline=None)
    @given(scenario=valid_scenarios(), extra=st.text(min_size=1, max_size=12))
    def test_from_dict_rejects_unknown_fields(self, scenario, extra):
        document = scenario.to_dict()
        if extra in document:
            return
        document[extra] = 1
        with pytest.raises(ValueError, match="unknown scenario fields"):
            Scenario.from_dict(document)


class TestOptionNamingProperties:
    """Every bad option name is rejected with the supported options named."""

    @settings(max_examples=40, deadline=None)
    @given(scenario=valid_scenarios(), bogus=st.text(min_size=1, max_size=12))
    def test_bad_workload_names_the_options(self, scenario, bogus):
        if bogus in WORKLOADS:
            return
        document = {**scenario.to_dict(), "workload": bogus}
        document.update(
            rule=None, sample_size=None, max_rounds=300,
            stop_at_consensus=True, process="push", round_scale=1.0,
        )
        with pytest.raises(ValueError, match="workload must be one of"):
            Scenario.from_dict(document)

    @settings(max_examples=40, deadline=None)
    @given(scenario=valid_scenarios(), bogus=st.text(min_size=1, max_size=12))
    def test_bad_engine_names_the_options(self, scenario, bogus):
        if bogus in ENGINE_POLICIES:
            return
        with pytest.raises(ValueError, match="engine must be one of"):
            Scenario.from_dict({**scenario.to_dict(), "engine": bogus})

    @settings(max_examples=40, deadline=None)
    @given(scenario=valid_scenarios(), bogus=st.text(min_size=1, max_size=12))
    def test_bad_topology_names_the_options(self, scenario, bogus):
        if bogus in TOPOLOGIES:
            return
        with pytest.raises(ValueError, match="topology must be one of"):
            Scenario.from_dict({**scenario.to_dict(), "topology": bogus})


class TestCrossWorkloadKnobRejection:
    """Knobs of one workload family are rejected on the other."""

    @settings(max_examples=40, deadline=None)
    @given(scenario=valid_scenarios(), rule=st.sampled_from(DYNAMICS_RULES))
    def test_rule_is_rejected_on_protocol_workloads(self, scenario, rule):
        if scenario.workload == "dynamics":
            return
        with pytest.raises(ValueError, match="rule only applies"):
            Scenario.from_dict({**scenario.to_dict(), "rule": rule})

    @settings(max_examples=40, deadline=None)
    @given(
        scenario=valid_scenarios(),
        max_rounds=st.integers(min_value=1, max_value=500).filter(
            lambda value: value != 300
        ),
    )
    def test_max_rounds_is_rejected_on_protocol_workloads(
        self, scenario, max_rounds
    ):
        if scenario.workload == "dynamics":
            return
        with pytest.raises(ValueError, match="max_rounds only applies"):
            Scenario.from_dict({**scenario.to_dict(), "max_rounds": max_rounds})

    @settings(max_examples=40, deadline=None)
    @given(
        scenario=valid_scenarios(),
        process=st.sampled_from(DELIVERY_PROCESSES).filter(
            lambda name: name != "push"
        ),
    )
    def test_process_is_rejected_on_dynamics(self, scenario, process):
        if scenario.workload != "dynamics":
            return
        with pytest.raises(ValueError, match="process only applies"):
            Scenario.from_dict({**scenario.to_dict(), "process": process})

    @settings(max_examples=40, deadline=None)
    @given(
        scenario=valid_scenarios(),
        round_scale=st.sampled_from([0.5, 2.0, 3.0]),
    )
    def test_round_scale_is_rejected_on_dynamics(self, scenario, round_scale):
        if scenario.workload != "dynamics":
            return
        with pytest.raises(ValueError, match="round_scale only applies"):
            Scenario.from_dict(
                {**scenario.to_dict(), "round_scale": round_scale}
            )

    @settings(max_examples=40, deadline=None)
    @given(scenario=valid_scenarios(), kind=st.sampled_from(FAULT_KINDS))
    def test_faults_are_rejected_on_dynamics(self, scenario, kind):
        if scenario.workload != "dynamics":
            return
        document = {
            **scenario.to_dict(),
            "faults": {"kind": kind, "fraction": 0.1},
        }
        with pytest.raises(ValueError, match="faults only apply"):
            Scenario.from_dict(document)

    @settings(max_examples=40, deadline=None)
    @given(
        scenario=valid_scenarios(),
        support=st.integers(min_value=1, max_value=100),
    )
    def test_support_size_is_rejected_on_rumor(self, scenario, support):
        if scenario.workload != "rumor":
            return
        with pytest.raises(ValueError, match="support_size only applies"):
            Scenario.from_dict({**scenario.to_dict(), "support_size": support})


class TestEngineKnobRejection:
    @settings(max_examples=40, deadline=None)
    @given(
        scenario=valid_scenarios(),
        engine=st.sampled_from(["counts", "auto", "analytic"]),
    )
    def test_ablations_are_rejected_off_the_sampling_engines(
        self, scenario, engine
    ):
        if scenario.workload == "dynamics":
            return
        document = {
            **scenario.to_dict(),
            "engine": engine,
            "use_full_multiset": True,
            "topology": "complete",
            "degree": None,
        }
        document.pop("counts_threshold", None)
        with pytest.raises(ValueError, match="sampling ablations"):
            Scenario.from_dict(document)

    @settings(max_examples=40, deadline=None)
    @given(
        scenario=valid_scenarios(),
        engine=st.sampled_from(["counts", "auto"]),
    )
    def test_adaptive_without_degradation_is_rejected_on_counts(
        self, scenario, engine
    ):
        if scenario.workload == "dynamics":
            return
        document = {
            **scenario.to_dict(),
            "engine": engine,
            "faults": {
                "kind": "adaptive",
                "fraction": 0.1,
                "allow_degradation": False,
            },
        }
        document.update(
            sampling_method="without_replacement", use_full_multiset=False,
            topology="complete", degree=None, process="push",
        )
        if engine != "auto":
            document.pop("counts_threshold", None)
        with pytest.raises(ValueError, match="allow_degradation"):
            Scenario.from_dict(document)

    @settings(max_examples=40, deadline=None)
    @given(
        scenario=valid_scenarios(),
        engine=st.sampled_from(
            ["sequential", "batched", "counts", "analytic"]
        ),
        threshold=st.integers(min_value=1, max_value=1000),
    )
    def test_counts_threshold_requires_auto(self, scenario, engine, threshold):
        document = {
            **scenario.to_dict(),
            "engine": engine,
            "counts_threshold": threshold,
        }
        document.update(
            sampling_method="without_replacement",
            use_full_multiset=False,
            topology="complete",
            degree=None,
        )
        with pytest.raises(ValueError, match="counts_threshold only applies"):
            Scenario.from_dict(document)
