"""Tests for simulate() — legacy equivalence, provenance, JSON, shims."""

from __future__ import annotations

import json
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.experiments.orchestrator import ResultStore
from repro.experiments.runner import (
    dynamics_trial_outcomes,
    protocol_trial_outcomes,
)
from repro.sim import (
    ENGINE_REGISTRY,
    Scenario,
    SimulationResult,
    sim_code_version,
    simulate,
)

SEED = 13
TRIALS = 4


def protocol_scenario(workload: str, engine: str) -> Scenario:
    knobs = dict(
        workload=workload,
        num_nodes=300,
        num_opinions=3,
        epsilon=0.35,
        engine=engine,
        num_trials=TRIALS,
        seed=SEED,
    )
    if workload == "plurality":
        knobs.update(support_size=120, bias=0.4)
    return Scenario(**knobs)


def dynamics_scenario(engine: str, **overrides) -> Scenario:
    knobs = dict(
        workload="dynamics",
        rule="3-majority",
        num_nodes=300,
        num_opinions=3,
        epsilon=0.66,
        bias=0.3,
        max_rounds=120,
        engine=engine,
        num_trials=TRIALS,
        seed=SEED,
    )
    knobs.update(overrides)
    return Scenario(**knobs)


class TestLegacyEquivalence:
    """simulate() is bitwise identical to the legacy entry points.

    The legacy path for each pair is the engine-aware trial helper the
    experiments always used (`protocol_trial_outcomes` /
    `dynamics_trial_outcomes`), fed the same materialized initial state,
    the same seed and the same target — the exact call sites the facade
    supersedes.
    """

    @pytest.mark.parametrize("workload", ["rumor", "plurality"])
    @pytest.mark.parametrize("engine", ["sequential", "batched", "counts"])
    def test_protocol_workloads_match_trial_outcomes(self, workload, engine):
        scenario = protocol_scenario(workload, engine)
        result = simulate(scenario)
        legacy = protocol_trial_outcomes(
            scenario.initial_state(),
            scenario.build_noise(),
            scenario.epsilon,
            scenario.num_trials,
            scenario.seed,
            target_opinion=scenario.target_opinion(),
            trial_engine=engine,
        )
        assert result.engine == engine
        assert result.num_trials == len(legacy)
        for trial, outcome in enumerate(legacy):
            assert bool(result.successes[trial]) == outcome.success
            assert int(result.rounds[trial]) == outcome.total_rounds
            # Bitwise float equality — same engines, same draws.
            assert float(result.final_biases[trial]) == outcome.final_bias
            assert (
                float(result.bias_after_stage1[trial])
                == outcome.bias_after_stage1
            )
        assert result.stage1_rounds == legacy[0].stage1_rounds

    @pytest.mark.parametrize(
        "engine", ["sequential", "batched", "counts"]
    )
    @pytest.mark.parametrize(
        "rule,sample_size",
        [("3-majority", None), ("voter", None), ("h-majority", 5)],
    )
    def test_dynamics_workload_matches_trial_outcomes(
        self, engine, rule, sample_size
    ):
        scenario = dynamics_scenario(engine, rule=rule, sample_size=sample_size)
        result = simulate(scenario)
        legacy = dynamics_trial_outcomes(
            scenario.initial_state(),
            scenario.build_noise(),
            rule,
            scenario.max_rounds,
            scenario.num_trials,
            scenario.seed,
            sample_size=sample_size,
            target_opinion=scenario.target_opinion(),
            trial_engine=engine,
        )
        assert result.engine == engine
        for trial, outcome in enumerate(legacy):
            assert bool(result.successes[trial]) == outcome.success
            assert bool(result.converged[trial]) == outcome.converged
            assert int(result.rounds[trial]) == outcome.rounds_executed
            assert (
                int(result.consensus_opinions[trial])
                == outcome.consensus_opinion
            )
            assert float(result.final_biases[trial]) == outcome.final_bias

    def test_every_workload_engine_pair_is_registered(self):
        pairs = set(ENGINE_REGISTRY.pairs())
        for workload in ("rumor", "plurality", "dynamics"):
            for engine in ("sequential", "batched", "counts"):
                assert (workload, engine) in pairs


class TestAutoPolicy:
    def test_auto_resolves_by_population_size(self):
        small = simulate(
            protocol_scenario("rumor", "auto")
        )
        assert small.engine == "batched"
        assert small.provenance["engine_policy"] == "auto"

        big = simulate(
            Scenario(
                workload="rumor", num_nodes=300, num_opinions=3,
                epsilon=0.35, engine="auto", counts_threshold=300,
                num_trials=TRIALS, seed=SEED,
            )
        )
        assert big.engine == "counts"

    def test_auto_degrades_intractable_counts_h_majority_to_batched(self):
        result = simulate(
            dynamics_scenario(
                "auto",
                rule="h-majority",
                sample_size=256,
                counts_threshold=100,
                max_rounds=5,
                num_nodes=150,
            )
        )
        assert result.engine == "batched"


class TestProvenanceAndJson:
    def test_provenance_is_self_describing(self):
        scenario = protocol_scenario("rumor", "batched")
        result = simulate(scenario)
        provenance = result.provenance
        assert provenance["workload"] == "rumor"
        assert provenance["engine"] == "batched"
        assert provenance["seed"] == SEED
        assert provenance["code_version"] == sim_code_version()
        assert provenance["wall_time_seconds"] > 0
        assert Scenario.from_dict(provenance["scenario"]) == scenario

    def test_counts_runs_expose_vote_law_cache_counters(self):
        result = simulate(protocol_scenario("rumor", "counts"))
        counters = result.provenance["vote_law_cache"]
        assert {
            "law_hits", "law_misses", "law_entries",
            "table_hits", "table_misses", "table_entries",
            "dense_table_hits", "dense_table_misses", "dense_table_entries",
        } <= set(counters)
        # Deltas for this run: a protocol run builds at least one law.
        assert all(value >= 0 for value in counters.values())
        assert counters["law_hits"] + counters["law_misses"] > 0

    def test_non_counts_runs_have_no_cache_counters(self):
        result = simulate(protocol_scenario("rumor", "batched"))
        assert "vote_law_cache" not in result.provenance

    def test_json_round_trip_is_exact(self):
        result = simulate(dynamics_scenario("batched"))
        rebuilt = SimulationResult.from_json(result.to_json())
        np.testing.assert_array_equal(rebuilt.successes, result.successes)
        np.testing.assert_array_equal(rebuilt.converged, result.converged)
        np.testing.assert_array_equal(rebuilt.rounds, result.rounds)
        np.testing.assert_array_equal(
            rebuilt.final_biases, result.final_biases
        )
        np.testing.assert_array_equal(
            rebuilt.final_opinion_counts, result.final_opinion_counts
        )
        np.testing.assert_array_equal(
            rebuilt.trajectories, result.trajectories
        )
        assert rebuilt.provenance == json.loads(result.to_json())["provenance"]

    def test_to_json_uses_the_canonical_encoder(self):
        """Every leaf of to_json_dict() must be plain JSON-compatible."""
        result = simulate(protocol_scenario("plurality", "counts"))
        document = result.to_json_dict()
        json.dumps(document)  # would raise on stray numpy scalars

        def assert_plain(value):
            if isinstance(value, dict):
                for entry in value.values():
                    assert_plain(entry)
            elif isinstance(value, list):
                for entry in value:
                    assert_plain(entry)
            else:
                assert value is None or isinstance(
                    value, (bool, int, float, str)
                )
                assert not isinstance(value, np.generic)

        assert_plain(document)


class TestResultStoreStability:
    """Orchestrator ResultStore payloads with facade provenance stay
    content-key stable (the satellite regression)."""

    def test_store_key_survives_json_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        scenario = protocol_scenario("rumor", "counts")
        result = simulate(scenario)
        identity = {
            "kind": "simulation",
            "scenario": scenario.to_dict(),
            "engine": result.engine,
            "code_version": result.provenance["code_version"],
        }
        key = store.key_of(identity)
        # The canonical key must be invariant under JSON normalization —
        # the property that makes resume semantics trustworthy.
        assert key == store.key_of(json.loads(json.dumps(identity)))

        store.store("simulation", identity, result.to_json_dict())
        payload = store.fetch("simulation", identity)
        assert payload is not None
        rebuilt = SimulationResult.from_json(payload)
        np.testing.assert_array_equal(rebuilt.successes, result.successes)
        assert (
            rebuilt.provenance["code_version"]
            == result.provenance["code_version"]
        )
        # Storing the fetched payload again maps to the same artifact.
        assert key == store.key_of(json.loads(json.dumps(identity)))


class TestDeprecationShims:
    def test_legacy_factories_warn_and_build_identical_engines(self, uniform3):
        from repro.dynamics import (
            make_counts_dynamics,
            make_dynamics,
            make_ensemble_dynamics,
        )
        from repro.sim import build_dynamics

        with pytest.warns(DeprecationWarning, match="build_dynamics"):
            legacy = make_dynamics("voter", 50, uniform3, 0)
        assert type(legacy) is type(
            build_dynamics("sequential", "voter", 50, uniform3, 0)
        )
        with pytest.warns(DeprecationWarning):
            batched = make_ensemble_dynamics("3-majority", 50, uniform3, 0)
        assert type(batched) is type(
            build_dynamics("batched", "3-majority", 50, uniform3, 0)
        )
        with pytest.warns(DeprecationWarning):
            counts = make_counts_dynamics("median-rule", 50, uniform3, 0)
        assert type(counts) is type(
            build_dynamics("counts", "median-rule", 50, uniform3, 0)
        )

    def test_make_engine_warns_and_delegates(self, uniform3):
        from repro.core.protocol import make_engine
        from repro.network.delivery import make_delivery_engine
        from repro.network.push_model import UniformPushModel

        with pytest.warns(DeprecationWarning, match="make_delivery_engine"):
            engine = make_engine("push", 10, uniform3)
        assert isinstance(engine, UniformPushModel)
        assert isinstance(
            make_delivery_engine("push", 10, uniform3), UniformPushModel
        )

    def test_plain_import_emits_no_deprecation_warning(self):
        """`import repro` must stay silent — the CI gate in miniature."""
        completed = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro",
            ],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr

    def test_shimmed_runs_stay_bitwise_reproducible(self, uniform3):
        """A seeded shim-built engine reproduces the registry-built one."""
        from repro.dynamics import make_ensemble_dynamics
        from repro.experiments.workloads import biased_population
        from repro.sim import build_dynamics

        initial = biased_population(200, 3, 0.3, random_state=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = make_ensemble_dynamics("3-majority", 200, uniform3, 9).run(
                initial, 60, 3, target_opinion=1
            )
        new = build_dynamics("batched", "3-majority", 200, uniform3, 9).run(
            initial, 60, 3, target_opinion=1
        )
        np.testing.assert_array_equal(old.successes, new.successes)
        np.testing.assert_array_equal(old.rounds_executed, new.rounds_executed)
        np.testing.assert_array_equal(old.bias_history, new.bias_history)
