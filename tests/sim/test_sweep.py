"""Tests for ``ScenarioGrid`` / ``simulate_sweep`` — grids and bitwise parity.

The sweep engine's contract is exact: ``simulate_sweep(grid)`` must return,
point for point, the *bitwise identical* results of the serial reference
loop ``[simulate(s) for s in grid.scenarios()]`` — for every swept axis,
for both counts-tier fusion paths (protocol groups and the merged
heterogeneous dynamics ensemble), and for every fallback tier the grid can
route points to.  The example-based suite here sweeps each axis the ISSUE
names across those tiers; the hypothesis suite pins the grid expansion
algebra (Cartesian product, last-axis-fastest order, flat-index round
trips, seed derivation) under random shapes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.orchestrator import ResultStore
from repro.sim import Scenario, ScenarioGrid, SweepResult, simulate, simulate_sweep
from repro.utils.rng import derive_seed

#: Every simulation-output field of SimulationResult (provenance excluded:
#: wall times and sweep bookkeeping legitimately differ between paths).
RESULT_FIELDS = (
    "successes",
    "converged",
    "rounds",
    "final_biases",
    "final_opinion_counts",
    "consensus_opinions",
    "bias_after_stage1",
    "stage1_rounds",
    "trajectories",
    "expected_bias_after_stage1",
)


def assert_results_equal(serial, fused, context: str) -> None:
    """Field-for-field bitwise comparison of two SimulationResults."""
    for name in RESULT_FIELDS:
        left, right = getattr(serial, name), getattr(fused, name)
        if left is None or right is None:
            assert left is None and right is None, f"{context}: {name} None-ness"
            continue
        assert np.array_equal(np.asarray(left), np.asarray(right)), (
            f"{context}: field {name!r} differs from the serial loop"
        )


def assert_sweep_matches_serial(grid: ScenarioGrid) -> SweepResult:
    """Run both paths over ``grid``; assert per-point bitwise equality."""
    serial_results = [simulate(scenario) for scenario in grid.scenarios()]
    sweep = simulate_sweep(grid)
    assert len(sweep) == grid.size == len(serial_results)
    for index, (serial, fused) in enumerate(zip(serial_results, sweep)):
        context = f"point {index} ({grid.point_overrides(index)})"
        assert_results_equal(serial, fused, context)
        # The sweep reports the same resolved engine the serial call used.
        assert sweep.engines[index] == serial.provenance["engine"], context
        assert fused.provenance["sweep"]["grid_index"] == index
        assert not sweep.from_cache[index]
    return sweep


def dynamics_base(**overrides) -> Scenario:
    knobs = dict(
        workload="dynamics",
        rule="voter",
        num_nodes=300,
        num_opinions=2,
        epsilon=0.1,
        bias=0.2,
        engine="counts",
        num_trials=3,
        max_rounds=60,
        seed=13,
    )
    knobs.update(overrides)
    return Scenario(**knobs)


def protocol_base(**overrides) -> Scenario:
    knobs = dict(
        workload="rumor",
        num_nodes=300,
        num_opinions=3,
        epsilon=0.35,
        engine="counts",
        num_trials=3,
        seed=13,
    )
    knobs.update(overrides)
    return Scenario(**knobs)


# --------------------------------------------------------------------- #
# Grid expansion algebra
# --------------------------------------------------------------------- #


class TestScenarioGrid:
    def test_last_axis_varies_fastest(self):
        grid = ScenarioGrid(
            dynamics_base(),
            {"num_nodes": (200, 400), "epsilon": (0.1, 0.2, 0.3)},
        )
        assert grid.axis_names == ("num_nodes", "epsilon")
        assert grid.shape == (2, 3)
        assert grid.size == 6
        assert grid.points() == [
            {"num_nodes": 200, "epsilon": 0.1},
            {"num_nodes": 200, "epsilon": 0.2},
            {"num_nodes": 200, "epsilon": 0.3},
            {"num_nodes": 400, "epsilon": 0.1},
            {"num_nodes": 400, "epsilon": 0.2},
            {"num_nodes": 400, "epsilon": 0.3},
        ]
        assert [grid.point_overrides(i) for i in range(6)] == grid.points()

    def test_scenarios_apply_overrides_and_derive_seeds(self):
        grid = ScenarioGrid(dynamics_base(seed=99), {"epsilon": (0.1, 0.25)})
        for index, scenario in enumerate(grid.scenarios()):
            assert scenario.epsilon == grid.point_overrides(index)["epsilon"]
            assert scenario.seed == derive_seed(99, index)
            assert scenario.seed == grid.point_seed(index)
            # Everything not swept stays the base value.
            assert scenario.num_nodes == grid.base.num_nodes
            assert scenario.rule == grid.base.rule

    def test_swept_seed_axis_is_used_verbatim(self):
        seeds = (5, 17, 123)
        grid = ScenarioGrid(dynamics_base(), {"seed": seeds})
        for index, scenario in enumerate(grid.scenarios()):
            assert scenario.seed == seeds[index]
            assert grid.point_seed(index) == seeds[index]

    def test_rejects_unknown_axis(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            ScenarioGrid(dynamics_base(), {"not_a_field": (1, 2)})

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="at least one swept field"):
            ScenarioGrid(dynamics_base(), {})
        with pytest.raises(ValueError, match="has no values"):
            ScenarioGrid(dynamics_base(), {"epsilon": ()})

    def test_index_bounds(self):
        grid = ScenarioGrid(dynamics_base(), {"epsilon": (0.1, 0.2)})
        with pytest.raises(IndexError):
            grid.point_overrides(2)
        with pytest.raises(IndexError):
            grid.point_overrides(-1)

    def test_to_dict_is_json_like(self):
        grid = ScenarioGrid(
            dynamics_base(), {"epsilon": (0.1, 0.2), "num_nodes": (200,)}
        )
        document = grid.to_dict()
        assert document["axes"] == {"epsilon": [0.1, 0.2], "num_nodes": [200]}
        assert document["base"] == grid.base.to_dict()


class TestGridProperties:
    """Hypothesis: expansion algebra under random axis shapes."""

    axes_strategy = st.dictionaries(
        st.sampled_from(["epsilon", "num_nodes", "bias", "max_rounds", "seed"]),
        st.integers(min_value=1, max_value=4),
        min_size=1,
        max_size=4,
    )

    @staticmethod
    def _build(axis_sizes) -> ScenarioGrid:
        values = {
            "epsilon": (0.1, 0.2, 0.3, 0.4),
            "num_nodes": (100, 200, 300, 400),
            "bias": (0.1, 0.15, 0.2, 0.25),
            "max_rounds": (10, 20, 30, 40),
            "seed": (7, 8, 9, 10),
        }
        return ScenarioGrid(
            dynamics_base(),
            {name: values[name][:size] for name, size in axis_sizes.items()},
        )

    @given(axes_strategy)
    @settings(max_examples=60, deadline=None)
    def test_size_is_product_of_extents(self, axis_sizes):
        grid = self._build(axis_sizes)
        assert grid.size == int(np.prod(grid.shape))
        assert len(grid.points()) == grid.size

    @given(axes_strategy)
    @settings(max_examples=60, deadline=None)
    def test_flat_index_round_trips(self, axis_sizes):
        grid = self._build(axis_sizes)
        for index in range(grid.size):
            overrides = grid.point_overrides(index)
            # Recompose the flat index from each axis's value position:
            # last axis fastest, exactly nested-loop order.
            recomposed = 0
            for name in grid.axis_names:
                position = grid.axes[name].index(overrides[name])
                recomposed = recomposed * len(grid.axes[name]) + position
            assert recomposed == index

    @given(axes_strategy)
    @settings(max_examples=60, deadline=None)
    def test_scenarios_round_trip_overrides_and_seeds(self, axis_sizes):
        grid = self._build(axis_sizes)
        scenarios = grid.scenarios()
        assert len(scenarios) == grid.size
        for index, scenario in enumerate(scenarios):
            for name, value in grid.point_overrides(index).items():
                assert getattr(scenario, name) == value
            assert scenario.seed == grid.point_seed(index)
            if "seed" not in grid.axes:
                assert scenario.seed == derive_seed(grid.base.seed, index)


# --------------------------------------------------------------------- #
# Bitwise equivalence: sweep vs. the serial simulate() loop
# --------------------------------------------------------------------- #


class TestDynamicsCountsEquivalence:
    """Every swept axis through the merged heterogeneous counts ensemble."""

    @pytest.mark.parametrize(
        "rule,sample_size",
        [
            ("voter", None),
            ("3-majority", None),
            ("h-majority", 5),
            ("undecided-state", None),
            ("median-rule", None),
        ],
    )
    def test_epsilon_axis_per_rule(self, rule, sample_size):
        grid = ScenarioGrid(
            dynamics_base(rule=rule, sample_size=sample_size),
            {"epsilon": (0.05, 0.2, 0.4)},
        )
        assert_sweep_matches_serial(grid)

    def test_rule_axis_mixes_merge_groups(self):
        # One grid spanning every rule family (h-majority aside — scenario
        # validation ties sample_size to that rule alone, so it cannot
        # share an axis with the others): the sweep partitions the grid
        # into per-family merged ensembles and must still match serially.
        grid = ScenarioGrid(
            dynamics_base(),
            {"rule": ("voter", "3-majority", "undecided-state", "median-rule")},
        )
        assert_sweep_matches_serial(grid)

    def test_sample_size_axis(self):
        grid = ScenarioGrid(
            dynamics_base(rule="h-majority", sample_size=3),
            {"sample_size": (3, 5, 7)},
        )
        assert_sweep_matches_serial(grid)

    def test_num_nodes_and_bias_axes(self):
        grid = ScenarioGrid(
            dynamics_base(),
            {"num_nodes": (200, 400), "bias": (0.1, 0.3)},
        )
        assert_sweep_matches_serial(grid)

    def test_num_opinions_axis_spans_merge_groups(self):
        grid = ScenarioGrid(
            dynamics_base(epsilon=0.2), {"num_opinions": (2, 3, 4)}
        )
        assert_sweep_matches_serial(grid)

    def test_seed_axis_verbatim(self):
        grid = ScenarioGrid(dynamics_base(), {"seed": (3, 11, 42)})
        assert_sweep_matches_serial(grid)

    def test_staggered_convergence_and_retirement(self):
        # Epsilons near the 1 - 1/k signal ceiling converge at different
        # rounds per trial and per point, exercising per-row retirement
        # and batch rebuilds inside the merged round loop.
        grid = ScenarioGrid(
            dynamics_base(
                rule="3-majority",
                epsilon=0.5,
                bias=0.3,
                num_trials=4,
                max_rounds=200,
            ),
            {"epsilon": (0.5, 0.45, 0.05)},
        )
        sweep = assert_sweep_matches_serial(grid)
        rounds = np.concatenate([result.rounds for result in sweep])
        assert len(set(rounds.tolist())) > 1, (
            "config is expected to retire trials at staggered rounds; "
            "tighten epsilons if this stops holding"
        )

    def test_mixed_stop_at_consensus_and_trajectories(self):
        base = dynamics_base(epsilon=0.5, bias=0.3, max_rounds=40)
        grid = ScenarioGrid(
            dataclasses.replace(base, stop_at_consensus=False),
            {"record_trajectories": (True, False)},
        )
        assert_sweep_matches_serial(grid)

    def test_max_rounds_axis(self):
        grid = ScenarioGrid(dynamics_base(), {"max_rounds": (10, 35, 60)})
        assert_sweep_matches_serial(grid)


class TestProtocolCountsEquivalence:
    """Protocol workloads through the fused counts-protocol batches."""

    def test_rumor_epsilon_axis(self):
        grid = ScenarioGrid(protocol_base(), {"epsilon": (0.25, 0.35, 0.45)})
        assert_sweep_matches_serial(grid)

    def test_plurality_bias_axis(self):
        grid = ScenarioGrid(
            protocol_base(workload="plurality", support_size=120, bias=0.4),
            {"bias": (0.3, 0.4, 0.5)},
        )
        assert_sweep_matches_serial(grid)

    def test_num_opinions_axis_groups_by_k(self):
        grid = ScenarioGrid(protocol_base(), {"num_opinions": (2, 3, 4)})
        assert_sweep_matches_serial(grid)

    def test_num_nodes_axis(self):
        grid = ScenarioGrid(protocol_base(), {"num_nodes": (300, 500)})
        assert_sweep_matches_serial(grid)


class TestFallbackTiers:
    """Points that cannot fuse fall back to per-point simulate()."""

    @pytest.mark.parametrize("engine", ["batched", "sequential"])
    def test_dynamics_fallback_engines(self, engine):
        grid = ScenarioGrid(
            dynamics_base(engine=engine, num_nodes=150, num_trials=2),
            {"epsilon": (0.1, 0.3)},
        )
        assert_sweep_matches_serial(grid)

    def test_protocol_batched_fallback(self):
        grid = ScenarioGrid(
            protocol_base(engine="batched", num_nodes=200, num_trials=2),
            {"epsilon": (0.3, 0.4)},
        )
        assert_sweep_matches_serial(grid)

    def test_auto_grid_straddles_tiers(self):
        # One grid whose num_nodes axis crosses the auto counts threshold:
        # some points fuse into the counts batch, the rest run batched.
        grid = ScenarioGrid(
            protocol_base(engine="auto", counts_threshold=400, num_trials=2),
            {"num_nodes": (200, 600)},
        )
        sweep = assert_sweep_matches_serial(grid)
        assert sweep.engines == ["batched", "counts"]


class TestFaultedSweep:
    """Faulted points route to the serial path and stay bitwise exact."""

    def test_faults_axis_counts_engine(self):
        from repro.faults import FaultModel

        grid = ScenarioGrid(
            protocol_base(num_nodes=200, num_trials=2),
            {
                "faults": (
                    None,
                    FaultModel(kind="liar", fraction=0.1),
                    FaultModel(kind="crash", fraction=0.1, crash_round=2),
                    FaultModel(kind="omission", fraction=0.1, drop_rate=0.4),
                )
            },
        )
        sweep = assert_sweep_matches_serial(grid)
        # The fault-free point still fuses on counts; faulted ones serial.
        assert sweep.engines == ["counts"] * 4

    def test_fraction_axis_batched_engine(self):
        from repro.faults import FaultModel

        grid = ScenarioGrid(
            protocol_base(
                workload="plurality", bias=0.4, engine="batched",
                num_nodes=150, num_trials=2,
            ),
            {
                "faults": (
                    FaultModel(kind="adaptive", fraction=0.05),
                    FaultModel(kind="adaptive", fraction=0.2),
                )
            },
        )
        assert_sweep_matches_serial(grid)

    def test_adaptive_on_counts_degrades_inside_the_sweep(self):
        from repro.faults import FaultModel

        grid = ScenarioGrid(
            protocol_base(
                num_nodes=200, num_trials=2,
                faults=FaultModel(kind="adaptive", fraction=0.1),
            ),
            {"epsilon": (0.3, 0.4)},
        )
        sweep = assert_sweep_matches_serial(grid)
        for result in sweep:
            assert "engine_degraded_reason" in result.provenance


# --------------------------------------------------------------------- #
# Result store integration
# --------------------------------------------------------------------- #


class TestSweepStore:
    def test_second_sweep_is_served_from_cache(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        grid = ScenarioGrid(dynamics_base(), {"epsilon": (0.1, 0.2, 0.3)})
        first = simulate_sweep(grid, store=store, store_label="sweep-test")
        assert first.cache_hits == 0
        second = simulate_sweep(grid, store=store, store_label="sweep-test")
        assert second.cache_hits == grid.size
        assert all(second.from_cache)
        for index in range(grid.size):
            assert_results_equal(
                first[index], second[index], f"cached point {index}"
            )

    def test_extended_grid_only_computes_new_points(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        small = ScenarioGrid(dynamics_base(), {"epsilon": (0.1, 0.2)})
        simulate_sweep(small, store=store, store_label="sweep-test")
        # Growing the axis reuses the cached prefix: the extended grid's
        # first points expand to the exact same scenarios (same derived
        # seeds), so their store identities match.
        extended = ScenarioGrid(dynamics_base(), {"epsilon": (0.1, 0.2, 0.3)})
        sweep = simulate_sweep(extended, store=store, store_label="sweep-test")
        assert sweep.from_cache == [True, True, False]
        serial = [simulate(s) for s in extended.scenarios()]
        for index in range(extended.size):
            assert_results_equal(
                serial[index], sweep[index], f"extended point {index}"
            )

    def test_cache_is_label_scoped(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        grid = ScenarioGrid(dynamics_base(), {"epsilon": (0.1,)})
        simulate_sweep(grid, store=store, store_label="label-a")
        other = simulate_sweep(grid, store=store, store_label="label-b")
        assert other.cache_hits == 0


class TestSweepResultApi:
    def test_summary_and_success_rates_shape(self):
        grid = ScenarioGrid(
            dynamics_base(num_trials=2, max_rounds=20),
            {"num_nodes": (200, 300), "epsilon": (0.1, 0.2)},
        )
        sweep = simulate_sweep(grid)
        rows = sweep.summary()
        assert len(rows) == 4
        for index, row in enumerate(rows):
            assert row["num_nodes"] == grid.point_overrides(index)["num_nodes"]
            assert row["epsilon"] == grid.point_overrides(index)["epsilon"]
            assert row["seed"] == grid.point_seed(index)
            assert row["engine"] == sweep.engines[index]
        assert sweep.success_rates().shape == (2, 2)
        overrides, result = sweep.point(3)
        assert overrides == grid.point_overrides(3)
        assert result is sweep[3]
