"""Tests for the declarative Scenario (repro.sim.scenario)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.families import cyclic_shift_matrix
from repro.sim import ENGINE_POLICIES, WORKLOADS, Scenario


def scenario_for(workload: str, engine: str, **overrides) -> Scenario:
    """A small valid scenario for any (workload, engine) combination."""
    knobs = dict(
        workload=workload,
        num_nodes=200,
        num_opinions=3,
        epsilon=0.3,
        engine=engine,
        num_trials=3,
        seed=11,
    )
    if workload == "dynamics":
        knobs.update(rule="3-majority", bias=0.3, max_rounds=50)
    if workload == "plurality":
        knobs.update(support_size=80, bias=0.4)
    knobs.update(overrides)
    return Scenario(**knobs)


class TestRoundTrip:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("engine", ENGINE_POLICIES)
    def test_to_dict_from_dict_is_identity(self, workload, engine):
        scenario = scenario_for(workload, engine)
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_round_trip_preserves_custom_noise(self):
        noise = cyclic_shift_matrix(5, 0.3)
        scenario = Scenario(
            workload="plurality",
            num_nodes=300,
            num_opinions=5,
            epsilon=0.1,
            noise=noise,
            engine="batched",
            support_size=100,
            shares=(0.3, 0.2, 0.2, 0.15, 0.15),
            num_trials=2,
        )
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.noise.name == noise.name

    def test_to_dict_is_json_serializable(self):
        import json

        noise = cyclic_shift_matrix(3, 0.2)
        scenario = scenario_for("rumor", "auto", noise=noise, epsilon=0.1)
        document = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(document) == scenario

    def test_from_dict_rejects_unknown_fields(self):
        document = scenario_for("rumor", "auto").to_dict()
        document["banana"] = 1
        with pytest.raises(ValueError, match="unknown scenario fields"):
            Scenario.from_dict(document)


class TestValidation:
    def test_bad_workload_names_the_options(self):
        with pytest.raises(ValueError) as excinfo:
            Scenario(workload="gossip")
        for workload in WORKLOADS:
            assert workload in str(excinfo.value)

    def test_bad_engine_names_the_options(self):
        with pytest.raises(ValueError) as excinfo:
            Scenario(workload="rumor", engine="warp")
        for engine in ENGINE_POLICIES:
            assert engine in str(excinfo.value)

    def test_bad_process_names_the_options(self):
        with pytest.raises(ValueError, match="balls_bins"):
            Scenario(workload="rumor", process="carrier-pigeon")

    def test_dynamics_requires_a_rule_naming_the_options(self):
        with pytest.raises(ValueError, match="3-majority"):
            Scenario(workload="dynamics")

    def test_unknown_rule_names_the_options(self):
        with pytest.raises(ValueError, match="undecided-state"):
            Scenario(workload="dynamics", rule="telepathy")

    def test_h_majority_requires_sample_size(self):
        with pytest.raises(ValueError, match="requires sample_size"):
            Scenario(workload="dynamics", rule="h-majority")

    def test_sample_size_rejected_for_other_rules(self):
        with pytest.raises(ValueError, match="does not take a sample_size"):
            Scenario(workload="dynamics", rule="voter", sample_size=3)

    def test_rule_rejected_outside_dynamics(self):
        with pytest.raises(ValueError, match="workload 'dynamics'"):
            Scenario(workload="rumor", rule="voter")

    def test_support_size_rejected_for_rumor(self):
        with pytest.raises(ValueError, match="plurality"):
            Scenario(workload="rumor", support_size=10)

    @pytest.mark.parametrize("engine", ["counts", "auto"])
    def test_counts_rejects_ablation_knobs_naming_supported_engines(
        self, engine
    ):
        with pytest.raises(ValueError) as excinfo:
            Scenario(
                workload="rumor",
                engine=engine,
                sampling_method="with_replacement",
            )
        message = str(excinfo.value)
        assert "batched" in message and "sequential" in message
        with pytest.raises(ValueError, match="batched"):
            Scenario(workload="rumor", engine=engine, use_full_multiset=True)

    def test_batched_serves_the_ablation_knobs(self):
        scenario = Scenario(
            workload="rumor", engine="batched",
            sampling_method="with_replacement", use_full_multiset=True,
        )
        assert scenario.sampling_method == "with_replacement"

    def test_counts_rejects_intractable_h_majority_table(self):
        with pytest.raises(ValueError, match="maj\\(\\) table budget"):
            Scenario(
                workload="dynamics",
                rule="h-majority",
                sample_size=256,
                num_opinions=3,
                engine="counts",
            )

    def test_counts_threshold_requires_auto(self):
        with pytest.raises(ValueError, match="engine='auto'"):
            Scenario(workload="rumor", engine="counts", counts_threshold=10)

    def test_shares_must_match_opinions_and_sum_to_one(self):
        with pytest.raises(ValueError, match="one entry per opinion"):
            Scenario(
                workload="plurality", num_opinions=3, shares=(0.5, 0.5)
            )
        with pytest.raises(ValueError, match="sum to 1"):
            Scenario(
                workload="plurality", num_opinions=2, shares=(0.9, 0.5)
            )

    def test_noise_must_match_num_opinions(self):
        with pytest.raises(ValueError, match="opinions"):
            Scenario(
                workload="rumor",
                num_opinions=4,
                noise=cyclic_shift_matrix(3, 0.2),
            )

    def test_topology_requires_sequential_engine(self):
        with pytest.raises(ValueError, match="sequential"):
            Scenario(
                workload="rumor", topology="random_regular", degree=8,
                engine="batched",
            )

    def test_random_regular_requires_degree(self):
        with pytest.raises(ValueError, match="degree"):
            Scenario(
                workload="rumor", topology="random_regular",
                engine="sequential",
            )

    def test_topology_rejected_for_dynamics(self):
        with pytest.raises(ValueError, match="protocol workloads"):
            Scenario(
                workload="dynamics", rule="voter", engine="sequential",
                topology="random_regular", degree=8,
            )


class TestCrossWorkloadKnobRejection:
    """Inapplicable knobs are rejected by name, never silently dropped."""

    def test_dynamics_rejects_protocol_process(self):
        with pytest.raises(ValueError, match="protocol workloads"):
            Scenario(workload="dynamics", rule="voter", process="poisson")

    def test_dynamics_rejects_round_scale(self):
        with pytest.raises(ValueError, match="protocol workloads"):
            Scenario(workload="dynamics", rule="voter", round_scale=2.0)

    def test_dynamics_rejects_stage2_ablations(self):
        with pytest.raises(ValueError, match="protocol workloads"):
            Scenario(
                workload="dynamics", rule="voter", engine="batched",
                sampling_method="with_replacement",
            )

    def test_protocol_rejects_max_rounds(self):
        with pytest.raises(ValueError, match="dynamics"):
            Scenario(workload="rumor", max_rounds=10)

    def test_protocol_rejects_stop_at_consensus(self):
        with pytest.raises(ValueError, match="dynamics"):
            Scenario(workload="plurality", stop_at_consensus=False)

    def test_rumor_rejects_shares(self):
        with pytest.raises(ValueError, match="plurality"):
            Scenario(workload="rumor", num_opinions=2, shares=(0.6, 0.4))


class TestCountsNativeEntryStates:
    """The counts tier's entry state is O(k) — no n-sized allocation."""

    @pytest.mark.parametrize(
        "workload,knobs",
        [
            ("rumor", {"correct_opinion": 2}),
            ("plurality", {"support_size": 80, "bias": 0.4}),
            ("plurality", {"support_size": 70, "shares": (0.5, 0.3, 0.2)}),
            ("dynamics", {"rule": "voter", "bias": 0.3}),
            ("dynamics", {"rule": "voter", "support_size": 60, "bias": 0.3}),
        ],
    )
    def test_counts_state_matches_per_node_construction(self, workload, knobs):
        scenario = Scenario(
            workload=workload, num_nodes=200, num_opinions=3, epsilon=0.3,
            engine="counts", num_trials=2, seed=5, **knobs,
        )
        counts_state = scenario.initial_counts_state()
        per_node = scenario.initial_state()
        np.testing.assert_array_equal(
            counts_state.counts, per_node.opinion_counts()
        )
        assert counts_state.num_nodes == per_node.num_nodes

    def test_counts_tier_runs_beyond_materializable_n(self):
        """A population far beyond memory must still simulate on counts."""
        from repro.sim import simulate

        result = simulate(
            Scenario(
                workload="dynamics", rule="3-majority", num_nodes=10**12,
                num_opinions=3, epsilon=0.66, bias=0.3, engine="counts",
                num_trials=2, seed=0, max_rounds=25,
            )
        )
        assert result.num_nodes == 10**12
        assert result.engine == "counts"

    def test_counts_protocol_entry_is_counts_native_at_huge_n(self):
        """initial_counts_state never allocates an n-sized array."""
        scenario = Scenario(
            workload="plurality", num_nodes=10**12, num_opinions=3,
            epsilon=0.3, engine="counts", num_trials=2, seed=0,
            support_size=10**11, bias=0.2,
        )
        state = scenario.initial_counts_state()
        assert int(state.counts.sum()) == 10**11
        assert state.num_nodes == 10**12


class TestDerivedObjects:
    def test_initial_state_is_deterministic_in_the_seed(self):
        scenario = scenario_for("dynamics", "batched", seed=5)
        assert scenario.initial_state() == scenario.initial_state()

    def test_rumor_initial_state_is_single_source(self):
        scenario = scenario_for("rumor", "auto", correct_opinion=2)
        state = scenario.initial_state()
        assert state.opinionated_count() == 1
        assert scenario.target_opinion() == 2

    def test_plurality_target_follows_the_shares(self):
        scenario = Scenario(
            workload="plurality", num_opinions=3, num_nodes=100,
            support_size=60, shares=(0.2, 0.5, 0.3), engine="batched",
        )
        assert scenario.target_opinion() == 2

    def test_default_noise_is_the_uniform_matrix(self):
        scenario = scenario_for("rumor", "auto", epsilon=0.25)
        noise = scenario.build_noise()
        assert noise.num_opinions == scenario.num_opinions
        assert "0.25" in noise.name or noise.name.startswith("uniform")


class TestActionableErrorMessages:
    """Every invalid knob raises the single ScenarioError type, naming the
    offending knob and the valid alternatives (the simulate() facade's
    actionable-error contract)."""

    def test_scenario_error_is_the_single_value_error_subtype(self):
        from repro.sim.scenario import ScenarioError

        assert issubclass(ScenarioError, ValueError)
        with pytest.raises(ScenarioError) as excinfo:
            scenario_for("gossip", "auto")
        assert "workload" in str(excinfo.value)
        assert "rumor" in str(excinfo.value)  # names the alternatives

    def test_bad_engine_lists_the_policies(self):
        from repro.sim.scenario import ScenarioError

        with pytest.raises(ScenarioError, match="engine must be one of"):
            scenario_for("rumor", "quantum")

    def test_faults_on_analytic_points_to_the_sampling_engines(self):
        from repro.faults import FaultModel
        from repro.sim.scenario import ScenarioError

        with pytest.raises(ScenarioError) as excinfo:
            scenario_for(
                "rumor", "analytic",
                faults=FaultModel(kind="liar", fraction=0.1),
            )
        message = str(excinfo.value)
        assert "analytic" in message and "sampling engines" in message

    def test_faults_on_dynamics_points_to_approximate_consensus(self):
        from repro.faults import FaultModel
        from repro.sim.scenario import ScenarioError

        with pytest.raises(ScenarioError) as excinfo:
            scenario_for(
                "dynamics", "batched",
                faults=FaultModel(kind="crash", fraction=0.1, crash_round=2),
            )
        assert "approximate-consensus" in str(excinfo.value)

    def test_adaptive_without_degradation_names_both_fixes(self):
        from repro.faults import FaultModel
        from repro.sim.scenario import ScenarioError

        with pytest.raises(ScenarioError) as excinfo:
            scenario_for(
                "rumor", "counts",
                faults=FaultModel(
                    kind="adaptive", fraction=0.1, allow_degradation=False
                ),
            )
        message = str(excinfo.value)
        assert "allow_degradation" in message
        assert "batched" in message  # the alternative engine is named

    def test_fault_model_errors_surface_as_scenario_errors(self):
        """Model-level failures (here: a fraction leaving no honest node
        at this population size) re-raise as ScenarioError, so callers
        catch one type for every invalid knob."""
        from repro.faults import FaultModel
        from repro.sim.scenario import ScenarioError

        with pytest.raises(ScenarioError):
            scenario_for(
                "rumor", "auto", num_nodes=2,
                faults=FaultModel(kind="liar", fraction=0.9),
            )

    def test_approximate_consensus_epsilon_message_names_the_reuse(self):
        from repro.sim.scenario import ScenarioError

        with pytest.raises(ScenarioError, match="precision target"):
            scenario_for(
                "dynamics", "batched", rule="approximate-consensus",
                epsilon=1.2,
            )
