"""Tests for repro.network.mailbox.ReceivedMessages."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.network.mailbox import ReceivedMessages


class TestConstruction:
    def test_valid_counts_accepted(self):
        received = ReceivedMessages(np.zeros((4, 3), dtype=int))
        assert received.num_nodes == 4
        assert received.num_opinions == 3

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ReceivedMessages(np.array([[-1, 0]]))

    def test_vector_rejected(self):
        with pytest.raises(ValueError):
            ReceivedMessages(np.zeros(3, dtype=int))

    def test_counts_cast_to_int(self):
        received = ReceivedMessages(np.array([[1.0, 2.0]]))
        assert received.counts.dtype == np.int64


class TestTotals:
    def test_totals_per_node(self):
        received = ReceivedMessages(np.array([[1, 2], [0, 0], [3, 0]]))
        assert received.totals().tolist() == [3, 0, 3]

    def test_total_messages(self):
        received = ReceivedMessages(np.array([[1, 2], [3, 4]]))
        assert received.total_messages() == 10

    def test_opinion_totals(self):
        received = ReceivedMessages(np.array([[1, 2], [3, 4]]))
        assert received.opinion_totals().tolist() == [4, 6]

    def test_received_any(self):
        received = ReceivedMessages(np.array([[0, 0], [1, 0]]))
        assert received.received_any().tolist() == [False, True]

    def test_merge(self):
        a = ReceivedMessages(np.array([[1, 0], [0, 1]]))
        b = ReceivedMessages(np.array([[2, 2], [0, 0]]))
        merged = a.merge(b)
        assert merged.counts.tolist() == [[3, 2], [0, 1]]

    def test_merge_shape_mismatch(self):
        a = ReceivedMessages(np.zeros((2, 2), dtype=int))
        b = ReceivedMessages(np.zeros((3, 2), dtype=int))
        with pytest.raises(ValueError):
            a.merge(b)


class TestUniformOpinionChoice:
    def test_no_messages_gives_zero(self, rng):
        received = ReceivedMessages(np.zeros((3, 2), dtype=int))
        assert received.uniform_opinion_choice(rng).tolist() == [0, 0, 0]

    def test_single_opinion_always_chosen(self, rng):
        received = ReceivedMessages(np.array([[0, 5, 0], [3, 0, 0]]))
        choices = received.uniform_opinion_choice(rng)
        assert choices.tolist() == [2, 1]

    def test_choice_proportional_to_multiplicity(self, rng):
        counts = np.tile(np.array([[3, 1]]), (20000, 1))
        received = ReceivedMessages(counts)
        choices = received.uniform_opinion_choice(rng)
        fraction_one = float(np.mean(choices == 1))
        assert fraction_one == pytest.approx(0.75, abs=0.02)

    def test_only_receiving_nodes_choose(self, rng):
        received = ReceivedMessages(np.array([[0, 0], [1, 1], [0, 2]]))
        choices = received.uniform_opinion_choice(rng)
        assert choices[0] == 0
        assert choices[1] in (1, 2)
        assert choices[2] == 2


class TestSubsample:
    def test_small_multisets_returned_unchanged(self, rng):
        counts = np.array([[2, 1, 0], [0, 0, 0]])
        received = ReceivedMessages(counts)
        sampled = received.subsample(5, rng)
        assert np.array_equal(sampled, counts)

    def test_sample_size_respected(self, rng):
        counts = np.array([[10, 10, 10]])
        received = ReceivedMessages(counts)
        sampled = received.subsample(7, rng)
        assert sampled.sum() == 7

    def test_without_replacement_never_exceeds_available(self, rng):
        counts = np.array([[10, 2, 1]])
        received = ReceivedMessages(counts)
        for _ in range(20):
            sampled = received.subsample(6, rng)
            assert np.all(sampled <= counts)

    def test_with_replacement_can_exceed_available(self, rng):
        counts = np.array([[1, 30]])
        received = ReceivedMessages(counts)
        exceeded = False
        for _ in range(200):
            sampled = received.subsample(10, rng, method="with_replacement")
            assert sampled.sum() == 10
            if sampled[0, 0] > 1:
                exceeded = True
                break
        assert exceeded

    def test_invalid_method_rejected(self, rng):
        received = ReceivedMessages(np.array([[3, 3]]))
        with pytest.raises(ValueError):
            received.subsample(2, rng, method="bogus")

    def test_invalid_sample_size_rejected(self, rng):
        received = ReceivedMessages(np.array([[3, 3]]))
        with pytest.raises(ValueError):
            received.subsample(0, rng)

    def test_subsample_is_unbiased(self, rng):
        # Sampling 5 from a 75/25 multiset keeps the expected proportions.
        counts = np.tile(np.array([[30, 10]]), (5000, 1))
        received = ReceivedMessages(counts)
        sampled = received.subsample(5, rng)
        fraction_one = sampled[:, 0].sum() / sampled.sum()
        assert fraction_one == pytest.approx(0.75, abs=0.02)


class TestMajorityVotes:
    def test_clear_majorities(self, rng):
        received = ReceivedMessages(np.array([[5, 1, 0], [0, 0, 4], [0, 0, 0]]))
        votes = received.majority_votes(rng)
        assert votes.tolist() == [1, 3, 0]

    def test_sample_size_threshold_enforced(self, rng):
        received = ReceivedMessages(np.array([[2, 1, 0], [5, 4, 0]]))
        votes = received.majority_votes(rng, sample_size=5)
        assert votes[0] == 0  # received only 3 < 5 messages
        assert votes[1] in (1, 2)

    def test_majority_reflects_dominant_opinion(self, rng):
        counts = np.tile(np.array([[12, 4, 2]]), (2000, 1))
        received = ReceivedMessages(counts)
        votes = received.majority_votes(rng, sample_size=9)
        assert float(np.mean(votes == 1)) > 0.9

    def test_with_replacement_variant_runs(self, rng):
        counts = np.tile(np.array([[12, 4, 2]]), (100, 1))
        received = ReceivedMessages(counts)
        votes = received.majority_votes(
            rng, sample_size=9, sampling_method="with_replacement"
        )
        assert set(np.unique(votes)).issubset({1, 2, 3})


class TestMailboxProperties:
    @given(
        arrays(
            dtype=np.int64,
            shape=st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=1, max_value=4),
            ),
            elements=st.integers(min_value=0, max_value=12),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_subsample_conserves_or_caps_totals(self, counts):
        received = ReceivedMessages(counts)
        rng = np.random.default_rng(0)
        sampled = received.subsample(4, rng)
        totals = received.totals()
        sampled_totals = sampled.sum(axis=1)
        assert np.all(sampled_totals == np.minimum(totals, 4))
        assert np.all(sampled_totals[totals > 4] == 4)
        assert np.all(sampled_totals[totals <= 4] == totals[totals <= 4])

    @given(
        arrays(
            dtype=np.int64,
            shape=st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=1, max_value=4),
            ),
            elements=st.integers(min_value=0, max_value=12),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_majority_votes_only_for_receivers(self, counts):
        received = ReceivedMessages(counts)
        votes = received.majority_votes(np.random.default_rng(1))
        totals = received.totals()
        assert np.all((votes == 0) == (totals == 0))

    @given(
        arrays(
            dtype=np.int64,
            shape=st.tuples(
                st.integers(min_value=1, max_value=6),
                st.integers(min_value=2, max_value=4),
            ),
            elements=st.integers(min_value=0, max_value=10),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_vote_is_a_mode_of_the_full_multiset(self, counts):
        received = ReceivedMessages(counts)
        votes = received.majority_votes(np.random.default_rng(2))
        for node in range(received.num_nodes):
            if votes[node] == 0:
                continue
            row = counts[node]
            assert row[votes[node] - 1] == row.max()
