"""Tests for repro.network.topology (graph-restricted push, extension)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.network.topology import GraphPushModel, standard_topology
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestStandardTopology:
    def test_complete(self):
        graph = standard_topology("complete", 10)
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 45

    def test_cycle(self):
        graph = standard_topology("cycle", 12)
        degrees = [degree for _, degree in graph.degree()]
        assert set(degrees) == {2}

    def test_grid_has_requested_order_of_nodes(self):
        graph = standard_topology("grid", 100)
        assert 90 <= graph.number_of_nodes() <= 100

    def test_random_regular_degree(self):
        graph = standard_topology("random_regular", 50, random_state=0, degree=6)
        degrees = {degree for _, degree in graph.degree()}
        assert degrees == {6}

    def test_random_regular_degree_capped_at_complete(self):
        graph = standard_topology("random_regular", 5, random_state=0, degree=10)
        assert graph.number_of_edges() == 10  # complete graph on 5 nodes

    def test_erdos_renyi_default_density(self):
        graph = standard_topology("erdos_renyi", 200, random_state=0)
        mean_degree = 2 * graph.number_of_edges() / 200
        assert 10 < mean_degree < 40  # ~4 ln n = 21

    def test_star(self):
        graph = standard_topology("star", 8)
        degrees = sorted(degree for _, degree in graph.degree())
        assert degrees == [1] * 7 + [7]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            standard_topology("hypercube-of-doom", 8)

    def test_reproducible_with_seed(self):
        first = standard_topology("erdos_renyi", 60, random_state=3)
        second = standard_topology("erdos_renyi", 60, random_state=3)
        assert nx.utils.graphs_equal(first, second)


class TestGraphPushModel:
    def test_requires_noise_matrix(self):
        with pytest.raises(TypeError):
            GraphPushModel(nx.complete_graph(5), np.eye(2))

    def test_relabels_non_integer_nodes(self, identity3):
        graph = nx.Graph([("a", "b"), ("b", "c")])
        model = GraphPushModel(graph, identity3)
        assert model.num_nodes == 3

    def test_message_conservation_on_connected_graph(self, identity3, rng):
        graph = standard_topology("random_regular", 30, random_state=0, degree=4)
        model = GraphPushModel(graph, identity3, rng)
        opinions = rng.integers(1, 4, size=30)
        received = model.run_phase_from_population(opinions, num_rounds=5)
        assert received.total_messages() == 30 * 5

    def test_isolated_nodes_do_not_push(self, identity3, rng):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        model = GraphPushModel(graph, identity3, rng)
        opinions = np.array([1, 2, 3, 3])
        received = model.run_phase_from_population(opinions, num_rounds=10)
        # Only nodes 0 and 1 have neighbours, so only their 2*10 messages land.
        assert received.total_messages() == 20
        assert received.totals()[2] == 0 and received.totals()[3] == 0

    def test_undecided_nodes_do_not_push(self, identity3, rng):
        graph = nx.complete_graph(10)
        model = GraphPushModel(graph, identity3, rng)
        opinions = np.zeros(10, dtype=int)
        opinions[0] = 2
        received = model.run_phase_from_population(opinions, num_rounds=4)
        assert received.total_messages() == 4
        assert received.opinion_totals()[1] == 4

    def test_messages_stay_on_edges(self, identity3, rng):
        # On a star, every leaf's messages go to the hub and the hub's go to
        # some leaf; leaves never receive from other leaves directly, so the
        # hub receives exactly (n-1) * rounds messages.
        num_nodes = 9
        graph = standard_topology("star", num_nodes)
        model = GraphPushModel(graph, identity3, rng)
        opinions = np.ones(num_nodes, dtype=int)
        received = model.run_phase_from_population(opinions, num_rounds=6)
        hub_received = received.totals()[0]
        assert hub_received == (num_nodes - 1) * 6

    def test_noise_applied_on_edges(self, rng):
        epsilon = 0.3
        noise = uniform_noise_matrix(2, epsilon)
        graph = nx.complete_graph(50)
        model = GraphPushModel(graph, noise, rng)
        opinions = np.ones(50, dtype=int)
        received = model.run_phase_from_population(opinions, num_rounds=50)
        survival = received.opinion_totals()[0] / received.total_messages()
        assert survival == pytest.approx(0.5 + epsilon, abs=0.03)

    def test_population_length_validated(self, identity3, rng):
        model = GraphPushModel(nx.complete_graph(5), identity3, rng)
        with pytest.raises(ValueError):
            model.run_phase_from_population(np.ones(4, dtype=int), 1)

    def test_opinion_range_validated(self, identity3, rng):
        model = GraphPushModel(nx.complete_graph(5), identity3, rng)
        with pytest.raises(ValueError):
            model.run_phase_from_population(np.full(5, 9), 1)

    def test_degrees_accessor(self, identity3):
        model = GraphPushModel(standard_topology("cycle", 6), identity3)
        assert model.degrees().tolist() == [2] * 6

    def test_complete_graph_matches_uniform_push_statistically(self, rng):
        # On the complete graph the only difference from UniformPushModel is
        # that a node never pushes to itself; for n = 200 that is a 0.5%
        # effect, so aggregate statistics must be very close.
        from repro.network.push_model import UniformPushModel

        noise = uniform_noise_matrix(3, 0.25)
        num_nodes = 200
        opinions = rng.integers(1, 4, size=num_nodes)
        graph_model = GraphPushModel(nx.complete_graph(num_nodes), noise, rng)
        uniform_model = UniformPushModel(num_nodes, noise, rng)
        graph_received = graph_model.run_phase_from_population(opinions, 20)
        uniform_received = uniform_model.run_phase(opinions, 20)
        assert graph_received.total_messages() == uniform_received.total_messages()
        graph_mix = graph_received.opinion_totals() / graph_received.total_messages()
        uniform_mix = (
            uniform_received.opinion_totals() / uniform_received.total_messages()
        )
        assert np.allclose(graph_mix, uniform_mix, atol=0.03)


class TestGraphProtocolIntegration:
    def test_protocol_succeeds_on_dense_random_graph(self, rng):
        from repro.core.protocol import TwoStageProtocol
        from repro.core.state import PopulationState

        noise = uniform_noise_matrix(3, 0.3)
        num_nodes = 500
        graph = standard_topology("random_regular", num_nodes, random_state=1,
                                  degree=64)
        engine = GraphPushModel(graph, noise, rng)
        protocol = TwoStageProtocol(
            num_nodes, noise, epsilon=0.3, engine=engine, random_state=1
        )
        result = protocol.run(PopulationState.single_source(num_nodes, 3, 1))
        assert result.correct_fraction() > 0.9

    def test_protocol_degrades_on_cycle(self, rng):
        from repro.core.protocol import TwoStageProtocol
        from repro.core.state import PopulationState

        noise = uniform_noise_matrix(3, 0.3)
        num_nodes = 400
        engine = GraphPushModel(standard_topology("cycle", num_nodes), noise, rng)
        protocol = TwoStageProtocol(
            num_nodes, noise, epsilon=0.3, engine=engine, random_state=0
        )
        result = protocol.run(PopulationState.single_source(num_nodes, 3, 1))
        assert not result.success

    def test_engine_node_count_mismatch_rejected(self, rng):
        from repro.core.protocol import TwoStageProtocol

        noise = uniform_noise_matrix(3, 0.3)
        engine = GraphPushModel(nx.complete_graph(50), noise, rng)
        with pytest.raises(ValueError):
            TwoStageProtocol(100, noise, epsilon=0.3, engine=engine)
