"""Tests for the batched (R, n, k) delivery path of the three engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.balls_bins import BallsIntoBinsProcess, ensemble_recolor_and_throw
from repro.network.delivery import deliver_ensemble_phase, supports_ensemble_delivery
from repro.network.mailbox import EnsembleReceivedMessages, ReceivedMessages
from repro.network.poisson_model import PoissonizedProcess
from repro.network.push_model import UniformPushModel
from repro.network.topology import GraphPushModel, standard_topology
from repro.utils.rng import spawn_generators

NUM_NODES = 50
NUM_TRIALS = 4


def make_engines(noise, rng):
    return [
        UniformPushModel(NUM_NODES, noise, rng),
        BallsIntoBinsProcess(NUM_NODES, noise, rng),
        PoissonizedProcess(NUM_NODES, noise, rng),
    ]


class TestEngineEnsemblePhases:
    def test_all_complete_graph_engines_support_ensembles(self, uniform3, rng):
        for engine in make_engines(uniform3, rng):
            assert supports_ensemble_delivery(engine)

    def test_topology_engine_does_not(self, uniform3, rng):
        graph = standard_topology("cycle", 10)
        assert not supports_ensemble_delivery(GraphPushModel(graph, uniform3, rng))

    def test_shapes_and_dtype(self, uniform3, rng):
        histograms = np.array([[5, 0, 3]] * NUM_TRIALS)
        for engine in make_engines(uniform3, rng):
            received = engine.run_ensemble_phase_from_senders(histograms, 4)
            assert isinstance(received, EnsembleReceivedMessages)
            assert received.counts.shape == (NUM_TRIALS, NUM_NODES, 3)
            assert received.counts.dtype == np.int64
            assert received.num_trials == NUM_TRIALS
            assert received.num_nodes == NUM_NODES
            assert received.num_opinions == 3

    def test_push_and_balls_bins_conserve_messages(self, uniform3, rng):
        histograms = np.array([[7, 2, 0], [0, 0, 0], [1, 1, 1], [0, 9, 4]])
        num_rounds = 3
        for engine in make_engines(uniform3, rng)[:2]:
            received = engine.run_ensemble_phase_from_senders(histograms, num_rounds)
            assert np.array_equal(
                received.total_messages(), histograms.sum(axis=1) * num_rounds
            )

    def test_identity_noise_preserves_colors(self, identity3, rng):
        histograms = np.array([[6, 0, 2], [0, 3, 0]])
        for engine in [
            UniformPushModel(NUM_NODES, identity3, rng),
            BallsIntoBinsProcess(NUM_NODES, identity3, rng),
        ]:
            received = engine.run_ensemble_phase_from_senders(histograms, 2)
            assert np.array_equal(
                received.counts.sum(axis=1), histograms * 2
            )

    def test_per_trial_generators_are_reproducible(self, uniform3, rng):
        histograms = np.array([[5, 5, 5]] * NUM_TRIALS)
        for engine in make_engines(uniform3, rng):
            first = engine.run_ensemble_phase_from_senders(
                histograms, 2, [10, 20, 30, 40]
            )
            second = engine.run_ensemble_phase_from_senders(
                histograms, 2, [10, 20, 30, 40]
            )
            assert np.array_equal(first.counts, second.counts)

    def test_per_trial_mode_rejects_wrong_length(self, uniform3, rng):
        histograms = np.array([[5, 5, 5]] * NUM_TRIALS)
        for engine in make_engines(uniform3, rng):
            with pytest.raises(ValueError):
                engine.run_ensemble_phase_from_senders(histograms, 2, [1, 2])

    def test_trial_independence_in_per_trial_mode(self, uniform3, rng):
        """A trial's deliveries depend only on its own seed, not its batch."""
        histograms = np.array([[5, 2, 1]] * NUM_TRIALS)
        for engine in make_engines(uniform3, rng):
            batch = engine.run_ensemble_phase_from_senders(
                histograms, 3, [10, 20, 30, 40]
            )
            solo = engine.run_ensemble_phase_from_senders(
                histograms[2:3], 3, [30]
            )
            assert np.array_equal(batch.counts[2], solo.counts[0])

    def test_rejects_bad_histogram_shapes(self, uniform3, rng):
        for engine in make_engines(uniform3, rng):
            with pytest.raises(ValueError):
                engine.run_ensemble_phase_from_senders(np.array([[1, 2]]), 1)
            with pytest.raises(ValueError):
                engine.run_ensemble_phase_from_senders(np.array([[1, -2, 0]]), 1)

    def test_poisson_matches_expected_rate(self, identity3):
        rng = np.random.default_rng(5)
        engine = PoissonizedProcess(NUM_NODES, identity3, rng)
        histograms = np.tile([NUM_NODES * 4, 0, 0], (20, 1))
        received = engine.run_ensemble_phase_from_senders(histograms, 1)
        # Each node receives Poisson(4) copies of opinion 1 on average.
        mean = received.counts[:, :, 0].mean()
        assert mean == pytest.approx(4.0, rel=0.1)

    def test_balls_bins_matches_sequential_distribution(self, uniform3):
        """Batched recolor-and-throw agrees with the sequential engine in mean."""
        histogram = np.array([40, 10, 0])
        batched_rng = np.random.default_rng(0)
        batched = ensemble_recolor_and_throw(
            NUM_NODES, uniform3, np.tile(histogram, (200, 1)), batched_rng
        )
        sequential_rng = np.random.default_rng(1)
        engine = BallsIntoBinsProcess(NUM_NODES, uniform3, sequential_rng)
        sequential = np.stack(
            [engine.run_phase(histogram).counts for _ in range(200)]
        )
        batched_totals = batched.counts.sum(axis=1).mean(axis=0)
        sequential_totals = sequential.sum(axis=1).mean(axis=0)
        assert np.allclose(batched_totals, sequential_totals, rtol=0.1, atol=1.0)


class TestDeliverEnsemblePhase:
    def test_histograms_exclude_undecided(self, identity3, rng):
        engine = UniformPushModel(6, identity3, rng)
        opinions = np.array([[0, 0, 1, 1, 2, 0], [3, 0, 0, 0, 0, 0]])
        received = deliver_ensemble_phase(engine, opinions, 2)
        assert np.array_equal(
            received.counts.sum(axis=1), [[4, 2, 0], [0, 0, 2]]
        )

    def test_rejects_vector_opinions(self, uniform3, rng):
        engine = UniformPushModel(6, uniform3, rng)
        with pytest.raises(ValueError):
            deliver_ensemble_phase(engine, np.array([1, 2, 0]), 1)

    def test_rejects_engine_without_batched_entry_point(self, uniform3, rng):
        graph = standard_topology("cycle", 10)
        engine = GraphPushModel(graph, uniform3, rng)
        with pytest.raises(TypeError):
            deliver_ensemble_phase(engine, np.zeros((2, 10), dtype=np.int64), 1)


class TestEnsembleReceivedMessages:
    @pytest.fixture
    def received(self, rng) -> EnsembleReceivedMessages:
        return EnsembleReceivedMessages(rng.integers(0, 6, size=(5, 30, 4)))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            EnsembleReceivedMessages(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            EnsembleReceivedMessages(-np.ones((2, 3, 4)))

    def test_totals_shape(self, received):
        assert received.totals().shape == (5, 30)
        assert received.total_messages().shape == (5,)

    def test_trial_extraction(self, received):
        trial = received.trial(3)
        assert isinstance(trial, ReceivedMessages)
        assert np.array_equal(trial.counts, received.counts[3])

    def test_uniform_choice_range_and_empty_rows(self, received, rng):
        choices = received.uniform_opinion_choice(rng)
        assert choices.shape == (5, 30)
        totals = received.totals()
        assert np.all(choices[totals == 0] == 0)
        assert np.all(choices[totals > 0] >= 1)
        assert np.all(choices <= 4)

    def test_uniform_choice_only_picks_received_opinions(self, rng):
        counts = np.zeros((2, 4, 3), dtype=np.int64)
        counts[:, :, 1] = 5
        received = EnsembleReceivedMessages(counts)
        choices = received.uniform_opinion_choice(rng)
        assert np.all(choices == 2)

    def test_subsample_caps_totals(self, received, rng):
        sampled = received.subsample(7, rng)
        assert sampled.shape == received.counts.shape
        assert np.all(sampled <= received.counts)
        expected = np.minimum(received.totals(), 7)
        assert np.array_equal(sampled.sum(axis=2), expected)

    def test_subsample_with_replacement_caps_totals(self, received, rng):
        sampled = received.subsample(7, rng, method="with_replacement")
        capped = received.totals() > 7
        assert np.all(sampled.sum(axis=2)[capped] == 7)

    def test_subsample_rejects_bad_arguments(self, received, rng):
        with pytest.raises(ValueError):
            received.subsample(0, rng)
        with pytest.raises(ValueError):
            received.subsample(3, rng, method="bogus")

    def test_subsample_matches_single_trial_distribution(self):
        """The batched hypergeometric draw has the correct marginal mean."""
        counts = np.tile(np.array([12, 6, 2], dtype=np.int64), (2000, 1, 1))
        received = EnsembleReceivedMessages(counts)
        sampled = received.subsample(10, np.random.default_rng(3))
        # Expectation of a multivariate hypergeometric: L * K_i / N.
        expected = 10 * np.array([12, 6, 2]) / 20
        assert np.allclose(sampled.mean(axis=(0, 1)), expected, rtol=0.05)

    def test_majority_votes_eligibility(self, received, rng):
        votes = received.majority_votes(rng, sample_size=8)
        totals = received.totals()
        assert np.all(votes[totals < 8] == 0)
        assert np.all(votes[totals >= 8] >= 1)

    def test_majority_votes_full_multiset(self, rng):
        counts = np.zeros((3, 5, 2), dtype=np.int64)
        counts[:, :, 0] = 4
        counts[:, :, 1] = 1
        counts[1, 2] = 0  # one silent node
        received = EnsembleReceivedMessages(counts)
        votes = received.majority_votes(rng)
        assert votes[1, 2] == 0
        mask = np.ones((3, 5), dtype=bool)
        mask[1, 2] = False
        assert np.all(votes[mask] == 1)

    def test_per_trial_mode_matches_solo_run(self, rng):
        """Sampling a trial inside a batch == sampling it alone (same seed)."""
        counts = rng.integers(0, 9, size=(4, 25, 3))
        received = EnsembleReceivedMessages(counts)
        solo = EnsembleReceivedMessages(counts[1:2])
        seeds = [7, 8, 9, 10]
        batch_votes = received.majority_votes(seeds, sample_size=5)
        solo_votes = solo.majority_votes([8], sample_size=5)
        assert np.array_equal(batch_votes[1], solo_votes[0])
        batch_choice = received.uniform_opinion_choice(seeds)
        solo_choice = solo.uniform_opinion_choice([8])
        assert np.array_equal(batch_choice[1], solo_choice[0])
