"""Tests for repro.network.pull_model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.pull_model import UniformPullModel
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestObserve:
    def test_every_node_observes_sample_size_when_all_opinionated(self, rng):
        model = UniformPullModel(50, identity_matrix(3), rng)
        opinions = rng.integers(1, 4, size=50)
        received = model.observe(opinions, sample_size=4)
        assert np.all(received.totals() == 4)

    def test_undecided_targets_yield_fewer_observations(self, rng):
        model = UniformPullModel(100, identity_matrix(2), rng)
        opinions = np.zeros(100, dtype=int)
        opinions[:20] = 1  # only 20% opinionated
        received = model.observe(opinions, sample_size=5)
        mean_observed = received.totals().mean()
        assert mean_observed == pytest.approx(5 * 0.2, abs=0.4)

    def test_exclude_undecided_targets(self, rng):
        model = UniformPullModel(100, identity_matrix(2), rng)
        opinions = np.zeros(100, dtype=int)
        opinions[:10] = 2
        received = model.observe(opinions, sample_size=3, include_undecided=False)
        assert np.all(received.totals() == 3)
        assert received.opinion_totals()[0] == 0

    def test_observation_distribution_matches_population(self, rng):
        model = UniformPullModel(300, identity_matrix(2), rng)
        opinions = np.array([1] * 210 + [2] * 90)
        received = model.observe(opinions, sample_size=10)
        fraction_one = received.opinion_totals()[0] / received.total_messages()
        assert fraction_one == pytest.approx(0.7, abs=0.03)

    def test_noise_applied_to_observations(self, rng):
        epsilon = 0.3
        model = UniformPullModel(300, uniform_noise_matrix(2, epsilon), rng)
        opinions = np.ones(300, dtype=int)
        received = model.observe(opinions, sample_size=10)
        fraction_one = received.opinion_totals()[0] / received.total_messages()
        assert fraction_one == pytest.approx(0.5 + epsilon, abs=0.03)

    def test_wrong_length_rejected(self, rng):
        model = UniformPullModel(10, identity_matrix(2), rng)
        with pytest.raises(ValueError):
            model.observe(np.ones(5, dtype=int), 2)

    def test_out_of_range_opinion_rejected(self, rng):
        model = UniformPullModel(10, identity_matrix(2), rng)
        with pytest.raises(ValueError):
            model.observe(np.full(10, 3), 2)

    def test_all_undecided_population(self, rng):
        model = UniformPullModel(10, identity_matrix(2), rng)
        received = model.observe(np.zeros(10, dtype=int), 3)
        assert received.total_messages() == 0

    def test_requires_noise_matrix(self):
        with pytest.raises(TypeError):
            UniformPullModel(5, np.eye(2))


class TestObserveSingle:
    def test_single_observation_range(self, rng):
        model = UniformPullModel(40, identity_matrix(3), rng)
        opinions = rng.integers(1, 4, size=40)
        observed = model.observe_single(opinions)
        assert observed.shape == (40,)
        assert observed.min() >= 1 and observed.max() <= 3

    def test_single_observation_zero_when_target_undecided(self, rng):
        model = UniformPullModel(40, identity_matrix(3), rng)
        observed = model.observe_single(np.zeros(40, dtype=int))
        assert np.all(observed == 0)

    def test_single_observation_matches_population_mix(self, rng):
        model = UniformPullModel(5000, identity_matrix(2), rng)
        opinions = np.array([1] * 4000 + [2] * 1000)
        observed = model.observe_single(opinions)
        fraction_one = float(np.mean(observed == 1))
        assert fraction_one == pytest.approx(0.8, abs=0.03)
