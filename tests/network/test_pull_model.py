"""Tests for repro.network.pull_model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.pull_model import (
    EnsemblePullModel,
    UniformPullModel,
    _majority_vote_table,
)
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestObserve:
    def test_every_node_observes_sample_size_when_all_opinionated(self, rng):
        model = UniformPullModel(50, identity_matrix(3), rng)
        opinions = rng.integers(1, 4, size=50)
        received = model.observe(opinions, sample_size=4)
        assert np.all(received.totals() == 4)

    def test_undecided_targets_yield_fewer_observations(self, rng):
        model = UniformPullModel(100, identity_matrix(2), rng)
        opinions = np.zeros(100, dtype=int)
        opinions[:20] = 1  # only 20% opinionated
        received = model.observe(opinions, sample_size=5)
        mean_observed = received.totals().mean()
        assert mean_observed == pytest.approx(5 * 0.2, abs=0.4)

    def test_exclude_undecided_targets(self, rng):
        model = UniformPullModel(100, identity_matrix(2), rng)
        opinions = np.zeros(100, dtype=int)
        opinions[:10] = 2
        received = model.observe(opinions, sample_size=3, include_undecided=False)
        assert np.all(received.totals() == 3)
        assert received.opinion_totals()[0] == 0

    def test_observation_distribution_matches_population(self, rng):
        model = UniformPullModel(300, identity_matrix(2), rng)
        opinions = np.array([1] * 210 + [2] * 90)
        received = model.observe(opinions, sample_size=10)
        fraction_one = received.opinion_totals()[0] / received.total_messages()
        assert fraction_one == pytest.approx(0.7, abs=0.03)

    def test_noise_applied_to_observations(self, rng):
        epsilon = 0.3
        model = UniformPullModel(300, uniform_noise_matrix(2, epsilon), rng)
        opinions = np.ones(300, dtype=int)
        received = model.observe(opinions, sample_size=10)
        fraction_one = received.opinion_totals()[0] / received.total_messages()
        assert fraction_one == pytest.approx(0.5 + epsilon, abs=0.03)

    def test_wrong_length_rejected(self, rng):
        model = UniformPullModel(10, identity_matrix(2), rng)
        with pytest.raises(ValueError):
            model.observe(np.ones(5, dtype=int), 2)

    def test_out_of_range_opinion_rejected(self, rng):
        model = UniformPullModel(10, identity_matrix(2), rng)
        with pytest.raises(ValueError):
            model.observe(np.full(10, 3), 2)

    def test_all_undecided_population(self, rng):
        model = UniformPullModel(10, identity_matrix(2), rng)
        received = model.observe(np.zeros(10, dtype=int), 3)
        assert received.total_messages() == 0

    def test_requires_noise_matrix(self):
        with pytest.raises(TypeError):
            UniformPullModel(5, np.eye(2))


class TestObserveSingle:
    def test_single_observation_range(self, rng):
        model = UniformPullModel(40, identity_matrix(3), rng)
        opinions = rng.integers(1, 4, size=40)
        observed = model.observe_single(opinions)
        assert observed.shape == (40,)
        assert observed.min() >= 1 and observed.max() <= 3

    def test_single_observation_zero_when_target_undecided(self, rng):
        model = UniformPullModel(40, identity_matrix(3), rng)
        observed = model.observe_single(np.zeros(40, dtype=int))
        assert np.all(observed == 0)

    def test_single_observation_matches_population_mix(self, rng):
        model = UniformPullModel(5000, identity_matrix(2), rng)
        opinions = np.array([1] * 4000 + [2] * 1000)
        observed = model.observe_single(opinions)
        fraction_one = float(np.mean(observed == 1))
        assert fraction_one == pytest.approx(0.8, abs=0.03)


class TestEnsembleObserve:
    """The batched pull engine must match the per-message engine in
    distribution (it samples the compound observation channel directly)."""

    def test_counts_shape_and_totals(self, rng):
        model = EnsemblePullModel(50, identity_matrix(3), rng)
        opinions = np.tile(rng.integers(1, 4, size=50), (4, 1))
        received = model.observe(opinions, sample_size=4)
        assert received.counts.shape == (4, 50, 3)
        assert np.all(received.totals() == 4)

    def test_undecided_targets_yield_fewer_observations(self, rng):
        model = EnsemblePullModel(400, identity_matrix(2), rng)
        opinions = np.zeros((3, 400), dtype=int)
        opinions[:, :80] = 1  # 20% opinionated
        received = model.observe(opinions, sample_size=5)
        assert received.totals().mean() == pytest.approx(5 * 0.2, abs=0.3)

    def test_observation_distribution_matches_single_trial_engine(self, rng):
        """Satellite check: identical distributions between the single-trial
        and ensemble observation engines (same mix, same noise)."""
        epsilon = 0.3
        noise = uniform_noise_matrix(2, epsilon)
        opinions = np.array([1] * 350 + [2] * 150)
        single = UniformPullModel(500, noise, rng)
        batched = EnsemblePullModel(500, noise, rng)
        single_totals = np.zeros(2)
        for _ in range(8):
            single_totals += single.observe(opinions, 10).opinion_totals()
        received = batched.observe(np.tile(opinions, (8, 1)), 10)
        batched_totals = received.counts.sum(axis=(0, 1))
        single_share = single_totals[0] / single_totals.sum()
        batched_share = batched_totals[0] / batched_totals.sum()
        assert single_share == pytest.approx(batched_share, abs=0.02)
        # And both match the analytic noisy share.
        expected = 0.7 * (0.5 + epsilon) + 0.3 * (0.5 - epsilon)
        assert batched_share == pytest.approx(expected, abs=0.02)

    def test_exclude_undecided_targets(self, rng):
        model = EnsemblePullModel(100, identity_matrix(2), rng)
        opinions = np.zeros((2, 100), dtype=int)
        opinions[:, :10] = 2
        received = model.observe(opinions, 3, include_undecided=False)
        assert np.all(received.totals() == 3)
        assert received.counts[..., 0].sum() == 0

    def test_all_undecided_population(self, rng):
        model = EnsemblePullModel(10, identity_matrix(2), rng)
        received = model.observe(np.zeros((3, 10), dtype=int), 3)
        assert received.counts.sum() == 0
        assert np.all(model.observe_single(np.zeros((3, 10), dtype=int)) == 0)

    def test_per_trial_streams_are_bitwise_stable(self):
        noise = uniform_noise_matrix(3, 0.3)
        opinions = np.tile(np.arange(60) % 4, (3, 1))
        first = EnsemblePullModel(60, noise, [1, 2, 3]).observe(opinions, 3)
        second = EnsemblePullModel(60, noise, [1, 2, 3]).observe(opinions, 3)
        assert np.array_equal(first.counts, second.counts)
        single = EnsemblePullModel(60, noise, [2]).observe(opinions[:1], 3)
        assert np.array_equal(first.counts[1], single.counts[0])

    def test_rejects_bad_shapes(self, rng):
        model = EnsemblePullModel(10, identity_matrix(2), rng)
        with pytest.raises(ValueError):
            model.observe(np.ones(10, dtype=int), 2)
        with pytest.raises(ValueError):
            model.observe(np.ones((2, 5), dtype=int), 2)
        with pytest.raises(ValueError):
            model.observe(np.full((2, 10), 3), 2)
        with pytest.raises(TypeError):
            EnsemblePullModel(5, np.eye(2))


class TestEnsembleObserveSingle:
    def test_votes_match_population_mix(self, rng):
        model = EnsemblePullModel(3000, identity_matrix(2), rng)
        opinions = np.tile(np.array([1] * 2400 + [2] * 600), (4, 1))
        votes = model.observe_single(opinions)
        assert votes.shape == (4, 3000)
        assert float(np.mean(votes == 1)) == pytest.approx(0.8, abs=0.03)

    def test_distribution_matches_single_trial_engine(self, rng):
        """Satellite check for the one-observation fast path."""
        noise = uniform_noise_matrix(2, 0.25)
        opinions = np.array([1] * 300 + [0] * 100)
        single = UniformPullModel(400, noise, rng)
        batched = EnsemblePullModel(400, noise, rng)
        single_votes = np.concatenate(
            [single.observe_single(opinions) for _ in range(10)]
        )
        batched_votes = batched.observe_single(np.tile(opinions, (10, 1)))
        for value in (0, 1, 2):
            assert float(np.mean(single_votes == value)) == pytest.approx(
                float(np.mean(batched_votes == value)), abs=0.03
            )


class TestMajorityVoteTable:
    def test_table_is_a_probability_kernel(self):
        exponents, coefficients, vote_law = _majority_vote_table(3, 3)
        assert exponents.shape == (20, 4)  # C(3+3, 3) compositions
        assert np.all(exponents.sum(axis=1) == 3)
        assert np.allclose(vote_law.sum(axis=1), 1.0)
        # Multinomial coefficients sum to (k+1)^s under uniform q.
        assert coefficients.sum() == pytest.approx(4 ** 3)

    def test_fused_votes_match_observe_plus_majority(self, rng):
        """The fused sampler and observe()+majority_votes() realize the same
        vote distribution (the closed form vs. the two-step sampling)."""
        noise = uniform_noise_matrix(3, 0.3)
        model = EnsemblePullModel(4000, noise, rng)
        opinions = np.tile(
            np.array([1] * 1800 + [2] * 1200 + [3] * 600 + [0] * 400), (2, 1)
        )
        fused = model.observe_majority_votes(opinions, 3)
        received = model.observe(opinions, 3)
        composed = received.majority_votes(rng)
        fused_hist = np.bincount(fused.ravel(), minlength=4) / fused.size
        composed_hist = (
            np.bincount(composed.ravel(), minlength=4) / composed.size
        )
        assert np.allclose(fused_hist, composed_hist, atol=0.025)

    def test_fused_votes_zero_only_without_observation(self, rng):
        model = EnsemblePullModel(200, identity_matrix(3), rng)
        opinions = np.tile(np.arange(200) % 3 + 1, (3, 1))
        votes = model.observe_majority_votes(opinions, 5)
        assert np.all(votes >= 1)  # fully opinionated: everyone observes
