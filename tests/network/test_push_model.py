"""Tests for repro.network.push_model (process O)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.push_model import UniformPushModel
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestConstruction:
    def test_requires_noise_matrix(self):
        with pytest.raises(TypeError):
            UniformPushModel(10, np.eye(2))

    def test_requires_positive_nodes(self, identity3):
        with pytest.raises(ValueError):
            UniformPushModel(0, identity3)

    def test_num_opinions_from_noise(self, uniform3):
        assert UniformPushModel(10, uniform3).num_opinions == 3


class TestRunPhase:
    def test_message_conservation(self, identity3, rng):
        model = UniformPushModel(50, identity3, rng)
        senders = rng.integers(1, 4, size=30)
        received = model.run_phase(senders, num_rounds=4)
        assert received.total_messages() == 30 * 4

    def test_noise_free_opinion_histogram_preserved(self, identity3, rng):
        model = UniformPushModel(50, identity3, rng)
        senders = np.array([1] * 10 + [2] * 5 + [3] * 2)
        received = model.run_phase(senders, num_rounds=3)
        assert received.opinion_totals().tolist() == [30, 15, 6]

    def test_empty_sender_set(self, identity3, rng):
        model = UniformPushModel(20, identity3, rng)
        received = model.run_phase(np.array([], dtype=int), num_rounds=3)
        assert received.total_messages() == 0
        assert received.counts.shape == (20, 3)

    def test_invalid_opinion_rejected(self, identity3, rng):
        model = UniformPushModel(20, identity3, rng)
        with pytest.raises(ValueError):
            model.run_phase(np.array([0, 1]), num_rounds=1)
        with pytest.raises(ValueError):
            model.run_phase(np.array([4]), num_rounds=1)

    def test_invalid_rounds_rejected(self, identity3, rng):
        model = UniformPushModel(20, identity3, rng)
        with pytest.raises(ValueError):
            model.run_phase(np.array([1]), num_rounds=0)

    def test_targets_roughly_uniform(self, identity3, rng):
        num_nodes = 20
        model = UniformPushModel(num_nodes, identity3, rng)
        senders = np.ones(200, dtype=int)
        received = model.run_phase(senders, num_rounds=50)
        per_node = received.totals()
        expected = 200 * 50 / num_nodes
        assert per_node.min() > expected * 0.7
        assert per_node.max() < expected * 1.3

    def test_noise_corrupts_expected_fraction(self, rng):
        epsilon = 0.3
        noise = uniform_noise_matrix(3, epsilon)
        model = UniformPushModel(100, noise, rng)
        senders = np.ones(2000, dtype=int)
        received = model.run_phase(senders, num_rounds=10)
        survival = received.opinion_totals()[0] / received.total_messages()
        assert survival == pytest.approx(1 / 3 + epsilon, abs=0.02)

    def test_statistics_collection(self, rng):
        noise = uniform_noise_matrix(2, 0.1)
        model = UniformPushModel(30, noise, rng)
        senders = np.ones(30, dtype=int)
        received = model.run_phase(senders, num_rounds=5, collect_statistics=True)
        stats = received.statistics
        assert stats.num_rounds == 5
        assert stats.messages_sent == 150
        assert 0 < stats.messages_corrupted < 150
        assert stats.max_received_by_single_node >= 1

    def test_run_round_is_single_round(self, identity3, rng):
        model = UniformPushModel(25, identity3, rng)
        received = model.run_round(np.array([1, 2, 3]))
        assert received.total_messages() == 3

    def test_run_phase_from_senders_alias(self, identity3, rng):
        model = UniformPushModel(25, identity3, rng)
        received = model.run_phase_from_senders(np.array([1, 2]), 4)
        assert received.total_messages() == 8

    def test_reproducibility_with_seed(self, identity3):
        senders = np.array([1, 2, 3, 1, 2])
        first = UniformPushModel(15, identity3, 7).run_phase(senders, 3)
        second = UniformPushModel(15, identity3, 7).run_phase(senders, 3)
        assert np.array_equal(first.counts, second.counts)


class TestNaiveEngine:
    def test_naive_conserves_messages(self, identity3, rng):
        model = UniformPushModel(15, identity3, rng)
        senders = np.array([1, 1, 2, 3])
        received = model.run_phase_naive(senders, num_rounds=3)
        assert received.total_messages() == 12

    def test_naive_and_vectorized_agree_in_distribution(self, rng):
        # Compare the per-opinion delivered histograms of the two engines on
        # the same workload; they are different random draws of the same
        # process, so totals must match exactly and per-opinion splits must be
        # statistically close.
        noise = uniform_noise_matrix(3, 0.2)
        senders = np.array([1] * 40 + [2] * 20)
        model = UniformPushModel(30, noise, rng)
        fast = model.run_phase(senders, num_rounds=20)
        slow = model.run_phase_naive(senders, num_rounds=20)
        assert fast.total_messages() == slow.total_messages()
        fast_fractions = fast.opinion_totals() / fast.total_messages()
        slow_fractions = slow.opinion_totals() / slow.total_messages()
        assert np.allclose(fast_fractions, slow_fractions, atol=0.06)


class TestExpectedDistribution:
    def test_expected_matches_eq2(self, rng):
        noise = uniform_noise_matrix(3, 0.2)
        model = UniformPushModel(10, noise, rng)
        senders = np.array([1, 1, 2])
        expected = model.expected_received_distribution(senders, num_rounds=4)
        histogram = np.array([2.0, 1.0, 0.0])
        manual = (histogram @ noise.matrix) * 4 / 10
        assert np.allclose(expected[0], manual)
        assert expected.shape == (10, 3)

    def test_empirical_mean_tracks_expectation(self, rng):
        noise = uniform_noise_matrix(2, 0.25)
        model = UniformPushModel(40, noise, rng)
        senders = np.array([1] * 30 + [2] * 10)
        expected = model.expected_received_distribution(senders, num_rounds=25)
        received = model.run_phase(senders, num_rounds=25)
        empirical_mean = received.counts.mean(axis=0)
        assert np.allclose(empirical_mean, expected[0], rtol=0.1)


class TestPushModelProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_message_conservation_property(self, num_senders, num_rounds, k, seed):
        rng = np.random.default_rng(seed)
        noise = uniform_noise_matrix(max(k, 2), 0.1)
        model = UniformPushModel(17, noise, rng)
        senders = rng.integers(1, noise.num_opinions + 1, size=num_senders)
        received = model.run_phase(senders, num_rounds)
        assert received.total_messages() == num_senders * num_rounds
        assert np.all(received.counts >= 0)
