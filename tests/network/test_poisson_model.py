"""Tests for repro.network.poisson_model (process P)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.poisson_model import PoissonizedProcess
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestDeliver:
    def test_mean_counts_match_rates(self, rng):
        process = PoissonizedProcess(200, identity_matrix(2), rng)
        received = process.deliver([1000, 400])
        means = received.counts.mean(axis=0)
        assert means[0] == pytest.approx(1000 / 200, rel=0.15)
        assert means[1] == pytest.approx(400 / 200, rel=0.2)

    def test_zero_histogram_gives_no_messages(self, rng):
        process = PoissonizedProcess(50, identity_matrix(3), rng)
        assert process.deliver([0, 0, 0]).total_messages() == 0

    def test_wrong_length_rejected(self, rng):
        process = PoissonizedProcess(50, identity_matrix(3), rng)
        with pytest.raises(ValueError):
            process.deliver([1, 2])

    def test_negative_rejected(self, rng):
        process = PoissonizedProcess(50, identity_matrix(3), rng)
        with pytest.raises(ValueError):
            process.deliver([-1, 0, 0])

    def test_independence_across_opinions(self, rng):
        # Covariance between counts of different opinions should be ~0 in
        # process P (unlike the multinomial coupling of process B).
        process = PoissonizedProcess(5000, identity_matrix(2), rng)
        received = process.deliver([15000, 15000])
        correlation = np.corrcoef(received.counts[:, 0], received.counts[:, 1])[0, 1]
        assert abs(correlation) < 0.05


class TestRunPhase:
    def test_run_phase_applies_noise_first(self, rng):
        epsilon = 0.3
        process = PoissonizedProcess(100, uniform_noise_matrix(2, epsilon), rng)
        received = process.run_phase([20000, 0])
        fraction_one = received.opinion_totals()[0] / received.total_messages()
        assert fraction_one == pytest.approx(0.5 + epsilon, abs=0.02)

    def test_run_phase_from_senders(self, uniform3, rng):
        process = PoissonizedProcess(60, uniform3, rng)
        received = process.run_phase_from_senders(np.array([1, 2, 3]), num_rounds=100)
        # Poissonization only conserves the total in expectation.
        assert received.total_messages() == pytest.approx(300, rel=0.3)

    def test_invalid_sender_opinion_rejected(self, uniform3, rng):
        process = PoissonizedProcess(60, uniform3, rng)
        with pytest.raises(ValueError):
            process.run_phase_from_senders(np.array([9]), 1)

    def test_requires_noise_matrix(self):
        with pytest.raises(TypeError):
            PoissonizedProcess(5, np.eye(2))


class TestExpectedCounts:
    def test_expected_counts_shape_and_values(self, rng):
        process = PoissonizedProcess(10, identity_matrix(2), rng)
        expected = process.expected_counts([30, 10])
        assert expected.shape == (10, 2)
        assert np.allclose(expected[0], [3.0, 1.0])

    def test_empirical_matches_expected(self, rng):
        process = PoissonizedProcess(2000, identity_matrix(3), rng)
        histogram = [6000, 2000, 1000]
        received = process.deliver(histogram)
        expected = process.expected_counts(histogram)
        assert np.allclose(received.counts.mean(axis=0), expected[0], rtol=0.1)
