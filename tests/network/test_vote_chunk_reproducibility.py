"""Seed-reproducibility regressions for the bounded ``VOTE_CHUNK`` sampler.

``CountsDeliveryModel.sample_vote_counts`` falls back to chunked
per-voter composition sampling whenever the closed-form ``maj()`` table
is intractable (``sample_size > 170``).  The main closed-form path is
pinned elsewhere; these tests pin the *fallback*: bitwise-identical
results under a fixed seed for voter counts on every side of a chunk
boundary, per-trial stream isolation, and golden draws that freeze the
chunk loop's randomness-consumption order (multinomial compositions,
then uniform tie-break keys, per chunk).

``VOTE_CHUNK`` is monkeypatched small so the boundary cases are cheap;
the sampler reads it through ``self``, so the patch is honored.  The
dense large-sample vote law (which would normally absorb this operating
point — it exists precisely to spare tractable ``(L, k)`` pairs from the
chunk loop) is monkeypatched *off* so the fallback itself stays pinned.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import pull_model
from repro.network.balls_bins import CountsDeliveryModel
from repro.network.pull_model import (
    dense_vote_law_is_tractable,
    vote_table_is_tractable,
)
from repro.noise.families import uniform_noise_matrix

# Past the exact maj() composition-table budget -> the chunked fallback.
FALLBACK_SAMPLE_SIZE = 200
SMALL_CHUNK = 8


@pytest.fixture
def model(monkeypatch):
    monkeypatch.setattr(CountsDeliveryModel, "VOTE_CHUNK", SMALL_CHUNK)
    # Force resolve_vote_path past "dense" so the chunk loop stays the
    # sampler under test.
    monkeypatch.setattr(pull_model, "_DENSE_VOTE_LAW_MAX_COMPOSITIONS", 0)
    return CountsDeliveryModel(50, uniform_noise_matrix(3, 0.3))


def test_operating_point_actually_uses_the_fallback():
    assert not vote_table_is_tractable(FALLBACK_SAMPLE_SIZE, 3)
    # Unpatched, the dense law covers this point; the fixture disables it.
    assert dense_vote_law_is_tractable(FALLBACK_SAMPLE_SIZE, 3)


@pytest.mark.parametrize(
    "num_voters",
    [SMALL_CHUNK - 1, SMALL_CHUNK, SMALL_CHUNK + 1, 2 * SMALL_CHUNK, 2 * SMALL_CHUNK + 1],
)
def test_shared_generator_is_bitwise_reproducible_at_chunk_boundaries(
    model, num_voters
):
    histograms = np.array([[40, 30, 20]])
    voters = np.array([num_voters])
    first = model.sample_vote_counts(
        histograms, voters, FALLBACK_SAMPLE_SIZE, np.random.default_rng(7)
    )
    second = model.sample_vote_counts(
        histograms, voters, FALLBACK_SAMPLE_SIZE, np.random.default_rng(7)
    )
    assert np.array_equal(first, second)
    assert first.sum() == num_voters


@pytest.mark.parametrize(
    "num_voters", [SMALL_CHUNK - 1, SMALL_CHUNK, SMALL_CHUNK + 1]
)
def test_per_trial_seeds_are_bitwise_reproducible_at_chunk_boundaries(
    model, num_voters
):
    histograms = np.array([[40, 30, 20], [25, 25, 10]])
    voters = np.array([num_voters, 2 * SMALL_CHUNK + 1])
    first = model.sample_vote_counts(
        histograms, voters, FALLBACK_SAMPLE_SIZE, [3, 5]
    )
    second = model.sample_vote_counts(
        histograms, voters, FALLBACK_SAMPLE_SIZE, [3, 5]
    )
    assert np.array_equal(first, second)
    assert np.array_equal(first.sum(axis=1), voters)


def test_per_trial_streams_are_isolated_across_trials(model):
    """Trial 0's votes must not depend on how much trial 1 samples."""
    histograms = np.array([[40, 30, 20], [25, 25, 10]])
    few = model.sample_vote_counts(
        histograms,
        np.array([2 * SMALL_CHUNK + 1, 3]),
        FALLBACK_SAMPLE_SIZE,
        [17, 19],
    )
    many = model.sample_vote_counts(
        histograms,
        np.array([2 * SMALL_CHUNK + 1, 3 * SMALL_CHUNK]),
        FALLBACK_SAMPLE_SIZE,
        [17, 19],
    )
    assert np.array_equal(few[0], many[0])


def test_zero_voters_consume_no_randomness(model):
    """A zero-voter trial leaves its per-trial stream untouched."""
    histograms = np.array([[40, 30, 20], [25, 25, 10]])
    with_empty = model.sample_vote_counts(
        histograms, np.array([0, SMALL_CHUNK + 1]), FALLBACK_SAMPLE_SIZE, [23, 29]
    )
    alone = model.sample_vote_counts(
        histograms[1:], np.array([SMALL_CHUNK + 1]), FALLBACK_SAMPLE_SIZE, [29]
    )
    assert np.array_equal(with_empty[0], np.zeros(3, dtype=np.int64))
    assert np.array_equal(with_empty[1], alone[0])


class TestGoldenDraws:
    """Freeze the fallback's randomness-consumption order.

    Any refactor that reorders the chunk loop's draws (compositions
    before tie-break keys, chunk by chunk) changes these values and must
    be treated as a reproducibility break, not a cosmetic change.
    """

    HISTOGRAMS = np.array([[40, 30, 20], [25, 25, 10]])
    VOTERS = np.array([20, 9])  # chunks of 8, 8, 4 and 8, 1

    def test_shared_generator_golden(self, model):
        votes = model.sample_vote_counts(
            self.HISTOGRAMS,
            self.VOTERS,
            FALLBACK_SAMPLE_SIZE,
            np.random.default_rng(123),
        )
        assert votes.tolist() == [[18, 2, 0], [5, 4, 0]]

    def test_per_trial_seeds_golden(self, model):
        votes = model.sample_vote_counts(
            self.HISTOGRAMS, self.VOTERS, FALLBACK_SAMPLE_SIZE, [7, 11]
        )
        assert votes.tolist() == [[19, 1, 0], [4, 5, 0]]
