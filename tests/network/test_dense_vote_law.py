"""The dense large-sample ``maj()`` vote law.

``dense_majority_vote_law`` evaluates the exact vote pmf over opinionated
``k``-color compositions in log space, covering sample sizes far past the
closed-form table budget (``sample_size <= 170``).  On the overlap region
where both are tractable the two must agree to machine precision — the
dense law is a reformulation, not an approximation — and its tractability
predicate must gate exactly the composition/grid budgets it claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import pull_model
from repro.network.pull_model import (
    dense_majority_vote_law,
    dense_vote_law_is_tractable,
    majority_vote_law,
    vote_table_is_tractable,
)


class TestAgreementWithClosedForm:
    @pytest.mark.parametrize(
        "num_opinions,sample_size",
        [(2, 5), (3, 7), (3, 35), (2, 170), (4, 9)],
    )
    def test_matches_table_law_to_machine_precision(
        self, num_opinions, sample_size
    ):
        rng = np.random.default_rng(99)
        probabilities = rng.dirichlet(np.ones(num_opinions), size=6)
        observation_law = np.concatenate(
            [np.zeros((6, 1)), probabilities], axis=1
        )
        table = majority_vote_law(observation_law, sample_size)[:, 1:]
        dense = dense_majority_vote_law(probabilities, sample_size)
        assert np.max(np.abs(dense - table)) < 1e-12
        assert np.allclose(dense.sum(axis=1), 1.0)

    def test_zero_probability_color_is_never_voted(self):
        probabilities = np.array([[0.7, 0.3, 0.0]])
        law = dense_majority_vote_law(probabilities, 25)
        assert law[0, 2] == 0.0
        assert law[0, 0] > law[0, 1] > 0.0

    def test_all_zero_row_falls_back_to_uniform(self):
        probabilities = np.array([[0.0, 0.0], [0.5, 0.5]])
        law = dense_majority_vote_law(probabilities, 12)
        assert np.allclose(law[0], [0.5, 0.5])
        assert np.allclose(law[1], [0.5, 0.5])

    def test_degenerate_single_color_row(self):
        probabilities = np.array([[1.0, 0.0]])
        law = dense_majority_vote_law(probabilities, 40)
        assert np.allclose(law, [[1.0, 0.0]])


class TestTractability:
    def test_covers_large_sample_sizes_the_table_cannot(self):
        assert not vote_table_is_tractable(665, 3)
        assert dense_vote_law_is_tractable(665, 3)
        assert dense_vote_law_is_tractable(1247, 2)

    def test_rejects_blowups(self):
        assert not dense_vote_law_is_tractable(300, 4)
        assert not dense_vote_law_is_tractable(0, 3)
        assert not dense_vote_law_is_tractable(5, 0)

    def test_law_raises_when_intractable(self):
        with pytest.raises(ValueError):
            dense_majority_vote_law(
                np.full((1, 4), 0.25), 300
            )

    def test_gate_is_patchable_off(self, monkeypatch):
        monkeypatch.setattr(
            pull_model, "_DENSE_VOTE_LAW_MAX_COMPOSITIONS", 0
        )
        assert not dense_vote_law_is_tractable(200, 3)


class TestVotePathResolution:
    def test_paths_partition_the_sample_size_axis(self):
        from repro.network.balls_bins import CountsDeliveryModel
        from repro.noise.families import uniform_noise_matrix

        model = CountsDeliveryModel(1000, uniform_noise_matrix(3, 0.3))
        assert model.resolve_vote_path(20) == "table"
        assert model.resolve_vote_path(200) == "dense"
        # Past both budgets only the bounded chunk sampler remains.
        big = CountsDeliveryModel(1000, uniform_noise_matrix(6, 0.3))
        assert big.resolve_vote_path(5000) == "chunk"
