"""Tests for repro.network.balls_bins (process B)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.balls_bins import BallsIntoBinsProcess
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestRecolor:
    def test_identity_recolor_is_noop(self, identity3, rng):
        process = BallsIntoBinsProcess(10, identity3, rng)
        histogram = np.array([5, 3, 2])
        assert np.array_equal(process.recolor(histogram), histogram)

    def test_recolor_conserves_balls(self, uniform3, rng):
        process = BallsIntoBinsProcess(10, uniform3, rng)
        assert process.recolor([100, 50, 0]).sum() == 150

    def test_recolor_validates_length(self, uniform3, rng):
        process = BallsIntoBinsProcess(10, uniform3, rng)
        with pytest.raises(ValueError):
            process.recolor([1, 2])

    def test_recolor_rejects_negative(self, uniform3, rng):
        process = BallsIntoBinsProcess(10, uniform3, rng)
        with pytest.raises(ValueError):
            process.recolor([-1, 2, 3])


class TestThrow:
    def test_throw_conserves_balls(self, identity3, rng):
        process = BallsIntoBinsProcess(12, identity3, rng)
        received = process.throw([30, 0, 6])
        assert received.total_messages() == 36
        assert received.opinion_totals().tolist() == [30, 0, 6]

    def test_throw_uniform_over_bins(self, identity3, rng):
        process = BallsIntoBinsProcess(10, identity3, rng)
        received = process.throw([5000, 0, 0])
        per_node = received.totals()
        assert per_node.min() > 350
        assert per_node.max() < 650


class TestRunPhase:
    def test_run_phase_conserves_messages(self, uniform3, rng):
        process = BallsIntoBinsProcess(20, uniform3, rng)
        received = process.run_phase([40, 20, 10])
        assert received.total_messages() == 70

    def test_run_phase_from_senders(self, uniform3, rng):
        process = BallsIntoBinsProcess(20, uniform3, rng)
        senders = np.array([1, 1, 2])
        received = process.run_phase_from_senders(senders, num_rounds=5)
        assert received.total_messages() == 15

    def test_invalid_sender_opinion_rejected(self, uniform3, rng):
        process = BallsIntoBinsProcess(20, uniform3, rng)
        with pytest.raises(ValueError):
            process.run_phase_from_senders(np.array([0]), 1)

    def test_requires_noise_matrix(self):
        with pytest.raises(TypeError):
            BallsIntoBinsProcess(5, np.eye(2))


class TestClaimOneAgreement:
    def test_matches_push_model_in_distribution(self, rng):
        """Claim 1: process B and process O agree on end-of-phase statistics."""
        from repro.network.push_model import UniformPushModel

        noise = uniform_noise_matrix(3, 0.2)
        num_nodes, num_rounds = 25, 6
        senders = np.array([1] * 20 + [2] * 10 + [3] * 5)
        trials = 300
        push = UniformPushModel(num_nodes, noise, rng)
        bins = BallsIntoBinsProcess(num_nodes, noise, rng)
        push_zero, bins_zero = [], []
        push_opinion1 = []
        bins_opinion1 = []
        for _ in range(trials):
            a = push.run_phase(senders, num_rounds)
            b = bins.run_phase_from_senders(senders, num_rounds)
            push_zero.append(float(np.mean(a.totals() == 0)))
            bins_zero.append(float(np.mean(b.totals() == 0)))
            push_opinion1.append(a.opinion_totals()[0])
            bins_opinion1.append(b.opinion_totals()[0])
        # Fraction of empty mailboxes and mean delivered opinion-1 count agree.
        assert np.mean(push_zero) == pytest.approx(np.mean(bins_zero), abs=0.01)
        assert np.mean(push_opinion1) == pytest.approx(
            np.mean(bins_opinion1), rel=0.03
        )


class TestBallsBinsProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=3),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_total_balls_conserved(self, histogram, seed):
        process = BallsIntoBinsProcess(
            9, uniform_noise_matrix(3, 0.15), np.random.default_rng(seed)
        )
        received = process.run_phase(histogram)
        assert received.total_messages() == sum(histogram)
