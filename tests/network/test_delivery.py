"""Tests for repro.network.delivery (engine dispatch)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.network.delivery import deliver_phase, supports_population_delivery
from repro.network.push_model import UniformPushModel
from repro.network.topology import GraphPushModel
from repro.noise.families import identity_matrix


class TestSupportsPopulationDelivery:
    def test_uniform_push_is_anonymous(self, identity3):
        assert not supports_population_delivery(UniformPushModel(5, identity3))

    def test_graph_push_is_population_aware(self, identity3):
        assert supports_population_delivery(
            GraphPushModel(nx.complete_graph(5), identity3)
        )


class TestDeliverPhase:
    def test_dispatch_to_anonymous_engine(self, identity3, rng):
        engine = UniformPushModel(10, identity3, rng)
        opinions = np.array([1, 0, 2, 0, 0, 0, 0, 0, 0, 3])
        received = deliver_phase(engine, opinions, num_rounds=4)
        # Three opinionated nodes push 4 rounds each.
        assert received.total_messages() == 12

    def test_dispatch_to_population_engine(self, identity3, rng):
        engine = GraphPushModel(nx.complete_graph(10), identity3, rng)
        opinions = np.array([1, 0, 2, 0, 0, 0, 0, 0, 0, 3])
        received = deliver_phase(engine, opinions, num_rounds=4)
        assert received.total_messages() == 12

    def test_undecided_nodes_never_push(self, identity3, rng):
        engine = UniformPushModel(6, identity3, rng)
        received = deliver_phase(engine, np.zeros(6, dtype=int), num_rounds=3)
        assert received.total_messages() == 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(TypeError):
            deliver_phase(object(), np.array([1, 2]), 1)
