"""Tests for the analytic protocol tier: exact distribution + mean field.

The exact tier is checked against first principles (normalization, the
noise-free limit, tractability gating) and the mean field against the
exact tier at a scale where both are available.  Distribution-level
agreement with the *sampling* tiers lives in
``tests/integration/test_engine_agreement.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analytic import (
    AnalyticProtocol,
    AnalyticProtocolResult,
    MeanFieldProtocol,
    exact_protocol_is_tractable,
)
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestTractabilityGate:
    def test_small_instance_is_tractable(self):
        assert exact_protocol_is_tractable(14, 2, 0.3)

    def test_state_budget_rejects_large_populations(self):
        assert not exact_protocol_is_tractable(300, 3, 0.3)

    def test_vote_table_budget_rejects_high_precision(self):
        # eps = 0.01 drives the final Stage-2 sample size L' ~ log n / eps^2
        # far past the closed-form maj() composition-table budget even
        # though n = 40 is well within the state budget.
        assert not exact_protocol_is_tractable(40, 2, 0.01)


class TestAnalyticProtocol:
    NOISE = uniform_noise_matrix(2, 0.3)

    def test_requires_epsilon_or_schedule(self):
        with pytest.raises(ValueError, match="schedule or epsilon"):
            AnalyticProtocol(14, self.NOISE)

    def test_initial_distribution_is_a_point_mass(self):
        protocol = AnalyticProtocol(14, self.NOISE, epsilon=0.3)
        distribution = protocol.initial_distribution(np.array([1, 0]))
        assert distribution.sum() == pytest.approx(1.0)
        assert np.count_nonzero(distribution) == 1

    def test_initial_distribution_rejects_off_simplex_counts(self):
        protocol = AnalyticProtocol(14, self.NOISE, epsilon=0.3)
        with pytest.raises(ValueError, match="not a valid"):
            protocol.initial_distribution(np.array([10, 9]))

    def test_run_returns_expected_fields(self):
        result = AnalyticProtocol(14, self.NOISE, epsilon=0.3).run(
            np.array([1, 0])
        )
        assert isinstance(result, AnalyticProtocolResult)
        assert result.method == "exact"
        assert 0.0 <= result.success_probability <= 1.0
        assert (
            result.success_probability
            <= result.convergence_probability + 1e-12
        )
        assert result.target_opinion == 1
        assert result.phase_biases.shape[0] >= result.stage1_phases
        assert (
            result.phase_biases[result.stage1_phases - 1]
            == pytest.approx(result.expected_bias_after_stage1)
        )
        assert result.expected_final_counts.sum() <= 14 + 1e-9
        assert result.state_space_size is not None

    def test_noise_free_run_succeeds_almost_surely(self):
        # With identity noise only the planted color ever circulates, so
        # the exact distribution must end (essentially) fully absorbed at
        # the all-target consensus state.
        result = AnalyticProtocol(14, identity_matrix(2), epsilon=0.3).run(
            np.array([1, 0])
        )
        assert result.success_probability == pytest.approx(1.0, abs=1e-9)
        assert result.convergence_probability == pytest.approx(1.0, abs=1e-9)

    def test_stage1_phase_preserves_normalization(self):
        protocol = AnalyticProtocol(14, self.NOISE, epsilon=0.3)
        distribution = protocol.initial_distribution(np.array([3, 1]))
        evolved = protocol.evolve_stage1_phase(distribution, 8)
        assert evolved.sum() == pytest.approx(1.0)
        assert np.all(evolved >= -1e-15)

    def test_stage2_phase_preserves_normalization(self):
        protocol = AnalyticProtocol(14, self.NOISE, epsilon=0.3)
        distribution = protocol.initial_distribution(np.array([9, 3]))
        evolved = protocol.evolve_stage2_phase(distribution, 6, 5)
        assert evolved.sum() == pytest.approx(1.0)
        assert np.all(evolved >= -1e-15)

    def test_run_rejects_population_beyond_state_budget(self):
        protocol = AnalyticProtocol(300, uniform_noise_matrix(3, 0.3), epsilon=0.3)
        with pytest.raises(ValueError, match="mean-field tier"):
            protocol.run(np.array([1, 0, 0]))

    def test_run_rejects_intractable_stage2_vote_table(self):
        # n = 40 with eps = 0.3 and 3 opinionated seeds schedules a final
        # Stage-2 sample size past the maj() table budget (see the
        # tractability gate) — run() must refuse rather than approximate.
        protocol = AnalyticProtocol(40, self.NOISE, epsilon=0.3)
        assert not exact_protocol_is_tractable(
            40, 2, 0.3, initial_opinionated=3
        )
        with pytest.raises(ValueError, match="maj\\(\\) table"):
            protocol.run(np.array([3, 0]))

    def test_run_requires_an_opinionated_node_for_target_inference(self):
        protocol = AnalyticProtocol(14, self.NOISE, epsilon=0.3)
        with pytest.raises(ValueError, match="no opinionated node"):
            protocol.run(np.array([0, 0]))


class TestMeanFieldProtocol:
    def test_tracks_exact_success_probability_at_moderate_n(self):
        noise = uniform_noise_matrix(2, 0.5)
        exact = AnalyticProtocol(40, noise, epsilon=0.5).run(np.array([3, 0]))
        mean_field = MeanFieldProtocol(40, noise, epsilon=0.5).run(
            np.array([3, 0])
        )
        assert mean_field.method == "mean-field"
        assert mean_field.success_probability == pytest.approx(
            exact.success_probability, abs=0.1
        )

    def test_runs_at_scales_the_exact_tier_cannot(self):
        result = MeanFieldProtocol(
            100_000, uniform_noise_matrix(2, 0.3), epsilon=0.3
        ).run(np.array([60_000, 40_000]))
        assert 0.0 <= result.success_probability <= 1.0
        assert result.convergence_probability <= 1.0
        assert result.expected_final_counts.sum() <= 100_000 + 1e-3
        assert result.state_space_size is None

    def test_phase_biases_cover_both_stages(self):
        result = MeanFieldProtocol(
            10_000, uniform_noise_matrix(3, 0.4), epsilon=0.4
        ).run(np.array([5_000, 3_000, 2_000]))
        assert result.phase_biases.shape[0] > result.stage1_phases
        assert (
            result.phase_biases[result.stage1_phases - 1]
            == pytest.approx(result.expected_bias_after_stage1)
        )
