"""Tests for the count-simplex machinery behind the analytic engine tier.

The exact Markov tier's correctness rests on three primitives: the
lexicographic enumeration of count states, the exact (log-space)
multinomial outcome law, and the per-group convolution that assembles a
one-round transition row.  Each is checked against first principles
(binomial identities, hand-computed small cases, conservation laws).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analytic import (
    DEFAULT_STATE_BUDGET,
    enumerate_states,
    multinomial_outcome_law,
    next_state_distribution,
    state_indices,
    state_lookup,
    state_space_size,
    states_within_budget,
)


class TestStateEnumeration:
    @pytest.mark.parametrize("n,k", [(0, 1), (1, 1), (5, 2), (12, 2), (6, 3)])
    def test_size_matches_stars_and_bars(self, n, k):
        assert state_space_size(n, k) == math.comb(n + k, k)
        assert enumerate_states(n, k).shape == (state_space_size(n, k), k)

    def test_states_are_unique_within_simplex_and_sorted(self):
        states = enumerate_states(7, 3)
        assert np.all(states >= 0)
        assert np.all(states.sum(axis=1) <= 7)
        as_tuples = [tuple(row) for row in states]
        assert as_tuples == sorted(set(as_tuples))

    def test_indices_invert_enumeration(self):
        n, k = 9, 2
        states = enumerate_states(n, k)
        ranks = state_indices(states, n, k)
        assert np.array_equal(ranks, np.arange(len(states)))

    def test_lookup_table_ranks_every_state(self):
        n, k = 6, 2
        lookup = state_lookup(n, k)
        states = enumerate_states(n, k)
        for index, state in enumerate(states):
            assert lookup[tuple(state)] == index

    def test_off_simplex_counts_rank_negative(self):
        ranks = state_indices(np.array([[8, 8]]), 9, 2)
        assert ranks[0] == -1

    def test_budget_gate(self):
        assert states_within_budget(12, 2, DEFAULT_STATE_BUDGET)
        assert not states_within_budget(300, 3, DEFAULT_STATE_BUDGET)


class TestMultinomialOutcomeLaw:
    def test_pmf_is_a_distribution_over_full_compositions(self):
        outcomes, pmf = multinomial_outcome_law(6, np.array([0.2, 0.5, 0.3]))
        assert np.all(outcomes.sum(axis=1) == 6)
        assert np.all(pmf > 0)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-12)

    def test_binomial_special_case(self):
        # Two categories: the first-slot tally is Binomial(n, p).
        n, p = 5, 0.3
        outcomes, pmf = multinomial_outcome_law(n, np.array([p, 1 - p]))
        for outcome, probability in zip(outcomes, pmf):
            expected = (
                math.comb(n, int(outcome[0]))
                * p ** outcome[0]
                * (1 - p) ** outcome[1]
            )
            assert probability == pytest.approx(expected, rel=1e-12)

    def test_zero_probability_category_is_pruned(self):
        outcomes, pmf = multinomial_outcome_law(4, np.array([0.0, 0.6, 0.4]))
        assert np.all(outcomes[:, 0] == 0)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-12)

    def test_deterministic_law_reduces_to_one_row(self):
        outcomes, pmf = multinomial_outcome_law(7, np.array([0.0, 1.0]))
        assert outcomes.shape == (1, 2)
        assert np.array_equal(outcomes[0], [0, 7])
        assert pmf[0] == pytest.approx(1.0)

    def test_zero_draws_is_point_mass_at_origin(self):
        outcomes, pmf = multinomial_outcome_law(0, np.array([0.5, 0.5]))
        assert outcomes.shape == (1, 2)
        assert np.array_equal(outcomes[0], [0, 0])
        assert pmf[0] == pytest.approx(1.0)


class TestNextStateDistribution:
    def test_conserves_probability(self):
        n, k = 8, 2
        # Row g of the laws: outcome distribution of one group-g node over
        # {0 = end undecided, 1, 2}.
        laws = np.array([
            [1.0, 0.0, 0.0],   # undecided nodes stay undecided
            [0.1, 0.6, 0.3],   # opinion-1 nodes
            [0.1, 0.3, 0.6],   # opinion-2 nodes
        ])
        distribution = next_state_distribution(np.array([2, 3, 3]), laws, n, k)
        assert distribution.shape == (state_space_size(n, k),)
        assert np.all(distribution >= 0)
        assert distribution.sum() == pytest.approx(1.0, abs=1e-10)

    def test_deterministic_laws_give_point_mass(self):
        n, k = 6, 2
        to_first = np.array([
            [0.0, 1.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 1.0, 0.0],
        ])
        distribution = next_state_distribution(np.array([0, 4, 2]), to_first, n, k)
        target = state_indices(np.array([[6, 0]]), n, k)[0]
        assert distribution[target] == pytest.approx(1.0)
        assert np.count_nonzero(distribution) == 1

    def test_single_node_round_reproduces_its_law(self):
        n, k = 1, 2
        law = np.array([0.25, 0.45, 0.30])
        laws = np.stack([law, law, law])
        distribution = next_state_distribution(np.array([0, 1, 0]), laws, n, k)
        undecided = state_indices(np.array([[0, 0]]), n, k)[0]
        first = state_indices(np.array([[1, 0]]), n, k)[0]
        second = state_indices(np.array([[0, 1]]), n, k)[0]
        assert distribution[undecided] == pytest.approx(0.25)
        assert distribution[first] == pytest.approx(0.45)
        assert distribution[second] == pytest.approx(0.30)
