"""Tests for the distribution-level verification helpers.

These primitives back the exact-vs-sampled agreement harness in
``tests/integration/test_engine_agreement.py``: total variation
distance, the empirical distribution over count states, the
distribution-free sampling TVD threshold, and Wilson score intervals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic import (
    Z_99_9,
    empirical_state_distribution,
    sampling_tvd_threshold,
    state_indices,
    state_space_size,
    total_variation_distance,
    wilson_interval,
)


class TestTotalVariationDistance:
    def test_identical_distributions_have_zero_distance(self):
        p = np.array([0.2, 0.3, 0.5])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_supports_have_distance_one(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert total_variation_distance(p, q) == pytest.approx(1.0)

    def test_symmetry_and_known_value(self):
        p = np.array([0.5, 0.5, 0.0])
        q = np.array([0.25, 0.25, 0.5])
        assert total_variation_distance(p, q) == pytest.approx(0.5)
        assert total_variation_distance(q, p) == pytest.approx(
            total_variation_distance(p, q)
        )


class TestEmpiricalStateDistribution:
    def test_tallies_count_vectors(self):
        n, k = 4, 2
        counts = np.array([[2, 1], [2, 1], [0, 4], [2, 1]])
        distribution = empirical_state_distribution(counts, n, k)
        assert distribution.shape == (state_space_size(n, k),)
        assert distribution.sum() == pytest.approx(1.0)
        rank_a = state_indices(np.array([[2, 1]]), n, k)[0]
        rank_b = state_indices(np.array([[0, 4]]), n, k)[0]
        assert distribution[rank_a] == pytest.approx(0.75)
        assert distribution[rank_b] == pytest.approx(0.25)

    def test_rejects_off_simplex_rows(self):
        with pytest.raises(ValueError):
            empirical_state_distribution(np.array([[3, 3]]), 4, 2)


class TestSamplingTvdThreshold:
    def test_shrinks_with_more_samples(self):
        loose = sampling_tvd_threshold(91, 400)
        tight = sampling_tvd_threshold(91, 4000)
        assert tight < loose

    def test_grows_with_support_size(self):
        assert sampling_tvd_threshold(1000, 4000) > sampling_tvd_threshold(91, 4000)

    def test_matches_closed_form(self):
        support, samples, alpha = 91, 4000, 0.001
        expected = 0.5 * np.sqrt(support / samples) + np.sqrt(
            np.log(1.0 / alpha) / (2.0 * samples)
        )
        assert sampling_tvd_threshold(support, samples) == pytest.approx(expected)

    def test_empirical_coverage(self):
        # Draw empirical distributions from a known law; the threshold must
        # dominate the realised TVD in every replicate (alpha = 0.001).
        rng = np.random.default_rng(7)
        p = np.array([0.5, 0.2, 0.2, 0.1])
        samples = 500
        threshold = sampling_tvd_threshold(p.size, samples)
        for _ in range(50):
            draws = rng.multinomial(samples, p) / samples
            assert total_variation_distance(p, draws) < threshold


class TestWilsonInterval:
    def test_is_clamped_to_unit_interval(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0 and 0.0 < high < 1.0
        low, high = wilson_interval(20, 20)
        assert 0.0 < low < 1.0 and high == 1.0

    def test_contains_point_estimate(self):
        low, high = wilson_interval(13, 40)
        assert low < 13 / 40 < high

    def test_narrows_with_more_trials(self):
        low_small, high_small = wilson_interval(50, 100)
        low_large, high_large = wilson_interval(500, 1000)
        assert (high_large - low_large) < (high_small - low_small)

    def test_z_default_is_99_9_two_sided(self):
        # Phi^{-1}(1 - 0.001 / 2) = 3.29052673...
        assert Z_99_9 == pytest.approx(3.2905267314919255, rel=1e-12)

    def test_empirical_coverage(self):
        # 200 binomial replicates at p = 0.3: the 99.9% interval must cover
        # the true p in every one of them (expected misses: 0.2).
        rng = np.random.default_rng(11)
        p, trials = 0.3, 250
        for _ in range(200):
            successes = int(rng.binomial(trials, p))
            low, high = wilson_interval(successes, trials)
            assert low <= p <= high
