"""Tests for the analytic dynamics tier: exact Markov chain + mean field.

The exact chain is checked against first principles (stochastic kernel,
hand-computed voter law at n = 2, noise-free absorption) and the mean
field against the exact tier at a scale where both are available.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.analytic import (
    AnalyticDynamicsResult,
    ExactDynamicsChain,
    MeanFieldDynamics,
    exact_dynamics_is_tractable,
    observation_law,
    rule_group_laws,
)
from repro.noise.families import identity_matrix, uniform_noise_matrix

ALL_RULES = [
    ("voter", None),
    ("3-majority", None),
    ("h-majority", 5),
    ("undecided-state", None),
    ("median-rule", None),
]


class TestTractabilityGate:
    def test_small_instances_are_tractable(self):
        for rule, sample_size in ALL_RULES:
            assert exact_dynamics_is_tractable(rule, 12, 2, sample_size=sample_size)

    def test_large_instances_are_not(self):
        assert not exact_dynamics_is_tractable("voter", 300, 3)

    def test_intractable_h_majority_table_is_rejected(self):
        # maj() vote tables blow up before the state budget does.
        assert not exact_dynamics_is_tractable("h-majority", 10, 2, sample_size=400)


class TestObservationLaw:
    def test_is_a_distribution(self):
        noise = uniform_noise_matrix(2, 0.4)
        # Opinion shares only; the undecided mass (0.25) is implicit.
        law = observation_law(np.array([0.45, 0.30]), noise)
        assert law.shape == (3,)
        assert np.all(law >= 0)
        assert law.sum() == pytest.approx(1.0)

    def test_identity_noise_preserves_shares(self):
        law = observation_law(np.array([0.5, 0.3]), identity_matrix(2))
        assert np.allclose(law, [0.2, 0.5, 0.3])


class TestExactChainKernel:
    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_kernel_rows_are_distributions(self, rule, sample_size):
        chain = ExactDynamicsChain(
            rule, 8, uniform_noise_matrix(2, 0.4), sample_size=sample_size
        )
        kernel = chain.transition_kernel()
        num_states = chain.states.shape[0]
        assert kernel.shape == (num_states, num_states)
        assert np.all(kernel >= 0)
        assert np.allclose(kernel.sum(axis=1), 1.0, atol=1e-10)

    def test_voter_one_round_law_at_n2_by_hand(self):
        # n = 2, k = 2, identity noise, state (1, 1): each node observes a
        # uniform node; observing itself keeps its value, observing the
        # other adopts it.  Per-node law: 1/2 keep, 1/2 flip, independent.
        chain = ExactDynamicsChain("voter", 2, identity_matrix(2))
        distribution = chain.one_round_distribution(np.array([1, 1]))
        from repro.analytic import state_indices

        both_first = state_indices(np.array([[2, 0]]), 2, 2)[0]
        both_second = state_indices(np.array([[0, 2]]), 2, 2)[0]
        split = state_indices(np.array([[1, 1]]), 2, 2)[0]
        assert distribution[both_first] == pytest.approx(0.25)
        assert distribution[both_second] == pytest.approx(0.25)
        assert distribution[split] == pytest.approx(0.5)

    def test_noise_free_consensus_absorbs(self):
        chain = ExactDynamicsChain("3-majority", 10, identity_matrix(2))
        result = chain.run(
            np.array([10, 0]), 5, target_opinion=1, record_history=False
        )
        assert result.success_probability == pytest.approx(1.0)
        assert result.convergence_probability == pytest.approx(1.0)

    def test_run_returns_expected_fields(self):
        chain = ExactDynamicsChain("voter", 12, uniform_noise_matrix(2, 0.5))
        result = chain.run(np.array([7, 4]), 60, target_opinion=1)
        assert isinstance(result, AnalyticDynamicsResult)
        assert result.method == "exact"
        assert 0.0 <= result.success_probability <= 1.0
        assert 0.0 <= result.convergence_probability <= 1.0
        assert result.expected_final_counts.shape == (2,)
        assert result.bias_trajectory.ndim == 1
        assert result.state_space_size == chain.states.shape[0]

    def test_success_and_convergence_probabilities_are_consistent(self):
        chain = ExactDynamicsChain("3-majority", 12, uniform_noise_matrix(2, 0.5))
        result = chain.run(np.array([7, 4]), 60, target_opinion=1)
        assert result.success_probability <= result.convergence_probability + 1e-12

    def test_kernel_cache_reuses_identical_configurations(self):
        noise = uniform_noise_matrix(2, 0.5)
        first = ExactDynamicsChain("voter", 10, noise)
        second = ExactDynamicsChain("voter", 10, noise)
        assert first.transition_kernel() is second.transition_kernel()


class TestRuleGroupLaws:
    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_laws_are_row_stochastic(self, rule, sample_size):
        noise = uniform_noise_matrix(2, 0.4)
        observation = observation_law(np.array([0.45, 0.30]), noise)
        laws = rule_group_laws(rule, observation, sample_size=sample_size)
        assert laws.shape == (3, 3)
        assert np.all(laws >= 0)
        assert np.allclose(laws.sum(axis=1), 1.0, atol=1e-12)


class TestMeanField:
    def test_tracks_exact_success_probability_at_moderate_n(self):
        # At n = 40 (k = 2) the exact chain is still within budget; the
        # Gaussian-diffusion mean field must land close to it.
        noise = uniform_noise_matrix(2, 0.5)
        initial = np.array([26, 14])
        exact = ExactDynamicsChain("3-majority", 40, noise).run(
            initial, 80, target_opinion=1, record_history=False
        )
        mean_field = MeanFieldDynamics("3-majority", 40, noise).run(
            initial, 80, target_opinion=1, record_history=False
        )
        assert mean_field.method == "mean-field"
        assert mean_field.success_probability == pytest.approx(
            exact.success_probability, abs=0.1
        )

    def test_runs_at_scales_the_exact_tier_cannot(self):
        result = MeanFieldDynamics(
            "3-majority", 1_000_000, uniform_noise_matrix(2, 0.3)
        ).run(np.array([550_000, 450_000]), 40, target_opinion=1)
        assert 0.0 <= result.success_probability <= 1.0
        assert result.expected_final_counts.sum() <= 1_000_000 + 1e-6

    def test_expected_shares_are_conserved(self):
        result = MeanFieldDynamics(
            "voter", 10_000, uniform_noise_matrix(2, 0.4)
        ).run(np.array([6_000, 4_000]), 25, target_opinion=1)
        assert result.expected_final_counts.sum() <= 10_000 + 1e-6
        assert np.all(result.expected_final_counts >= -1e-9)
