"""Tests for repro.noise.majority_preserving (Definition 2 / Section 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bias import bias_toward, is_delta_biased
from repro.noise.families import (
    binary_flip_matrix,
    diagonally_dominant_counterexample,
    identity_matrix,
    reset_matrix,
    uniform_noise_matrix,
)
from repro.noise.majority_preserving import (
    bias_gap_bounds,
    check_majority_preserving,
    epsilon_for_delta,
    minimal_bias_gap,
    sufficient_condition_epsilon,
    worst_case_distribution,
)


class TestCheckMajorityPreserving:
    def test_identity_is_mp_for_any_parameters(self):
        report = check_majority_preserving(identity_matrix(3), 0.5, 0.2)
        assert report.is_majority_preserving
        # The identity channel keeps the full delta gap: worst gap == delta.
        assert report.minimal_gap == pytest.approx(0.2, abs=1e-6)

    def test_binary_flip_worst_gap_is_two_epsilon_delta(self):
        # For Eq. (1), (cP)_1 - (cP)_2 = 2 eps (c_1 - c_2) >= 2 eps delta.
        epsilon, delta = 0.2, 0.1
        report = check_majority_preserving(binary_flip_matrix(epsilon), epsilon, delta)
        assert report.minimal_gap == pytest.approx(2 * epsilon * delta, abs=1e-6)
        assert report.is_majority_preserving

    def test_uniform_noise_gap_formula(self):
        # For the k-opinion uniform matrix, the gap is (eps + eps/(k-1)) * delta.
        k, epsilon, delta = 4, 0.2, 0.15
        report = check_majority_preserving(
            uniform_noise_matrix(k, epsilon), epsilon, delta
        )
        expected = (epsilon + epsilon / (k - 1)) * delta
        assert report.minimal_gap == pytest.approx(expected, abs=1e-6)
        assert report.is_majority_preserving

    def test_counterexample_rejected(self):
        report = check_majority_preserving(
            diagonally_dominant_counterexample(0.1), 0.1, 0.1
        )
        assert not report.is_majority_preserving
        assert report.minimal_gap < 0
        assert not report.preserves_plurality

    def test_counterexample_with_large_delta_recovers(self):
        # The Section-4 argument needs eps, delta < 1/6; for a large delta the
        # diagonally dominant matrix does preserve the plurality.
        report = check_majority_preserving(
            diagonally_dominant_counterexample(0.1), 0.05, 0.9
        )
        assert report.preserves_plurality

    def test_report_summary_mentions_verdict(self):
        report = check_majority_preserving(uniform_noise_matrix(3, 0.3), 0.3, 0.1)
        assert "IS" in report.summary()
        report_bad = check_majority_preserving(
            diagonally_dominant_counterexample(0.1), 0.1, 0.1
        )
        assert "NOT" in report_bad.summary()

    def test_per_opinion_gaps_cover_all_rivals(self):
        report = check_majority_preserving(uniform_noise_matrix(4, 0.2), 0.2, 0.1)
        assert set(report.per_opinion_gap) == {2, 3, 4}

    def test_respects_majority_opinion_argument(self):
        # Reset noise toward opinion 1 is m.p. w.r.t. opinion 1 but not 2.
        matrix = reset_matrix(3, 0.5, reset_opinion=1)
        assert check_majority_preserving(matrix, 0.1, 0.1, 1).is_majority_preserving
        assert not check_majority_preserving(
            matrix, 0.1, 0.1, 2
        ).is_majority_preserving

    def test_parameter_validation(self):
        matrix = uniform_noise_matrix(3, 0.2)
        with pytest.raises(ValueError):
            check_majority_preserving(matrix, 0.0, 0.1)
        with pytest.raises(ValueError):
            check_majority_preserving(matrix, 0.1, 0.0)

    def test_infeasible_delta_raises(self):
        # A delta-biased distribution with delta close to 1 cannot exist when
        # it would force negative rival shares... it can actually always exist
        # (c_m = 1), so instead check delta > 1 is rejected by validation.
        with pytest.raises(ValueError):
            check_majority_preserving(uniform_noise_matrix(3, 0.2), 0.1, 1.5)


class TestMinimalBiasGapAndWorstCase:
    def test_worst_case_distribution_is_delta_biased(self):
        matrix = diagonally_dominant_counterexample(0.1)
        delta = 0.1
        worst = worst_case_distribution(matrix, delta, 1)
        assert worst.sum() == pytest.approx(1.0, abs=1e-6)
        assert is_delta_biased(worst, 1, delta - 1e-9)

    def test_worst_case_achieves_minimal_gap(self):
        matrix = diagonally_dominant_counterexample(0.1)
        delta = 0.1
        gap, _, worst = minimal_bias_gap(matrix, delta, 1)
        after = matrix.propagate(worst)
        realized = float(after[0] - np.delete(after, 0).max())
        assert realized == pytest.approx(gap, abs=1e-6)

    def test_counterexample_worst_case_puts_mass_on_opinion_three(self):
        # Under the c.P convention the adversarial profile concentrates the
        # rival mass on opinion 3 (which feeds opinion 3 via the 1 -> 3 leak).
        worst = worst_case_distribution(diagonally_dominant_counterexample(0.1), 0.1, 1)
        assert worst[2] > worst[1]

    def test_gap_bounds_ordering(self):
        low, high = bias_gap_bounds(uniform_noise_matrix(3, 0.2), 0.1)
        assert low <= high

    def test_single_opinion_matrix_vacuous(self):
        gap, per_opinion, worst = minimal_bias_gap(identity_matrix(1), 0.1, 1)
        assert gap == np.inf
        assert per_opinion == {}


class TestEpsilonForDelta:
    def test_binary_flip_effective_epsilon(self):
        # Gap = 2 eps delta, so the effective epsilon is 2 eps.
        assert epsilon_for_delta(binary_flip_matrix(0.2), 0.1) == pytest.approx(
            0.4, abs=1e-6
        )

    def test_counterexample_clamped_to_zero(self):
        assert epsilon_for_delta(
            diagonally_dominant_counterexample(0.1), 0.1
        ) == pytest.approx(0.0)

    def test_identity_effective_epsilon_is_one(self):
        assert epsilon_for_delta(identity_matrix(3), 0.2) == pytest.approx(1.0)


class TestSufficientCondition:
    def test_uniform_noise_matrix_has_zero_delta_min(self):
        epsilon, delta_min = sufficient_condition_epsilon(uniform_noise_matrix(4, 0.2))
        # Off-diagonal entries are all equal, so the condition holds for every
        # delta, and epsilon = (p - q)/2 = (eps + eps/(k-1))/2.
        assert delta_min == pytest.approx(0.0)
        assert epsilon == pytest.approx((0.2 + 0.2 / 3) / 2.0)

    def test_counterexample_condition_never_holds(self):
        epsilon, delta_min = sufficient_condition_epsilon(
            diagonally_dominant_counterexample(0.1)
        )
        assert delta_min == np.inf

    def test_sufficient_condition_implies_lp_verdict(self, rng):
        # Whenever the Eq. (18) sufficient condition asserts the property for
        # some delta, the exact LP check must agree.
        from repro.noise.families import near_uniform_matrix

        matrix = near_uniform_matrix(4, 0.6, 0.12, 0.14, rng)
        epsilon, delta_min = sufficient_condition_epsilon(matrix)
        assert epsilon > 0
        delta = min(1.0, max(delta_min, 1e-3) * 1.5)
        report = check_majority_preserving(matrix, epsilon, delta)
        assert report.is_majority_preserving


class TestMajorityPreservationProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.floats(min_value=0.02, max_value=0.3),
        st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_uniform_noise_always_mp(self, k, epsilon, delta):
        epsilon = min(epsilon, 1.0 - 1.0 / k - 1e-3)
        matrix = uniform_noise_matrix(k, epsilon)
        report = check_majority_preserving(matrix, epsilon, delta)
        assert report.is_majority_preserving

    @given(
        st.floats(min_value=0.02, max_value=0.3),
        st.floats(min_value=0.01, max_value=0.4),
    )
    @settings(max_examples=30, deadline=None)
    def test_gap_scales_linearly_with_delta(self, epsilon, delta):
        # For the uniform-noise family the worst-case gap is exactly
        # (eps + eps/(k-1)) * delta, hence linear in delta.
        matrix = uniform_noise_matrix(3, epsilon)
        gap_small, _, _ = minimal_bias_gap(matrix, delta, 1)
        gap_double, _, _ = minimal_bias_gap(matrix, min(2 * delta, 0.99), 1)
        expected_ratio = min(2 * delta, 0.99) / delta
        assert gap_double / gap_small == pytest.approx(expected_ratio, rel=1e-4)

    @given(st.floats(min_value=0.05, max_value=0.45))
    @settings(max_examples=30, deadline=None)
    def test_propagated_bias_never_negative_for_mp_matrix(self, delta):
        # Directly exercise Definition 2's meaning: any delta-biased c keeps
        # opinion 1 strictly ahead after one application of an m.p. matrix.
        matrix = uniform_noise_matrix(3, 0.25)
        rng = np.random.default_rng(int(delta * 10_000))
        rest = rng.dirichlet([1.0, 1.0]) * (1.0 - delta) / 2.0
        c = np.array([delta + rest.sum() * 0.0 + (1.0 - delta) / 2.0, *rest])
        c = c / c.sum()
        if bias_toward(c, 1) < delta / 2:
            return  # construction did not reach the intended bias; skip
        after = matrix.propagate(c)
        assert after[0] > max(after[1], after[2])
