"""Tests for repro.noise.estimation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.estimation import (
    calibrate_epsilon,
    collect_channel_observations,
    estimate_noise_matrix,
    estimation_error,
)
from repro.noise.families import (
    binary_flip_matrix,
    cyclic_shift_matrix,
    uniform_noise_matrix,
)


class TestCollectChannelObservations:
    def test_shapes_and_ranges(self, uniform3, rng):
        sent, received = collect_channel_observations(uniform3, 500, rng)
        assert sent.shape == received.shape == (500,)
        assert sent.min() >= 1 and sent.max() <= 3
        assert received.min() >= 1 and received.max() <= 3

    def test_custom_sent_distribution(self, uniform3, rng):
        sent, _ = collect_channel_observations(
            uniform3, 2000, rng, sent_distribution=np.array([1.0, 0.0, 0.0])
        )
        assert set(np.unique(sent)) == {1}

    def test_invalid_sent_distribution(self, uniform3, rng):
        with pytest.raises(ValueError):
            collect_channel_observations(
                uniform3, 10, rng, sent_distribution=np.array([0.5, 0.5])
            )
        with pytest.raises(ValueError):
            collect_channel_observations(
                uniform3, 10, rng, sent_distribution=np.zeros(3)
            )


class TestEstimateNoiseMatrix:
    def test_recovers_true_matrix_with_enough_data(self, rng):
        truth = uniform_noise_matrix(3, 0.25)
        sent, received = collect_channel_observations(truth, 60_000, rng)
        estimate = estimate_noise_matrix(sent, received, 3, smoothing=0.5)
        assert estimation_error(estimate, truth) < 0.02

    def test_rows_are_stochastic(self, rng):
        truth = cyclic_shift_matrix(4, 0.4)
        sent, received = collect_channel_observations(truth, 5000, rng)
        estimate = estimate_noise_matrix(sent, received, 4)
        assert np.allclose(estimate.matrix.sum(axis=1), 1.0)

    def test_smoothing_handles_unseen_transitions(self):
        # Only opinion 1 was ever sent; smoothing must keep rows 2 and 3 valid.
        sent = np.ones(50, dtype=int)
        received = np.ones(50, dtype=int)
        estimate = estimate_noise_matrix(sent, received, 3, smoothing=1.0)
        assert np.allclose(estimate.matrix.sum(axis=1), 1.0)
        assert np.allclose(estimate.matrix[1], 1.0 / 3.0)

    def test_no_smoothing_requires_full_coverage(self):
        sent = np.ones(10, dtype=int)
        received = np.ones(10, dtype=int)
        with pytest.raises(ValueError):
            estimate_noise_matrix(sent, received, 2, smoothing=0.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_noise_matrix(np.array([1, 2]), np.array([1]), 2)

    def test_out_of_range_labels_rejected(self):
        with pytest.raises(ValueError):
            estimate_noise_matrix(np.array([1, 4]), np.array([1, 1]), 3)

    def test_empty_observations_rejected(self):
        with pytest.raises(ValueError):
            estimate_noise_matrix(np.array([]), np.array([]), 2)

    @given(st.floats(min_value=0.05, max_value=0.45), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_estimation_error_shrinks_with_data(self, epsilon, seed):
        truth = binary_flip_matrix(epsilon)
        rng = np.random.default_rng(seed)
        sent_small, received_small = collect_channel_observations(truth, 200, rng)
        sent_large, received_large = collect_channel_observations(truth, 20_000, rng)
        error_small = estimation_error(
            estimate_noise_matrix(sent_small, received_small, 2), truth
        )
        error_large = estimation_error(
            estimate_noise_matrix(sent_large, received_large, 2), truth
        )
        assert error_large < error_small + 0.05


class TestEstimationError:
    def test_zero_for_identical_matrices(self):
        matrix = uniform_noise_matrix(3, 0.2)
        assert estimation_error(matrix, matrix) == 0.0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimation_error(uniform_noise_matrix(3, 0.2), binary_flip_matrix(0.2))


class TestCalibrateEpsilon:
    def test_calibrated_epsilon_close_to_truth(self, rng):
        truth = binary_flip_matrix(0.25)  # effective epsilon at any delta: 0.5
        sent, received = collect_channel_observations(truth, 40_000, rng)
        epsilon, estimate = calibrate_epsilon(
            sent, received, 2, delta=0.1, safety_factor=1.0
        )
        assert epsilon == pytest.approx(0.5, abs=0.05)
        assert estimate.num_opinions == 2

    def test_safety_factor_shrinks_epsilon(self, rng):
        truth = uniform_noise_matrix(3, 0.3)
        sent, received = collect_channel_observations(truth, 20_000, rng)
        full_eps, _ = calibrate_epsilon(sent, received, 3, 0.1, safety_factor=1.0)
        safe_eps, _ = calibrate_epsilon(sent, received, 3, 0.1, safety_factor=0.8)
        assert safe_eps == pytest.approx(0.8 * full_eps)

    def test_invalid_safety_factor(self, rng):
        with pytest.raises(ValueError):
            calibrate_epsilon(np.array([1]), np.array([1]), 2, 0.1, safety_factor=1.5)

    def test_calibrated_protocol_run_succeeds(self, rng):
        # The end-to-end story: observe the channel, calibrate, run the
        # protocol with the estimated epsilon.
        from repro.core.rumor import RumorSpreading

        truth = uniform_noise_matrix(3, 0.3)
        sent, received = collect_channel_observations(truth, 30_000, rng)
        epsilon, _ = calibrate_epsilon(sent, received, 3, delta=0.1)
        result = RumorSpreading(
            600, 3, truth, epsilon, correct_opinion=1, random_state=0
        ).run()
        assert result.success
