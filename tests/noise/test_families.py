"""Tests for repro.noise.families."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.families import (
    binary_flip_matrix,
    cyclic_shift_matrix,
    diagonally_dominant_counterexample,
    identity_matrix,
    near_uniform_matrix,
    random_majority_preserving_matrix,
    reset_matrix,
    uniform_noise_matrix,
)
from repro.noise.majority_preserving import check_majority_preserving


class TestIdentityMatrix:
    def test_is_identity(self):
        assert identity_matrix(4).is_identity()

    def test_rejects_zero_opinions(self):
        with pytest.raises(ValueError):
            identity_matrix(0)


class TestBinaryFlipMatrix:
    def test_matches_paper_equation_1(self):
        matrix = binary_flip_matrix(0.2)
        expected = [[0.7, 0.3], [0.3, 0.7]]
        assert np.allclose(matrix.matrix, expected)

    def test_epsilon_bounds(self):
        with pytest.raises(ValueError):
            binary_flip_matrix(0.0)
        with pytest.raises(ValueError):
            binary_flip_matrix(0.6)

    def test_equals_uniform_noise_for_k2(self):
        # For k = 2, the uniform-noise generalization with the same epsilon
        # coincides with Eq. (1) up to the 1/2 vs 1/k offset convention:
        # uniform keeps with 1/2 + eps, same as the flip matrix.
        assert binary_flip_matrix(0.2) == uniform_noise_matrix(2, 0.2)


class TestUniformNoiseMatrix:
    def test_diagonal_and_off_diagonal_values(self):
        matrix = uniform_noise_matrix(4, 0.2)
        assert matrix.probability(1, 1) == pytest.approx(0.25 + 0.2)
        assert matrix.probability(1, 2) == pytest.approx(0.25 - 0.2 / 3)

    def test_rows_stochastic(self):
        matrix = uniform_noise_matrix(5, 0.1)
        assert np.allclose(matrix.matrix.sum(axis=1), 1.0)

    def test_requires_two_opinions(self):
        with pytest.raises(ValueError):
            uniform_noise_matrix(1, 0.1)

    def test_epsilon_upper_bound(self):
        # eps may not exceed 1 - 1/k (entries would go negative).
        with pytest.raises(ValueError):
            uniform_noise_matrix(3, 0.7)
        uniform_noise_matrix(3, 2.0 / 3.0)  # boundary accepted

    def test_is_majority_preserving_for_every_delta(self):
        matrix = uniform_noise_matrix(4, 0.2)
        for delta in (0.01, 0.1, 0.5):
            report = check_majority_preserving(matrix, 0.2, delta)
            assert report.is_majority_preserving

    @given(
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.01, max_value=0.3),
    )
    @settings(max_examples=40, deadline=None)
    def test_symmetric_and_doubly_stochastic(self, k, epsilon):
        matrix = uniform_noise_matrix(k, epsilon)
        assert matrix.is_symmetric()
        assert matrix.is_doubly_stochastic()


class TestNearUniformMatrix:
    def test_diagonal_fixed(self, rng):
        matrix = near_uniform_matrix(4, 0.55, 0.1, 0.2, rng)
        assert np.allclose(np.diag(matrix.matrix), 0.55)

    def test_rows_stochastic(self, rng):
        matrix = near_uniform_matrix(5, 0.4, 0.1, 0.2, rng)
        assert np.allclose(matrix.matrix.sum(axis=1), 1.0)

    def test_invalid_band_rejected(self, rng):
        with pytest.raises(ValueError):
            near_uniform_matrix(3, 0.5, 0.3, 0.1, rng)

    def test_requires_two_opinions(self, rng):
        with pytest.raises(ValueError):
            near_uniform_matrix(1, 0.5, 0.1, 0.2, rng)


class TestCyclicShiftMatrix:
    def test_mass_splits_to_neighbours(self):
        matrix = cyclic_shift_matrix(5, 0.3)
        assert matrix.probability(2, 2) == pytest.approx(0.7)
        assert matrix.probability(2, 1) == pytest.approx(0.15)
        assert matrix.probability(2, 3) == pytest.approx(0.15)
        assert matrix.probability(2, 4) == pytest.approx(0.0)

    def test_wraparound(self):
        matrix = cyclic_shift_matrix(4, 0.4)
        assert matrix.probability(1, 4) == pytest.approx(0.2)
        assert matrix.probability(4, 1) == pytest.approx(0.2)

    def test_two_opinions_degenerate_wrap(self):
        # With k = 2 both neighbours are the same opinion, so all noise mass
        # lands on the complement.
        matrix = cyclic_shift_matrix(2, 0.4)
        assert matrix.probability(1, 2) == pytest.approx(0.4)

    def test_rows_stochastic(self):
        matrix = cyclic_shift_matrix(6, 0.25)
        assert np.allclose(matrix.matrix.sum(axis=1), 1.0)


class TestResetMatrix:
    def test_reset_target_receives_noise_mass(self):
        matrix = reset_matrix(3, 0.3, reset_opinion=2)
        assert matrix.probability(1, 2) == pytest.approx(0.3)
        assert matrix.probability(2, 2) == pytest.approx(1.0)
        assert matrix.probability(3, 3) == pytest.approx(0.7)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            reset_matrix(3, 0.2, reset_opinion=4)

    def test_not_mp_for_other_opinions(self):
        # Resetting toward opinion 1 destroys a majority held by opinion 2
        # once the reset probability is large enough.
        matrix = reset_matrix(3, 0.6, reset_opinion=1)
        report = check_majority_preserving(matrix, 0.1, 0.1, majority_opinion=2)
        assert not report.is_majority_preserving


class TestDiagonallyDominantCounterexample:
    def test_structure_matches_paper(self):
        matrix = diagonally_dominant_counterexample(0.1)
        expected = np.array(
            [
                [0.6, 0.0, 0.4],
                [0.4, 0.6, 0.0],
                [0.0, 0.4, 0.6],
            ]
        )
        assert np.allclose(matrix.matrix, expected)

    def test_is_diagonally_dominant_yet_not_mp(self):
        matrix = diagonally_dominant_counterexample(0.1)
        assert matrix.is_diagonally_dominant()
        report = check_majority_preserving(matrix, 0.1, 0.1)
        assert not report.is_majority_preserving
        assert not report.preserves_plurality

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            diagonally_dominant_counterexample(0.0)
        with pytest.raises(ValueError):
            diagonally_dominant_counterexample(0.7)


class TestRandomMajorityPreservingMatrix:
    def test_generated_matrix_is_mp(self, rng):
        matrix = random_majority_preserving_matrix(4, 0.1, 0.2, rng)
        report = check_majority_preserving(matrix, 0.05, 0.2)
        assert report.is_majority_preserving

    def test_rows_stochastic(self, rng):
        matrix = random_majority_preserving_matrix(3, 0.1, 0.3, rng)
        assert np.allclose(matrix.matrix.sum(axis=1), 1.0)

    def test_requires_two_opinions(self, rng):
        with pytest.raises(ValueError):
            random_majority_preserving_matrix(1, 0.1, 0.2, rng)

    @given(
        st.integers(min_value=2, max_value=5),
        st.floats(min_value=0.02, max_value=0.15),
        st.floats(min_value=0.05, max_value=0.5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_sufficient_condition_always_satisfied(self, k, epsilon, delta, seed):
        matrix = random_majority_preserving_matrix(
            k, epsilon, delta, np.random.default_rng(seed)
        )
        diag = float(np.min(np.diag(matrix.matrix)))
        off = matrix.matrix[~np.eye(k, dtype=bool)]
        q_u, q_l = float(off.max()), float(off.min())
        # Eq. (18): (p - q_u) * delta / 2 >= q_u - q_l.
        assert (diag - q_u) * delta / 2.0 >= (q_u - q_l) - 1e-9
