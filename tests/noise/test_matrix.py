"""Tests for repro.noise.matrix.NoiseMatrix."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.noise.families import identity_matrix, uniform_noise_matrix
from repro.noise.matrix import NoiseMatrix


def random_stochastic_matrix(raw: np.ndarray) -> np.ndarray:
    """Normalize a non-negative matrix into a row-stochastic one."""
    raw = np.abs(raw) + 1e-3
    return raw / raw.sum(axis=1, keepdims=True)


class TestConstruction:
    def test_valid_matrix_accepted(self):
        matrix = NoiseMatrix([[0.7, 0.3], [0.4, 0.6]])
        assert matrix.num_opinions == 2

    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError):
            NoiseMatrix([[0.7, 0.2], [0.4, 0.6]])

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            NoiseMatrix([[1.2, -0.2], [0.5, 0.5]])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            NoiseMatrix([[0.5, 0.5]])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            NoiseMatrix([[float("nan"), 1.0], [0.5, 0.5]])

    def test_matrix_is_read_only(self):
        matrix = NoiseMatrix([[1.0]])
        with pytest.raises(ValueError):
            matrix.matrix[0, 0] = 0.5

    def test_default_name(self):
        assert "2" in NoiseMatrix(np.eye(2)).name

    def test_custom_name(self):
        assert NoiseMatrix(np.eye(2), name="mychannel").name == "mychannel"


class TestAccessors:
    def test_probability_uses_one_based_labels(self):
        matrix = NoiseMatrix([[0.7, 0.3], [0.4, 0.6]])
        assert matrix.probability(1, 2) == pytest.approx(0.3)
        assert matrix.probability(2, 1) == pytest.approx(0.4)

    def test_probability_out_of_range(self):
        matrix = NoiseMatrix(np.eye(2))
        with pytest.raises(ValueError):
            matrix.probability(0, 1)
        with pytest.raises(ValueError):
            matrix.probability(1, 3)

    def test_row_returns_distribution(self):
        matrix = NoiseMatrix([[0.7, 0.3], [0.4, 0.6]])
        assert np.allclose(matrix.row(1), [0.7, 0.3])


class TestStructuralProperties:
    def test_identity_detection(self):
        assert identity_matrix(3).is_identity()
        assert not uniform_noise_matrix(3, 0.2).is_identity()

    def test_symmetry(self):
        assert uniform_noise_matrix(3, 0.2).is_symmetric()
        assert not NoiseMatrix([[0.9, 0.1], [0.5, 0.5]]).is_symmetric()

    def test_doubly_stochastic(self):
        assert uniform_noise_matrix(4, 0.3).is_doubly_stochastic()
        assert not NoiseMatrix([[0.9, 0.1], [0.5, 0.5]]).is_doubly_stochastic()

    def test_diagonal_dominance(self):
        assert uniform_noise_matrix(3, 0.3).is_diagonally_dominant()
        off_heavy = NoiseMatrix([[0.2, 0.8], [0.8, 0.2]])
        assert not off_heavy.is_diagonally_dominant()

    def test_diagonal_advantage_positive_for_uniform_noise(self):
        matrix = uniform_noise_matrix(3, 0.3)
        expected = (1 / 3 + 0.3) - (1 / 3 - 0.15)
        assert matrix.diagonal_advantage() == pytest.approx(expected)

    def test_diagonal_advantage_single_opinion(self):
        assert NoiseMatrix([[1.0]]).diagonal_advantage() == pytest.approx(1.0)


class TestPropagate:
    def test_identity_preserves_distribution(self):
        matrix = identity_matrix(3)
        c = np.array([0.5, 0.3, 0.2])
        assert np.allclose(matrix.propagate(c), c)

    def test_propagate_matches_manual_product(self):
        matrix = uniform_noise_matrix(3, 0.2)
        c = np.array([0.6, 0.3, 0.1])
        assert np.allclose(matrix.propagate(c), c @ matrix.matrix)

    def test_propagate_partial_mass_preserved(self):
        matrix = uniform_noise_matrix(3, 0.2)
        c = np.array([0.2, 0.1, 0.0])  # only 30% opinionated
        assert matrix.propagate(c).sum() == pytest.approx(0.3)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            uniform_noise_matrix(3, 0.2).propagate([0.5, 0.5])

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            uniform_noise_matrix(2, 0.2).propagate([1.2, -0.2])


class TestApplyToOpinions:
    def test_identity_never_corrupts(self, rng):
        matrix = identity_matrix(4)
        opinions = rng.integers(1, 5, size=500)
        assert np.array_equal(matrix.apply_to_opinions(opinions, rng), opinions)

    def test_output_range_valid(self, rng):
        matrix = uniform_noise_matrix(4, 0.2)
        opinions = rng.integers(1, 5, size=1000)
        received = matrix.apply_to_opinions(opinions, rng)
        assert received.min() >= 1 and received.max() <= 4

    def test_empty_input(self):
        matrix = uniform_noise_matrix(3, 0.2)
        assert matrix.apply_to_opinions(np.array([], dtype=int)).size == 0

    def test_out_of_range_opinion_rejected(self, rng):
        matrix = uniform_noise_matrix(3, 0.2)
        with pytest.raises(ValueError):
            matrix.apply_to_opinions(np.array([4]), rng)

    def test_corruption_rate_matches_matrix(self, rng):
        epsilon = 0.3
        matrix = uniform_noise_matrix(3, epsilon)
        opinions = np.ones(20000, dtype=int)
        received = matrix.apply_to_opinions(opinions, rng)
        survival_rate = float(np.mean(received == 1))
        assert survival_rate == pytest.approx(1 / 3 + epsilon, abs=0.02)

    def test_shape_preserved(self, rng):
        matrix = uniform_noise_matrix(3, 0.2)
        opinions = rng.integers(1, 4, size=(10, 7))
        assert matrix.apply_to_opinions(opinions, rng).shape == (10, 7)


class TestApplyToCounts:
    def test_total_preserved(self, rng):
        matrix = uniform_noise_matrix(3, 0.25)
        received = matrix.apply_to_counts([100, 50, 25], rng)
        assert received.sum() == 175

    def test_identity_preserves_counts(self, rng):
        matrix = identity_matrix(3)
        counts = np.array([7, 0, 3])
        assert np.array_equal(matrix.apply_to_counts(counts, rng), counts)

    def test_wrong_length_rejected(self, rng):
        with pytest.raises(ValueError):
            uniform_noise_matrix(3, 0.2).apply_to_counts([1, 2], rng)

    def test_negative_counts_rejected(self, rng):
        with pytest.raises(ValueError):
            uniform_noise_matrix(2, 0.2).apply_to_counts([-1, 2], rng)

    def test_expected_mix_approached(self, rng):
        epsilon = 0.3
        matrix = uniform_noise_matrix(2, epsilon)
        received = matrix.apply_to_counts([40000, 0], rng)
        keep_fraction = received[0] / 40000
        assert keep_fraction == pytest.approx(0.5 + epsilon, abs=0.02)


class TestAlgebra:
    def test_compose_matches_matrix_product(self):
        a = uniform_noise_matrix(3, 0.3)
        b = uniform_noise_matrix(3, 0.1)
        composed = a.compose(b)
        assert np.allclose(composed.matrix, a.matrix @ b.matrix)

    def test_compose_requires_same_size(self):
        with pytest.raises(ValueError):
            uniform_noise_matrix(3, 0.2).compose(uniform_noise_matrix(4, 0.2))

    def test_power_one_is_same_matrix(self):
        a = uniform_noise_matrix(3, 0.3)
        assert a.power(1) == a

    def test_power_two_equals_double_compose(self):
        a = uniform_noise_matrix(3, 0.3)
        assert a.power(2) == a.compose(a)

    def test_power_requires_positive_exponent(self):
        with pytest.raises(ValueError):
            uniform_noise_matrix(2, 0.2).power(0)

    def test_stationary_distribution_of_doubly_stochastic_is_uniform(self):
        stationary = uniform_noise_matrix(4, 0.2).stationary_distribution()
        assert np.allclose(stationary, 0.25, atol=1e-8)

    def test_equality_and_hash(self):
        a = uniform_noise_matrix(3, 0.3)
        b = uniform_noise_matrix(3, 0.3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != uniform_noise_matrix(3, 0.2)


class TestNoiseMatrixProperties:
    @given(
        arrays(
            dtype=float,
            shape=st.integers(min_value=2, max_value=5).map(lambda k: (k, k)),
            elements=st.floats(min_value=0.0, max_value=10.0),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_propagate_preserves_total_mass(self, raw):
        matrix = NoiseMatrix(random_stochastic_matrix(raw))
        k = matrix.num_opinions
        c = np.full(k, 1.0 / k)
        assert matrix.propagate(c).sum() == pytest.approx(1.0)

    @given(
        arrays(
            dtype=float,
            shape=st.integers(min_value=2, max_value=4).map(lambda k: (k, k)),
            elements=st.floats(min_value=0.0, max_value=10.0),
        ),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_power_rows_remain_stochastic(self, raw, exponent):
        matrix = NoiseMatrix(random_stochastic_matrix(raw))
        powered = matrix.power(exponent)
        assert np.allclose(powered.matrix.sum(axis=1), 1.0)

    @given(
        arrays(
            dtype=float,
            shape=(3, 3),
            elements=st.floats(min_value=0.0, max_value=10.0),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_apply_to_counts_conserves_messages(self, raw):
        matrix = NoiseMatrix(random_stochastic_matrix(raw))
        rng = np.random.default_rng(0)
        counts = np.array([11, 0, 6])
        assert matrix.apply_to_counts(counts, rng).sum() == counts.sum()
