"""Tracing test: protocol counts round-loop allocations are per-phase.

The fast-path contract for the counts-tier protocol: everything constant
within a phase (vote laws, Poisson tables, noise structure, work buffers)
is built once per phase, so the number of *allocator* calls
(``np.zeros`` / ``np.empty`` / ...) made while a protocol ensemble runs
must depend on the phase structure only — never on how many rounds each
phase executes.  Raw RNG draws are excluded: each round necessarily draws
fresh randomness, and the arrays those draws return are the per-round
cost floor, not allocator churn.

The check runs the same protocol at ``round_scale=1`` and
``round_scale=3`` (three times the Stage-2 rounds, identical phase
schedule) and asserts the hundreds of extra rounds add essentially no
allocator calls.  Exact equality is deliberately not asserted: early
retirement of converged trials makes a handful of value-dependent
allocations legitimate — but a regression that re-derives a law or
reallocates a buffer inside the round loop adds at least one call *per
added round* and fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import CountsProtocol
from repro.core.state import CountsState
from repro.noise.families import uniform_noise_matrix

TRACED_ALLOCATORS = ("zeros", "empty", "ones", "full", "arange", "tile")

NUM_NODES = 50_000
NUM_TRIALS = 4
NUM_OPINIONS = 3
EPSILON = 0.3


class _CallCounter:
    def __init__(self):
        self.calls = 0


@pytest.fixture
def allocation_counter(monkeypatch):
    """Count every call to numpy's allocation entry points."""
    counter = _CallCounter()
    for name in TRACED_ALLOCATORS:
        original = getattr(np, name)

        def traced(*args, _original=original, **kwargs):
            counter.calls += 1
            return _original(*args, **kwargs)

        monkeypatch.setattr(np, name, traced)
    return counter


def _run_protocol(round_scale: float):
    noise = uniform_noise_matrix(NUM_OPINIONS, EPSILON)
    initial = CountsState.single_source(NUM_NODES, NUM_OPINIONS, 1)
    protocol = CountsProtocol(
        NUM_NODES, noise, epsilon=EPSILON, random_state=7,
        round_scale=round_scale,
    )
    return protocol.run(initial, NUM_TRIALS, target_opinion=1)


def test_allocations_scale_with_phases_not_rounds(allocation_counter):
    # Warm-up outside the counter so LRU-cached law construction (vote
    # tables, Poisson tails) does not differ between the measured runs.
    _run_protocol(1.0)
    _run_protocol(3.0)

    allocation_counter.calls = 0
    base = _run_protocol(1.0)
    base_allocations = allocation_counter.calls

    allocation_counter.calls = 0
    scaled = _run_protocol(3.0)
    scaled_allocations = allocation_counter.calls

    assert base_allocations > 0, "tracing recorded no allocations at all"
    # Same phase schedule, ~3x the Stage-2 rounds: the extra rounds must
    # contribute (essentially) zero allocator calls.  One call per added
    # round would add `extra_rounds` — two orders of magnitude over the
    # slack left for value-dependent early-retirement bookkeeping.
    extra_rounds = scaled.total_rounds - base.total_rounds
    assert extra_rounds > 100, (
        f"round_scale=3 only added {extra_rounds} rounds; the probe has "
        "no discriminating power"
    )
    extra_allocations = scaled_allocations - base_allocations
    assert extra_allocations < 0.1 * extra_rounds, (
        f"protocol counts run allocated {scaled_allocations} arrays at "
        f"round_scale=3 vs {base_allocations} at round_scale=1 — "
        f"{extra_allocations} extra allocator calls for {extra_rounds} "
        "extra rounds; something allocates per round, not per phase"
    )


def test_allocations_are_bounded_per_phase(allocation_counter):
    """A generous absolute ceiling so per-phase cost cannot silently
    balloon either (each phase builds one compiled law + fixed buffers)."""
    _run_protocol(1.0)  # warm caches
    allocation_counter.calls = 0
    result = _run_protocol(1.0)
    num_phases = len(result.stage1_records) + len(result.stage2_records)
    ceiling = 64 * num_phases + 64
    assert allocation_counter.calls <= ceiling, (
        f"{allocation_counter.calls} allocator calls across {num_phases} "
        f"phases (ceiling {ceiling}) — per-phase setup cost has ballooned"
    )
