"""Tests of the top-level public API surface (``import repro``)."""

from __future__ import annotations

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing name {name}"

    def test_quickstart_snippet_from_module_docstring(self):
        # The README / module docstring quickstart must keep working verbatim.
        noise = repro.uniform_noise_matrix(num_opinions=4, epsilon=0.3)
        result = repro.RumorSpreading(
            num_nodes=2000,
            num_opinions=4,
            noise=noise,
            epsilon=0.3,
            correct_opinion=2,
            random_state=0,
        ).run()
        assert result.success

    def test_noise_helpers_exported(self):
        report = repro.check_majority_preserving(
            repro.uniform_noise_matrix(3, 0.2), 0.2, 0.1
        )
        assert report.is_majority_preserving
        epsilon = repro.epsilon_for_delta(repro.binary_flip_matrix(0.2), 0.1)
        assert epsilon == pytest.approx(0.4, abs=1e-6)

    def test_engine_factory_exported(self):
        engine = repro.make_engine("push", 10, repro.identity_matrix(2))
        assert isinstance(engine, repro.UniformPushModel)

    def test_memory_helpers_exported(self):
        schedule = repro.ProtocolSchedule.for_population(1000, 0.2)
        usage = repro.protocol_memory_usage(schedule, 3)
        assert usage.total_bits > 0
        assert repro.memory_bound_bits(1000, 0.2, 3) > 0
