"""Integration tests of the O / B / P process-equivalence claims (Claim 1, Lemma 2/3).

Beyond the unit-level statistical checks, these tests run the *protocol*
under each delivery process and check the outcomes agree — the operational
content of the paper's proof strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import TwoStageProtocol
from repro.core.state import PopulationState
from repro.experiments.workloads import biased_population
from repro.noise.families import uniform_noise_matrix


class TestProtocolUnderEveryProcess:
    @pytest.mark.parametrize("process", ["push", "balls_bins", "poisson"])
    def test_rumor_spreading_succeeds(self, process):
        noise = uniform_noise_matrix(3, 0.3)
        protocol = TwoStageProtocol(
            700, noise, epsilon=0.3, process=process, random_state=0
        )
        result = protocol.run(PopulationState.single_source(700, 3, 2))
        assert result.success

    @pytest.mark.parametrize("process", ["push", "balls_bins", "poisson"])
    def test_stage1_bias_comparable_across_processes(self, process):
        noise = uniform_noise_matrix(3, 0.3)
        protocol = TwoStageProtocol(
            1000, noise, epsilon=0.3, process=process, random_state=1
        )
        result = protocol.run(PopulationState.single_source(1000, 3, 1))
        assert result.opinionated_after_stage1 == 1000
        assert 0.02 < result.bias_after_stage1 < 0.6

    def test_round_counts_identical_across_processes(self):
        # The schedule is deterministic, so every process runs the same number
        # of rounds; only the randomness of deliveries differs.
        noise = uniform_noise_matrix(3, 0.3)
        totals = set()
        for process in ("push", "balls_bins", "poisson"):
            protocol = TwoStageProtocol(
                500, noise, epsilon=0.3, process=process, random_state=2
            )
            result = protocol.run(PopulationState.single_source(500, 3, 1))
            totals.add(result.total_rounds)
        assert len(totals) == 1

    def test_plurality_outcome_agrees_across_processes(self):
        noise = uniform_noise_matrix(3, 0.25)
        winners = {}
        for process in ("push", "balls_bins", "poisson"):
            protocol = TwoStageProtocol(
                900, noise, epsilon=0.25, process=process, random_state=3
            )
            initial = biased_population(900, 3, 0.15, random_state=3)
            result = protocol.run(initial, target_opinion=1)
            winners[process] = result.final_state.plurality_opinion()
        assert set(winners.values()) == {1}
