"""Statistical agreement of the sequential / batched / counts engines.

The three engine tiers implement the same processes at different levels of
aggregation, so their statistics must agree:

* the **dynamics** tiers are all exact in distribution (per-message
  sampling, compound-channel sampling, grouped multinomials), so one-round
  outcome distributions and multi-round summaries must match up to
  sampling noise;
* the **protocol** counts tier replaces the balls-into-bins throw with its
  Poissonized summary (Definition 4); Lemma 2 makes the phase statistics
  close, and the end-of-stage summaries (Stage-1 bias, success rate,
  final bias) must be statistically indistinguishable at these scales.

Test methodology (documented so CI stays deterministic):

* fixed seeds everywhere — each assertion is a deterministic computation;
* **chi-square cross-checks**: one synchronous round from a fixed initial
  state makes every node's outcome independent, so pooling the end-of-round
  category counts (undecided, opinion 1..k) over trials yields two
  multinomial samples; the two-sample chi-square statistic is compared
  against the alpha = 0.001 critical value for its degrees of freedom.
  (For the protocol phase check the counts engine's aggregate has slightly
  *higher* per-trial variance than process O — the Poissonized total
  fluctuates — which only makes this pooled test conservative.)
* **KS cross-checks**: per-trial summary statistics (final bias, Stage-1
  bias) are compared with the two-sample Kolmogorov-Smirnov statistic
  against the closed-form alpha = 0.001 critical value
  ``c(alpha) * sqrt((m + n) / (m * n))`` with ``c(0.001) ~= 1.9495``;
  ties (the statistics live on a ``1/n`` grid) only make the test
  conservative.

With ~20 independent checks at alpha = 0.001 the probability of any false
alarm under fixed seeds is zero (deterministic) and under reseeding ~2%.

Exact-reference verification (the analytic tier)
------------------------------------------------

Wherever the exact Markov kernel is tractable (small ``n * k``; see
``repro.analytic.states_within_budget``) the sampled-vs-sampled
comparisons above are superseded by sampled-vs-**exact** checks against
the analytic engine tier:

* **one-round TVD**: the total variation distance between the exact
  one-round transition distribution
  (``ExactDynamicsChain.one_round_distribution``) and each sampling
  tier's empirical distribution over count states must stay below
  ``sampling_tvd_threshold(S, R)`` — a distribution-free bound
  (Cauchy-Schwarz expectation term plus a McDiarmid alpha = 0.001
  deviation term) that holds for *any* true distribution, so a failure
  is an engine bug, not sampling noise.  Asserted for all five dynamics
  rules and the two-stage protocol's phase evolutions.
* **Wilson success probabilities**: the exact absorption probability is
  asserted to lie in each sampling tier's Wilson 99.9% score interval
  for the empirical success rate.

The dynamics tiers are exact in distribution, so those checks carry no
slack beyond sampling error.  The protocol analytic tier replaces the
sampled noisy histogram with its expectation (and Stage-2's nonlinear
``maj()`` drops the cross-node recoloring correlation), so protocol
checks carry a small *documented* approximation margin,
:data:`PROTOCOL_TVD_MARGIN` / :data:`PROTOCOL_SUCCESS_MARGIN`; the
margins are calibrated empirically (the bias shrinks as epsilon grows
and as the distribution concentrates near consensus).

The classes above this harness keep running at large ``n`` where the
exact kernel is intractable — there sampled-vs-sampled remains the only
available cross-check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic import (
    empirical_state_distribution,
    sampling_tvd_threshold,
    state_space_size,
    total_variation_distance,
    wilson_interval,
)
from repro.core.analytic import AnalyticProtocol
from repro.core.protocol import CountsProtocol, EnsembleProtocol, TwoStageProtocol
from repro.core.state import CountsState, PopulationState
from repro.dynamics import make_counts_dynamics, make_dynamics, make_ensemble_dynamics
from repro.dynamics.analytic import ExactDynamicsChain
from repro.experiments.workloads import biased_population, rumor_instance
from repro.noise.families import uniform_noise_matrix
from repro.sim import Scenario, simulate
from repro.sim.engines import build_dynamics

pytestmark = pytest.mark.agreement

#: Upper alpha = 0.001 critical values of the chi-square distribution.
CHI2_CRITICAL_001 = {1: 10.828, 2: 13.816, 3: 16.266, 4: 18.467, 5: 20.515}

#: c(alpha) of the two-sample KS critical value at alpha = 0.001:
#: sqrt(-ln(alpha / 2) / 2).
KS_COEFFICIENT_001 = 1.9495

ALL_RULES = [
    ("voter", None),
    ("3-majority", None),
    ("h-majority", 5),
    ("undecided-state", None),
    ("median-rule", None),
]


def two_sample_chi_square(observed_a: np.ndarray, observed_b: np.ndarray):
    """The two-sample chi-square statistic and its degrees of freedom.

    ``observed_a`` / ``observed_b`` are category-count vectors (possibly
    with different totals).  Cells empty in both samples are dropped.
    """
    observed = np.stack(
        [np.asarray(observed_a, float), np.asarray(observed_b, float)]
    )
    observed = observed[:, observed.sum(axis=0) > 0]
    row_totals = observed.sum(axis=1, keepdims=True)
    column_totals = observed.sum(axis=0, keepdims=True)
    expected = row_totals * column_totals / observed.sum()
    statistic = float(((observed - expected) ** 2 / expected).sum())
    return statistic, observed.shape[1] - 1


def ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """The two-sample Kolmogorov-Smirnov statistic."""
    sample_a = np.sort(np.asarray(sample_a, float))
    sample_b = np.sort(np.asarray(sample_b, float))
    grid = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(sample_a, grid, side="right") / sample_a.size
    cdf_b = np.searchsorted(sample_b, grid, side="right") / sample_b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_critical(size_a: int, size_b: int) -> float:
    return KS_COEFFICIENT_001 * np.sqrt(
        (size_a + size_b) / (size_a * size_b)
    )


def pooled_category_counts_counts_engine(rule, sample_size, num_nodes, noise,
                                         initial, trials, seed):
    """Pooled end-of-one-round category counts from the counts engine."""
    result = make_counts_dynamics(
        rule, num_nodes, noise, seed, sample_size=sample_size
    ).run(initial, 1, trials, target_opinion=1, stop_at_consensus=False,
          record_history=False)
    per_opinion = result.final_states.counts.sum(axis=0)
    undecided = result.final_states.undecided_counts().sum()
    return np.concatenate([[undecided], per_opinion])


def pooled_category_counts_batched_engine(rule, sample_size, num_nodes, noise,
                                          initial, trials, seed):
    """Pooled end-of-one-round category counts from the batched engine."""
    result = make_ensemble_dynamics(
        rule, num_nodes, noise, seed, sample_size=sample_size
    ).run(initial, 1, trials, target_opinion=1, stop_at_consensus=False,
          record_history=False)
    per_opinion = result.final_states.opinion_counts().sum(axis=0)
    undecided = trials * num_nodes - per_opinion.sum()
    return np.concatenate([[undecided], per_opinion])


def pooled_category_counts_sequential_engine(rule, sample_size, num_nodes,
                                             noise, initial, trials, seed):
    """Pooled end-of-one-round category counts from the sequential engine."""
    pooled = np.zeros(noise.num_opinions + 1, dtype=np.int64)
    for trial in range(trials):
        result = make_dynamics(
            rule, num_nodes, noise, seed + trial, sample_size=sample_size
        ).run(initial, 1, target_opinion=1, stop_at_consensus=False,
              record_history=False)
        pooled += np.bincount(
            result.final_state.opinions, minlength=noise.num_opinions + 1
        )
    return pooled


class TestDynamicsOneRoundAgreement:
    """Chi-square cross-checks of the per-round count distributions.

    One round from a fixed, partially-undecided initial state; all five
    rules; counts engine vs. both per-node engines.
    """

    NUM_NODES = 400
    POOL_TRIALS = 120
    SEQUENTIAL_TRIALS = 40

    @pytest.fixture(scope="class")
    def noise(self):
        return uniform_noise_matrix(3, 0.4)

    @pytest.fixture(scope="class")
    def initial(self):
        # 25% undecided so every category (including "observed nothing")
        # has mass, exercising the undecided handling of every rule.
        state = biased_population(self.NUM_NODES, 3, 0.2, random_state=1)
        opinions = state.opinions.copy()
        opinions[: self.NUM_NODES // 4] = 0
        return PopulationState(opinions, 3)

    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_counts_vs_batched(self, rule, sample_size, noise, initial):
        counts = pooled_category_counts_counts_engine(
            rule, sample_size, self.NUM_NODES, noise, initial,
            self.POOL_TRIALS, seed=10,
        )
        batched = pooled_category_counts_batched_engine(
            rule, sample_size, self.NUM_NODES, noise, initial,
            self.POOL_TRIALS, seed=20,
        )
        assert counts.sum() == batched.sum()
        statistic, df = two_sample_chi_square(counts, batched)
        assert statistic < CHI2_CRITICAL_001[df], (
            f"{rule}: counts vs batched one-round chi-square {statistic:.1f} "
            f"exceeds the alpha=0.001 critical value for df={df}"
        )

    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_counts_vs_sequential(self, rule, sample_size, noise, initial):
        counts = pooled_category_counts_counts_engine(
            rule, sample_size, self.NUM_NODES, noise, initial,
            self.POOL_TRIALS, seed=30,
        )
        sequential = pooled_category_counts_sequential_engine(
            rule, sample_size, self.NUM_NODES, noise, initial,
            self.SEQUENTIAL_TRIALS, seed=4000,
        )
        statistic, df = two_sample_chi_square(counts, sequential)
        assert statistic < CHI2_CRITICAL_001[df], (
            f"{rule}: counts vs sequential one-round chi-square "
            f"{statistic:.1f} exceeds the alpha=0.001 critical value for "
            f"df={df}"
        )


class TestDynamicsFinalBiasAgreement:
    """KS cross-checks of multi-round final-bias summaries.

    20 rounds (no early stopping) keeps every trial away from consensus so
    the bias distribution stays non-degenerate; counts vs batched engines.
    """

    NUM_NODES = 300
    TRIALS = 100
    ROUNDS = 20

    @pytest.fixture(scope="class")
    def noise(self):
        return uniform_noise_matrix(3, 0.4)

    @pytest.fixture(scope="class")
    def initial(self):
        return biased_population(self.NUM_NODES, 3, 0.15, random_state=2)

    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_counts_vs_batched_final_bias(self, rule, sample_size, noise,
                                          initial):
        counts = make_counts_dynamics(
            rule, self.NUM_NODES, noise, 50, sample_size=sample_size
        ).run(initial, self.ROUNDS, self.TRIALS, target_opinion=1,
              stop_at_consensus=False, record_history=False)
        batched = make_ensemble_dynamics(
            rule, self.NUM_NODES, noise, 60, sample_size=sample_size
        ).run(initial, self.ROUNDS, self.TRIALS, target_opinion=1,
              stop_at_consensus=False, record_history=False)
        statistic = ks_statistic(counts.final_biases, batched.final_biases)
        critical = ks_critical(self.TRIALS, self.TRIALS)
        assert statistic < critical, (
            f"{rule}: final-bias KS {statistic:.3f} exceeds the alpha=0.001 "
            f"critical value {critical:.3f}"
        )


class TestProtocolAgreement:
    """The two-stage protocol across all three engines."""

    NUM_NODES = 600
    EPSILON = 0.3
    TRIALS = 100
    SEQUENTIAL_TRIALS = 20

    @pytest.fixture(scope="class")
    def noise(self):
        return uniform_noise_matrix(3, self.EPSILON)

    @pytest.fixture(scope="class")
    def initial(self):
        return rumor_instance(self.NUM_NODES, 3, 1)

    @pytest.fixture(scope="class")
    def counts_result(self, noise, initial):
        return CountsProtocol(
            self.NUM_NODES, noise, epsilon=self.EPSILON, random_state=70
        ).run(initial, self.TRIALS, target_opinion=1)

    @pytest.fixture(scope="class")
    def batched_result(self, noise, initial):
        return EnsembleProtocol(
            self.NUM_NODES, noise, epsilon=self.EPSILON, random_state=80
        ).run(initial, self.TRIALS, target_opinion=1)

    def test_stage1_bias_distribution(self, counts_result, batched_result):
        statistic = ks_statistic(
            counts_result.biases_after_stage1,
            batched_result.biases_after_stage1,
        )
        critical = ks_critical(self.TRIALS, self.TRIALS)
        assert statistic < critical, (
            f"Stage-1 bias KS {statistic:.3f} exceeds the alpha=0.001 "
            f"critical value {critical:.3f}"
        )

    def test_stage1_phase0_adoption_counts(self, noise, initial):
        """Chi-square on the pooled phase-0 adoption categories: the
        counts engine's Poissonized throw vs the batched engine's exact
        Claim-1 throw (pooled over trials, so the counts engine's larger
        per-trial total variance only makes the test conservative)."""
        counts_records = CountsProtocol(
            self.NUM_NODES, noise, epsilon=self.EPSILON, random_state=90
        ).run(initial, self.TRIALS, target_opinion=1).stage1_records[0]
        batched_records = EnsembleProtocol(
            self.NUM_NODES, noise, epsilon=self.EPSILON, random_state=95
        ).run(initial, self.TRIALS, target_opinion=1).stage1_records[0]
        pooled = []
        for record in (counts_records, batched_records):
            per_opinion = np.rint(
                record.opinion_distributions * self.NUM_NODES
            ).astype(np.int64).sum(axis=0)
            undecided = self.TRIALS * self.NUM_NODES - per_opinion.sum()
            pooled.append(np.concatenate([[undecided], per_opinion]))
        statistic, df = two_sample_chi_square(*pooled)
        assert statistic < CHI2_CRITICAL_001[df], (
            f"phase-0 adoption chi-square {statistic:.1f} exceeds the "
            f"alpha=0.001 critical value for df={df}"
        )

    def test_success_and_final_bias_across_all_engines(
        self, noise, initial, counts_result, batched_result
    ):
        sequential_successes = []
        sequential_final_biases = []
        for seed in range(self.SEQUENTIAL_TRIALS):
            result = TwoStageProtocol(
                self.NUM_NODES, noise, epsilon=self.EPSILON,
                random_state=7000 + seed,
            ).run(initial, target_opinion=1)
            sequential_successes.append(result.success)
            sequential_final_biases.append(result.final_bias)
        rates = {
            "counts": counts_result.success_rate,
            "batched": batched_result.success_rate,
            "sequential": float(np.mean(sequential_successes)),
        }
        # The protocol succeeds w.h.p. at this scale on every engine; a
        # four-sigma binomial tolerance on the smallest sample bounds the
        # admissible spread.
        tolerance = 4.0 * np.sqrt(0.25 / self.SEQUENTIAL_TRIALS)
        assert max(rates.values()) - min(rates.values()) <= tolerance, rates
        statistic = ks_statistic(
            counts_result.final_biases, batched_result.final_biases
        )
        critical = ks_critical(self.TRIALS, self.TRIALS)
        assert statistic < critical
        assert float(np.mean(sequential_final_biases)) == pytest.approx(
            float(counts_result.final_biases.mean()), abs=0.1
        )


# --------------------------------------------------------------------------
# Exact-reference verification: every sampling tier vs the analytic tier.
# --------------------------------------------------------------------------

#: Documented approximation allowance for protocol analytic-vs-sampled TVD
#: checks.  The analytic protocol evolves phases under the *expected*
#: recolored histogram, dropping the cross-node correlation induced by
#: sharing one sampled histogram per round; at epsilon = 0.5 the measured
#: phase TVD is ~0.03 against a ~0.13 sampling threshold, so 0.05 of
#: dedicated slack is generous without masking real divergence.
PROTOCOL_TVD_MARGIN = 0.05

#: Documented approximation allowance for protocol success probabilities.
#: The expected-histogram approximation biases the analytic success
#: probability by ~0.02-0.035 at the non-degenerate operating point below
#: (epsilon = 0.3, round_scale = 0.2); the Wilson interval is widened by
#: this margin on each side.
PROTOCOL_SUCCESS_MARGIN = 0.05


def exact_reference_setup():
    """The shared small-scale configuration where the exact kernel is
    tractable: n = 12, k = 2 gives C(14, 2) = 91 count states."""
    num_nodes, num_opinions = 12, 2
    noise = uniform_noise_matrix(num_opinions, 0.4)
    initial_counts = np.array([5, 4], dtype=np.int64)  # 3 undecided
    return num_nodes, num_opinions, noise, initial_counts


class TestExactDynamicsOneRoundTVD:
    """One synchronous round from a fixed count state: each sampling
    tier's empirical distribution over count states must be within the
    distribution-free sampling TVD threshold of the exact kernel row.

    The dynamics tiers are exact in distribution, so the only admissible
    gap is sampling noise — ``sampling_tvd_threshold`` bounds exactly
    that (alpha = 0.001 per check).
    """

    COUNTS_TRIALS = 4000
    BATCHED_TRIALS = 2000
    SEQUENTIAL_TRIALS = 400

    @pytest.fixture(scope="class")
    def setup(self):
        return exact_reference_setup()

    def population_state(self, initial_counts, num_nodes, num_opinions):
        undecided = num_nodes - int(initial_counts.sum())
        opinions = np.concatenate(
            [np.full(undecided, 0)]
            + [
                np.full(int(count), opinion + 1)
                for opinion, count in enumerate(initial_counts)
            ]
        ).astype(np.int64)
        return PopulationState(opinions, num_opinions)

    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_counts_tier_matches_exact_kernel(self, rule, sample_size, setup):
        num_nodes, num_opinions, noise, initial = setup
        chain = ExactDynamicsChain(rule, num_nodes, noise, sample_size=sample_size)
        exact = chain.one_round_distribution(initial)
        dynamics = build_dynamics(
            "counts", rule, num_nodes, noise, 7, sample_size=sample_size
        )
        result = dynamics.run(
            CountsState(initial, num_nodes), 1, self.COUNTS_TRIALS,
            target_opinion=1, stop_at_consensus=False, record_history=False,
        )
        empirical = empirical_state_distribution(
            result.final_states.counts, num_nodes, num_opinions
        )
        threshold = sampling_tvd_threshold(
            state_space_size(num_nodes, num_opinions), self.COUNTS_TRIALS
        )
        tvd = total_variation_distance(exact, empirical)
        assert tvd < threshold, (
            f"{rule}: counts-tier one-round TVD {tvd:.4f} exceeds the "
            f"sampling threshold {threshold:.4f}"
        )

    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_batched_tier_matches_exact_kernel(self, rule, sample_size, setup):
        num_nodes, num_opinions, noise, initial = setup
        chain = ExactDynamicsChain(rule, num_nodes, noise, sample_size=sample_size)
        exact = chain.one_round_distribution(initial)
        dynamics = build_dynamics(
            "batched", rule, num_nodes, noise, 7, sample_size=sample_size
        )
        result = dynamics.run(
            self.population_state(initial, num_nodes, num_opinions),
            1, self.BATCHED_TRIALS,
            target_opinion=1, stop_at_consensus=False, record_history=False,
        )
        empirical = empirical_state_distribution(
            result.final_states.opinion_counts(), num_nodes, num_opinions
        )
        threshold = sampling_tvd_threshold(
            state_space_size(num_nodes, num_opinions), self.BATCHED_TRIALS
        )
        tvd = total_variation_distance(exact, empirical)
        assert tvd < threshold, (
            f"{rule}: batched-tier one-round TVD {tvd:.4f} exceeds the "
            f"sampling threshold {threshold:.4f}"
        )

    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_sequential_tier_matches_exact_kernel(self, rule, sample_size, setup):
        num_nodes, num_opinions, noise, initial = setup
        chain = ExactDynamicsChain(rule, num_nodes, noise, sample_size=sample_size)
        exact = chain.one_round_distribution(initial)
        state = self.population_state(initial, num_nodes, num_opinions)
        finals = np.zeros((self.SEQUENTIAL_TRIALS, num_opinions), dtype=np.int64)
        for trial in range(self.SEQUENTIAL_TRIALS):
            dynamics = build_dynamics(
                "sequential", rule, num_nodes, noise, 1000 + trial,
                sample_size=sample_size,
            )
            result = dynamics.run(
                state, 1, target_opinion=1, stop_at_consensus=False,
                record_history=False,
            )
            finals[trial] = result.final_state.opinion_counts()
        empirical = empirical_state_distribution(finals, num_nodes, num_opinions)
        threshold = sampling_tvd_threshold(
            state_space_size(num_nodes, num_opinions), self.SEQUENTIAL_TRIALS
        )
        tvd = total_variation_distance(exact, empirical)
        assert tvd < threshold, (
            f"{rule}: sequential-tier one-round TVD {tvd:.4f} exceeds the "
            f"sampling threshold {threshold:.4f}"
        )


class TestExactDynamicsSuccessProbability:
    """Multi-round absorption: the exact success probability (computed by
    the analytic engine through the public ``simulate`` facade) must lie
    in every sampling tier's Wilson 99.9% interval."""

    ENGINE_TRIALS = [("counts", 1500), ("batched", 600), ("sequential", 120)]

    @staticmethod
    def scenario(rule, sample_size, engine, num_trials):
        return Scenario(
            workload="dynamics", num_nodes=12, num_opinions=2, epsilon=0.5,
            rule=rule, sample_size=sample_size, bias=0.3, max_rounds=60,
            engine=engine, num_trials=num_trials, seed=99,
        )

    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_exact_success_inside_every_wilson_interval(self, rule, sample_size):
        exact = simulate(self.scenario(rule, sample_size, "analytic", 1))
        assert exact.is_analytic
        assert exact.analytic_method == "exact"
        for engine, num_trials in self.ENGINE_TRIALS:
            sampled = simulate(self.scenario(rule, sample_size, engine, num_trials))
            low, high = wilson_interval(sampled.success_count, sampled.num_trials)
            assert low <= exact.success_probability <= high, (
                f"{rule}/{engine}: exact success probability "
                f"{exact.success_probability:.4f} outside the Wilson 99.9% "
                f"interval [{low:.4f}, {high:.4f}] "
                f"({sampled.success_count}/{sampled.num_trials} successes)"
            )


class TestProtocolAnalyticAgreement:
    """The two-stage protocol's analytic tier vs the sampling tiers.

    The analytic protocol is *approximate* (expected recolored histogram,
    Stage-2 ``maj()`` nonlinearity), so each check adds the documented
    margin on top of the pure-sampling bound — see
    :data:`PROTOCOL_TVD_MARGIN` / :data:`PROTOCOL_SUCCESS_MARGIN`.
    """

    NUM_NODES = 14
    NUM_OPINIONS = 2

    def test_stage1_phase_distributions_match_counts_tier(self):
        """Phase-by-phase Stage-1 TVD at the default schedule
        (epsilon = 0.5), where the expectation approximation is tight."""
        epsilon, trials = 0.5, 3000
        noise = uniform_noise_matrix(self.NUM_OPINIONS, epsilon)
        initial = np.array([1, 0], dtype=np.int64)
        exact = AnalyticProtocol(self.NUM_NODES, noise, epsilon=epsilon)
        schedule = exact.build_schedule(1)
        sampled = CountsProtocol(
            self.NUM_NODES, noise, epsilon=epsilon, random_state=123
        ).run(CountsState(initial, self.NUM_NODES), trials, target_opinion=1)
        threshold = sampling_tvd_threshold(
            state_space_size(self.NUM_NODES, self.NUM_OPINIONS), trials
        ) + PROTOCOL_TVD_MARGIN
        distribution = exact.initial_distribution(initial)
        for phase, length in enumerate(schedule.stage1.phase_lengths):
            distribution = exact.evolve_stage1_phase(distribution, length)
            counts = np.rint(
                sampled.stage1_records[phase].opinion_distributions
                * self.NUM_NODES
            ).astype(np.int64)
            empirical = empirical_state_distribution(
                counts, self.NUM_NODES, self.NUM_OPINIONS
            )
            tvd = total_variation_distance(distribution, empirical)
            assert tvd < threshold, (
                f"stage-1 phase {phase}: protocol TVD {tvd:.4f} exceeds "
                f"{threshold:.4f} (sampling + documented margin)"
            )

    def test_final_state_distribution_matches_counts_tier(self):
        """End-to-end (Stage 1 + Stage 2) final-state TVD at a
        non-degenerate operating point (success probability ~0.68)."""
        epsilon, round_scale, trials = 0.3, 0.2, 4000
        noise = uniform_noise_matrix(self.NUM_OPINIONS, epsilon)
        initial = np.array([1, 0], dtype=np.int64)
        exact = AnalyticProtocol(
            self.NUM_NODES, noise, epsilon=epsilon, round_scale=round_scale
        )
        schedule = exact.build_schedule(1)
        distribution = exact.initial_distribution(initial)
        for length in schedule.stage1.phase_lengths:
            distribution = exact.evolve_stage1_phase(distribution, length)
        for length, sample_size in zip(
            schedule.stage2.phase_lengths, schedule.stage2.sample_sizes
        ):
            distribution = exact.evolve_stage2_phase(
                distribution, length, sample_size
            )
        sampled = CountsProtocol(
            self.NUM_NODES, noise, epsilon=epsilon, round_scale=round_scale,
            random_state=123,
        ).run(CountsState(initial, self.NUM_NODES), trials, target_opinion=1)
        empirical = empirical_state_distribution(
            np.asarray(sampled.final_states.counts, dtype=np.int64),
            self.NUM_NODES, self.NUM_OPINIONS,
        )
        threshold = sampling_tvd_threshold(
            state_space_size(self.NUM_NODES, self.NUM_OPINIONS), trials
        ) + PROTOCOL_TVD_MARGIN
        tvd = total_variation_distance(distribution, empirical)
        assert tvd < threshold, (
            f"final-state protocol TVD {tvd:.4f} exceeds {threshold:.4f}"
        )

    @pytest.mark.parametrize("engine,num_trials", [
        ("counts", 2000),
        ("batched", 400),
        ("sequential", 60),
    ])
    def test_rumor_success_inside_widened_wilson_interval(self, engine, num_trials):
        def scenario(eng, trials):
            return Scenario(
                workload="rumor", num_nodes=self.NUM_NODES,
                num_opinions=self.NUM_OPINIONS, epsilon=0.3, round_scale=0.2,
                engine=eng, num_trials=trials, seed=99,
            )

        exact = simulate(scenario("analytic", 1))
        assert exact.is_analytic
        assert exact.analytic_method == "exact"
        sampled = simulate(scenario(engine, num_trials))
        low, high = wilson_interval(sampled.success_count, sampled.num_trials)
        low, high = low - PROTOCOL_SUCCESS_MARGIN, high + PROTOCOL_SUCCESS_MARGIN
        assert low <= exact.success_probability <= high, (
            f"rumor/{engine}: analytic success probability "
            f"{exact.success_probability:.4f} outside the widened Wilson "
            f"interval [{low:.4f}, {high:.4f}]"
        )

    def test_plurality_success_matches_counts_tier(self):
        def scenario(eng, trials):
            return Scenario(
                workload="plurality", num_nodes=self.NUM_NODES,
                num_opinions=self.NUM_OPINIONS, epsilon=0.3,
                shares=(0.55, 0.45), engine=eng, num_trials=trials, seed=42,
            )

        exact = simulate(scenario("analytic", 1))
        assert exact.is_analytic
        sampled = simulate(scenario("counts", 2000))
        low, high = wilson_interval(sampled.success_count, sampled.num_trials)
        low, high = low - PROTOCOL_SUCCESS_MARGIN, high + PROTOCOL_SUCCESS_MARGIN
        assert low <= exact.success_probability <= high
