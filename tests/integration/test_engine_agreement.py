"""Statistical agreement of the sequential / batched / counts engines.

The three engine tiers implement the same processes at different levels of
aggregation, so their statistics must agree:

* the **dynamics** tiers are all exact in distribution (per-message
  sampling, compound-channel sampling, grouped multinomials), so one-round
  outcome distributions and multi-round summaries must match up to
  sampling noise;
* the **protocol** counts tier replaces the balls-into-bins throw with its
  Poissonized summary (Definition 4); Lemma 2 makes the phase statistics
  close, and the end-of-stage summaries (Stage-1 bias, success rate,
  final bias) must be statistically indistinguishable at these scales.

Test methodology (documented so CI stays deterministic):

* fixed seeds everywhere — each assertion is a deterministic computation;
* **chi-square cross-checks**: one synchronous round from a fixed initial
  state makes every node's outcome independent, so pooling the end-of-round
  category counts (undecided, opinion 1..k) over trials yields two
  multinomial samples; the two-sample chi-square statistic is compared
  against the alpha = 0.001 critical value for its degrees of freedom.
  (For the protocol phase check the counts engine's aggregate has slightly
  *higher* per-trial variance than process O — the Poissonized total
  fluctuates — which only makes this pooled test conservative.)
* **KS cross-checks**: per-trial summary statistics (final bias, Stage-1
  bias) are compared with the two-sample Kolmogorov-Smirnov statistic
  against the closed-form alpha = 0.001 critical value
  ``c(alpha) * sqrt((m + n) / (m * n))`` with ``c(0.001) ~= 1.9495``;
  ties (the statistics live on a ``1/n`` grid) only make the test
  conservative.

With ~20 independent checks at alpha = 0.001 the probability of any false
alarm under fixed seeds is zero (deterministic) and under reseeding ~2%.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import CountsProtocol, EnsembleProtocol, TwoStageProtocol
from repro.core.state import PopulationState
from repro.dynamics import make_counts_dynamics, make_dynamics, make_ensemble_dynamics
from repro.experiments.workloads import biased_population, rumor_instance
from repro.noise.families import uniform_noise_matrix

#: Upper alpha = 0.001 critical values of the chi-square distribution.
CHI2_CRITICAL_001 = {1: 10.828, 2: 13.816, 3: 16.266, 4: 18.467, 5: 20.515}

#: c(alpha) of the two-sample KS critical value at alpha = 0.001:
#: sqrt(-ln(alpha / 2) / 2).
KS_COEFFICIENT_001 = 1.9495

ALL_RULES = [
    ("voter", None),
    ("3-majority", None),
    ("h-majority", 5),
    ("undecided-state", None),
    ("median-rule", None),
]


def two_sample_chi_square(observed_a: np.ndarray, observed_b: np.ndarray):
    """The two-sample chi-square statistic and its degrees of freedom.

    ``observed_a`` / ``observed_b`` are category-count vectors (possibly
    with different totals).  Cells empty in both samples are dropped.
    """
    observed = np.stack(
        [np.asarray(observed_a, float), np.asarray(observed_b, float)]
    )
    observed = observed[:, observed.sum(axis=0) > 0]
    row_totals = observed.sum(axis=1, keepdims=True)
    column_totals = observed.sum(axis=0, keepdims=True)
    expected = row_totals * column_totals / observed.sum()
    statistic = float(((observed - expected) ** 2 / expected).sum())
    return statistic, observed.shape[1] - 1


def ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """The two-sample Kolmogorov-Smirnov statistic."""
    sample_a = np.sort(np.asarray(sample_a, float))
    sample_b = np.sort(np.asarray(sample_b, float))
    grid = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(sample_a, grid, side="right") / sample_a.size
    cdf_b = np.searchsorted(sample_b, grid, side="right") / sample_b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_critical(size_a: int, size_b: int) -> float:
    return KS_COEFFICIENT_001 * np.sqrt(
        (size_a + size_b) / (size_a * size_b)
    )


def pooled_category_counts_counts_engine(rule, sample_size, num_nodes, noise,
                                         initial, trials, seed):
    """Pooled end-of-one-round category counts from the counts engine."""
    result = make_counts_dynamics(
        rule, num_nodes, noise, seed, sample_size=sample_size
    ).run(initial, 1, trials, target_opinion=1, stop_at_consensus=False,
          record_history=False)
    per_opinion = result.final_states.counts.sum(axis=0)
    undecided = result.final_states.undecided_counts().sum()
    return np.concatenate([[undecided], per_opinion])


def pooled_category_counts_batched_engine(rule, sample_size, num_nodes, noise,
                                          initial, trials, seed):
    """Pooled end-of-one-round category counts from the batched engine."""
    result = make_ensemble_dynamics(
        rule, num_nodes, noise, seed, sample_size=sample_size
    ).run(initial, 1, trials, target_opinion=1, stop_at_consensus=False,
          record_history=False)
    per_opinion = result.final_states.opinion_counts().sum(axis=0)
    undecided = trials * num_nodes - per_opinion.sum()
    return np.concatenate([[undecided], per_opinion])


def pooled_category_counts_sequential_engine(rule, sample_size, num_nodes,
                                             noise, initial, trials, seed):
    """Pooled end-of-one-round category counts from the sequential engine."""
    pooled = np.zeros(noise.num_opinions + 1, dtype=np.int64)
    for trial in range(trials):
        result = make_dynamics(
            rule, num_nodes, noise, seed + trial, sample_size=sample_size
        ).run(initial, 1, target_opinion=1, stop_at_consensus=False,
              record_history=False)
        pooled += np.bincount(
            result.final_state.opinions, minlength=noise.num_opinions + 1
        )
    return pooled


class TestDynamicsOneRoundAgreement:
    """Chi-square cross-checks of the per-round count distributions.

    One round from a fixed, partially-undecided initial state; all five
    rules; counts engine vs. both per-node engines.
    """

    NUM_NODES = 400
    POOL_TRIALS = 120
    SEQUENTIAL_TRIALS = 40

    @pytest.fixture(scope="class")
    def noise(self):
        return uniform_noise_matrix(3, 0.4)

    @pytest.fixture(scope="class")
    def initial(self):
        # 25% undecided so every category (including "observed nothing")
        # has mass, exercising the undecided handling of every rule.
        state = biased_population(self.NUM_NODES, 3, 0.2, random_state=1)
        opinions = state.opinions.copy()
        opinions[: self.NUM_NODES // 4] = 0
        return PopulationState(opinions, 3)

    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_counts_vs_batched(self, rule, sample_size, noise, initial):
        counts = pooled_category_counts_counts_engine(
            rule, sample_size, self.NUM_NODES, noise, initial,
            self.POOL_TRIALS, seed=10,
        )
        batched = pooled_category_counts_batched_engine(
            rule, sample_size, self.NUM_NODES, noise, initial,
            self.POOL_TRIALS, seed=20,
        )
        assert counts.sum() == batched.sum()
        statistic, df = two_sample_chi_square(counts, batched)
        assert statistic < CHI2_CRITICAL_001[df], (
            f"{rule}: counts vs batched one-round chi-square {statistic:.1f} "
            f"exceeds the alpha=0.001 critical value for df={df}"
        )

    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_counts_vs_sequential(self, rule, sample_size, noise, initial):
        counts = pooled_category_counts_counts_engine(
            rule, sample_size, self.NUM_NODES, noise, initial,
            self.POOL_TRIALS, seed=30,
        )
        sequential = pooled_category_counts_sequential_engine(
            rule, sample_size, self.NUM_NODES, noise, initial,
            self.SEQUENTIAL_TRIALS, seed=4000,
        )
        statistic, df = two_sample_chi_square(counts, sequential)
        assert statistic < CHI2_CRITICAL_001[df], (
            f"{rule}: counts vs sequential one-round chi-square "
            f"{statistic:.1f} exceeds the alpha=0.001 critical value for "
            f"df={df}"
        )


class TestDynamicsFinalBiasAgreement:
    """KS cross-checks of multi-round final-bias summaries.

    20 rounds (no early stopping) keeps every trial away from consensus so
    the bias distribution stays non-degenerate; counts vs batched engines.
    """

    NUM_NODES = 300
    TRIALS = 100
    ROUNDS = 20

    @pytest.fixture(scope="class")
    def noise(self):
        return uniform_noise_matrix(3, 0.4)

    @pytest.fixture(scope="class")
    def initial(self):
        return biased_population(self.NUM_NODES, 3, 0.15, random_state=2)

    @pytest.mark.parametrize("rule,sample_size", ALL_RULES)
    def test_counts_vs_batched_final_bias(self, rule, sample_size, noise,
                                          initial):
        counts = make_counts_dynamics(
            rule, self.NUM_NODES, noise, 50, sample_size=sample_size
        ).run(initial, self.ROUNDS, self.TRIALS, target_opinion=1,
              stop_at_consensus=False, record_history=False)
        batched = make_ensemble_dynamics(
            rule, self.NUM_NODES, noise, 60, sample_size=sample_size
        ).run(initial, self.ROUNDS, self.TRIALS, target_opinion=1,
              stop_at_consensus=False, record_history=False)
        statistic = ks_statistic(counts.final_biases, batched.final_biases)
        critical = ks_critical(self.TRIALS, self.TRIALS)
        assert statistic < critical, (
            f"{rule}: final-bias KS {statistic:.3f} exceeds the alpha=0.001 "
            f"critical value {critical:.3f}"
        )


class TestProtocolAgreement:
    """The two-stage protocol across all three engines."""

    NUM_NODES = 600
    EPSILON = 0.3
    TRIALS = 100
    SEQUENTIAL_TRIALS = 20

    @pytest.fixture(scope="class")
    def noise(self):
        return uniform_noise_matrix(3, self.EPSILON)

    @pytest.fixture(scope="class")
    def initial(self):
        return rumor_instance(self.NUM_NODES, 3, 1)

    @pytest.fixture(scope="class")
    def counts_result(self, noise, initial):
        return CountsProtocol(
            self.NUM_NODES, noise, epsilon=self.EPSILON, random_state=70
        ).run(initial, self.TRIALS, target_opinion=1)

    @pytest.fixture(scope="class")
    def batched_result(self, noise, initial):
        return EnsembleProtocol(
            self.NUM_NODES, noise, epsilon=self.EPSILON, random_state=80
        ).run(initial, self.TRIALS, target_opinion=1)

    def test_stage1_bias_distribution(self, counts_result, batched_result):
        statistic = ks_statistic(
            counts_result.biases_after_stage1,
            batched_result.biases_after_stage1,
        )
        critical = ks_critical(self.TRIALS, self.TRIALS)
        assert statistic < critical, (
            f"Stage-1 bias KS {statistic:.3f} exceeds the alpha=0.001 "
            f"critical value {critical:.3f}"
        )

    def test_stage1_phase0_adoption_counts(self, noise, initial):
        """Chi-square on the pooled phase-0 adoption categories: the
        counts engine's Poissonized throw vs the batched engine's exact
        Claim-1 throw (pooled over trials, so the counts engine's larger
        per-trial total variance only makes the test conservative)."""
        counts_records = CountsProtocol(
            self.NUM_NODES, noise, epsilon=self.EPSILON, random_state=90
        ).run(initial, self.TRIALS, target_opinion=1).stage1_records[0]
        batched_records = EnsembleProtocol(
            self.NUM_NODES, noise, epsilon=self.EPSILON, random_state=95
        ).run(initial, self.TRIALS, target_opinion=1).stage1_records[0]
        pooled = []
        for record in (counts_records, batched_records):
            per_opinion = np.rint(
                record.opinion_distributions * self.NUM_NODES
            ).astype(np.int64).sum(axis=0)
            undecided = self.TRIALS * self.NUM_NODES - per_opinion.sum()
            pooled.append(np.concatenate([[undecided], per_opinion]))
        statistic, df = two_sample_chi_square(*pooled)
        assert statistic < CHI2_CRITICAL_001[df], (
            f"phase-0 adoption chi-square {statistic:.1f} exceeds the "
            f"alpha=0.001 critical value for df={df}"
        )

    def test_success_and_final_bias_across_all_engines(
        self, noise, initial, counts_result, batched_result
    ):
        sequential_successes = []
        sequential_final_biases = []
        for seed in range(self.SEQUENTIAL_TRIALS):
            result = TwoStageProtocol(
                self.NUM_NODES, noise, epsilon=self.EPSILON,
                random_state=7000 + seed,
            ).run(initial, target_opinion=1)
            sequential_successes.append(result.success)
            sequential_final_biases.append(result.final_bias)
        rates = {
            "counts": counts_result.success_rate,
            "batched": batched_result.success_rate,
            "sequential": float(np.mean(sequential_successes)),
        }
        # The protocol succeeds w.h.p. at this scale on every engine; a
        # four-sigma binomial tolerance on the smallest sample bounds the
        # admissible spread.
        tolerance = 4.0 * np.sqrt(0.25 / self.SEQUENTIAL_TRIALS)
        assert max(rates.values()) - min(rates.values()) <= tolerance, rates
        statistic = ks_statistic(
            counts_result.final_biases, batched_result.final_biases
        )
        critical = ks_critical(self.TRIALS, self.TRIALS)
        assert statistic < critical
        assert float(np.mean(sequential_final_biases)) == pytest.approx(
            float(counts_result.final_biases.mean()), abs=0.1
        )
