"""Tracing test: the counts engines never allocate an ``n``-sized array.

The counts tier's contract is that per-trial memory is ``O(k)`` (bounded
chunks for the Stage-2 fallback sampler), independent of the population
size.  Two complementary checks enforce it:

* **shape tracing** — every numpy allocation entry point the engines use
  (``np.zeros`` / ``np.empty`` / ``np.ones`` / ``np.full`` /
  ``np.arange`` / ``np.tile``) and every random draw (via a recording
  ``Generator`` subclass) is intercepted while a counts dynamics run and a
  full counts protocol run execute at ``n = 5,000,000``; every recorded
  axis must stay below ``MAX_TRACED_AXIS`` (far below ``n``, with head
  room for the documented ``VOTE_CHUNK = 32768`` Stage-2 chunks and the
  ``O(L)`` Poisson-tail work arrays);
* **physical impossibility** — the dynamics run again at ``n = 10^12``,
  where any array with an ``n``-sized axis would need ~8 TB: merely
  completing proves no such allocation happened.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import CountsProtocol
from repro.core.state import CountsState
from repro.dynamics import make_counts_dynamics
from repro.noise.families import uniform_noise_matrix

#: Any traced axis at or above this is treated as an ``n``-sized leak.
#: It must stay comfortably above VOTE_CHUNK (32768) and the O(L) arrays
#: of the Poisson tail computation, and far below the test's n.
MAX_TRACED_AXIS = 100_000

TRACED_ALLOCATORS = ("zeros", "empty", "ones", "full", "arange", "tile")


class _ShapeLog:
    def __init__(self):
        self.shapes = []

    def record(self, value) -> None:
        shape = np.shape(value)
        if shape:
            self.shapes.append(shape)

    def max_axis(self) -> int:
        return max(
            (axis for shape in self.shapes for axis in shape), default=0
        )


class _RecordingGenerator(np.random.Generator):
    """A ``numpy.random.Generator`` that logs the shape of every draw.

    Subclassing (rather than wrapping) keeps ``isinstance`` checks in
    ``as_generator`` satisfied, so the engines consume it like any other
    per-trial randomness source.
    """

    def __init__(self, seed, log: _ShapeLog):
        super().__init__(np.random.PCG64(seed))
        self._log = log

    def _recorded(self, draw):
        self._log.record(draw)
        return draw

    def multinomial(self, *args, **kwargs):
        return self._recorded(super().multinomial(*args, **kwargs))

    def binomial(self, *args, **kwargs):
        return self._recorded(super().binomial(*args, **kwargs))

    def random(self, *args, **kwargs):
        return self._recorded(super().random(*args, **kwargs))

    def poisson(self, *args, **kwargs):
        return self._recorded(super().poisson(*args, **kwargs))

    def integers(self, *args, **kwargs):
        return self._recorded(super().integers(*args, **kwargs))

    def choice(self, *args, **kwargs):
        return self._recorded(super().choice(*args, **kwargs))

    def hypergeometric(self, *args, **kwargs):
        return self._recorded(super().hypergeometric(*args, **kwargs))


@pytest.fixture
def shape_log(monkeypatch):
    """Intercept numpy's allocation entry points into a shape log."""
    log = _ShapeLog()
    for name in TRACED_ALLOCATORS:
        original = getattr(np, name)

        def traced(*args, _original=original, **kwargs):
            result = _original(*args, **kwargs)
            log.record(result)
            return result

        monkeypatch.setattr(np, name, traced)
    return log


NUM_NODES = 5_000_000
NUM_TRIALS = 4


def test_counts_dynamics_allocate_no_n_sized_axis(shape_log):
    noise = uniform_noise_matrix(3, 0.3)
    initial = CountsState(
        np.array([3_000_000, 1_200_000, 600_000]), NUM_NODES
    )
    for rule, sample_size in [
        ("voter", None),
        ("3-majority", None),
        ("h-majority", 5),
        ("undecided-state", None),
        ("median-rule", None),
    ]:
        generators = [
            _RecordingGenerator(seed, shape_log)
            for seed in range(NUM_TRIALS)
        ]
        dynamic = make_counts_dynamics(
            rule, NUM_NODES, noise, generators, sample_size=sample_size
        )
        result = dynamic.run(
            initial, 5, NUM_TRIALS, target_opinion=1,
            stop_at_consensus=False,
        )
        assert result.num_trials == NUM_TRIALS
    assert shape_log.shapes, "tracing recorded no allocations at all"
    assert shape_log.max_axis() < MAX_TRACED_AXIS, (
        f"counts dynamics allocated an array with a {shape_log.max_axis()}"
        f"-sized axis at n = {NUM_NODES:,}"
    )


def test_counts_protocol_allocates_no_n_sized_axis(shape_log):
    """A full two-stage protocol run, including the final long Stage-2
    phase whose vote sampler falls back to bounded chunks."""
    noise = uniform_noise_matrix(3, 0.3)
    initial = CountsState.single_source(NUM_NODES, 3, 1)
    generators = [
        _RecordingGenerator(100 + seed, shape_log) for seed in range(2)
    ]
    result = CountsProtocol(
        NUM_NODES, noise, epsilon=0.3, random_state=generators
    ).run(initial, 2, target_opinion=1)
    assert result.success_rate == 1.0
    assert shape_log.shapes, "tracing recorded no allocations at all"
    assert shape_log.max_axis() < MAX_TRACED_AXIS, (
        f"counts protocol allocated an array with a {shape_log.max_axis()}"
        f"-sized axis at n = {NUM_NODES:,}"
    )


def test_counts_dynamics_run_at_a_trillion_nodes():
    """n = 10^12: an (R, n) or (n,) allocation would need terabytes, so
    completing at all certifies the engine's n-independence."""
    noise = uniform_noise_matrix(3, 0.3)
    initial = CountsState(
        np.array([500 * 10**9, 300 * 10**9, 200 * 10**9]), 10**12
    )
    result = make_counts_dynamics("3-majority", 10**12, noise, 0).run(
        initial, 10, 4, target_opinion=1, stop_at_consensus=False
    )
    assert result.num_trials == 4
    assert np.all(
        result.final_states.counts.sum(axis=1) == 10**12
    )
    # The channel noise pulls the bias toward its small fixed point, but
    # the initial plurality must still lead after 10 rounds.
    assert np.all(result.final_biases > 0)
