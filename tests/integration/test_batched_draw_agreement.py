"""Statistical agreement of the batched-draw sweep mode with serial runs.

``simulate_sweep(grid, draw_mode="batched")`` reorders the raw RNG draws
of the fused counts-protocol batch (one shared stream, column-wise
batched multinomials/binomials) while leaving every per-row *law*
untouched, so its results must be samples of exactly the distribution
the serial loop samples.  This is the TVD/Wilson-style gate the
optimization contract requires for any draw-order-changing change (see
``docs/performance.md``): the per-trial mode stays bitwise-pinned by
``test_sweep_bitwise_equivalence``-style suites, and this module pins
the batched mode distributionally.

Methodology mirrors ``test_engine_agreement.py``: fixed seeds (every
assertion is deterministic), two-sample KS on per-trial final biases at
the alpha = 0.001 closed-form critical value, two-sample chi-square on
pooled final opinion counts, and Wilson 99.9% interval overlap on
success rates.  Ties and pooling only make the tests conservative.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import Scenario, ScenarioGrid, simulate_sweep

pytestmark = pytest.mark.agreement

#: Upper alpha = 0.001 critical values of the chi-square distribution.
CHI2_CRITICAL_001 = {1: 10.828, 2: 13.816, 3: 16.266, 4: 18.467, 5: 20.515}

#: c(alpha) of the two-sample KS critical value at alpha = 0.001.
KS_COEFFICIENT_001 = 1.9495

TRIALS = 192


def ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    sample_a = np.sort(np.asarray(sample_a, float))
    sample_b = np.sort(np.asarray(sample_b, float))
    grid = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(sample_a, grid, side="right") / sample_a.size
    cdf_b = np.searchsorted(sample_b, grid, side="right") / sample_b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_critical(size_a: int, size_b: int) -> float:
    return KS_COEFFICIENT_001 * np.sqrt((size_a + size_b) / (size_a * size_b))


def two_sample_chi_square(observed_a: np.ndarray, observed_b: np.ndarray):
    observed = np.stack(
        [np.asarray(observed_a, float), np.asarray(observed_b, float)]
    )
    observed = observed[:, observed.sum(axis=0) > 0]
    row_totals = observed.sum(axis=1, keepdims=True)
    column_totals = observed.sum(axis=0, keepdims=True)
    expected = row_totals * column_totals / observed.sum()
    statistic = float(((observed - expected) ** 2 / expected).sum())
    return statistic, observed.shape[1] - 1


def wilson_interval(successes: int, total: int, z: float = 3.2905):
    """The Wilson score interval at alpha = 0.001 (z = 3.2905)."""
    if total == 0:
        return 0.0, 1.0
    rate = successes / total
    denominator = 1.0 + z**2 / total
    center = (rate + z**2 / (2 * total)) / denominator
    margin = (
        z
        * np.sqrt(rate * (1.0 - rate) / total + z**2 / (4 * total**2))
        / denominator
    )
    return center - margin, center + margin


@pytest.fixture(scope="module")
def sweep_pair():
    """The same 4-point protocol grid in both draw modes.

    Small enough n that success is not saturated at 1.0 for every epsilon,
    so the success-rate check has discriminating power, and separate seeds
    feed the two modes (same-seed results would be spuriously correlated
    rather than independent samples).
    """
    def grid(seed):
        return ScenarioGrid(
            Scenario(
                workload="rumor",
                num_nodes=600,
                num_opinions=2,
                epsilon=0.25,
                engine="counts",
                num_trials=TRIALS,
                seed=seed,
            ),
            {"epsilon": (0.2, 0.28, 0.36, 0.44)},
        )

    per_trial = simulate_sweep(grid(2024), draw_mode="per-trial")
    batched = simulate_sweep(grid(4202), draw_mode="batched")
    return per_trial, batched


def test_final_bias_distributions_agree(sweep_pair):
    per_trial, batched = sweep_pair
    critical = ks_critical(TRIALS, TRIALS)
    for reference, candidate in zip(per_trial.results, batched.results):
        statistic = ks_statistic(
            reference.final_biases, candidate.final_biases
        )
        assert statistic < critical, (
            f"batched-draw final-bias KS statistic {statistic:.3f} exceeds "
            f"the alpha=0.001 critical value {critical:.3f} at "
            f"epsilon={reference.provenance['scenario']['epsilon']}"
        )


def _trial_outcome_categories(result) -> np.ndarray:
    """Per-point trial counts by outcome: [target consensus, other].

    The valid independent unit at absorption is the *trial*, not the node
    (a consensus trial's n final node-counts are perfectly correlated), so
    the chi-square pools trials, never node counts.
    """
    successes = int(result.successes.sum())
    return np.asarray([successes, result.successes.size - successes])


def test_trial_outcome_categories_agree(sweep_pair):
    per_trial, batched = sweep_pair
    for reference, candidate in zip(per_trial.results, batched.results):
        observed_a = _trial_outcome_categories(reference)
        observed_b = _trial_outcome_categories(candidate)
        if (observed_a + observed_b)[1] == 0:
            continue  # both saturated: nothing to compare
        statistic, df = two_sample_chi_square(observed_a, observed_b)
        assert statistic < CHI2_CRITICAL_001[df], (
            f"batched-draw trial-outcome chi-square {statistic:.1f} exceeds "
            f"the alpha=0.001 critical value for df={df}"
        )


def test_success_rates_agree_within_wilson(sweep_pair):
    per_trial, batched = sweep_pair
    for reference, candidate in zip(per_trial.results, batched.results):
        low, high = wilson_interval(
            int(reference.successes.sum()), TRIALS
        )
        batched_rate = candidate.successes.mean()
        assert low <= batched_rate <= high, (
            f"batched-draw success rate {batched_rate:.3f} outside the "
            f"per-trial Wilson 99.9% interval [{low:.3f}, {high:.3f}]"
        )


def test_batched_mode_is_deterministic_given_seeds():
    grid = ScenarioGrid(
        Scenario(
            workload="rumor",
            num_nodes=500,
            num_opinions=2,
            epsilon=0.3,
            engine="counts",
            num_trials=16,
            seed=7,
        ),
        {"epsilon": (0.25, 0.4)},
    )
    first = simulate_sweep(grid, draw_mode="batched")
    second = simulate_sweep(grid, draw_mode="batched")
    for a, b in zip(first.results, second.results):
        assert np.array_equal(a.final_opinion_counts, b.final_opinion_counts)
        assert np.array_equal(a.final_biases, b.final_biases)


def test_batched_mode_is_stamped_in_provenance():
    grid = ScenarioGrid(
        Scenario(
            workload="rumor",
            num_nodes=500,
            num_opinions=2,
            epsilon=0.3,
            engine="counts",
            num_trials=8,
            seed=3,
        ),
        {"epsilon": (0.25, 0.4)},
    )
    batched = simulate_sweep(grid, draw_mode="batched")
    per_trial = simulate_sweep(grid)
    for result in batched.results:
        assert result.provenance["rng_draw_order"] == "batched"
    for result in per_trial.results:
        assert result.provenance["rng_draw_order"] == "per-trial"


def test_invalid_draw_mode_is_rejected():
    grid = ScenarioGrid(
        Scenario(
            workload="rumor",
            num_nodes=500,
            num_opinions=2,
            epsilon=0.3,
            engine="counts",
            num_trials=4,
            seed=3,
        ),
        {"epsilon": (0.25,)},
    )
    with pytest.raises(ValueError, match="draw_mode"):
        simulate_sweep(grid, draw_mode="columnwise")
