"""End-to-end integration tests of the full protocol (Theorems 1 and 2).

These tests run the whole pipeline — schedule construction, Stage 1, Stage 2,
problem wrappers — across repeated seeds and assert "w.h.p."-style success
rates, plus the qualitative properties the theorems promise (round budget,
bias hand-off between stages, robustness to the choice of correct opinion).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plurality import PluralityConsensus, PluralityInstance
from repro.core.rumor import RumorSpreading
from repro.core.schedule import theoretical_round_complexity
from repro.noise.families import (
    binary_flip_matrix,
    cyclic_shift_matrix,
    uniform_noise_matrix,
)
from repro.noise.majority_preserving import epsilon_for_delta


class TestTheorem1EndToEnd:
    def test_rumor_spreading_succeeds_across_seeds(self):
        noise = uniform_noise_matrix(3, 0.3)
        successes = 0
        for seed in range(8):
            result = RumorSpreading(
                700, 3, noise, 0.3, correct_opinion=1, random_state=seed
            ).run()
            successes += int(result.success)
        assert successes >= 7

    def test_rumor_spreading_with_binary_noise_matches_fhk_setting(self):
        noise = binary_flip_matrix(0.25)
        successes = sum(
            RumorSpreading(600, 2, noise, 0.25, random_state=seed).run().success
            for seed in range(5)
        )
        assert successes >= 4

    def test_round_budget_within_constant_of_theory(self):
        noise = uniform_noise_matrix(3, 0.3)
        result = RumorSpreading(2000, 3, noise, 0.3, random_state=0).run()
        clock = theoretical_round_complexity(2000, 0.3)
        assert result.total_rounds < 60 * clock

    def test_every_opinion_label_can_be_the_rumor(self):
        noise = uniform_noise_matrix(4, 0.3)
        for opinion in range(1, 5):
            result = RumorSpreading(
                500, 4, noise, 0.3, correct_opinion=opinion, random_state=opinion
            ).run()
            assert result.success
            assert result.final_state.has_consensus_on(opinion)

    def test_stage1_hands_over_sufficient_bias(self):
        noise = uniform_noise_matrix(3, 0.3)
        result = RumorSpreading(1500, 3, noise, 0.3, random_state=1).run()
        assert result.opinionated_after_stage1 == 1500
        assert result.bias_after_stage1 > np.sqrt(np.log(1500) / 1500) / 2

    def test_cyclic_noise_matrix_also_works_when_mp(self):
        # The "close opinion" noise pattern is m.p. for moderate parameters,
        # and the protocol works under it with the LP-derived epsilon.
        noise = cyclic_shift_matrix(4, 0.3)
        effective_epsilon = epsilon_for_delta(noise, 0.1)
        assert effective_epsilon > 0
        result = RumorSpreading(
            800, 4, noise, effective_epsilon, random_state=2
        ).run()
        assert result.success


class TestTheorem2EndToEnd:
    def test_plurality_consensus_succeeds_across_seeds(self):
        instance = PluralityInstance.from_support_fractions(
            900, 300, [0.5, 0.3, 0.2]
        )
        noise = uniform_noise_matrix(3, 0.3)
        successes = 0
        for seed in range(6):
            result = PluralityConsensus(
                instance, noise, 0.3, random_state=seed
            ).run()
            successes += int(result.success)
        assert successes >= 5

    def test_plurality_wins_without_absolute_majority(self):
        instance = PluralityInstance.from_support_fractions(
            1200, 1200, [0.38, 0.33, 0.29]
        )
        noise = uniform_noise_matrix(3, 0.3)
        result = PluralityConsensus(instance, noise, 0.3, random_state=3).run()
        assert result.success
        assert result.target_opinion == 1

    def test_five_opinions(self):
        instance = PluralityInstance.from_support_fractions(
            1000, 1000, [0.3, 0.2, 0.2, 0.15, 0.15]
        )
        noise = uniform_noise_matrix(5, 0.35)
        result = PluralityConsensus(instance, noise, 0.35, random_state=4).run()
        assert result.success

    def test_insufficient_bias_can_fail(self):
        # With a vanishing initial bias and substantial noise, the plurality
        # opinion is *not* reliably recovered: consensus may land elsewhere.
        noise = uniform_noise_matrix(2, 0.15)
        wins = 0
        trials = 6
        for seed in range(trials):
            instance = PluralityInstance(
                500, 2, {1: 251, 2: 249}
            )  # bias 2/500 = 0.004
            result = PluralityConsensus(
                instance, noise, 0.15, random_state=seed
            ).run()
            wins += int(result.success)
        assert wins < trials  # not a w.h.p. guarantee in this regime
