"""Cross-engine agreement under fault injection.

The oblivious adversaries (crash, omission, random-liar) admit counts-tier
sufficient statistics, so the three sampling tiers must stay statistically
indistinguishable on faulted runs exactly as they are on fault-free ones:

* **success-rate agreement** at ``f in {0.05, 0.2}`` across all three
  tiers, bounded by a four-sigma binomial tolerance on the smallest
  sample (the same methodology as the fault-free protocol agreement
  suite);
* **KS cross-checks** on the per-trial final-bias distributions (counts
  vs batched, alpha = 0.001 closed-form critical value);
* **TVD cross-checks** at a small scale where the full honest count-state
  distribution is enumerable: the counts and batched empirical final-state
  distributions must be within the *sum* of their sampling TVD thresholds
  (triangle inequality through the common true distribution — a
  distribution-free bound, so a failure is an engine bug).

The adaptive plurality-targeting adversary has no counts reduction; the
facade must degrade ``counts -> batched`` with a recorded provenance
reason instead of raising, and the batched and sequential tiers must
still agree with each other.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic import (
    empirical_state_distribution,
    sampling_tvd_threshold,
    state_space_size,
    total_variation_distance,
    wilson_interval,
)
from repro.core.protocol import CountsProtocol, EnsembleProtocol
from repro.core.state import PopulationState
from repro.faults import (
    FaultedCountsDeliveryModel,
    FaultedDeliveryEngine,
    FaultedPhaseSampler,
    FaultModel,
)
from repro.noise.families import uniform_noise_matrix
from repro.sim import Scenario, simulate

pytestmark = pytest.mark.agreement

#: c(alpha) of the two-sample KS critical value at alpha = 0.001.
KS_COEFFICIENT_001 = 1.9495

OBLIVIOUS_CASES = [
    (FaultModel(kind="crash", fraction=0.05, crash_round=3), "crash:0.05"),
    (FaultModel(kind="crash", fraction=0.2, crash_round=3), "crash:0.2"),
    (FaultModel(kind="omission", fraction=0.05, drop_rate=0.5), "omission:0.05"),
    (FaultModel(kind="omission", fraction=0.2, drop_rate=0.5), "omission:0.2"),
    (FaultModel(kind="liar", fraction=0.05), "liar:0.05"),
    (FaultModel(kind="liar", fraction=0.2), "liar:0.2"),
]


def ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    sample_a = np.sort(np.asarray(sample_a, float))
    sample_b = np.sort(np.asarray(sample_b, float))
    grid = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(sample_a, grid, side="right") / sample_a.size
    cdf_b = np.searchsorted(sample_b, grid, side="right") / sample_b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_critical(size_a: int, size_b: int) -> float:
    return KS_COEFFICIENT_001 * np.sqrt((size_a + size_b) / (size_a * size_b))


def faulted_scenario(workload, faults, engine, num_trials, seed=11):
    return Scenario(
        workload=workload, num_nodes=60, num_opinions=3, epsilon=0.3,
        bias=0.3 if workload == "plurality" else 0.0,
        engine=engine, num_trials=num_trials, seed=seed, faults=faults,
    )


class TestObliviousFaultTierAgreement:
    """All three sampling tiers on crash / omission / random-liar faults."""

    COUNTS_TRIALS = 600
    BATCHED_TRIALS = 300
    SEQUENTIAL_TRIALS = 40

    @pytest.mark.parametrize(
        "faults", [case for case, _ in OBLIVIOUS_CASES],
        ids=[label for _, label in OBLIVIOUS_CASES],
    )
    @pytest.mark.parametrize("workload", ["rumor", "plurality"])
    def test_success_rates_agree_across_tiers(self, workload, faults):
        rates = {}
        smallest = self.SEQUENTIAL_TRIALS
        for engine, trials in (
            ("counts", self.COUNTS_TRIALS),
            ("batched", self.BATCHED_TRIALS),
            ("sequential", self.SEQUENTIAL_TRIALS),
        ):
            result = simulate(faulted_scenario(workload, faults, engine, trials))
            assert result.num_trials == trials
            assert "engine_degraded_reason" not in result.provenance
            rates[engine] = result.success_count / trials
        tolerance = 4.0 * np.sqrt(0.25 / smallest)
        assert max(rates.values()) - min(rates.values()) <= tolerance, (
            f"{faults.kind} f={faults.fraction}: success rates spread "
            f"beyond the four-sigma tolerance: {rates}"
        )

    @pytest.mark.parametrize(
        "faults", [case for case, _ in OBLIVIOUS_CASES],
        ids=[label for _, label in OBLIVIOUS_CASES],
    )
    def test_wilson_intervals_overlap_counts_vs_batched(self, faults):
        counts = simulate(
            faulted_scenario("rumor", faults, "counts", self.COUNTS_TRIALS)
        )
        batched = simulate(
            faulted_scenario("rumor", faults, "batched", self.BATCHED_TRIALS)
        )
        low_c, high_c = wilson_interval(counts.success_count, counts.num_trials)
        low_b, high_b = wilson_interval(
            batched.success_count, batched.num_trials
        )
        assert max(low_c, low_b) <= min(high_c, high_b), (
            f"{faults.kind} f={faults.fraction}: disjoint Wilson 99.9% "
            f"intervals [{low_c:.3f}, {high_c:.3f}] vs "
            f"[{low_b:.3f}, {high_b:.3f}]"
        )


class TestFaultedFinalStateTVD:
    """Counts vs batched final honest-state distributions at small scale.

    ``n = 20, k = 2`` with ``f = 0.2`` leaves 16 honest nodes, so the
    honest count simplex has C(18, 2) = 171 states — enumerable, and the
    empirical-vs-empirical TVD bound (sum of the two sampling thresholds)
    is tight enough to catch a mis-injected adversary.
    """

    NUM_NODES = 20
    NUM_OPINIONS = 2
    EPSILON = 0.4
    COUNTS_TRIALS = 3000
    BATCHED_TRIALS = 1500

    @pytest.mark.parametrize(
        "faults",
        [
            FaultModel(kind="crash", fraction=0.2, crash_round=2),
            FaultModel(kind="omission", fraction=0.2, drop_rate=0.5),
            FaultModel(kind="liar", fraction=0.2),
        ],
        ids=["crash", "omission", "liar"],
    )
    def test_counts_vs_batched_final_states(self, faults):
        scenario = Scenario(
            workload="plurality", num_nodes=self.NUM_NODES,
            num_opinions=self.NUM_OPINIONS, epsilon=self.EPSILON,
            shares=(0.6, 0.4), engine="counts", num_trials=1, seed=5,
            faults=faults,
        )
        noise = uniform_noise_matrix(self.NUM_OPINIONS, self.EPSILON)
        honest, faulty_histogram = scenario.fault_split()
        num_faulty = scenario.faulty_count()

        counts_result = CountsProtocol(
            honest.num_nodes, noise, epsilon=self.EPSILON, random_state=7,
            delivery=FaultedCountsDeliveryModel(
                self.NUM_NODES, noise,
                FaultedPhaseSampler(
                    faults, num_faulty, faulty_histogram, self.NUM_OPINIONS
                ),
            ),
        ).run(honest, self.COUNTS_TRIALS, target_opinion=1)

        initial = PopulationState.from_counts(
            honest.num_nodes,
            {
                opinion + 1: int(count)
                for opinion, count in enumerate(honest.counts)
                if count
            },
            self.NUM_OPINIONS,
            random_state=0,
        )
        batched_result = EnsembleProtocol(
            honest.num_nodes, noise, epsilon=self.EPSILON, random_state=8,
            engine=FaultedDeliveryEngine(
                honest.num_nodes, self.NUM_NODES, noise,
                FaultedPhaseSampler(
                    faults, num_faulty, faulty_histogram, self.NUM_OPINIONS
                ),
            ),
        ).run(initial, self.BATCHED_TRIALS, target_opinion=1)

        states = state_space_size(honest.num_nodes, self.NUM_OPINIONS)
        counts_empirical = empirical_state_distribution(
            np.asarray(counts_result.final_states.counts, dtype=np.int64),
            honest.num_nodes, self.NUM_OPINIONS,
        )
        batched_empirical = empirical_state_distribution(
            batched_result.final_states.opinion_counts(),
            honest.num_nodes, self.NUM_OPINIONS,
        )
        threshold = sampling_tvd_threshold(
            states, self.COUNTS_TRIALS
        ) + sampling_tvd_threshold(states, self.BATCHED_TRIALS)
        tvd = total_variation_distance(counts_empirical, batched_empirical)
        assert tvd < threshold, (
            f"{faults.kind}: counts-vs-batched final-state TVD {tvd:.4f} "
            f"exceeds the combined sampling threshold {threshold:.4f}"
        )


class TestAdaptiveDegradation:
    """The adaptive adversary on the counts policy: degrade, never raise."""

    def test_counts_policy_degrades_to_batched_with_reason(self):
        faults = FaultModel(kind="adaptive", fraction=0.1)
        result = simulate(faulted_scenario("plurality", faults, "counts", 8))
        assert result.provenance["engine"] == "batched"
        reason = result.provenance["engine_degraded_reason"]
        assert "adaptive" in reason and "counts" in reason

    def test_auto_policy_above_threshold_degrades_with_reason(self):
        faults = FaultModel(kind="adaptive", fraction=0.1)
        scenario = Scenario(
            workload="rumor", num_nodes=120, num_opinions=3, epsilon=0.3,
            engine="auto", counts_threshold=50, num_trials=4, seed=3,
            faults=faults,
        )
        result = simulate(scenario)
        assert result.provenance["engine"] == "batched"
        assert "engine_degraded_reason" in result.provenance

    def test_degraded_run_matches_explicit_batched_run(self):
        faults = FaultModel(kind="adaptive", fraction=0.1)
        degraded = simulate(faulted_scenario("plurality", faults, "counts", 16))
        explicit = simulate(
            faulted_scenario("plurality", faults, "batched", 16)
        )
        assert np.array_equal(degraded.successes, explicit.successes)
        assert np.array_equal(degraded.rounds, explicit.rounds)

    def test_adaptive_batched_vs_sequential_agreement(self):
        faults = FaultModel(kind="adaptive", fraction=0.2)
        batched = simulate(faulted_scenario("rumor", faults, "batched", 200))
        sequential = simulate(
            faulted_scenario("rumor", faults, "sequential", 40)
        )
        rate_b = batched.success_count / batched.num_trials
        rate_s = sequential.success_count / sequential.num_trials
        tolerance = 4.0 * np.sqrt(0.25 / sequential.num_trials)
        assert abs(rate_b - rate_s) <= tolerance, (
            f"adaptive: batched {rate_b:.3f} vs sequential {rate_s:.3f} "
            f"beyond the four-sigma tolerance {tolerance:.3f}"
        )
