"""Shared pytest fixtures for the repro test suite.

Also installs a per-test wall-clock timeout so a hung simulation (an
engine that stops terminating, a deadlocked worker pool) fails the one
test instead of wedging the whole suite.  When the ``pytest-timeout``
plugin is installed it owns the job; otherwise a ``SIGALRM``-based
fallback covers POSIX platforms (the container image has no
pytest-timeout, and installing packages is off the table).  Override the
budget with ``REPRO_TEST_TIMEOUT`` (seconds; ``0`` disables).
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.noise.families import (
    binary_flip_matrix,
    identity_matrix,
    uniform_noise_matrix,
)

TEST_TIMEOUT_SECONDS = int(os.environ.get("REPRO_TEST_TIMEOUT", "600"))


def _pytest_timeout_installed() -> bool:
    try:
        import pytest_timeout  # noqa: F401

        return True
    except ImportError:
        return False


if (
    TEST_TIMEOUT_SECONDS > 0
    and hasattr(signal, "SIGALRM")
    and not _pytest_timeout_installed()
):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        def _on_timeout(signum, frame):
            raise TimeoutError(
                f"{item.nodeid} exceeded the {TEST_TIMEOUT_SECONDS}s "
                "per-test budget (override with REPRO_TEST_TIMEOUT)"
            )

        previous = signal.signal(signal.SIGALRM, _on_timeout)
        signal.alarm(TEST_TIMEOUT_SECONDS)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def identity3():
    """The noise-free channel over three opinions."""
    return identity_matrix(3)


@pytest.fixture
def uniform3():
    """The canonical uniform-noise matrix over three opinions (eps = 0.3)."""
    return uniform_noise_matrix(3, 0.3)


@pytest.fixture
def binary_flip():
    """The paper's Eq. (1) binary flip matrix (eps = 0.2)."""
    return binary_flip_matrix(0.2)
