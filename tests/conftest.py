"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.families import (
    binary_flip_matrix,
    identity_matrix,
    uniform_noise_matrix,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def identity3():
    """The noise-free channel over three opinions."""
    return identity_matrix(3)


@pytest.fixture
def uniform3():
    """The canonical uniform-noise matrix over three opinions (eps = 0.3)."""
    return uniform_noise_matrix(3, 0.3)


@pytest.fixture
def binary_flip():
    """The paper's Eq. (1) binary flip matrix (eps = 0.2)."""
    return binary_flip_matrix(0.2)
