"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.spec import all_specs, registered_ids


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-experiment", "E99"])

    def test_rumor_defaults(self):
        args = build_parser().parse_args(["rumor"])
        assert args.nodes == 2000
        assert args.opinions == 3
        assert args.epsilon == pytest.approx(0.3)

    def test_plurality_arguments(self):
        args = build_parser().parse_args(
            ["plurality", "--nodes", "500", "--support", "100", "--bias", "0.3"]
        )
        assert args.support == 100
        assert args.bias == pytest.approx(0.3)

    def test_dynamics_defaults(self):
        args = build_parser().parse_args(["dynamics"])
        assert args.rule == "3-majority"
        assert args.engine == "batched"
        assert args.trials == 32
        assert args.max_rounds == 300

    def test_dynamics_rejects_unknown_rule(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dynamics", "--rule", "bogus"])

    def test_dynamics_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dynamics", "--engine", "bogus"])

    def test_dynamics_h_majority_requires_sample_size(self, capsys):
        with pytest.raises(SystemExit):
            main(["dynamics", "--rule", "h-majority", "--nodes", "50"])
        assert "requires --sample-size" in capsys.readouterr().err

    def test_dynamics_sample_size_rejected_for_other_rules(self, capsys):
        with pytest.raises(SystemExit):
            main(["dynamics", "--rule", "voter", "--sample-size", "3"])
        assert "only applies to --rule h-majority" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["ensemble", "dynamics", "run-experiment"])
    def test_engine_choices_are_uniform_across_subcommands(self, command):
        """Every trial-running subcommand accepts the same engine names."""
        prefix = [command, "E12"] if command == "run-experiment" else [command]
        for engine in ("batched", "sequential", "counts", "auto"):
            args = build_parser().parse_args(prefix + ["--engine", engine])
            assert args.engine == engine
        with pytest.raises(SystemExit):
            build_parser().parse_args(prefix + ["--engine", "bogus"])

    @pytest.mark.parametrize("command", ["ensemble", "dynamics", "run-experiment"])
    def test_counts_threshold_accepted_with_auto(self, command):
        prefix = [command, "E12"] if command == "run-experiment" else [command]
        args = build_parser().parse_args(
            prefix + ["--engine", "auto", "--counts-threshold", "1234"]
        )
        assert args.counts_threshold == 1234

    def test_counts_threshold_requires_auto(self, capsys):
        with pytest.raises(SystemExit):
            main(["dynamics", "--engine", "counts", "--counts-threshold", "5"])
        assert "only applies to --engine auto" in capsys.readouterr().err

    def test_counts_threshold_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["dynamics", "--engine", "auto", "--counts-threshold", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_counts_threshold_requires_auto_on_run_experiment_too(
        self, capsys
    ):
        with pytest.raises(SystemExit):
            main(["run-experiment", "E11", "--counts-threshold", "10"])
        assert "only applies to --engine auto" in capsys.readouterr().err

    def test_intractable_counts_sample_size_is_a_parser_error(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "dynamics",
                    "--rule", "h-majority",
                    "--sample-size", "256",
                    "--engine", "counts",
                    "--nodes", "100",
                ]
            )
        assert "maj() table budget" in capsys.readouterr().err

    def test_intractable_sample_size_on_auto_degrades_to_batched(self, capsys):
        """--engine auto matches the facade: degrade, don't error."""
        exit_code = main(
            [
                "dynamics",
                "--rule", "h-majority",
                "--sample-size", "256",
                "--engine", "auto",
                "--counts-threshold", "100",
                "--nodes", "200",
                "--trials", "2",
                "--max-rounds", "5",
                "--epsilon", "0.6",
                "--bias", "0.3",
                "--seed", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code in (0, 1)
        assert "engine                : batched" in captured.out


class TestSimulateCommand:
    def test_simulate_rumor_batched(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--workload", "rumor",
                "--nodes", "500",
                "--opinions", "3",
                "--epsilon", "0.35",
                "--trials", "4",
                "--engine", "batched",
                "--seed", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "workload              : rumor" in captured.out
        assert "engine                : batched" in captured.out
        assert "success rate          : 1.0000" in captured.out

    def test_simulate_dynamics_counts(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--workload", "dynamics",
                "--rule", "3-majority",
                "--nodes", "500",
                "--epsilon", "0.66",
                "--bias", "0.3",
                "--trials", "4",
                "--max-rounds", "200",
                "--engine", "counts",
                "--seed", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "workload              : dynamics" in captured.out
        assert "engine                : counts" in captured.out

    def test_simulate_json_output_is_a_simulation_result(self, capsys):
        import json as json_module

        exit_code = main(
            [
                "simulate",
                "--workload", "plurality",
                "--nodes", "400",
                "--support", "150",
                "--bias", "0.4",
                "--epsilon", "0.35",
                "--trials", "2",
                "--engine", "counts",
                "--seed", "0",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code in (0, 1)
        document = json_module.loads(captured.out)
        assert document["workload"] == "plurality"
        assert document["engine"] == "counts"
        assert len(document["successes"]) == 2
        assert document["provenance"]["scenario"]["workload"] == "plurality"

    def test_simulate_dynamics_without_rule_is_a_parser_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "dynamics", "--nodes", "50"])
        assert "requires rule" in capsys.readouterr().err

    def test_simulate_counts_rejects_ablation_free_error(self, capsys):
        # Scenario validation surfaces as a parser error naming the
        # engines that do support the request.
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate",
                    "--workload", "dynamics",
                    "--rule", "h-majority",
                    "--sample-size", "256",
                    "--engine", "counts",
                    "--nodes", "100",
                ]
            )
        assert "maj() table budget" in capsys.readouterr().err

    def test_simulate_auto_threshold_resolves_to_counts(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--nodes", "500",
                "--epsilon", "0.35",
                "--trials", "2",
                "--engine", "auto",
                "--counts-threshold", "100",
                "--seed", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code in (0, 1)
        assert "engine                : counts" in captured.out


class TestExperimentRegistry:
    def test_every_experiment_has_a_runnable_spec(self):
        for spec in all_specs():
            assert spec.experiment_id.startswith("E")
            assert callable(spec.run_fn)
            assert spec.description
            assert spec.supported_engines

    def test_registry_covers_e1_through_e15(self):
        assert registered_ids() == [f"E{index}" for index in range(1, 16)]


class TestCommands:
    def test_list_experiments(self, capsys):
        exit_code = main(["list-experiments"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "E1" in captured.out
        assert "E15" in captured.out

    def test_run_experiment_e11(self, capsys):
        exit_code = main(["run-experiment", "E11", "--seed", "0"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[E11]" in captured.out
        assert "total_bits" in captured.out

    def test_run_experiment_e10(self, capsys):
        exit_code = main(["run-experiment", "E10"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[E10]" in captured.out

    def test_rumor_command_success_exit_code(self, capsys):
        exit_code = main(
            [
                "rumor",
                "--nodes", "500",
                "--opinions", "3",
                "--epsilon", "0.35",
                "--seed", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "success               : True" in captured.out

    def test_dynamics_command_batched(self, capsys):
        exit_code = main(
            [
                "dynamics",
                "--rule", "3-majority",
                "--nodes", "500",
                "--opinions", "3",
                "--epsilon", "0.66",
                "--bias", "0.3",
                "--trials", "4",
                "--max-rounds", "200",
                "--seed", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "success rate          : 1.0000" in captured.out
        assert "engine                : batched" in captured.out

    def test_dynamics_command_sequential_engine(self, capsys):
        exit_code = main(
            [
                "dynamics",
                "--rule", "undecided-state",
                "--nodes", "300",
                "--epsilon", "0.6",
                "--bias", "0.4",
                "--trials", "2",
                "--max-rounds", "400",
                "--engine", "sequential",
                "--seed", "0",
            ]
        )
        captured = capsys.readouterr()
        # Exact consensus under residual noise is not guaranteed; the check
        # here is that the sequential engine routing works end to end.
        assert exit_code in (0, 1)
        assert "engine                : sequential" in captured.out
        assert "convergence rate" in captured.out

    def test_plurality_command(self, capsys):
        exit_code = main(
            [
                "plurality",
                "--nodes", "500",
                "--opinions", "3",
                "--epsilon", "0.35",
                "--support", "200",
                "--bias", "0.4",
                "--seed", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "plurality opinion     : 1" in captured.out

    def test_ensemble_command_counts_engine(self, capsys):
        exit_code = main(
            [
                "ensemble",
                "--nodes", "400",
                "--opinions", "3",
                "--epsilon", "0.3",
                "--trials", "4",
                "--engine", "counts",
                "--seed", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code in (0, 1)
        assert "engine                : counts" in captured.out
        assert "throughput" in captured.out

    def test_dynamics_command_auto_resolves_to_counts(self, capsys):
        exit_code = main(
            [
                "dynamics",
                "--rule", "3-majority",
                "--nodes", "500",
                "--epsilon", "0.66",
                "--bias", "0.3",
                "--trials", "4",
                "--max-rounds", "200",
                "--engine", "auto",
                "--counts-threshold", "100",
                "--seed", "0",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "engine                : counts" in captured.out

    def test_run_experiment_engine_override(self, capsys):
        exit_code = main(
            ["run-experiment", "E9", "--seed", "0", "--engine", "counts"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[E9]" in captured.out
        assert "trial engine: counts" in captured.out

    @pytest.mark.parametrize(
        "experiment,engine",
        [
            ("E11", "counts"),   # analytic: sequential only
            ("E14", "batched"),  # per-node graph engines: sequential only
            ("E8", "counts"),    # O/B/P comparison: counts replaces delivery
            ("E8", "auto"),      # auto needs both batched and counts
        ],
    )
    def test_run_experiment_unsupported_engine_rejected_explicitly(
        self, capsys, experiment, engine
    ):
        """Requesting an engine a spec lacks is a hard error naming the
        supported engines — never a silent ignore."""
        with pytest.raises(SystemExit):
            main(["run-experiment", experiment, "--engine", engine])
        err = capsys.readouterr().err
        assert f"experiment {experiment} does not support" in err
        assert "supported engines" in err
        assert "sequential" in err

    def test_run_experiment_sequential_accepted_by_analytic_specs(
        self, capsys
    ):
        # E11 runs no repeated trials; 'sequential' (the plain-Python
        # execution it always uses) is accepted as a no-op override.
        exit_code = main(
            ["run-experiment", "E11", "--engine", "sequential"]
        )
        assert exit_code == 0
        assert "[E11]" in capsys.readouterr().out


class TestRunAllCommand:
    FAST = ["E5", "E10", "E11"]

    def test_run_all_parallel_then_resume_all_cached(self, capsys, tmp_path):
        store = str(tmp_path / "results")
        exit_code = main(
            ["run-all", *self.FAST, "--jobs", "2", "--out", store]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "3 ran, 0 cached, 0 skipped" in captured.out

        exit_code = main(
            ["run-all", *self.FAST, "--out", store, "--resume"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "0 ran, 3 cached, 0 skipped" in captured.out

    def test_run_all_lists_cache_status_in_list_experiments(
        self, capsys, tmp_path
    ):
        store = str(tmp_path / "results")
        main(["run-all", "E11", "--out", store])
        capsys.readouterr()
        main(["list-experiments", "--out", store])
        lines = capsys.readouterr().out.splitlines()
        e11 = [line for line in lines if line.startswith("E11")][0]
        assert "[cached]" in e11
        e10 = [line for line in lines if line.startswith("E10")][0]
        assert "[cached]" not in e10

    def test_run_all_skips_unsupported_engine(self, capsys, tmp_path):
        exit_code = main(
            [
                "run-all", "E10", "E11",
                "--engine", "counts",
                "--out", str(tmp_path / "results"),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "0 ran, 0 cached, 2 skipped" in captured.out
        assert "unsupported" in captured.out

    def test_run_all_print_tables(self, capsys, tmp_path):
        exit_code = main(
            [
                "run-all", "E11",
                "--out", str(tmp_path / "results"),
                "--print-tables",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[E11]" in captured.out

    def test_run_all_rejects_unknown_experiment(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["run-all", "E42", "--out", str(tmp_path / "results")])
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_all_resume_requires_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["run-all", "E11", "--out", "none", "--resume"])
        assert "requires a result store" in capsys.readouterr().err
