"""Tests for the declarative experiment registry (repro.experiments.spec)."""

from __future__ import annotations

import dataclasses

import pytest

import repro.experiments  # noqa: F401  (import populates the registry)
from repro.experiments.runner import TRIAL_ENGINES
from repro.experiments.spec import (
    ExperimentSpec,
    UnsupportedEngineError,
    all_specs,
    get_spec,
    register_experiment,
    registered_ids,
)


class TestRegistryCompleteness:
    def test_all_fifteen_experiments_registered(self):
        assert registered_ids() == [f"E{index}" for index in range(1, 16)]

    def test_specs_are_ordered_numerically(self):
        indices = [spec.index for spec in all_specs()]
        assert indices == sorted(indices)

    def test_every_spec_is_complete(self):
        for spec in all_specs():
            assert spec.title
            assert spec.paper_claim
            assert spec.description
            assert callable(spec.run_fn)
            assert spec.supported_engines
            assert set(spec.supported_engines) <= set(TRIAL_ENGINES)
            assert spec.module_name.startswith("repro.experiments.exp_")

    def test_every_config_builds_quick_and_full(self):
        for spec in all_specs():
            quick = spec.build_config(full=False)
            full = spec.build_config(full=True)
            assert dataclasses.is_dataclass(quick)
            assert dataclasses.is_dataclass(full)
            assert type(quick) is type(full) is spec.config_cls

    def test_engine_aware_experiments_carry_trial_engine_field(self):
        """Every spec that supports a non-sequential engine must expose the
        choice through its config, so the CLI override has a place to land."""
        for spec in all_specs():
            if set(spec.supported_engines) != {"sequential"}:
                config = spec.build_config()
                assert hasattr(config, "trial_engine"), spec.experiment_id

    def test_sequential_is_always_supported(self):
        """The reference loop is the executable specification: every
        experiment must be runnable on it."""
        for spec in all_specs():
            assert "sequential" in spec.supported_engines, spec.experiment_id

    def test_get_spec_unknown_id_names_known_ones(self):
        with pytest.raises(KeyError, match="E1"):
            get_spec("E99")


class TestEngineSupport:
    def test_concrete_engine_support(self):
        spec = get_spec("E1")
        for engine in ("batched", "sequential", "counts", "auto"):
            assert spec.supports_engine(engine)

    def test_sequential_only_spec_rejects_other_engines(self):
        spec = get_spec("E11")
        assert spec.supports_engine("sequential")
        for engine in ("batched", "counts", "auto"):
            assert not spec.supports_engine(engine)

    def test_auto_requires_both_arbitrated_engines(self):
        """'auto' switches between batched and counts, so a spec missing
        either cannot honour it."""
        spec = get_spec("E8")  # batched + sequential, no counts
        assert spec.supports_engine("batched")
        assert not spec.supports_engine("auto")

    def test_validate_engine_error_names_supported_engines(self):
        spec = get_spec("E14")
        with pytest.raises(UnsupportedEngineError, match="sequential"):
            spec.validate_engine("counts")
        assert spec.validate_engine("sequential") == "sequential"


class TestRegisterExperimentValidation:
    def _run(self, config=None, random_state=0):
        raise AssertionError("never executed")

    def test_rejects_malformed_id(self):
        with pytest.raises(ValueError, match="E<number>"):
            register_experiment(
                experiment_id="X1",
                description="d",
                title="t",
                paper_claim="c",
                supported_engines=("sequential",),
            )(self._run)

    def test_rejects_unknown_engine_names(self):
        with pytest.raises(ValueError, match="unknown engines"):
            register_experiment(
                experiment_id="E99",
                description="d",
                title="t",
                paper_claim="c",
                supported_engines=("warp-drive",),
            )(self._run)

    def test_rejects_empty_engine_set(self):
        with pytest.raises(ValueError, match="at least one"):
            register_experiment(
                experiment_id="E99",
                description="d",
                title="t",
                paper_claim="c",
                supported_engines=(),
            )(self._run)

    def test_rejects_config_without_quick_and_full(self):
        class BadConfig:
            pass

        with pytest.raises(ValueError, match="quick"):
            register_experiment(
                experiment_id="E99",
                description="d",
                title="t",
                paper_claim="c",
                supported_engines=("sequential",),
                config_cls=BadConfig,
            )(self._run)

    def test_decorator_returns_the_function_and_registers(self):
        def run_fn(config=None, random_state=0):
            raise AssertionError("never executed")

        try:
            decorated = register_experiment(
                experiment_id="E99",
                description="a test-only spec",
                title="t",
                paper_claim="c",
                supported_engines=("sequential",),
            )(run_fn)
            assert decorated is run_fn
            spec = get_spec("E99")
            assert isinstance(spec, ExperimentSpec)
            assert spec.quick_config is None
            assert spec.build_config() is None
        finally:
            from repro.experiments import spec as spec_module

            spec_module._REGISTRY.pop("E99", None)
