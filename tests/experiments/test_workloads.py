"""Tests for repro.experiments.workloads."""

from __future__ import annotations

import pytest

from repro.experiments.workloads import (
    biased_population,
    plurality_instance_with_bias,
    rumor_instance,
)


class TestRumorInstance:
    def test_single_source(self):
        state = rumor_instance(100, 4, correct_opinion=3)
        assert state.opinionated_count() == 1
        assert state.plurality_opinion() == 3


class TestBiasedPopulation:
    def test_everyone_opinionated(self):
        state = biased_population(500, 3, 0.2, random_state=0)
        assert state.opinionated_fraction() == pytest.approx(1.0)

    def test_bias_approximately_achieved(self):
        state = biased_population(1000, 3, 0.2, random_state=0)
        assert state.bias_toward(1) == pytest.approx(0.2, abs=0.01)

    def test_majority_opinion_choice(self):
        state = biased_population(300, 4, 0.3, majority_opinion=2, random_state=0)
        assert state.plurality_opinion() == 2

    def test_two_block_style(self):
        state = biased_population(400, 3, 0.2, style="two_block", random_state=0)
        counts = state.opinion_counts()
        assert counts[2] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            biased_population(100, 3, 1.4)


class TestPluralityInstanceWithBias:
    def test_support_and_bias(self):
        instance = plurality_instance_with_bias(1000, 200, 3, 0.3)
        assert instance.support_size == 200
        assert instance.plurality_opinion() == 1
        assert instance.plurality_bias_within_support() == pytest.approx(0.3, abs=0.02)

    def test_majority_opinion_respected(self):
        instance = plurality_instance_with_bias(
            1000, 100, 4, 0.2, majority_opinion=3
        )
        assert instance.plurality_opinion() == 3
