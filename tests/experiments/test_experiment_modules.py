"""Smoke and trend tests for every experiment module (tiny configurations).

Each experiment has a dedicated test that runs it at a deliberately small
scale (smaller than the ``quick()`` configuration where possible) and checks
both the table structure and the *direction* of the reproduced trend, so a
regression in the protocol or harness shows up here without requiring the
full benchmark run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    exp_ablation_sampling,
    exp_amplification,
    exp_baselines,
    exp_epsilon_threshold,
    exp_memory,
    exp_noise_matrices,
    exp_parity,
    exp_plurality_consensus,
    exp_poissonization,
    exp_rumor_scaling,
    exp_stage1_bias,
    exp_stage1_growth,
    exp_stage2_trajectory,
    exp_topologies,
)


class TestE1RumorScaling:
    def test_table_and_success(self):
        config = exp_rumor_scaling.RumorScalingConfig(
            num_nodes_grid=(300, 600),
            epsilon_grid=(0.35,),
            num_opinions=3,
            num_trials=2,
        )
        table = exp_rumor_scaling.run(config, random_state=0)
        assert table.experiment_id == "E1"
        assert len(table) == 2
        assert all(record["success_rate"] >= 0.5 for record in table)
        assert all(record["mean_rounds"] > 0 for record in table)
        # Larger n needs at least as many rounds at fixed epsilon.
        rounds = table.column("mean_rounds")
        assert rounds[1] >= rounds[0]
        assert any("fit" in note for note in table.notes)


class TestE2PluralityConsensus:
    def test_bias_above_requirement_succeeds(self):
        config = exp_plurality_consensus.PluralityConsensusConfig(
            num_nodes=600,
            support_fractions=(1.0,),
            bias_multipliers=(4.0,),
            num_trials=2,
        )
        table = exp_plurality_consensus.run(config, random_state=0)
        assert len(table) == 1
        assert table.records[0]["success_rate"] == 1.0
        assert table.records[0]["support_meets_theorem"]


class TestE3Stage1Bias:
    def test_everyone_opinionated_and_biased(self):
        config = exp_stage1_bias.Stage1BiasConfig(
            num_nodes_grid=(400, 800), num_trials=2
        )
        table = exp_stage1_bias.run(config, random_state=0)
        assert len(table) == 2
        for record in table:
            assert record["min_opinionated_fraction"] == pytest.approx(1.0)
            assert record["mean_bias"] > 0
            assert record["bias_over_theory"] > 0.5


class TestE4Stage1Growth:
    def test_growth_is_monotone_and_mostly_within_envelope(self):
        config = exp_stage1_growth.Stage1GrowthConfig(num_nodes=1500, num_trials=2)
        table = exp_stage1_growth.run(config, random_state=0)
        fractions = table.column("mean_opinionated_fraction")
        assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == pytest.approx(1.0, abs=0.05)
        assert sum(1 for r in table if r["within_envelope"]) >= len(table) - 1


class TestE5Amplification:
    def test_bound_never_violated(self):
        config = exp_amplification.AmplificationConfig(
            num_opinions_grid=(2, 3),
            sample_size_grid=(5, 11),
            delta_grid=(0.05, 0.2),
            monte_carlo_trials=20_000,
        )
        table = exp_amplification.run(config, random_state=0)
        assert all(record["bound_holds"] for record in table)
        # Amplification factor should exceed 1 for the bigger samples.
        big_sample = table.filtered(sample_size=11, delta=0.05, k=2)
        assert big_sample[0]["amplification_factor"] > 1.0


class TestE6Stage2Trajectory:
    def test_bias_amplified_every_phase(self):
        config = exp_stage2_trajectory.Stage2TrajectoryConfig(
            num_nodes=800, num_trials=2
        )
        table = exp_stage2_trajectory.run(config, random_state=0)
        assert all(record["amplified"] for record in table)
        assert table.records[-1]["mean_bias_after"] > 0.9


class TestE7NoiseMatrices:
    def test_paper_examples_classified_correctly(self):
        config = exp_noise_matrices.NoiseMatrixConfig(
            dynamic_num_nodes=400, dynamic_trials=1
        )
        table = exp_noise_matrices.run(config, random_state=0)
        uniform_rows = [
            record
            for record in table
            if record["matrix"].startswith("uniform-noise")
        ]
        assert all(record["majority_preserving"] for record in uniform_rows)
        counterexample_rows = [
            record
            for record in table
            if record["matrix"].startswith("diag-dominant")
        ]
        assert counterexample_rows
        assert not any(
            record["preserves_plurality"] for record in counterexample_rows
        )


class TestE8Poissonization:
    def test_processes_statistically_close(self):
        config = exp_poissonization.PoissonizationConfig(
            num_nodes=200,
            num_deliveries=60,
            dynamic_trials=1,
            dynamic_num_nodes=400,
        )
        table = exp_poissonization.run(config, random_state=0)
        static_rows = table.filtered(check="static")
        assert len(static_rows) == 3
        push_vs_bins = [
            record
            for record in static_rows
            if record["comparison"] == "push vs balls_bins"
        ][0]
        assert push_vs_bins["tv_total_counts"] < 0.1
        dynamic_rows = table.filtered(check="dynamic")
        assert len(dynamic_rows) == 3
        assert all(record["success_rate"] == 1.0 for record in dynamic_rows)


class TestE9EpsilonThreshold:
    def test_large_epsilon_succeeds(self):
        config = exp_epsilon_threshold.EpsilonThresholdConfig(
            num_nodes=800,
            epsilon_over_threshold=(2.5,),
            num_trials=2,
        )
        table = exp_epsilon_threshold.run(config, random_state=0)
        assert table.records[0]["success_rate"] == 1.0
        assert table.records[0]["stage1_bias_sufficient"]


class TestE10Parity:
    def test_lemma17_verified(self):
        config = exp_parity.ParityConfig(
            sample_sizes=(3, 5), binary_probabilities=(0.6,),
            ternary_distributions=((0.5, 0.3, 0.2),),
        )
        table = exp_parity.run(config, random_state=0)
        assert all(record["lemma_holds"] for record in table)
        assert all(record["monotone_holds"] for record in table)
        binary_rows = [r for r in table if r["equality_expected"]]
        assert all(record["equality_holds"] for record in binary_rows)

    def test_even_sample_size_rejected(self):
        config = exp_parity.ParityConfig(sample_sizes=(4,))
        with pytest.raises(ValueError):
            exp_parity.run(config)


class TestE11Memory:
    def test_ratio_bounded(self):
        table = exp_memory.run(exp_memory.MemoryConfig(), random_state=0)
        ratios = table.column("measured_over_bound")
        assert max(ratios) < 10.0
        assert all(record["total_bits"] >= record["opinion_bits"] for record in table)


class TestE12Baselines:
    def test_protocol_beats_baselines_under_noise(self):
        config = exp_baselines.BaselineComparisonConfig(
            num_nodes=500, max_rounds_dynamics=80, num_trials=2
        )
        table = exp_baselines.run(config, random_state=0)
        protocol_noisy = table.filtered(
            algorithm="two-stage protocol (this paper)", channel="noisy"
        )[0]
        assert protocol_noisy["success_rate"] == 1.0
        voter_noisy = table.filtered(algorithm="voter", channel="noisy")[0]
        assert voter_noisy["success_rate"] < protocol_noisy["success_rate"] + 1e-9
        # Without noise the 3-majority dynamics is much faster than the
        # schedule-driven protocol.
        protocol_clean = table.filtered(
            algorithm="two-stage protocol (this paper)", channel="noise-free"
        )[0]
        majority_clean = table.filtered(algorithm="3-majority", channel="noise-free")[0]
        assert majority_clean["mean_rounds"] < protocol_clean["mean_rounds"]


class TestE14Topologies:
    def test_complete_graph_succeeds_and_cycle_fails(self):
        config = exp_topologies.TopologyConfig(
            num_nodes=400,
            num_trials=2,
            topologies=(
                ("complete graph (paper)", "complete", {}),
                ("cycle", "cycle", {}),
            ),
        )
        table = exp_topologies.run(config, random_state=0)
        complete = table.filtered(topology="complete graph (paper)")[0]
        cycle = table.filtered(topology="cycle")[0]
        assert complete["success_rate"] >= 0.5
        assert cycle["mean_correct_fraction"] < complete["mean_correct_fraction"]
        assert cycle["mean_degree"] == pytest.approx(2.0)


class TestEngineUniformity:
    """Every migrated experiment honours its declared trial engines."""

    @pytest.mark.parametrize("engine", ["batched", "sequential", "counts"])
    def test_e3_runs_on_every_engine(self, engine):
        config = exp_stage1_bias.Stage1BiasConfig(
            num_nodes_grid=(400,), num_trials=2, trial_engine=engine
        )
        table = exp_stage1_bias.run(config, random_state=0)
        assert table.records[0]["min_opinionated_fraction"] == pytest.approx(
            1.0
        )
        assert f"trial engine: {engine}" in table.notes[-1]

    @pytest.mark.parametrize("engine", ["batched", "sequential", "counts"])
    def test_e4_runs_on_every_engine(self, engine):
        config = exp_stage1_growth.Stage1GrowthConfig(
            num_nodes=800, num_trials=2, trial_engine=engine
        )
        table = exp_stage1_growth.run(config, random_state=0)
        fractions = table.column("mean_opinionated_fraction")
        assert fractions[-1] == pytest.approx(1.0, abs=0.05)

    @pytest.mark.parametrize("engine", ["batched", "sequential", "counts"])
    def test_e6_runs_on_every_engine(self, engine):
        config = exp_stage2_trajectory.Stage2TrajectoryConfig(
            num_nodes=600, num_trials=2, trial_engine=engine
        )
        table = exp_stage2_trajectory.run(config, random_state=0)
        assert table.records[-1]["mean_bias_after"] > 0.9

    @pytest.mark.parametrize("engine", ["batched", "sequential"])
    def test_e8_dynamic_check_runs_on_both_per_node_engines(self, engine):
        config = exp_poissonization.PoissonizationConfig(
            num_nodes=200,
            num_deliveries=40,
            dynamic_trials=1,
            dynamic_num_nodes=400,
            trial_engine=engine,
        )
        table = exp_poissonization.run(config, random_state=0)
        dynamic_rows = table.filtered(check="dynamic")
        assert len(dynamic_rows) == 3
        assert all(record["success_rate"] == 1.0 for record in dynamic_rows)


class TestE13Ablation:
    def test_all_variants_reported(self):
        config = exp_ablation_sampling.AblationConfig(
            num_nodes=600,
            initial_bias=0.12,
            num_trials=2,
            timing_nodes=100,
            timing_rounds=5,
        )
        table = exp_ablation_sampling.run(config, random_state=0)
        voting_rows = table.filtered(ablation="stage2 voting rule")
        assert len(voting_rows) == 3
        assert all(record["success_rate"] >= 0.5 for record in voting_rows)
        engine_rows = table.filtered(ablation="delivery engine")
        assert engine_rows[0]["speedup"] > 1.0
