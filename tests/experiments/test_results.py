"""Tests for repro.experiments.results.ExperimentTable."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.results import ExperimentTable, jsonify_value


@pytest.fixture
def table() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="E0",
        title="A test table",
        paper_claim="Things hold",
    )
    table.add_record(n=10, value=1.5, ok=True)
    table.add_record(n=20, value=2.5, ok=False)
    return table


class TestExperimentTable:
    def test_add_record_returns_row(self, table):
        row = table.add_record(n=30, value=3.5, ok=True)
        assert row["n"] == 30
        assert len(table) == 3

    def test_column_extraction(self, table):
        assert table.column("n") == [10, 20]
        assert table.column("missing") == [None, None]

    def test_filtered(self, table):
        assert len(table.filtered(ok=True)) == 1
        assert table.filtered(ok=True)[0]["n"] == 10
        assert table.filtered(n=20, ok=False)[0]["value"] == 2.5
        assert table.filtered(n=99) == []

    def test_to_text_contains_metadata_and_rows(self, table):
        text = table.to_text()
        assert "[E0] A test table" in text
        assert "Things hold" in text
        assert "20" in text

    def test_to_text_column_selection(self, table):
        text = table.to_text(columns=["n"])
        assert "value" not in text.splitlines()[3]

    def test_notes_rendered(self, table):
        table.add_note("a caveat")
        assert "note: a caveat" in table.to_text()

    def test_iteration(self, table):
        assert [record["n"] for record in table] == [10, 20]


class TestJsonRoundTrip:
    def test_records_notes_provenance_preserved(self, table):
        table.add_note("a caveat")
        table.provenance = {"seed": 3, "engine": "batched"}
        restored = ExperimentTable.from_json(table.to_json())
        assert restored.experiment_id == table.experiment_id
        assert restored.title == table.title
        assert restored.paper_claim == table.paper_claim
        assert restored.records == table.records
        assert restored.notes == table.notes
        assert restored.provenance == table.provenance

    def test_round_trip_from_dict(self, table):
        restored = ExperimentTable.from_json(table.to_json_dict())
        assert restored.records == table.records

    def test_numpy_values_are_reduced_to_plain_python(self):
        table = ExperimentTable("E0", "t", "c")
        table.add_record(
            count=np.int64(7),
            rate=np.float64(0.5),
            ok=np.bool_(True),
            trajectory=np.array([1.0, 2.0]),
        )
        document = json.loads(table.to_json())
        record = document["records"][0]
        assert record == {
            "count": 7, "rate": 0.5, "ok": True, "trajectory": [1.0, 2.0],
        }
        restored = ExperimentTable.from_json(document)
        assert isinstance(restored.records[0]["count"], int)
        assert isinstance(restored.records[0]["ok"], bool)

    def test_from_json_rejects_incomplete_documents(self):
        with pytest.raises(ValueError, match="missing fields"):
            ExperimentTable.from_json({"experiment_id": "E0"})
        with pytest.raises(TypeError):
            ExperimentTable.from_json(42)

    def test_empty_provenance_by_default(self, table):
        assert table.provenance == {}
        assert ExperimentTable.from_json(table.to_json()).provenance == {}


class TestJsonifyValue:
    def test_scalars_pass_through(self):
        assert jsonify_value("x") == "x"
        assert jsonify_value(None) is None
        assert jsonify_value(3) == 3

    def test_nested_structures(self):
        value = {"a": (np.int64(1), [np.float64(2.0)]), "b": {"c": np.bool_(False)}}
        assert jsonify_value(value) == {"a": [1, [2.0]], "b": {"c": False}}
