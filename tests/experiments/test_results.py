"""Tests for repro.experiments.results.ExperimentTable."""

from __future__ import annotations

import pytest

from repro.experiments.results import ExperimentTable


@pytest.fixture
def table() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="E0",
        title="A test table",
        paper_claim="Things hold",
    )
    table.add_record(n=10, value=1.5, ok=True)
    table.add_record(n=20, value=2.5, ok=False)
    return table


class TestExperimentTable:
    def test_add_record_returns_row(self, table):
        row = table.add_record(n=30, value=3.5, ok=True)
        assert row["n"] == 30
        assert len(table) == 3

    def test_column_extraction(self, table):
        assert table.column("n") == [10, 20]
        assert table.column("missing") == [None, None]

    def test_filtered(self, table):
        assert len(table.filtered(ok=True)) == 1
        assert table.filtered(ok=True)[0]["n"] == 10
        assert table.filtered(n=20, ok=False)[0]["value"] == 2.5
        assert table.filtered(n=99) == []

    def test_to_text_contains_metadata_and_rows(self, table):
        text = table.to_text()
        assert "[E0] A test table" in text
        assert "Things hold" in text
        assert "20" in text

    def test_to_text_column_selection(self, table):
        text = table.to_text(columns=["n"])
        assert "value" not in text.splitlines()[3]

    def test_notes_rendered(self, table):
        table.add_note("a caveat")
        assert "note: a caveat" in table.to_text()

    def test_iteration(self, table):
        assert [record["n"] for record in table] == [10, 20]
