"""Tests for repro.experiments.runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import repeat_trials, summarize, sweep_product


class TestRepeatTrials:
    def test_number_of_trials(self):
        results = repeat_trials(lambda rng: 1, 5, random_state=0)
        assert results == [1, 1, 1, 1, 1]

    def test_trials_get_independent_generators(self):
        draws = repeat_trials(lambda rng: rng.integers(0, 10**9), 4, random_state=0)
        assert len(set(draws)) > 1

    def test_reproducible(self):
        first = repeat_trials(lambda rng: rng.integers(0, 10**9), 3, random_state=7)
        second = repeat_trials(lambda rng: rng.integers(0, 10**9), 3, random_state=7)
        assert first == second

    def test_requires_positive_trials(self):
        with pytest.raises(ValueError):
            repeat_trials(lambda rng: 1, 0)


class TestSweepProduct:
    def test_cartesian_product(self):
        grid = sweep_product(n=[10, 20], eps=[0.1, 0.2])
        assert len(grid) == 4
        assert {"n": 20, "eps": 0.1} in grid

    def test_empty_sweep(self):
        assert sweep_product() == [{}]

    def test_single_axis(self):
        assert sweep_product(x=[1, 2, 3]) == [{"x": 1}, {"x": 2}, {"x": 3}]

    def test_preserves_order(self):
        grid = sweep_product(a=[1, 2], b=["x"])
        assert grid[0] == {"a": 1, "b": "x"}
        assert grid[1] == {"a": 2, "b": "x"}


class TestSummarize:
    def test_statistics(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["std"] == pytest.approx(1.0)

    def test_single_value_has_zero_std(self):
        assert summarize([4.2])["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
