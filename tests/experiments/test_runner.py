"""Tests for repro.experiments.runner."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.state import EnsembleState
from repro.experiments.runner import (
    DEFAULT_COUNTS_THRESHOLD,
    TRIAL_ENGINE_CHOICES,
    TRIAL_ENGINES,
    dynamics_trial_outcomes,
    protocol_trial_outcomes,
    repeat_trials,
    resolve_trial_engine,
    set_default_counts_threshold,
    stage1_trial_trajectories,
    stage2_trial_trajectories,
    summarize,
    sweep_product,
)
from repro.experiments.workloads import (
    biased_population,
    ensemble_biased_population,
    rumor_instance,
)
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestRepeatTrials:
    def test_number_of_trials(self):
        results = repeat_trials(lambda rng: 1, 5, random_state=0)
        assert results == [1, 1, 1, 1, 1]

    def test_trials_get_independent_generators(self):
        draws = repeat_trials(lambda rng: rng.integers(0, 10**9), 4, random_state=0)
        assert len(set(draws)) > 1

    def test_reproducible(self):
        first = repeat_trials(lambda rng: rng.integers(0, 10**9), 3, random_state=7)
        second = repeat_trials(lambda rng: rng.integers(0, 10**9), 3, random_state=7)
        assert first == second

    def test_requires_positive_trials(self):
        with pytest.raises(ValueError):
            repeat_trials(lambda rng: 1, 0)


class TestSweepProduct:
    def test_cartesian_product(self):
        grid = sweep_product(n=[10, 20], eps=[0.1, 0.2])
        assert len(grid) == 4
        assert {"n": 20, "eps": 0.1} in grid

    def test_empty_sweep(self):
        assert sweep_product() == [{}]

    def test_single_axis(self):
        assert sweep_product(x=[1, 2, 3]) == [{"x": 1}, {"x": 2}, {"x": 3}]

    def test_preserves_order(self):
        grid = sweep_product(a=[1, 2], b=["x"])
        assert grid[0] == {"a": 1, "b": "x"}
        assert grid[1] == {"a": 2, "b": "x"}


class TestSummarize:
    def test_statistics(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["std"] == pytest.approx(1.0)

    def test_single_value_has_zero_std(self):
        assert summarize([4.2])["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestProtocolTrialOutcomes:
    NUM_NODES = 250
    EPSILON = 0.35

    def run_engine(self, trial_engine, num_trials=4, random_state=0):
        noise = uniform_noise_matrix(3, self.EPSILON)
        return protocol_trial_outcomes(
            rumor_instance(self.NUM_NODES, 3, 1),
            noise,
            self.EPSILON,
            num_trials,
            random_state,
            target_opinion=1,
            trial_engine=trial_engine,
        )

    @pytest.mark.parametrize("trial_engine", TRIAL_ENGINES)
    def test_returns_one_outcome_per_trial(self, trial_engine):
        outcomes = self.run_engine(trial_engine)
        assert len(outcomes) == 4
        for outcome in outcomes:
            assert isinstance(outcome.success, bool)
            assert outcome.total_rounds > 0
            assert outcome.bias_after_stage1 is not None
            assert 0.0 <= outcome.correct_fraction <= 1.0

    @pytest.mark.parametrize("trial_engine", TRIAL_ENGINES)
    def test_reproducible_with_fixed_seed(self, trial_engine):
        first = self.run_engine(trial_engine, random_state=3)
        second = self.run_engine(trial_engine, random_state=3)
        assert first == second

    def test_engines_agree_on_round_count(self):
        batched = self.run_engine("batched", num_trials=2)
        sequential = self.run_engine("sequential", num_trials=2)
        assert batched[0].total_rounds == sequential[0].total_rounds

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            self.run_engine("bogus")


class TestStage1TrialTrajectories:
    NUM_NODES = 300
    EPSILON = 0.35

    def run_engine(self, trial_engine, num_trials=3, random_state=0):
        noise = uniform_noise_matrix(3, self.EPSILON)
        return stage1_trial_trajectories(
            rumor_instance(self.NUM_NODES, 3, 1),
            noise,
            self.EPSILON,
            num_trials,
            random_state,
            track_opinion=1,
            trial_engine=trial_engine,
        )

    @pytest.mark.parametrize("trial_engine", TRIAL_ENGINES)
    def test_shapes_and_phase_axis(self, trial_engine):
        result = self.run_engine(trial_engine)
        num_phases = len(result.phase_lengths)
        assert num_phases >= 2
        assert result.opinionated_fractions.shape == (3, num_phases)
        assert result.biases.shape == (3, num_phases)
        assert result.num_trials == 3
        assert result.total_rounds == sum(result.phase_lengths)

    @pytest.mark.parametrize("trial_engine", TRIAL_ENGINES)
    def test_fractions_grow_to_one(self, trial_engine):
        """Stage 1 opinionates everyone (Lemma 6): the per-phase fraction is
        non-decreasing per trial and ends at 1 at this easy scale."""
        result = self.run_engine(trial_engine)
        fractions = result.opinionated_fractions
        assert np.all(np.diff(fractions, axis=1) >= -1e-12)
        assert fractions[:, -1] == pytest.approx(1.0)

    @pytest.mark.parametrize("trial_engine", TRIAL_ENGINES)
    def test_reproducible_with_fixed_seed(self, trial_engine):
        first = self.run_engine(trial_engine, random_state=5)
        second = self.run_engine(trial_engine, random_state=5)
        np.testing.assert_array_equal(
            first.opinionated_fractions, second.opinionated_fractions
        )
        np.testing.assert_array_equal(first.biases, second.biases)

    def test_engines_share_the_schedule(self):
        lengths = {
            engine: self.run_engine(engine, num_trials=2).phase_lengths
            for engine in TRIAL_ENGINES
        }
        assert len(set(lengths.values())) == 1

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            self.run_engine("bogus")


class TestStage2TrialTrajectories:
    NUM_NODES = 400
    EPSILON = 0.35

    def run_engine(
        self,
        trial_engine,
        num_trials=3,
        random_state=0,
        initial_state=None,
        **kwargs,
    ):
        noise = uniform_noise_matrix(3, self.EPSILON)
        if initial_state is None:
            initial_state = biased_population(
                self.NUM_NODES, 3, 0.2, random_state=123
            )
        return stage2_trial_trajectories(
            initial_state,
            noise,
            self.EPSILON,
            num_trials,
            random_state,
            track_opinion=1,
            trial_engine=trial_engine,
            **kwargs,
        )

    @pytest.mark.parametrize("trial_engine", TRIAL_ENGINES)
    def test_shapes_and_consensus(self, trial_engine):
        result = self.run_engine(trial_engine)
        num_phases = len(result.phase_lengths)
        assert len(result.sample_sizes) == num_phases
        assert result.biases.shape == (3, num_phases)
        assert result.consensus.shape == (3,)
        # A 0.2-bias start at this scale amplifies to consensus (Lemma 12).
        assert result.consensus.all()
        assert result.final_biases == pytest.approx(1.0)

    @pytest.mark.parametrize("trial_engine", TRIAL_ENGINES)
    def test_reproducible_with_fixed_seed(self, trial_engine):
        first = self.run_engine(trial_engine, random_state=5)
        second = self.run_engine(trial_engine, random_state=5)
        np.testing.assert_array_equal(first.biases, second.biases)
        np.testing.assert_array_equal(first.consensus, second.consensus)

    @pytest.mark.parametrize("trial_engine", ("batched", "sequential"))
    def test_accepts_per_trial_ensemble_and_ablation_knobs(self, trial_engine):
        ensemble = ensemble_biased_population(
            self.NUM_NODES, 3, 0.2, 3, random_state=7
        )
        result = self.run_engine(
            trial_engine,
            initial_state=ensemble,
            sampling_method="with_replacement",
        )
        assert result.biases.shape[0] == 3

    def test_counts_rejects_ablation_knobs(self):
        with pytest.raises(ValueError, match="batched or"):
            self.run_engine("counts", sampling_method="with_replacement")
        with pytest.raises(ValueError, match="batched or"):
            self.run_engine("counts", use_full_multiset=True)

    def test_rejects_num_trials_mismatch_for_ensemble_state(self):
        ensemble = ensemble_biased_population(
            self.NUM_NODES, 3, 0.2, 4, random_state=7
        )
        with pytest.raises(ValueError, match="disagrees"):
            self.run_engine("batched", num_trials=2, initial_state=ensemble)


class TestDynamicsTrialOutcomes:
    NUM_NODES = 300

    def run_engine(self, trial_engine, *, rule="3-majority", sample_size=None,
                   noise=None, num_trials=4, max_rounds=200, random_state=0):
        noise = noise if noise is not None else identity_matrix(3)
        initial = biased_population(self.NUM_NODES, 3, 0.3, random_state=1)
        return dynamics_trial_outcomes(
            initial,
            noise,
            rule,
            max_rounds,
            num_trials,
            random_state,
            sample_size=sample_size,
            target_opinion=1,
            trial_engine=trial_engine,
        )

    @pytest.mark.parametrize("trial_engine", TRIAL_ENGINES)
    def test_returns_one_outcome_per_trial(self, trial_engine):
        outcomes = self.run_engine(trial_engine)
        assert len(outcomes) == 4
        for outcome in outcomes:
            assert isinstance(outcome.success, bool)
            assert isinstance(outcome.converged, bool)
            assert outcome.rounds_executed > 0
            assert outcome.success == (outcome.consensus_opinion == 1)
            assert -1.0 <= outcome.final_bias <= 1.0

    @pytest.mark.parametrize("trial_engine", TRIAL_ENGINES)
    def test_reproducible_with_fixed_seed(self, trial_engine):
        first = self.run_engine(trial_engine, random_state=3)
        second = self.run_engine(trial_engine, random_state=3)
        assert first == second

    def test_engines_agree_on_the_certain_event(self):
        """Noise-free 3-majority from a solid bias converges on opinion 1
        under both engines."""
        batched = self.run_engine("batched")
        sequential = self.run_engine("sequential")
        assert all(outcome.success for outcome in batched)
        assert all(outcome.success for outcome in sequential)

    def test_h_majority_accepts_sample_size(self):
        outcomes = self.run_engine(
            "batched", rule="h-majority", sample_size=5
        )
        assert len(outcomes) == 4

    def test_accepts_prebuilt_ensemble_state(self):
        initial = biased_population(self.NUM_NODES, 3, 0.3, random_state=1)
        ensemble = EnsembleState.from_state(initial, 3)
        for trial_engine in TRIAL_ENGINES:
            outcomes = dynamics_trial_outcomes(
                ensemble, identity_matrix(3), "voter", 50, 3,
                random_state=0, trial_engine=trial_engine,
            )
            assert len(outcomes) == 3

    def test_rejects_num_trials_mismatch_for_ensemble_state(self):
        initial = biased_population(self.NUM_NODES, 3, 0.3, random_state=1)
        ensemble = EnsembleState.from_state(initial, 3)
        with pytest.raises(ValueError):
            dynamics_trial_outcomes(
                ensemble, identity_matrix(3), "voter", 50, 4, random_state=0
            )

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            self.run_engine("bogus")

    def test_rejects_unknown_rule(self):
        with pytest.raises(ValueError):
            self.run_engine("batched", rule="bogus")

    def test_engine_cache_deprecated_but_still_works(self):
        """The legacy sweep fast path warns on use but keeps its behavior:
        one engine instance per distinct grid cell, reused (with the
        cell's own seed) when the cell repeats, results unchanged."""
        initial = biased_population(self.NUM_NODES, 3, 0.3, random_state=1)
        cache = {}
        baseline = dynamics_trial_outcomes(
            initial, identity_matrix(3), "3-majority", 100, 3,
            random_state=5, trial_engine="counts",
        )
        with pytest.warns(DeprecationWarning, match="simulate_sweep"):
            first = dynamics_trial_outcomes(
                initial, identity_matrix(3), "3-majority", 100, 3,
                random_state=5, trial_engine="counts", engine_cache=cache,
            )
        assert len(cache) == 1
        cached_instance = next(iter(cache.values()))
        with pytest.warns(DeprecationWarning):
            second = dynamics_trial_outcomes(
                initial, identity_matrix(3), "3-majority", 100, 3,
                random_state=5, trial_engine="counts", engine_cache=cache,
            )
        assert next(iter(cache.values())) is cached_instance
        # Seeding stays per-call: cached runs match uncached runs exactly.
        assert first == baseline == second
        # A different cell (other engine) gets its own entry.
        with pytest.warns(DeprecationWarning):
            dynamics_trial_outcomes(
                initial, identity_matrix(3), "3-majority", 100, 3,
                random_state=5, trial_engine="batched", engine_cache=cache,
            )
        assert len(cache) == 2

    def test_no_engine_cache_no_warning(self):
        """The default path must stay silent — `import repro` plus normal
        calls run under -W error::DeprecationWarning in CI."""
        initial = biased_population(self.NUM_NODES, 3, 0.3, random_state=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            dynamics_trial_outcomes(
                initial, identity_matrix(3), "3-majority", 50, 2,
                random_state=5, trial_engine="counts",
            )


class TestEngineResolution:
    def test_concrete_names_pass_through(self):
        for engine in TRIAL_ENGINES:
            assert resolve_trial_engine(engine, 10) == engine
            assert resolve_trial_engine(engine, 10**9) == engine

    def test_auto_switches_at_the_threshold(self):
        assert resolve_trial_engine("auto", DEFAULT_COUNTS_THRESHOLD - 1) == "batched"
        assert resolve_trial_engine("auto", DEFAULT_COUNTS_THRESHOLD) == "counts"

    def test_auto_boundary_is_inclusive_on_the_counts_side(self):
        """At exactly ``n == counts_threshold`` the counts engine wins.

        The documented semantics are ``>=`` (the threshold is the smallest
        population the n-independent engine serves); this pin keeps the
        boundary from silently drifting to ``>``.
        """
        for threshold in (1, 2, 77, DEFAULT_COUNTS_THRESHOLD):
            assert (
                resolve_trial_engine("auto", threshold, counts_threshold=threshold)
                == "counts"
            )
            assert (
                resolve_trial_engine(
                    "auto", threshold - 1, counts_threshold=threshold
                )
                == "batched"
            )

    def test_facade_auto_resolution_matches_runner_boundary(self):
        """simulate()'s auto policy resolves through the same boundary."""
        from repro.sim import Scenario
        from repro.sim.facade import _resolve_engine

        at = Scenario(
            workload="rumor", num_nodes=64, engine="auto", counts_threshold=64
        )
        below = Scenario(
            workload="rumor", num_nodes=63, engine="auto", counts_threshold=64
        )
        assert _resolve_engine(at) == ("counts", None)
        assert _resolve_engine(below) == ("batched", None)

    def test_auto_honours_explicit_threshold(self):
        assert resolve_trial_engine("auto", 100, counts_threshold=50) == "counts"
        assert resolve_trial_engine("auto", 100, counts_threshold=500) == "batched"
        with pytest.raises(ValueError):
            resolve_trial_engine("auto", 100, counts_threshold=0)

    def test_auto_honours_process_default_override(self):
        try:
            assert set_default_counts_threshold(10) == 10
            assert resolve_trial_engine("auto", 100) == "counts"
        finally:
            assert (
                set_default_counts_threshold(None) == DEFAULT_COUNTS_THRESHOLD
            )
        assert resolve_trial_engine("auto", 100) == "batched"

    def test_choices_include_auto(self):
        assert "auto" in TRIAL_ENGINE_CHOICES
        with pytest.raises(ValueError):
            resolve_trial_engine("bogus", 10)

    def test_auto_routes_protocol_trials(self):
        noise = uniform_noise_matrix(3, 0.35)
        outcomes = protocol_trial_outcomes(
            rumor_instance(250, 3, 1), noise, 0.35, 2, 0,
            target_opinion=1, trial_engine="auto", counts_threshold=100,
        )
        assert len(outcomes) == 2

    def test_auto_routes_dynamics_trials(self):
        initial = biased_population(300, 3, 0.3, random_state=1)
        outcomes = dynamics_trial_outcomes(
            initial, identity_matrix(3), "3-majority", 100, 2,
            random_state=0, trial_engine="auto", counts_threshold=100,
        )
        assert len(outcomes) == 2

    def test_counts_native_states_always_resolve_to_counts(self):
        """Counts-native inputs carry no per-node information: 'auto' must
        pick the counts engine even below the threshold, and explicit
        per-node engines must be rejected with a clear error."""
        from repro.core.state import CountsState

        initial = CountsState([100, 60, 40], 300)
        outcomes = dynamics_trial_outcomes(
            initial, identity_matrix(3), "voter", 20, 2,
            random_state=0, trial_engine="auto", stop_at_consensus=False,
        )
        assert len(outcomes) == 2
        noise = uniform_noise_matrix(3, 0.35)
        protocol = protocol_trial_outcomes(
            CountsState.single_source(250, 3, 1), noise, 0.35, 2, 0,
            target_opinion=1, trial_engine="auto",
        )
        assert len(protocol) == 2
        for engine in ("batched", "sequential"):
            with pytest.raises(ValueError, match="per-node"):
                dynamics_trial_outcomes(
                    initial, identity_matrix(3), "voter", 20, 2,
                    random_state=0, trial_engine=engine,
                )
            with pytest.raises(ValueError, match="per-node"):
                protocol_trial_outcomes(
                    CountsState.single_source(250, 3, 1), noise, 0.35, 2, 0,
                    target_opinion=1, trial_engine=engine,
                )
