"""Tests for the orchestration layer (repro.experiments.orchestrator).

The fast analytic experiments (E5, E10, E11) serve as the workload: the
properties under test — content-keyed caching, resume semantics, and the
parallel-equals-serial guarantee — are independent of experiment cost.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.orchestrator import (
    ExperimentJob,
    ResultStore,
    config_fingerprint,
    experiment_code_version,
    job_seed,
    run_all,
    run_experiment_job,
)
from repro.experiments.spec import get_spec

FAST_IDS = ["E5", "E10", "E11"]


def _always_crash(config=None, random_state=0):
    """A deliberately crashing experiment body (module-level: picklable)."""
    raise RuntimeError("injected worker crash")


def _patch_run_fn(monkeypatch, experiment_id, run_fn):
    """Swap one registered experiment's run function (registry-scoped)."""
    from repro.experiments import spec as spec_module

    broken = dataclasses.replace(get_spec(experiment_id), run_fn=run_fn)
    monkeypatch.setitem(spec_module._REGISTRY, experiment_id, broken)


class TestResultStoreKeys:
    def test_identical_identity_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        job = ExperimentJob("E11", seed=3)
        table = run_experiment_job(job)
        store.put(job, table)
        assert store.has(job)
        cached = store.get(ExperimentJob("E11", seed=3))
        assert cached.records == table.records
        assert cached.notes == table.notes
        assert cached.provenance == table.provenance

    def test_changed_seed_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        job = ExperimentJob("E11", seed=3)
        store.put(job, run_experiment_job(job))
        assert not store.has(ExperimentJob("E11", seed=4))

    def test_changed_engine_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        job = ExperimentJob("E3", seed=0, engine="batched")
        identity = job.identity()
        other = ExperimentJob("E3", seed=0, engine="counts").identity()
        assert ResultStore.key_of(identity) != ResultStore.key_of(other)

    def test_changed_counts_threshold_misses(self):
        """--engine auto resolves differently per threshold, so the
        threshold must be part of the content key."""
        low = ExperimentJob("E1", engine="auto", counts_threshold=1000)
        high = ExperimentJob("E1", engine="auto", counts_threshold=2000)
        assert ResultStore.key_of(low.identity()) != ResultStore.key_of(
            high.identity()
        )

    def test_counts_threshold_applies_during_the_job_only(self):
        from repro.experiments import runner as runner_module

        run_experiment_job(
            ExperimentJob("E3", engine="auto", counts_threshold=100)
        )
        # The process-wide default is restored after the job.
        assert (
            runner_module.resolve_trial_engine("auto", 200) == "batched"
        )

    def test_changed_config_misses(self, tmp_path):
        spec = get_spec("E11")
        quick = config_fingerprint(spec.build_config(full=False))
        full = config_fingerprint(spec.build_config(full=True))
        key_quick = ResultStore.key_of({"config": quick})
        key_full = ResultStore.key_of({"config": full})
        assert key_quick != key_full

    def test_config_fingerprint_is_sequence_type_insensitive(self):
        spec = get_spec("E1")
        config_tuple = spec.build_config()
        config_list = dataclasses.replace(
            config_tuple,
            num_nodes_grid=list(config_tuple.num_nodes_grid),
            epsilon_grid=list(config_tuple.epsilon_grid),
        )
        assert config_fingerprint(config_tuple) == config_fingerprint(
            config_list
        )

    def test_code_version_is_stable_and_short(self):
        spec = get_spec("E5")
        assert experiment_code_version(spec) == experiment_code_version(spec)
        assert len(experiment_code_version(spec)) == 16

    def test_corrupt_store_file_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = ExperimentJob("E11", seed=0)
        path = store.put(job, run_experiment_job(job))
        path.write_text("{not json")
        assert store.get(job) is None

    def test_store_files_are_valid_json_with_identity(self, tmp_path):
        store = ResultStore(tmp_path)
        job = ExperimentJob("E11", seed=0)
        path = store.put(job, run_experiment_job(job))
        document = json.loads(path.read_text())
        assert document["identity"]["experiment_id"] == "E11"
        assert document["payload"]["experiment_id"] == "E11"


class TestRunExperimentJob:
    def test_provenance_is_stamped(self):
        table = run_experiment_job(ExperimentJob("E10", seed=1))
        assert table.provenance["experiment_id"] == "E10"
        assert table.provenance["seed"] == 1
        assert "code_version" in table.provenance
        assert "recorded_at" in table.provenance

    def test_unsupported_engine_rejected(self):
        with pytest.raises(ValueError, match="supported engines"):
            run_experiment_job(ExperimentJob("E11", engine="counts"))


class TestRunAll:
    def test_serial_and_parallel_records_identical(self, tmp_path):
        serial = run_all(FAST_IDS, jobs=1, seed=0, store=tmp_path / "a")
        parallel = run_all(FAST_IDS, jobs=2, seed=0, store=tmp_path / "b")
        for one, two in zip(serial, parallel):
            assert one.status == two.status == "ran"
            assert one.table.records == two.table.records
            assert one.table.notes == two.table.notes

    def test_resume_reports_cached_without_recomputing(self, tmp_path):
        first = run_all(FAST_IDS, jobs=1, seed=0, store=tmp_path)
        second = run_all(
            FAST_IDS, jobs=1, seed=0, store=tmp_path, resume=True
        )
        assert [report.status for report in second] == ["cached"] * 3
        for one, two in zip(first, second):
            assert one.table.records == two.table.records

    def test_resume_reruns_on_seed_change(self, tmp_path):
        run_all(["E11"], seed=0, store=tmp_path)
        reports = run_all(["E11"], seed=1, store=tmp_path, resume=True)
        assert reports[0].status == "ran"

    def test_seed_derivation_is_subset_independent(self, tmp_path):
        alone = run_all(["E10"], seed=0, store=tmp_path / "a")
        grouped = run_all(FAST_IDS, seed=0, store=tmp_path / "b")
        grouped_e10 = [
            report for report in grouped if report.experiment_id == "E10"
        ][0]
        assert alone[0].table.records == grouped_e10.table.records

    def test_per_experiment_seeds_differ(self):
        seeds = {job_seed(0, get_spec(i)) for i in FAST_IDS}
        assert len(seeds) == 3

    def test_unsupported_engine_is_skipped_not_fatal(self, tmp_path):
        reports = run_all(
            ["E10", "E11"], engine="counts", store=tmp_path
        )
        assert [report.status for report in reports] == ["skipped"] * 2
        assert all(report.table is None for report in reports)

    def test_no_store_runs_without_persistence(self, tmp_path):
        reports = run_all(["E11"], store=None)
        assert reports[0].status == "ran"
        with pytest.raises(ValueError, match="requires a result store"):
            run_all(["E11"], store=None, resume=True)

    def test_unknown_experiment_id_raises(self, tmp_path):
        with pytest.raises(KeyError):
            run_all(["E42"], store=tmp_path)

    def test_crashing_job_fails_structured_without_killing_the_sweep(
        self, tmp_path, monkeypatch
    ):
        calls = {"count": 0}

        def crash(config=None, random_state=0):
            calls["count"] += 1
            raise RuntimeError("injected worker crash")

        _patch_run_fn(monkeypatch, "E10", crash)
        reports = run_all(["E10", "E11"], jobs=1, seed=0, store=tmp_path)
        statuses = {r.experiment_id: r.status for r in reports}
        assert statuses == {"E10": "failed", "E11": "ran"}
        assert calls["count"] == 2  # first attempt + exactly one retry
        failed = next(r for r in reports if r.status == "failed")
        assert "injected worker crash" in failed.error
        record = failed.table.records[0]
        assert record["status"] == "failed"
        assert record["error_type"] == "RuntimeError"
        assert record["attempts"] == 2
        assert failed.table.provenance["failed"] is True

    def test_failure_tables_are_not_persisted(self, tmp_path, monkeypatch):
        _patch_run_fn(monkeypatch, "E10", _always_crash)
        run_all(["E10", "E11"], jobs=1, seed=0, store=tmp_path)
        # A resume pass serves E11 from cache but *retries* the crashed
        # E10 instead of serving the failure from the store.
        resumed = run_all(
            ["E10", "E11"], jobs=1, seed=0, store=tmp_path, resume=True
        )
        statuses = {r.experiment_id: r.status for r in resumed}
        assert statuses == {"E10": "failed", "E11": "cached"}

    def test_flaky_job_succeeds_on_the_retry(self, tmp_path, monkeypatch):
        baseline = run_all(["E10"], seed=0, store=tmp_path / "baseline")
        original = get_spec("E10").run_fn
        calls = {"count": 0}

        def flaky(config=None, random_state=0):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient glitch")
            return original(config, random_state=random_state)

        _patch_run_fn(monkeypatch, "E10", flaky)
        reports = run_all(["E10"], seed=0, store=tmp_path / "retry")
        assert reports[0].status == "ran"
        assert reports[0].error is None
        assert reports[0].table.records == baseline[0].table.records

    def test_parallel_crashed_worker_leaves_e15_table_complete(
        self, tmp_path, monkeypatch
    ):
        """The ISSUE acceptance: E15 quick under run-all --jobs with a
        deliberately crashed sibling job still produces its full table."""
        _patch_run_fn(monkeypatch, "E10", _always_crash)
        reports = run_all(["E10", "E15"], jobs=2, seed=0, store=tmp_path)
        statuses = {r.experiment_id: r.status for r in reports}
        assert statuses == {"E10": "failed", "E15": "ran"}
        e15 = next(r for r in reports if r.experiment_id == "E15")
        # Complete grid: 2 workloads x (1 fault-free + 4 families x 2 f's).
        assert len(e15.table.records) == 18
        adaptive = [
            record for record in e15.table.records
            if record["adversary"] == "adaptive"
        ]
        assert adaptive and all(
            record["engine_degraded_reason"] for record in adaptive
        )

    def test_multi_seed_replication_sweep(self, tmp_path):
        reports = run_all(
            ["E10", "E11"], seeds=(0, 1), store=tmp_path
        )
        assert [
            (report.base_seed, report.experiment_id) for report in reports
        ] == [(0, "E10"), (0, "E11"), (1, "E10"), (1, "E11")]
        assert all(report.status == "ran" for report in reports)
        # Seed-0 rows match a plain single-seed run; E10's two seeds give
        # two distinct store entries, and a resume pass caches all four.
        single = run_all(["E10"], seed=0, store=tmp_path / "single")
        assert single[0].table.records == reports[0].table.records
        resumed = run_all(
            ["E10", "E11"], seeds=(0, 1), store=tmp_path, resume=True
        )
        assert [report.status for report in resumed] == ["cached"] * 4
