"""Unit tests for :mod:`repro.faults` — the declarative fault axis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    FAULT_KINDS,
    OBLIVIOUS_FAULT_KINDS,
    FaultedPhaseSampler,
    FaultModel,
    largest_remainder_split,
    runner_up_opinions,
    split_faulty_population,
)


class TestFaultModel:
    def test_kinds_and_obliviousness(self):
        assert set(OBLIVIOUS_FAULT_KINDS) < set(FAULT_KINDS)
        assert not FaultModel(kind="adaptive", fraction=0.1).is_oblivious
        for kind in OBLIVIOUS_FAULT_KINDS:
            knobs = {"kind": kind, "fraction": 0.1}
            assert FaultModel(**knobs).is_oblivious

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 1.5])
    def test_fraction_outside_open_interval_rejected(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            FaultModel(kind="liar", fraction=fraction)

    def test_unknown_kind_names_the_options(self):
        with pytest.raises(ValueError, match="kind"):
            FaultModel(kind="gaslight", fraction=0.1)

    def test_crash_round_only_for_crash(self):
        FaultModel(kind="crash", fraction=0.1, crash_round=5)
        with pytest.raises(ValueError, match="crash_round"):
            FaultModel(kind="liar", fraction=0.1, crash_round=5)

    def test_drop_rate_only_for_omission(self):
        FaultModel(kind="omission", fraction=0.1, drop_rate=0.9)
        with pytest.raises(ValueError, match="drop_rate"):
            FaultModel(kind="crash", fraction=0.1, drop_rate=0.9)

    def test_faulty_count_rounds_and_keeps_an_honest_node(self):
        model = FaultModel(kind="liar", fraction=0.25)
        assert model.faulty_count(100) == 25
        assert model.faulty_count(10) == 2  # round(2.5) banker's-rounds to 2
        with pytest.raises(ValueError):
            FaultModel(kind="liar", fraction=0.99).faulty_count(2)

    def test_dict_round_trip(self):
        model = FaultModel(
            kind="omission", fraction=0.2, drop_rate=0.7,
            allow_degradation=False,
        )
        assert FaultModel.from_dict(model.to_dict()) == model

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultModel.from_dict({"kind": "liar", "fraction": 0.1, "z": 1})


class TestSplitHelpers:
    def test_largest_remainder_split_is_proportional_and_capped(self):
        counts = np.array([50, 30, 20], dtype=np.int64)
        taken = largest_remainder_split(counts, 10)
        assert taken.sum() == 10
        assert np.all(taken <= counts)
        assert np.array_equal(taken, [5, 3, 2])

    def test_split_faulty_population_protects_the_source(self):
        counts = np.array([1, 0, 0], dtype=np.int64)  # rumor source only
        honest, faulty = split_faulty_population(
            counts, 10, 4, protected_opinion=1
        )
        assert honest[0] == 1  # the source is never marked faulty
        assert faulty.sum() + honest.sum() <= 10
        assert faulty[0] == 0

    def test_runner_up_is_second_largest(self):
        histograms = np.array([[5, 9, 2], [3, 3, 8]], dtype=np.int64)
        assert np.array_equal(runner_up_opinions(histograms), [0, 0])

    def test_runner_up_single_opinion_is_zero(self):
        assert np.array_equal(
            runner_up_opinions(np.array([[7]], dtype=np.int64)), [0]
        )


class TestFaultedPhaseSampler:
    def make(self, model, faulty_histogram, num_opinions=3):
        return FaultedPhaseSampler(
            model, int(np.sum(faulty_histogram)),
            np.asarray(faulty_histogram, dtype=np.int64), num_opinions,
        )

    def test_crash_stops_after_crash_round(self):
        model = FaultModel(kind="crash", fraction=0.1, crash_round=3)
        sampler = self.make(model, [2, 1, 0])
        honest = np.array([[10, 5, 5]], dtype=np.int64)
        first = sampler.phase_ball_deltas(honest, 2)
        assert np.array_equal(first, [[4, 2, 0]])  # 2 rounds x histogram
        second = sampler.phase_ball_deltas(honest, 4)
        assert np.array_equal(second, [[2, 1, 0]])  # only round 3 remains
        third = sampler.phase_ball_deltas(honest, 5)
        assert np.array_equal(third, [[0, 0, 0]])

    def test_omission_thins_binomially(self):
        model = FaultModel(kind="omission", fraction=0.1, drop_rate=0.5)
        sampler = self.make(model, [4, 0, 0])
        rng = np.random.default_rng(0)
        deltas = sampler.phase_ball_deltas(
            np.array([[10, 5, 5]], dtype=np.int64), 10, random_state=rng
        )
        assert deltas[0, 1] == 0 and deltas[0, 2] == 0
        assert 0 <= deltas[0, 0] <= 40

    def test_liar_emits_full_budget_uniformly(self):
        model = FaultModel(kind="liar", fraction=0.1)
        sampler = self.make(model, [1, 1, 1])
        rng = np.random.default_rng(1)
        deltas = sampler.phase_ball_deltas(
            np.array([[10, 5, 5]], dtype=np.int64), 6, random_state=rng
        )
        assert deltas.sum() == 3 * 6  # m * L balls, recolored uniformly

    def test_adaptive_targets_the_runner_up(self):
        model = FaultModel(kind="adaptive", fraction=0.1)
        sampler = self.make(model, [0, 2, 0])
        honest = np.array([[10, 7, 3], [1, 8, 5]], dtype=np.int64)
        deltas = sampler.phase_ball_deltas(honest, 4)
        assert np.array_equal(deltas, [[0, 8, 0], [0, 0, 8]])
