"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_generator, derive_seed, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        first = as_generator(7).integers(0, 1000, 10)
        second = as_generator(7).integers(0, 1000, 10)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        first = as_generator(1).integers(0, 10**9, 10)
        second = as_generator(2).integers(0, 10**9, 10)
        assert not np.array_equal(first, second)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(5)
        assert isinstance(as_generator(sequence), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")

    def test_numpy_integer_seed(self):
        assert isinstance(as_generator(np.int64(3)), np.random.Generator)


class TestSpawnGenerators:
    def test_count_respected(self):
        assert len(spawn_generators(5, 0)) == 5

    def test_zero_count_allowed(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(-1, 0)

    def test_spawned_streams_are_independent(self):
        generators = spawn_generators(3, 42)
        draws = [generator.integers(0, 10**9, 5) for generator in generators]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible_family(self):
        first = [g.integers(0, 10**9, 3) for g in spawn_generators(3, 42)]
        second = [g.integers(0, 10**9, 3) for g in spawn_generators(3, 42)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(0)
        generators = spawn_generators(2, parent)
        assert len(generators) == 2

    def test_spawn_from_seed_sequence(self):
        generators = spawn_generators(2, np.random.SeedSequence(9))
        assert len(generators) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, 0) == derive_seed(3, 0)

    def test_varies_with_index(self):
        assert derive_seed(3, 0) != derive_seed(3, 1)

    def test_varies_with_base(self):
        assert derive_seed(3, 0) != derive_seed(4, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(3, -1)

    def test_none_base_allowed(self):
        assert isinstance(derive_seed(None, 2), int)
