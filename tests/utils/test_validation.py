"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    require_fraction,
    require_in_range,
    require_non_negative_int,
    require_opinion,
    require_positive,
    require_positive_int,
    require_probability_vector,
)


class TestRequirePositiveInt:
    def test_accepts_positive(self):
        assert require_positive_int(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive_int(True, "x")

    def test_accepts_numpy_integer(self):
        assert require_positive_int(np.int64(4), "x") == 4

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="widgets"):
            require_positive_int(0, "widgets")


class TestRequireNonNegativeInt:
    def test_accepts_zero(self):
        assert require_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative_int(-1, "x")


class TestRequirePositive:
    def test_accepts_positive_float(self):
        assert require_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_positive(float("nan"), "x")

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            require_positive(float("inf"), "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            require_positive("1.0", "x")


class TestRequireFraction:
    def test_accepts_interior(self):
        assert require_fraction(0.3, "x") == 0.3

    def test_accepts_endpoints_by_default(self):
        assert require_fraction(0.0, "x") == 0.0
        assert require_fraction(1.0, "x") == 1.0

    def test_exclusive_low(self):
        with pytest.raises(ValueError):
            require_fraction(0.0, "x", inclusive_low=False)

    def test_exclusive_high(self):
        with pytest.raises(ValueError):
            require_fraction(1.0, "x", inclusive_high=False)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            require_fraction(1.5, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_fraction(-0.1, "x")


class TestRequireInRange:
    def test_accepts_inside(self):
        assert require_in_range(3.0, "x", 1.0, 5.0) == 3.0

    def test_accepts_boundaries(self):
        assert require_in_range(1.0, "x", 1.0, 5.0) == 1.0
        assert require_in_range(5.0, "x", 1.0, 5.0) == 5.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range(6.0, "x", 1.0, 5.0)


class TestRequireProbabilityVector:
    def test_accepts_valid_vector(self):
        result = require_probability_vector([0.2, 0.3, 0.5], "p")
        assert np.allclose(result, [0.2, 0.3, 0.5])

    def test_normalizes_tiny_drift(self):
        result = require_probability_vector([0.2, 0.3, 0.5 + 1e-12], "p")
        assert abs(result.sum() - 1.0) < 1e-12

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError):
            require_probability_vector([0.2, 0.2], "p")

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            require_probability_vector([1.2, -0.2], "p")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            require_probability_vector([], "p")

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            require_probability_vector([[0.5, 0.5]], "p")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_probability_vector([0.5, float("nan")], "p")


class TestRequireOpinion:
    def test_accepts_valid_opinion(self):
        assert require_opinion(2, "o", 3) == 2

    def test_rejects_zero_without_undecided(self):
        with pytest.raises(ValueError):
            require_opinion(0, "o", 3)

    def test_accepts_zero_with_undecided(self):
        assert require_opinion(0, "o", 3, allow_undecided=True) == 0

    def test_rejects_above_k(self):
        with pytest.raises(ValueError):
            require_opinion(4, "o", 3)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_opinion(1.5, "o", 3)
