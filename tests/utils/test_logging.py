"""Tests for repro.utils.logging."""

from __future__ import annotations

import logging

from repro.utils.logging import configure_console_logging, get_logger


class TestGetLogger:
    def test_base_logger_name(self):
        assert get_logger().name == "repro"

    def test_child_logger_namespaced(self):
        assert get_logger("core").name == "repro.core"

    def test_already_namespaced_name_untouched(self):
        assert get_logger("repro.network").name == "repro.network"

    def test_same_logger_returned(self):
        assert get_logger("x") is get_logger("x")


class TestConfigureConsoleLogging:
    def test_adds_single_handler(self):
        logger = configure_console_logging(logging.DEBUG)
        first_count = len(logger.handlers)
        configure_console_logging(logging.DEBUG)
        assert len(logger.handlers) == first_count

    def test_level_applied(self):
        logger = configure_console_logging(logging.WARNING)
        assert logger.level == logging.WARNING
