"""Tests for repro.utils.multiset (occ / mode / maj of the paper)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.multiset import (
    Multiset,
    majority_from_counts,
    majority_vote,
    mode_from_counts,
    mode_set,
    occurrences,
)


class TestMultiset:
    def test_empty_has_length_zero(self):
        assert len(Multiset()) == 0

    def test_add_and_occ(self):
        ms = Multiset([1, 2, 2, 3])
        assert ms.occ(1) == 1
        assert ms.occ(2) == 2
        assert ms.occ(4) == 0

    def test_add_multiplicity(self):
        ms = Multiset()
        ms.add(5, multiplicity=3)
        assert ms.occ(5) == 3
        assert len(ms) == 3

    def test_add_zero_multiplicity_is_noop(self):
        ms = Multiset()
        ms.add(1, multiplicity=0)
        assert len(ms) == 0

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            Multiset().add(1, multiplicity=-1)

    def test_non_positive_opinion_rejected(self):
        with pytest.raises(ValueError):
            Multiset([0])

    def test_mode_single_winner(self):
        assert Multiset([1, 2, 2]).mode() == {2}

    def test_mode_tie(self):
        assert Multiset([1, 1, 2, 2]).mode() == {1, 2}

    def test_mode_empty(self):
        assert Multiset().mode() == set()

    def test_maj_no_tie_deterministic(self):
        assert Multiset([3, 3, 1]).maj(random_state=0) == 3

    def test_maj_on_empty_raises(self):
        with pytest.raises(ValueError):
            Multiset().maj()

    def test_maj_tie_is_roughly_uniform(self):
        rng = np.random.default_rng(0)
        ms = Multiset([1, 2])
        picks = [ms.maj(rng) for _ in range(2000)]
        fraction_one = picks.count(1) / len(picks)
        assert 0.42 < fraction_one < 0.58

    def test_contains(self):
        ms = Multiset([1, 2])
        assert 1 in ms
        assert 3 not in ms

    def test_iteration_sorted_with_multiplicity(self):
        assert list(Multiset([2, 1, 2])) == [1, 2, 2]

    def test_equality(self):
        assert Multiset([1, 2, 2]) == Multiset([2, 1, 2])
        assert Multiset([1]) != Multiset([2])

    def test_to_count_vector(self):
        vector = Multiset([1, 3, 3]).to_count_vector(4)
        assert vector.tolist() == [1, 0, 2, 0]

    def test_to_count_vector_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Multiset([5]).to_count_vector(3)

    def test_counts_dict(self):
        assert Multiset([1, 1, 2]).counts() == {1: 2, 2: 1}


class TestSequenceHelpers:
    def test_occurrences(self):
        assert occurrences(2, [1, 2, 2, 3]) == 2

    def test_mode_set(self):
        assert mode_set([1, 2, 2, 3, 3]) == {2, 3}

    def test_mode_set_empty(self):
        assert mode_set([]) == set()

    def test_majority_vote_clear_winner(self):
        assert majority_vote([1, 1, 2], random_state=0) == 1

    def test_majority_vote_empty_raises(self):
        with pytest.raises(ValueError):
            majority_vote([])

    def test_majority_vote_tie_uniform(self):
        rng = np.random.default_rng(1)
        picks = [majority_vote([1, 2], rng) for _ in range(2000)]
        fraction_one = picks.count(1) / len(picks)
        assert 0.42 < fraction_one < 0.58


class TestCountVectorHelpers:
    def test_mode_from_counts_single(self):
        mask = mode_from_counts(np.array([0, 3, 1]))
        assert mask.tolist() == [False, True, False]

    def test_mode_from_counts_tie(self):
        mask = mode_from_counts(np.array([2, 2, 0]))
        assert mask.tolist() == [True, True, False]

    def test_mode_from_counts_all_zero(self):
        assert not mode_from_counts(np.zeros(3, dtype=int)).any()

    def test_mode_from_counts_rejects_matrix(self):
        with pytest.raises(ValueError):
            mode_from_counts(np.zeros((2, 2)))

    def test_majority_from_counts_rows(self):
        counts = np.array([[3, 1, 0], [0, 0, 5], [0, 0, 0]])
        votes = majority_from_counts(counts, random_state=0)
        assert votes[0] == 1
        assert votes[1] == 3
        assert votes[2] == 0  # no messages -> no vote

    def test_majority_from_counts_single_row_vector(self):
        vote = majority_from_counts(np.array([0, 4, 1]), random_state=0)
        assert vote == 2

    def test_majority_from_counts_tie_distribution(self):
        rng = np.random.default_rng(2)
        counts = np.tile(np.array([[2, 2, 0]]), (4000, 1))
        votes = majority_from_counts(counts, rng)
        fraction_one = float(np.mean(votes == 1))
        assert 0.45 < fraction_one < 0.55
        assert not np.any(votes == 3)

    def test_majority_from_counts_matches_multiset_maj(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            counts = rng.integers(0, 4, size=5)
            if counts.sum() == 0:
                continue
            vector_vote = majority_from_counts(counts, np.random.default_rng(0))
            ms = Multiset()
            for opinion_index, count in enumerate(counts):
                ms.add(opinion_index + 1, int(count))
            assert vector_vote in ms.mode()


class TestMultisetProperties:
    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_maj_is_always_in_mode(self, sample):
        assert majority_vote(sample, random_state=0) in mode_set(sample)

    @given(st.lists(st.integers(min_value=1, max_value=5), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_occurrence_sum_equals_length(self, sample):
        total = sum(occurrences(i, sample) for i in range(1, 6))
        assert total == len(sample)

    @given(st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_count_vector_roundtrip(self, sample):
        ms = Multiset(sample)
        vector = ms.to_count_vector(4)
        assert vector.sum() == len(sample)
        for opinion in range(1, 5):
            assert vector[opinion - 1] == ms.occ(opinion)

    @given(st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_mode_matches_count_vector_mode(self, sample):
        ms = Multiset(sample)
        mask = mode_from_counts(ms.to_count_vector(4))
        assert {i + 1 for i in np.nonzero(mask)[0]} == ms.mode()
