"""Tests for repro.utils.tables."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_records, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "1" in lines[2] and "2" in lines[2]

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.startswith("My table")

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]], float_format=".2f")
        assert "0.12" in text

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-name-here", 1], ["x", 22]])
        lines = text.splitlines()
        # All data lines have the value starting at the same column.
        assert lines[2].index("1") == lines[3].index("2")

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatRecords:
    def test_records_rendering(self):
        text = format_records([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert "a" in text and "4" in text

    def test_column_selection_and_order(self):
        text = format_records([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0].split()
        assert header == ["b", "a"]

    def test_missing_key_rendered_empty(self):
        text = format_records([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text

    def test_empty_records(self):
        assert format_records([], title="nothing") == "nothing"
        assert format_records([]) == "(no records)"
