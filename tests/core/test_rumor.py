"""Tests for repro.core.rumor (Theorem 1 wrapper)."""

from __future__ import annotations

import pytest

from repro.core.rumor import RumorSpreading, RumorSpreadingInstance
from repro.noise.families import uniform_noise_matrix


class TestRumorSpreadingInstance:
    def test_initial_state_has_single_source(self):
        instance = RumorSpreadingInstance(100, 4, correct_opinion=3, source_node=7)
        state = instance.initial_state()
        assert state.opinionated_count() == 1
        assert state.opinions[7] == 3

    def test_instance_is_frozen(self):
        instance = RumorSpreadingInstance(100, 4, 1)
        with pytest.raises(AttributeError):
            instance.num_nodes = 50


class TestRumorSpreading:
    def test_opinion_count_mismatch_rejected(self):
        noise = uniform_noise_matrix(3, 0.3)
        with pytest.raises(ValueError):
            RumorSpreading(100, 4, noise, 0.3)

    def test_invalid_correct_opinion_rejected(self):
        noise = uniform_noise_matrix(3, 0.3)
        with pytest.raises(ValueError):
            RumorSpreading(100, 3, noise, 0.3, correct_opinion=5)

    def test_successful_run(self):
        noise = uniform_noise_matrix(3, 0.3)
        solver = RumorSpreading(
            600, 3, noise, 0.3, correct_opinion=2, random_state=0
        )
        result = solver.run()
        assert result.success
        assert result.final_state.has_consensus_on(2)

    def test_each_run_uses_a_fresh_initial_state(self):
        noise = uniform_noise_matrix(3, 0.3)
        solver = RumorSpreading(300, 3, noise, 0.3, random_state=1)
        first = solver.run()
        second = solver.run()
        # Both runs must start from a single source (not from the first run's
        # final state) and thus both end in consensus on opinion 1.
        assert first.success and second.success

    def test_round_scale_reduces_rounds(self):
        noise = uniform_noise_matrix(3, 0.3)
        full = RumorSpreading(300, 3, noise, 0.3, random_state=2).run()
        cheap = RumorSpreading(
            300, 3, noise, 0.3, random_state=2, round_scale=0.5
        ).run()
        assert cheap.total_rounds < full.total_rounds

    def test_works_with_two_opinions_binary_case(self):
        # The k = 2 specialization reproduces the original FHK setting.
        from repro.noise.families import binary_flip_matrix

        noise = binary_flip_matrix(0.3)
        result = RumorSpreading(
            600, 2, noise, 0.3, correct_opinion=1, random_state=3
        ).run()
        assert result.success

    def test_works_with_many_opinions(self):
        noise = uniform_noise_matrix(6, 0.35)
        result = RumorSpreading(
            800, 6, noise, 0.35, correct_opinion=5, random_state=4
        ).run()
        assert result.success
