"""Tests for repro.core.memory."""

from __future__ import annotations

import pytest

from repro.core.memory import (
    counter_bits,
    memory_bound_bits,
    protocol_memory_usage,
)
from repro.core.schedule import ProtocolSchedule


class TestCounterBits:
    def test_small_values(self):
        assert counter_bits(1) == 1
        assert counter_bits(2) == 2
        assert counter_bits(3) == 2
        assert counter_bits(4) == 3

    def test_powers_of_two(self):
        assert counter_bits(255) == 8
        assert counter_bits(256) == 9

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            counter_bits(0)


class TestProtocolMemoryUsage:
    def test_total_is_sum_of_components(self):
        schedule = ProtocolSchedule.for_population(10_000, 0.2)
        usage = protocol_memory_usage(schedule, num_opinions=4)
        assert usage.total_bits == (
            usage.opinion_bits
            + usage.phase_counter_bits
            + usage.round_counter_bits
            + usage.sample_counter_bits
        )

    def test_as_dict_round_trips(self):
        schedule = ProtocolSchedule.for_population(10_000, 0.2)
        usage = protocol_memory_usage(schedule, num_opinions=3)
        as_dict = usage.as_dict()
        assert as_dict["total_bits"] == usage.total_bits

    def test_memory_grows_slowly_with_n(self):
        # Doubling n many times should only add a few bits (log log growth).
        small = protocol_memory_usage(
            ProtocolSchedule.for_population(1_000, 0.2), 3
        ).total_bits
        large = protocol_memory_usage(
            ProtocolSchedule.for_population(1_000_000, 0.2), 3
        ).total_bits
        assert large - small < 30

    def test_memory_grows_with_inverse_epsilon(self):
        coarse = protocol_memory_usage(
            ProtocolSchedule.for_population(10_000, 0.4), 3
        ).total_bits
        fine = protocol_memory_usage(
            ProtocolSchedule.for_population(10_000, 0.05), 3
        ).total_bits
        assert fine > coarse

    def test_more_opinions_need_more_counters(self):
        schedule = ProtocolSchedule.for_population(10_000, 0.2)
        few = protocol_memory_usage(schedule, 2).total_bits
        many = protocol_memory_usage(schedule, 8).total_bits
        assert many > few


class TestMemoryBound:
    def test_bound_positive(self):
        assert memory_bound_bits(10_000, 0.2, 3) > 0

    def test_bound_grows_with_log_log_n(self):
        assert memory_bound_bits(10**8, 0.2, 3) > memory_bound_bits(10**3, 0.2, 3)

    def test_bound_grows_with_inverse_epsilon(self):
        assert memory_bound_bits(10**4, 0.01, 3) > memory_bound_bits(10**4, 0.4, 3)

    def test_measured_within_constant_of_bound(self):
        # The ratio measured/bound stays bounded over a wide grid - this is
        # the E11 claim in miniature.
        ratios = []
        for n in (10**3, 10**5, 10**7):
            for eps in (0.3, 0.1, 0.05):
                usage = protocol_memory_usage(
                    ProtocolSchedule.for_population(n, eps), 4
                )
                ratios.append(usage.total_bits / memory_bound_bits(n, eps, 4))
        assert max(ratios) / min(ratios) < 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_bound_bits(0, 0.2, 3)
        with pytest.raises(ValueError):
            memory_bound_bits(100, -0.2, 3)
