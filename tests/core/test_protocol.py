"""Tests for repro.core.protocol (the full two-stage protocol)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import ProtocolResult, TwoStageProtocol, make_engine
from repro.core.schedule import ProtocolSchedule
from repro.core.state import PopulationState
from repro.network.balls_bins import BallsIntoBinsProcess
from repro.network.poisson_model import PoissonizedProcess
from repro.network.push_model import UniformPushModel
from repro.noise.families import uniform_noise_matrix


class TestMakeEngine:
    def test_push_engine(self, uniform3):
        assert isinstance(make_engine("push", 10, uniform3), UniformPushModel)

    def test_balls_bins_engine(self, uniform3):
        assert isinstance(
            make_engine("balls_bins", 10, uniform3), BallsIntoBinsProcess
        )

    def test_poisson_engine(self, uniform3):
        assert isinstance(make_engine("poisson", 10, uniform3), PoissonizedProcess)

    def test_unknown_engine_rejected(self, uniform3):
        with pytest.raises(ValueError):
            make_engine("carrier-pigeon", 10, uniform3)


class TestTwoStageProtocol:
    def test_requires_schedule_or_epsilon(self, uniform3):
        with pytest.raises(ValueError):
            TwoStageProtocol(100, uniform3)

    def test_node_count_mismatch_rejected(self, uniform3):
        protocol = TwoStageProtocol(100, uniform3, epsilon=0.3)
        wrong = PopulationState.single_source(50, 3, 1)
        with pytest.raises(ValueError):
            protocol.run(wrong)

    def test_opinion_count_mismatch_rejected(self, uniform3):
        protocol = TwoStageProtocol(100, uniform3, epsilon=0.3)
        wrong = PopulationState.single_source(100, 5, 1)
        with pytest.raises(ValueError):
            protocol.run(wrong)

    def test_target_opinion_required_when_all_undecided(self, uniform3):
        protocol = TwoStageProtocol(100, uniform3, epsilon=0.3)
        with pytest.raises(ValueError):
            protocol.run(PopulationState.all_undecided(100, 3))

    def test_rumor_run_succeeds(self, uniform3):
        protocol = TwoStageProtocol(800, uniform3, epsilon=0.3, random_state=0)
        initial = PopulationState.single_source(800, 3, 2)
        result = protocol.run(initial)
        assert result.success
        assert result.target_opinion == 2
        assert result.final_state.has_consensus_on(2)

    def test_explicit_schedule_used(self, uniform3):
        schedule = ProtocolSchedule.for_population(400, 0.3, round_scale=0.5)
        protocol = TwoStageProtocol(
            400, uniform3, schedule=schedule, random_state=0
        )
        initial = PopulationState.single_source(400, 3, 1)
        result = protocol.run(initial)
        assert result.total_rounds == schedule.total_rounds

    def test_total_rounds_is_sum_of_stage_records(self, uniform3):
        protocol = TwoStageProtocol(500, uniform3, epsilon=0.3, random_state=1)
        result = protocol.run(PopulationState.single_source(500, 3, 1))
        assert result.total_rounds == result.stage1_rounds + result.stage2_rounds

    def test_reproducible_with_seed(self, uniform3):
        initial = PopulationState.single_source(400, 3, 1)
        first = TwoStageProtocol(400, uniform3, epsilon=0.3, random_state=11).run(
            initial
        )
        second = TwoStageProtocol(400, uniform3, epsilon=0.3, random_state=11).run(
            initial
        )
        assert np.array_equal(first.final_state.opinions, second.final_state.opinions)
        assert first.total_rounds == second.total_rounds

    def test_runs_under_every_delivery_process(self, uniform3):
        for process in ("push", "balls_bins", "poisson"):
            protocol = TwoStageProtocol(
                500, uniform3, epsilon=0.3, process=process, random_state=2
            )
            result = protocol.run(PopulationState.single_source(500, 3, 1))
            assert result.success, f"protocol failed under process {process!r}"

    def test_stop_at_consensus_shortens_run(self, uniform3):
        initial = PopulationState.single_source(500, 3, 1)
        full = TwoStageProtocol(500, uniform3, epsilon=0.3, random_state=3).run(
            initial
        )
        early = TwoStageProtocol(500, uniform3, epsilon=0.3, random_state=3).run(
            initial, stop_at_consensus=True
        )
        assert early.total_rounds <= full.total_rounds
        assert early.success


class TestProtocolResult:
    @pytest.fixture
    def result(self, uniform3) -> ProtocolResult:
        protocol = TwoStageProtocol(600, uniform3, epsilon=0.3, random_state=4)
        return protocol.run(PopulationState.single_source(600, 3, 1))

    def test_bias_trajectory_monotone_tail(self, result):
        trajectory = result.bias_trajectory()
        assert trajectory.size > 0
        assert trajectory[-1] == pytest.approx(1.0)

    def test_final_bias_matches_state(self, result):
        assert result.final_bias == pytest.approx(
            result.final_state.bias_toward(result.target_opinion)
        )

    def test_correct_fraction_is_one_on_success(self, result):
        assert result.success
        assert result.correct_fraction() == pytest.approx(1.0)

    def test_stage_accessors(self, result):
        assert result.opinionated_after_stage1 == 600
        assert result.bias_after_stage1 is not None
        assert result.stage1_rounds > 0
        assert result.stage2_rounds > 0
