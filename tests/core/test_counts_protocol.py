"""Tests for the counts-engine protocol executors and driver.

Covers the Stage-1/Stage-2 counts executors' bookkeeping (records,
conservation, edge cases), the :class:`CountsProtocol` driver contract
(state coercion, schedules, result API, reproducibility), and the rejection
of the per-node-only ablation knobs.  Cross-engine statistical agreement
lives in ``tests/integration/test_engine_agreement.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import CountsProtocol, EnsembleResult
from repro.core.schedule import ProtocolSchedule, Stage1Schedule, Stage2Schedule
from repro.core.stage1 import CountsStage1Executor
from repro.core.stage2 import CountsStage2Executor
from repro.core.state import CountsState, EnsembleCountsState, PopulationState
from repro.network.balls_bins import CountsDeliveryModel, poisson_tail_probability
from repro.noise.families import identity_matrix, uniform_noise_matrix

NUM_NODES = 800
EPSILON = 0.3


@pytest.fixture
def noise():
    return uniform_noise_matrix(3, EPSILON)


@pytest.fixture
def delivery(noise):
    return CountsDeliveryModel(NUM_NODES, noise)


class TestPoissonTail:
    def test_threshold_zero_is_certain(self):
        assert np.all(poisson_tail_probability(0, np.array([0.0, 5.0])) == 1.0)

    def test_zero_rate_never_reaches_positive_threshold(self):
        assert poisson_tail_probability(3, np.array([0.0]))[0] == 0.0

    def test_matches_direct_sum_at_moderate_rate(self):
        import math

        lam = 7.5
        threshold = 10
        direct = 1.0 - sum(
            math.exp(-lam) * lam**i / math.factorial(i)
            for i in range(threshold)
        )
        computed = poisson_tail_probability(threshold, np.array([lam]))[0]
        assert computed == pytest.approx(direct, rel=1e-12)

    def test_stable_at_huge_rates(self):
        # exp(-1500) underflows; the log-space path must not.
        tail = poisson_tail_probability(700, np.array([1500.0]))[0]
        assert tail == pytest.approx(1.0)
        near_half = poisson_tail_probability(1500, np.array([1500.0]))[0]
        assert 0.4 < near_half < 0.6


class TestCountsDeliveryModel:
    def test_recolor_preserves_totals(self, delivery, rng):
        histograms = np.array([[100, 50, 0], [0, 0, 0]], dtype=np.int64)
        noisy = delivery.recolor(histograms, rng)
        assert noisy.dtype == np.int64
        assert np.array_equal(noisy.sum(axis=1), histograms.sum(axis=1))

    def test_identity_recolor_is_exact(self, rng):
        delivery = CountsDeliveryModel(NUM_NODES, identity_matrix(3))
        histograms = np.array([[7, 3, 2]], dtype=np.int64)
        assert np.array_equal(delivery.recolor(histograms, rng), histograms)

    def test_adoption_probabilities_sum_to_one(self, delivery):
        noisy = np.array([[400, 100, 0], [0, 0, 0]], dtype=np.int64)
        probabilities = delivery.adoption_probabilities(noisy)
        assert probabilities.shape == (2, 4)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        # An empty phase leaves everyone undecided with certainty.
        assert probabilities[1, 0] == 1.0
        # Adoption splits proportionally to the noisy histogram.
        assert probabilities[0, 1] / probabilities[0, 2] == pytest.approx(4.0)

    def test_sample_adoptions_accounts_for_every_undecided_node(
        self, delivery, rng
    ):
        noisy = np.array([[4000, 1000, 500]], dtype=np.int64)
        adopted = delivery.sample_adoptions(noisy, np.array([300]), rng)
        assert adopted.shape == (1, 4)
        assert adopted.sum() == 300

    def test_sample_vote_counts_tractable_and_chunked_agree_in_mean(
        self, delivery
    ):
        """The closed-form and chunked vote samplers draw from the same
        law; with a strongly biased histogram both concentrate on the
        plurality color."""
        noisy = np.array([[9000, 500, 500]], dtype=np.int64)
        voters = np.array([4000])
        tractable = delivery.sample_vote_counts(
            noisy, voters, 5, np.random.default_rng(0)
        )
        delivery_small_chunks = CountsDeliveryModel(NUM_NODES, delivery.noise)
        delivery_small_chunks.VOTE_CHUNK = 256
        chunked = delivery_small_chunks.sample_vote_counts(
            noisy, voters, 201, np.random.default_rng(1)
        )
        for votes in (tractable, chunked):
            assert votes.sum() == 4000
            assert votes[0, 0] > 3500
        # L = 201 with k = 3 is beyond the composition-table budget, so the
        # second draw exercised the chunked path.
        from repro.network.pull_model import vote_table_is_tractable
        assert not vote_table_is_tractable(201, 3)
        assert vote_table_is_tractable(5, 3)


class TestCountsStageExecutors:
    def test_stage1_grows_opinionated_set(self, delivery):
        schedule = Stage1Schedule.for_population(NUM_NODES, EPSILON)
        executor = CountsStage1Executor(delivery, schedule, random_state=0)
        initial = EnsembleCountsState.from_counts_state(
            CountsState.single_source(NUM_NODES, 3, 1), 4
        )
        final, records = executor.run(initial, track_opinion=1)
        assert len(records) == schedule.num_phases
        assert np.all(final.opinionated_counts() >= 1)
        assert np.all(
            records[-1].opinionated_after >= records[0].opinionated_before
        )
        assert np.all(final.counts.sum(axis=1) <= NUM_NODES)
        # Phase records carry per-trial arrays and the Claim-1 ball count.
        assert records[0].messages_sent.shape == (4,)
        assert records[0].messages_sent[0] == schedule.phase_lengths[0]

    def test_stage2_amplifies_bias(self, delivery):
        schedule = Stage2Schedule.for_population(NUM_NODES, EPSILON)
        executor = CountsStage2Executor(delivery, schedule, random_state=0)
        biased = EnsembleCountsState(
            np.tile([360, 240, 200], (6, 1)), NUM_NODES
        )
        final, records = executor.run(biased, track_opinion=1)
        assert len(records) == schedule.num_phases
        assert float(final.bias_toward(1).mean()) > float(
            biased.bias_toward(1).mean()
        )
        assert np.all(final.counts.sum(axis=1) == NUM_NODES)
        assert records[-1].consensus_after.shape == (6,)

    def test_stage2_rejects_ablation_knobs(self, delivery):
        schedule = Stage2Schedule.for_population(NUM_NODES, EPSILON)
        with pytest.raises(ValueError, match="with_replacement"):
            CountsStage2Executor(
                delivery, schedule, sampling_method="with_replacement"
            )
        with pytest.raises(ValueError, match="full_multiset"):
            CountsStage2Executor(delivery, schedule, use_full_multiset=True)

    def test_executors_reject_wrong_delivery_type(self, noise):
        schedule = ProtocolSchedule.for_population(NUM_NODES, EPSILON)
        with pytest.raises(TypeError):
            CountsStage1Executor(noise, schedule.stage1)
        with pytest.raises(TypeError):
            CountsStage2Executor(noise, schedule.stage2)


class TestCountsProtocol:
    def test_rumor_spreading_succeeds(self, noise):
        initial = PopulationState.single_source(NUM_NODES, 3, 1)
        result = CountsProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=0
        ).run(initial, 16, target_opinion=1)
        assert isinstance(result, EnsembleResult)
        assert result.num_trials == 16
        assert result.success_rate > 0.8
        assert result.total_rounds > 0
        assert result.biases_after_stage1 is not None
        assert result.correct_fractions().shape == (16,)
        assert isinstance(result.final_states, EnsembleCountsState)

    def test_matches_schedule_of_batched_protocol(self, noise):
        initial = PopulationState.single_source(NUM_NODES, 3, 1)
        counts_result = CountsProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=0
        ).run(initial, 2, target_opinion=1)
        from repro.core.protocol import EnsembleProtocol
        batched_result = EnsembleProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=0
        ).run(initial, 2, target_opinion=1)
        assert counts_result.total_rounds == batched_result.total_rounds
        assert len(counts_result.stage1_records) == len(
            batched_result.stage1_records
        )
        assert len(counts_result.stage2_records) == len(
            batched_result.stage2_records
        )

    def test_accepts_counts_state_types(self, noise):
        protocol = CountsProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=0
        )
        single = CountsState.single_source(NUM_NODES, 3, 1)
        tiled = EnsembleCountsState.from_counts_state(single, 3)
        assert protocol.run(single, 3, target_opinion=1).num_trials == 3
        assert protocol.run(tiled, target_opinion=1).num_trials == 3
        with pytest.raises(ValueError):
            protocol.run(single)  # num_trials required

    def test_reproducible_with_fixed_seed(self, noise):
        initial = PopulationState.single_source(NUM_NODES, 3, 1)
        first = CountsProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=5
        ).run(initial, 4, target_opinion=1)
        second = CountsProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=5
        ).run(initial, 4, target_opinion=1)
        assert np.array_equal(
            first.final_states.counts, second.final_states.counts
        )

    def test_batch_matches_batch_size_one_runs(self, noise):
        """Per-trial sources make a counts protocol batch bitwise identical
        to batch-size-1 runs with the same sources."""
        initial = PopulationState.single_source(NUM_NODES, 3, 1)
        seeds = [41, 42]
        batched = CountsProtocol(
            NUM_NODES, noise, epsilon=EPSILON,
            random_state=[np.random.default_rng(seed) for seed in seeds],
        ).run(initial, len(seeds), target_opinion=1)
        for trial, seed in enumerate(seeds):
            single = CountsProtocol(
                NUM_NODES, noise, epsilon=EPSILON,
                random_state=[np.random.default_rng(seed)],
            ).run(initial, 1, target_opinion=1)
            assert np.array_equal(
                batched.final_states.counts[trial],
                single.final_states.counts[0],
            )

    def test_validation(self, noise):
        with pytest.raises(ValueError):
            CountsProtocol(NUM_NODES, noise)  # schedule or epsilon required
        with pytest.raises(ValueError):
            CountsProtocol(NUM_NODES, noise, epsilon=EPSILON, rng_mode="bad")
        protocol = CountsProtocol(NUM_NODES, noise, epsilon=EPSILON)
        with pytest.raises(ValueError):
            protocol.run(
                CountsState.single_source(NUM_NODES + 1, 3, 1), 2
            )
        with pytest.raises(ValueError):
            protocol.run(CountsState([0, 0, 0], NUM_NODES), 2)

    def test_million_node_protocol_runs_fast(self, noise):
        """The tier's point for the protocol: n = 10^6 trials in seconds."""
        initial = CountsState.single_source(1_000_000, 3, 1)
        result = CountsProtocol(
            1_000_000, noise, epsilon=EPSILON, random_state=0
        ).run(initial, 3, target_opinion=1)
        assert result.success_rate == 1.0
