"""Tests for repro.core.stage1 (the Stage-1 rule)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import Stage1Schedule
from repro.core.stage1 import Stage1Executor
from repro.core.state import PopulationState
from repro.network.push_model import UniformPushModel
from repro.noise.families import identity_matrix, uniform_noise_matrix


def make_executor(num_nodes, noise, rng, **schedule_kwargs):
    schedule = Stage1Schedule.for_population(num_nodes, 0.3, **schedule_kwargs)
    engine = UniformPushModel(num_nodes, noise, rng)
    return Stage1Executor(engine, schedule, rng), schedule


class TestStage1Executor:
    def test_requires_engine_interface(self, rng):
        schedule = Stage1Schedule.for_population(100, 0.3)
        with pytest.raises(TypeError):
            Stage1Executor(object(), schedule, rng)

    def test_initial_state_not_mutated(self, identity3, rng):
        executor, _ = make_executor(200, identity3, rng)
        initial = PopulationState.single_source(200, 3, 1)
        executor.run(initial)
        assert initial.opinionated_count() == 1

    def test_records_cover_every_phase(self, identity3, rng):
        executor, schedule = make_executor(200, identity3, rng)
        initial = PopulationState.single_source(200, 3, 1)
        _, records = executor.run(initial)
        assert len(records) == schedule.num_phases
        assert [record.num_rounds for record in records] == schedule.phase_lengths

    def test_opinionated_count_never_decreases(self, uniform3, rng):
        executor, _ = make_executor(300, uniform3, rng)
        initial = PopulationState.single_source(300, 3, 2)
        _, records = executor.run(initial)
        counts = [records[0].opinionated_before] + [
            record.opinionated_after for record in records
        ]
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_opinionated_nodes_never_change_opinion(self, uniform3, rng):
        # Run phase by phase and check that once a node has an opinion it is
        # never overwritten during Stage 1.
        num_nodes = 200
        schedule = Stage1Schedule.for_population(num_nodes, 0.3)
        engine = UniformPushModel(num_nodes, uniform3, rng)
        executor = Stage1Executor(engine, schedule, rng)
        state = PopulationState.single_source(num_nodes, 3, 1)
        previous = state.opinions.copy()
        for phase_index, num_rounds in enumerate(schedule.phase_lengths):
            executor.run_phase(state, phase_index, num_rounds, track_opinion=1)
            was_opinionated = previous > 0
            assert np.array_equal(
                state.opinions[was_opinionated], previous[was_opinionated]
            )
            previous = state.opinions.copy()

    def test_noise_free_stage1_spreads_only_source_opinion(self, identity3, rng):
        executor, _ = make_executor(300, identity3, rng)
        initial = PopulationState.single_source(300, 3, 2)
        final_state, _ = executor.run(initial, track_opinion=2)
        counts = final_state.opinion_counts()
        assert counts[0] == 0 and counts[2] == 0
        assert counts[1] == final_state.opinionated_count()

    def test_all_nodes_opinionated_after_stage1(self, uniform3, rng):
        executor, _ = make_executor(500, uniform3, rng)
        initial = PopulationState.single_source(500, 3, 1)
        final_state, _ = executor.run(initial)
        assert final_state.opinionated_fraction() == pytest.approx(1.0)

    def test_final_bias_toward_source_opinion(self, uniform3, rng):
        executor, _ = make_executor(800, uniform3, rng)
        initial = PopulationState.single_source(800, 3, 3)
        final_state, records = executor.run(initial, track_opinion=3)
        assert final_state.bias_toward(3) > 0
        assert records[-1].bias == pytest.approx(final_state.bias_toward(3))

    def test_track_opinion_defaults_to_plurality(self, uniform3, rng):
        executor, _ = make_executor(300, uniform3, rng)
        initial = PopulationState.single_source(300, 3, 2)
        _, records = executor.run(initial)
        assert records[0].bias is not None

    def test_no_senders_phase_is_a_noop(self, identity3, rng):
        executor, schedule = make_executor(50, identity3, rng)
        state = PopulationState.all_undecided(50, 3)
        record = executor.run_phase(state, 0, schedule.phase_lengths[0])
        assert record.newly_opinionated == 0
        assert record.messages_sent == 0
        assert state.opinionated_count() == 0

    def test_messages_sent_accounting(self, identity3, rng):
        num_nodes = 100
        executor, _ = make_executor(num_nodes, identity3, rng)
        state = PopulationState.from_counts(num_nodes, {1: 10}, 3, rng)
        record = executor.run_phase(state, 0, 7)
        assert record.messages_sent == 10 * 7

    def test_newly_opinionated_matches_difference(self, uniform3, rng):
        executor, _ = make_executor(400, uniform3, rng)
        initial = PopulationState.single_source(400, 3, 1)
        _, records = executor.run(initial)
        for record in records:
            assert record.newly_opinionated == (
                record.opinionated_after - record.opinionated_before
            )

    def test_balls_bins_engine_accepted(self, uniform3, rng):
        from repro.network.balls_bins import BallsIntoBinsProcess

        num_nodes = 300
        schedule = Stage1Schedule.for_population(num_nodes, 0.3)
        engine = BallsIntoBinsProcess(num_nodes, uniform3, rng)
        executor = Stage1Executor(engine, schedule, rng)
        final_state, _ = executor.run(PopulationState.single_source(num_nodes, 3, 1))
        assert final_state.opinionated_fraction() > 0.95
