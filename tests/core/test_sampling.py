"""Tests for repro.core.sampling.ReservoirSampler."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import ReservoirSampler


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)

    def test_fills_up_to_capacity(self):
        sampler = ReservoirSampler(3, random_state=0)
        sampler.extend([1, 2, 3])
        assert sorted(sampler.sample()) == [1, 2, 3]
        assert sampler.is_full

    def test_items_seen_counts_everything(self):
        sampler = ReservoirSampler(2, random_state=0)
        sampler.extend([1, 2, 3, 4, 5])
        assert sampler.items_seen == 5
        assert len(sampler) == 2

    def test_sample_is_subset_of_stream(self):
        sampler = ReservoirSampler(4, random_state=0)
        stream = [1, 2, 3, 2, 1, 3, 3, 3]
        sampler.extend(stream)
        counter_stream = Counter(stream)
        counter_sample = Counter(sampler.sample())
        for item, count in counter_sample.items():
            assert count <= counter_stream[item]

    def test_single_returns_first_or_none(self):
        sampler = ReservoirSampler(1, random_state=0)
        assert sampler.single() is None
        sampler.offer(7)
        assert sampler.single() == 7

    def test_counts_vector(self):
        sampler = ReservoirSampler(5, random_state=0)
        sampler.extend([1, 1, 3])
        assert sampler.counts(3).tolist() == [2, 0, 1]

    def test_counts_rejects_out_of_range(self):
        sampler = ReservoirSampler(2, random_state=0)
        sampler.offer(5)
        with pytest.raises(ValueError):
            sampler.counts(3)

    def test_reset(self):
        sampler = ReservoirSampler(2, random_state=0)
        sampler.extend([1, 2, 3])
        sampler.reset()
        assert len(sampler) == 0
        assert sampler.items_seen == 0


class TestUniformity:
    def test_capacity_one_matches_stage1_rule(self):
        # With capacity 1 the retained item is a uniform draw from the stream
        # (counting multiplicities) - exactly the Stage-1 adoption rule.
        rng = np.random.default_rng(0)
        stream = [1] * 3 + [2]
        picks = []
        for _ in range(4000):
            sampler = ReservoirSampler(1, rng)
            sampler.extend(stream)
            picks.append(sampler.single())
        fraction_one = picks.count(1) / len(picks)
        assert fraction_one == pytest.approx(0.75, abs=0.03)

    def test_every_item_equally_likely_to_survive(self):
        # Offer items 0..9 to a capacity-3 reservoir many times; each item
        # should be retained with probability 3/10.
        rng = np.random.default_rng(1)
        inclusion = Counter()
        trials = 3000
        for _ in range(trials):
            sampler = ReservoirSampler(3, rng)
            sampler.extend(range(1, 11))
            for item in sampler.sample():
                inclusion[item] += 1
        for item in range(1, 11):
            assert inclusion[item] / trials == pytest.approx(0.3, abs=0.05)


class TestReservoirProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=6), max_size=80),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_size_invariant(self, stream, capacity, seed):
        sampler = ReservoirSampler(capacity, np.random.default_rng(seed))
        sampler.extend(stream)
        assert len(sampler) == min(len(stream), capacity)
        assert sampler.items_seen == len(stream)

    @given(
        st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=80),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_sample_multiset_is_contained_in_stream(self, stream, capacity, seed):
        sampler = ReservoirSampler(capacity, np.random.default_rng(seed))
        sampler.extend(stream)
        stream_counts = Counter(stream)
        for item, count in Counter(sampler.sample()).items():
            assert count <= stream_counts[item]
