"""Tests for repro.core.stage2 (the Stage-2 sample-majority rule)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import Stage2Schedule
from repro.core.stage2 import Stage2Executor
from repro.core.state import PopulationState
from repro.experiments.workloads import biased_population
from repro.network.push_model import UniformPushModel
from repro.noise.families import identity_matrix, uniform_noise_matrix


def make_executor(num_nodes, noise, rng, **executor_kwargs):
    schedule = Stage2Schedule.for_population(num_nodes, 0.3)
    engine = UniformPushModel(num_nodes, noise, rng)
    return Stage2Executor(engine, schedule, rng, **executor_kwargs), schedule


class TestStage2Executor:
    def test_requires_engine_interface(self, rng):
        schedule = Stage2Schedule.for_population(100, 0.3)
        with pytest.raises(TypeError):
            Stage2Executor(object(), schedule, rng)

    def test_invalid_sampling_method_rejected(self, identity3, rng):
        schedule = Stage2Schedule.for_population(100, 0.3)
        engine = UniformPushModel(100, identity3, rng)
        with pytest.raises(ValueError):
            Stage2Executor(engine, schedule, rng, sampling_method="nope")

    def test_initial_state_not_mutated(self, uniform3, rng):
        executor, _ = make_executor(300, uniform3, rng)
        initial = biased_population(300, 3, 0.2, random_state=rng)
        snapshot = initial.opinions.copy()
        executor.run(initial)
        assert np.array_equal(initial.opinions, snapshot)

    def test_records_cover_every_phase(self, uniform3, rng):
        executor, schedule = make_executor(300, uniform3, rng)
        initial = biased_population(300, 3, 0.2, random_state=rng)
        _, records = executor.run(initial)
        assert len(records) == schedule.num_phases
        assert [record.sample_size for record in records] == schedule.sample_sizes

    def test_amplifies_bias_and_reaches_consensus(self, uniform3, rng):
        executor, _ = make_executor(1000, uniform3, rng)
        initial = biased_population(1000, 3, 0.15, random_state=rng)
        final_state, records = executor.run(initial, track_opinion=1)
        assert final_state.has_consensus_on(1)
        assert records[-1].bias_after == pytest.approx(1.0)

    def test_bias_records_consistent_with_state(self, uniform3, rng):
        executor, _ = make_executor(500, uniform3, rng)
        initial = biased_population(500, 3, 0.2, random_state=rng)
        final_state, records = executor.run(initial, track_opinion=1)
        assert records[-1].bias_after == pytest.approx(final_state.bias_toward(1))

    def test_noise_free_stage2_converges_fast(self, identity3, rng):
        executor, _ = make_executor(500, identity3, rng)
        initial = biased_population(500, 3, 0.2, random_state=rng)
        final_state, _ = executor.run(initial, track_opinion=1)
        assert final_state.has_consensus_on(1)

    def test_stop_at_consensus_truncates_records(self, identity3, rng):
        executor, schedule = make_executor(500, identity3, rng)
        initial = biased_population(500, 3, 0.3, random_state=rng)
        _, records = executor.run(
            initial, track_opinion=1, stop_at_consensus=True
        )
        assert len(records) <= schedule.num_phases

    def test_undecided_nodes_join_during_stage2(self, uniform3, rng):
        # Stage 2's rule lets any node that received enough messages vote, so
        # an initially undecided minority gets absorbed.
        executor, _ = make_executor(400, uniform3, rng)
        initial = PopulationState.from_counts(
            400, {1: 250, 2: 100}, 3, random_state=rng
        )
        final_state, _ = executor.run(initial, track_opinion=1)
        assert final_state.opinionated_fraction() == pytest.approx(1.0)

    def test_all_undecided_population_stays_undecided(self, uniform3, rng):
        executor, _ = make_executor(100, uniform3, rng)
        initial = PopulationState.all_undecided(100, 3)
        final_state, records = executor.run(initial)
        assert final_state.opinionated_count() == 0
        assert all(record.messages_sent == 0 for record in records)

    def test_updated_nodes_counted(self, uniform3, rng):
        executor, _ = make_executor(400, uniform3, rng)
        initial = biased_population(400, 3, 0.2, random_state=rng)
        _, records = executor.run(initial)
        # With every node pushing for 2L rounds, essentially every node
        # receives >= L messages and re-votes each phase.
        assert records[0].updated_nodes > 350

    def test_full_multiset_variant_also_converges(self, uniform3, rng):
        executor, _ = make_executor(500, uniform3, rng, use_full_multiset=True)
        initial = biased_population(500, 3, 0.2, random_state=rng)
        final_state, _ = executor.run(initial, track_opinion=1)
        assert final_state.has_consensus_on(1)

    def test_with_replacement_variant_also_converges(self, uniform3, rng):
        executor, _ = make_executor(
            500, uniform3, rng, sampling_method="with_replacement"
        )
        initial = biased_population(500, 3, 0.2, random_state=rng)
        final_state, _ = executor.run(initial, track_opinion=1)
        assert final_state.has_consensus_on(1)

    def test_strong_noise_without_bias_does_not_invent_consensus_on_target(
        self, rng
    ):
        # Start perfectly balanced between opinions 1 and 2: the protocol may
        # converge somewhere by symmetry breaking, but it should not
        # systematically pick opinion 1.
        noise = uniform_noise_matrix(2, 0.3)
        winners = []
        for seed in range(6):
            local_rng = np.random.default_rng(seed)
            schedule = Stage2Schedule.for_population(400, 0.3)
            engine = UniformPushModel(400, noise, local_rng)
            executor = Stage2Executor(engine, schedule, local_rng)
            initial = PopulationState.from_counts(
                400, {1: 200, 2: 200}, 2, random_state=local_rng
            )
            final_state, _ = executor.run(initial, track_opinion=1)
            winners.append(final_state.plurality_opinion())
        assert len(set(winners)) > 1 or winners[0] in (1, 2)
