"""Tests for repro.core.state.EnsembleState ((R, n) batched state)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import EnsembleState, PopulationState


class TestConstruction:
    def test_valid_ensemble(self):
        ensemble = EnsembleState([[0, 1, 2], [2, 2, 0]], num_opinions=3)
        assert ensemble.num_trials == 2
        assert ensemble.num_nodes == 3
        assert ensemble.num_opinions == 3

    def test_opinions_dtype_and_shape(self):
        ensemble = EnsembleState([[0, 1], [1, 2]], num_opinions=2)
        assert ensemble.opinions.dtype == np.int64
        assert ensemble.opinions.shape == (2, 2)

    def test_rejects_vector_input(self):
        with pytest.raises(ValueError):
            EnsembleState([0, 1, 2], num_opinions=3)

    def test_rejects_out_of_range_opinion(self):
        with pytest.raises(ValueError):
            EnsembleState([[0, 4]], num_opinions=3)

    def test_rejects_negative_opinion(self):
        with pytest.raises(ValueError):
            EnsembleState([[-1, 1]], num_opinions=3)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            EnsembleState(np.zeros((0, 4), dtype=np.int64), num_opinions=2)

    def test_input_is_copied(self):
        opinions = np.array([[1, 2]])
        ensemble = EnsembleState(opinions, num_opinions=2)
        opinions[0, 0] = 2
        assert ensemble.opinions[0, 0] == 1

    def test_from_state_tiles_rows(self):
        state = PopulationState([0, 1, 2], num_opinions=3)
        ensemble = EnsembleState.from_state(state, 4)
        assert ensemble.num_trials == 4
        for trial in range(4):
            assert np.array_equal(ensemble.opinions[trial], state.opinions)

    def test_from_state_requires_positive_trials(self):
        state = PopulationState([1], num_opinions=1)
        with pytest.raises(ValueError):
            EnsembleState.from_state(state, 0)

    def test_from_states_stacks(self):
        states = [
            PopulationState([0, 1], num_opinions=2),
            PopulationState([2, 2], num_opinions=2),
        ]
        ensemble = EnsembleState.from_states(states)
        assert np.array_equal(ensemble.opinions, [[0, 1], [2, 2]])

    def test_from_states_rejects_mismatched_nodes(self):
        states = [
            PopulationState([0, 1], num_opinions=2),
            PopulationState([1], num_opinions=2),
        ]
        with pytest.raises(ValueError):
            EnsembleState.from_states(states)

    def test_from_states_rejects_mismatched_opinions(self):
        states = [
            PopulationState([0, 1], num_opinions=2),
            PopulationState([0, 1], num_opinions=3),
        ]
        with pytest.raises(ValueError):
            EnsembleState.from_states(states)

    def test_from_states_rejects_empty_list(self):
        with pytest.raises(ValueError):
            EnsembleState.from_states([])


class TestConversion:
    def test_trial_state_round_trip(self):
        ensemble = EnsembleState([[0, 1, 2], [2, 0, 1]], num_opinions=3)
        state = ensemble.trial_state(1)
        assert isinstance(state, PopulationState)
        assert np.array_equal(state.opinions, [2, 0, 1])

    def test_trial_state_is_a_copy(self):
        ensemble = EnsembleState([[1, 2]], num_opinions=2)
        state = ensemble.trial_state(0)
        state.opinions[0] = 2
        assert ensemble.opinions[0, 0] == 1

    def test_to_states_matches_rows(self):
        ensemble = EnsembleState([[0, 1], [2, 2], [1, 0]], num_opinions=2)
        states = ensemble.to_states()
        assert len(states) == 3
        for trial, state in enumerate(states):
            assert np.array_equal(state.opinions, ensemble.opinions[trial])

    def test_copy_is_independent(self):
        ensemble = EnsembleState([[1, 2]], num_opinions=2)
        clone = ensemble.copy()
        clone.opinions[0, 0] = 2
        assert ensemble.opinions[0, 0] == 1


class TestDerivedQuantities:
    """Every batched metric must agree with the per-trial PopulationState."""

    @pytest.fixture
    def random_ensemble(self, rng) -> EnsembleState:
        return EnsembleState(rng.integers(0, 5, size=(6, 40)), num_opinions=4)

    def test_opinionated_counts_match_per_trial(self, random_ensemble):
        counts = random_ensemble.opinionated_counts()
        assert counts.shape == (6,)
        for trial, state in enumerate(random_ensemble.to_states()):
            assert counts[trial] == state.opinionated_count()

    def test_opinion_counts_match_per_trial(self, random_ensemble):
        counts = random_ensemble.opinion_counts()
        assert counts.shape == (6, 4)
        for trial, state in enumerate(random_ensemble.to_states()):
            assert np.array_equal(counts[trial], state.opinion_counts())

    def test_distributions_match_per_trial(self, random_ensemble):
        distributions = random_ensemble.opinion_distributions()
        for trial, state in enumerate(random_ensemble.to_states()):
            assert np.allclose(distributions[trial], state.opinion_distribution())

    def test_bias_matches_per_trial(self, random_ensemble):
        for opinion in (1, 3):
            biases = random_ensemble.bias_toward(opinion)
            assert biases.shape == (6,)
            for trial, state in enumerate(random_ensemble.to_states()):
                assert biases[trial] == pytest.approx(state.bias_toward(opinion))

    def test_plurality_matches_per_trial(self, random_ensemble):
        winners = random_ensemble.plurality_opinions()
        for trial, state in enumerate(random_ensemble.to_states()):
            assert winners[trial] == state.plurality_opinion()

    def test_bias_rejects_out_of_range_opinion(self, random_ensemble):
        with pytest.raises(ValueError):
            random_ensemble.bias_toward(5)

    def test_single_opinion_bias_is_share(self):
        ensemble = EnsembleState([[0, 1, 1, 0]], num_opinions=1)
        assert ensemble.bias_toward(1) == pytest.approx([0.5])

    def test_consensus_mask(self):
        ensemble = EnsembleState([[1, 1, 1], [1, 2, 1], [2, 2, 2]], num_opinions=2)
        assert np.array_equal(
            ensemble.consensus_mask(1), [True, False, False]
        )
        assert np.array_equal(
            ensemble.consensus_mask(2), [False, False, True]
        )

    def test_correct_fractions(self):
        ensemble = EnsembleState([[1, 1, 2, 0], [2, 2, 2, 2]], num_opinions=2)
        assert np.allclose(ensemble.correct_fractions(2), [0.25, 1.0])

    def test_plurality_zero_for_all_undecided_trial(self):
        ensemble = EnsembleState([[0, 0], [1, 0]], num_opinions=2)
        assert np.array_equal(ensemble.plurality_opinions(), [0, 1])

    def test_summary_keys(self, random_ensemble):
        summary = random_ensemble.summary()
        assert summary["num_trials"] == 6
        assert summary["num_nodes"] == 40
        assert 0.0 <= summary["min_opinionated_fraction"] <= 1.0

    def test_equality(self):
        first = EnsembleState([[0, 1]], num_opinions=2)
        second = EnsembleState([[0, 1]], num_opinions=2)
        third = EnsembleState([[1, 1]], num_opinions=2)
        assert first == second
        assert first != third
