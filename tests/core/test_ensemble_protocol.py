"""Tests for the batched EnsembleProtocol and its executors.

The central guarantee under test: with per-trial randomness sources, a
batched run of ``R`` trials is *bitwise identical* to ``R`` separate
batch-size-1 runs with the same per-trial sources — the trial axis is pure
vectorization and never changes any trial's trajectory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import EnsembleProtocol, TwoStageProtocol
from repro.core.rumor import RumorSpreading
from repro.core.schedule import ProtocolSchedule
from repro.core.stage1 import EnsembleStage1Executor
from repro.core.stage2 import EnsembleStage2Executor
from repro.core.state import EnsembleState, PopulationState
from repro.experiments.workloads import biased_population, rumor_instance
from repro.network.push_model import UniformPushModel
from repro.network.topology import GraphPushModel, standard_topology
from repro.noise.families import identity_matrix, uniform_noise_matrix

NUM_NODES = 300
EPSILON = 0.35
SEEDS = [101, 202, 303, 404]


@pytest.fixture
def noise():
    return uniform_noise_matrix(3, EPSILON)


@pytest.fixture
def initial_state():
    return rumor_instance(NUM_NODES, 3, 1)


def run_batched(noise, initial_state, random_state, num_trials, **kwargs):
    protocol = EnsembleProtocol(
        initial_state.num_nodes,
        noise,
        epsilon=EPSILON,
        random_state=random_state,
        **kwargs,
    )
    return protocol.run(initial_state, num_trials, target_opinion=1)


class TestSeedMatchedEquivalence:
    def test_batched_equals_sequential_runs_with_matched_seeds(
        self, noise, initial_state
    ):
        """The acceptance-criterion equivalence: R batched trials == R
        sequential batch-size-1 runs, seed for seed, bit for bit."""
        batched = run_batched(noise, initial_state, SEEDS, len(SEEDS))
        for trial, seed in enumerate(SEEDS):
            single = run_batched(noise, initial_state, [seed], 1)
            assert np.array_equal(
                batched.final_states.opinions[trial],
                single.final_states.opinions[0],
            )
            assert bool(batched.successes[trial]) == bool(single.successes[0])
            assert batched.total_rounds == single.total_rounds
            assert batched.biases_after_stage1[trial] == pytest.approx(
                single.biases_after_stage1[0]
            )

    def test_phase_records_match_trial_by_trial(self, noise, initial_state):
        batched = run_batched(noise, initial_state, SEEDS, len(SEEDS))
        single = run_batched(noise, initial_state, [SEEDS[2]], 1)
        for batched_record, single_record in zip(
            batched.stage1_records, single.stage1_records
        ):
            assert batched_record.opinionated_after[2] == (
                single_record.opinionated_after[0]
            )
            assert batched_record.newly_opinionated[2] == (
                single_record.newly_opinionated[0]
            )
        for batched_record, single_record in zip(
            batched.stage2_records, single.stage2_records
        ):
            assert batched_record.updated_nodes[2] == single_record.updated_nodes[0]
            assert np.allclose(
                batched_record.opinion_distributions[2],
                single_record.opinion_distributions[0],
            )

    def test_int_seed_spawns_stable_per_trial_streams(self, noise, initial_state):
        """With one integer seed, trial r of a batch matches trial r of any
        larger batch (child streams depend only on the trial index)."""
        small = run_batched(noise, initial_state, 7, 2)
        large = run_batched(noise, initial_state, 7, 4)
        assert np.array_equal(
            small.final_states.opinions, large.final_states.opinions[:2]
        )

    def test_matched_seeds_hold_for_every_process(self, noise, initial_state):
        for process in ("push", "balls_bins", "poisson"):
            batched = run_batched(
                noise, initial_state, SEEDS[:2], 2, process=process
            )
            single = run_batched(
                noise, initial_state, [SEEDS[1]], 1, process=process
            )
            assert np.array_equal(
                batched.final_states.opinions[1], single.final_states.opinions[0]
            )


class TestStatisticalAgreementWithSequentialProtocol:
    def test_identity_noise_both_always_succeed(self, initial_state):
        """Under the noise-free channel both engines must always spread the
        rumor to everyone: the batched path and the reference path agree on
        the certain event."""
        noise = identity_matrix(3)
        batched = run_batched(noise, initial_state, 0, 6)
        assert batched.success_rate == 1.0
        sequential = TwoStageProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=0
        ).run(initial_state, target_opinion=1)
        assert sequential.success
        assert sequential.total_rounds == batched.total_rounds

    def test_stage1_bias_matches_sequential_in_mean(self, noise, initial_state):
        """Both engines implement the same protocol, so the Stage-1 bias
        statistics must agree (they use different RNG consumption, hence the
        statistical tolerance)."""
        batched = run_batched(noise, initial_state, 0, 24)
        sequential_biases = []
        for seed in range(8):
            result = TwoStageProtocol(
                NUM_NODES, noise, epsilon=EPSILON, random_state=seed
            ).run(initial_state, target_opinion=1)
            sequential_biases.append(result.bias_after_stage1)
        batched_mean = float(batched.biases_after_stage1.mean())
        sequential_mean = float(np.mean(sequential_biases))
        assert batched_mean == pytest.approx(sequential_mean, abs=0.08)
        assert batched.success_rate >= 0.9


class TestEnsembleProtocolApi:
    def test_result_shapes_and_types(self, noise, initial_state):
        result = run_batched(noise, initial_state, 0, 5)
        assert result.num_trials == 5
        assert result.successes.shape == (5,)
        assert result.successes.dtype == bool
        assert result.final_biases.shape == (5,)
        assert result.biases_after_stage1.shape == (5,)
        assert result.opinionated_after_stage1.shape == (5,)
        assert result.correct_fractions().shape == (5,)
        assert result.total_rounds == result.stage1_rounds + result.stage2_rounds
        assert 0.0 <= result.success_rate <= 1.0
        assert result.success_count == int(result.successes.sum())
        summary = result.summary()
        assert summary["num_trials"] == 5
        assert summary["target_opinion"] == 1

    def test_accepts_prebuilt_ensemble_state(self, noise):
        ensemble = EnsembleState.from_state(
            biased_population(NUM_NODES, 3, 0.3, random_state=0), 3
        )
        result = EnsembleProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=0
        ).run(ensemble)
        assert result.num_trials == 3

    def test_infers_target_from_pooled_plurality(self, noise):
        state = biased_population(NUM_NODES, 3, 0.4, majority_opinion=2, random_state=0)
        result = EnsembleProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=0
        ).run(state, 3)
        assert result.target_opinion == 2

    def test_requires_num_trials_for_population_state(self, noise, initial_state):
        protocol = EnsembleProtocol(NUM_NODES, noise, epsilon=EPSILON)
        with pytest.raises(ValueError):
            protocol.run(initial_state)

    def test_rejects_num_trials_mismatch(self, noise, initial_state):
        protocol = EnsembleProtocol(NUM_NODES, noise, epsilon=EPSILON)
        ensemble = EnsembleState.from_state(initial_state, 3)
        with pytest.raises(ValueError):
            protocol.run(ensemble, 4)

    def test_rejects_node_count_mismatch(self, noise):
        protocol = EnsembleProtocol(NUM_NODES, noise, epsilon=EPSILON)
        with pytest.raises(ValueError):
            protocol.run(rumor_instance(NUM_NODES + 1, 3, 1), 2)

    def test_rejects_opinion_count_mismatch(self, noise):
        protocol = EnsembleProtocol(NUM_NODES, noise, epsilon=EPSILON)
        with pytest.raises(ValueError):
            protocol.run(rumor_instance(NUM_NODES, 2, 1), 2)

    def test_rejects_all_undecided_without_target(self, noise):
        protocol = EnsembleProtocol(NUM_NODES, noise, epsilon=EPSILON)
        with pytest.raises(ValueError):
            protocol.run(PopulationState.all_undecided(NUM_NODES, 3), 2)

    def test_requires_schedule_or_epsilon(self, noise):
        with pytest.raises(ValueError):
            EnsembleProtocol(NUM_NODES, noise)

    def test_rejects_unknown_rng_mode(self, noise):
        with pytest.raises(ValueError):
            EnsembleProtocol(NUM_NODES, noise, epsilon=EPSILON, rng_mode="bogus")

    def test_shared_rng_mode_runs(self, noise, initial_state):
        result = run_batched(
            noise, initial_state, 0, 4, rng_mode="shared"
        )
        assert result.num_trials == 4
        assert result.success_rate >= 0.75

    def test_explicit_schedule_is_honoured(self, noise, initial_state):
        schedule = ProtocolSchedule.for_population(NUM_NODES, EPSILON)
        result = EnsembleProtocol(
            NUM_NODES, noise, schedule=schedule, random_state=0
        ).run(initial_state, 2, target_opinion=1)
        assert result.total_rounds == schedule.total_rounds

    def test_rejects_topology_engine(self, noise, initial_state):
        graph = standard_topology("complete", NUM_NODES)
        engine = GraphPushModel(graph, noise, 0)
        protocol = EnsembleProtocol(
            NUM_NODES, noise, epsilon=EPSILON, engine=engine
        )
        with pytest.raises(TypeError):
            protocol.run(initial_state, 2, target_opinion=1)

    def test_two_stage_protocol_run_ensemble_shortcut(self, noise, initial_state):
        protocol = TwoStageProtocol(
            NUM_NODES, noise, epsilon=EPSILON, random_state=0
        )
        result = protocol.run_ensemble(initial_state, 3, target_opinion=1)
        assert result.num_trials == 3
        assert result.total_rounds > 0

    def test_rumor_spreading_run_ensemble(self, noise):
        solver = RumorSpreading(
            NUM_NODES, 3, noise, EPSILON, correct_opinion=2, random_state=0
        )
        result = solver.run_ensemble(4)
        assert result.num_trials == 4
        assert result.target_opinion == 2


class TestEnsembleExecutors:
    def test_stage1_executor_rejects_topology_engine(self, noise):
        graph = standard_topology("cycle", 20)
        engine = GraphPushModel(graph, noise, 0)
        schedule = ProtocolSchedule.for_population(20, EPSILON)
        with pytest.raises(TypeError):
            EnsembleStage1Executor(engine, schedule.stage1)
        with pytest.raises(TypeError):
            EnsembleStage2Executor(engine, schedule.stage2)

    def test_stage2_executor_rejects_bad_sampling_method(self, noise):
        engine = UniformPushModel(20, noise, 0)
        schedule = ProtocolSchedule.for_population(20, EPSILON)
        with pytest.raises(ValueError):
            EnsembleStage2Executor(engine, schedule.stage2, sampling_method="bogus")

    def test_stage1_does_not_mutate_input(self, noise, initial_state):
        engine = UniformPushModel(NUM_NODES, noise, 0)
        schedule = ProtocolSchedule.for_population(NUM_NODES, EPSILON)
        ensemble = EnsembleState.from_state(initial_state, 3)
        executor = EnsembleStage1Executor(engine, schedule.stage1, 0)
        final, records = executor.run(ensemble, track_opinion=1)
        assert np.array_equal(
            ensemble.opinions, np.tile(initial_state.opinions, (3, 1))
        )
        assert len(records) == len(schedule.stage1.phase_lengths)
        assert np.all(final.opinionated_counts() >= 1)

    def test_stage2_records_consensus_masks(self, noise):
        engine = UniformPushModel(NUM_NODES, noise, 0)
        schedule = ProtocolSchedule.for_population(NUM_NODES, EPSILON)
        state = biased_population(NUM_NODES, 3, 0.4, random_state=0)
        ensemble = EnsembleState.from_state(state, 3)
        executor = EnsembleStage2Executor(engine, schedule.stage2, 0)
        final, records = executor.run(ensemble, track_opinion=1)
        assert records[-1].consensus_after.shape == (3,)
        assert np.array_equal(
            records[-1].consensus_after, final.consensus_mask(1)
        )

    def test_full_multiset_variant_runs(self, noise, initial_state):
        result = run_batched(
            noise, initial_state, 0, 3, use_full_multiset=True
        )
        assert result.num_trials == 3

    def test_with_replacement_sampling_runs(self, noise, initial_state):
        result = run_batched(
            noise, initial_state, 0, 3, sampling_method="with_replacement"
        )
        assert result.num_trials == 3
