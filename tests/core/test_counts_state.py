"""Tests for the counts (sufficient-statistics) state types.

Covers construction/validation, the round-trips from the per-node state
types, agreement of every derived quantity with the per-node computations,
and the int64 dtype-safety regression for populations beyond ``2**31``
nodes (the counts engines must not silently wrap on platforms whose
default int is 32-bit).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import (
    CountsState,
    EnsembleCountsState,
    EnsembleState,
    PopulationState,
)
from repro.utils.multiset import opinion_counts_matrix


class TestCountsState:
    def test_round_trip_from_population_state(self, rng):
        state = PopulationState.from_counts(
            50, {1: 20, 2: 10, 3: 5}, 3, rng
        )
        counts = CountsState.from_state(state)
        assert counts.num_nodes == 50
        assert counts.num_opinions == 3
        assert np.array_equal(counts.opinion_counts(), [20, 10, 5])
        assert counts.opinionated_count() == 35
        assert counts.opinionated_fraction() == pytest.approx(0.7)
        back = counts.to_population_state(rng)
        assert np.array_equal(back.opinion_counts(), [20, 10, 5])

    def test_derived_quantities_match_population_state(self, rng):
        state = PopulationState.from_counts(
            40, {1: 18, 2: 12, 3: 4}, 3, rng
        )
        counts = CountsState.from_state(state)
        for opinion in (1, 2, 3):
            assert counts.bias_toward(opinion) == pytest.approx(
                state.bias_toward(opinion)
            )
        assert counts.plurality_opinion() == state.plurality_opinion()
        assert np.allclose(
            counts.opinion_distribution(), state.opinion_distribution()
        )

    def test_single_source_and_consensus(self):
        counts = CountsState.single_source(10, 3, 2)
        assert np.array_equal(counts.counts, [0, 1, 0])
        assert not counts.has_consensus_on(2)
        full = CountsState([0, 10, 0], 10)
        assert full.has_consensus_on(2)
        assert not full.has_consensus_on(1)
        assert not full.has_consensus_on(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CountsState([5, 6], 10)  # sums past num_nodes
        with pytest.raises(ValueError):
            CountsState([-1, 2], 10)
        with pytest.raises(ValueError):
            CountsState([[1, 2]], 10)  # not a vector
        with pytest.raises(ValueError):
            CountsState.single_source(10, 3, 4)

    def test_copy_and_equality(self):
        counts = CountsState([3, 4], 10)
        other = counts.copy()
        assert counts == other
        other.counts[0] += 1
        assert counts != other


class TestEnsembleCountsState:
    def test_round_trip_from_ensemble(self, rng):
        state = PopulationState.from_counts(
            30, {1: 12, 2: 9, 3: 3}, 3, rng
        )
        ensemble = EnsembleState.from_state(state, 5)
        counts = EnsembleCountsState.from_ensemble(ensemble)
        assert counts.num_trials == 5
        assert counts.num_nodes == 30
        assert np.array_equal(counts.counts, ensemble.opinion_counts())
        back = counts.to_ensemble_state(rng)
        assert np.array_equal(back.opinion_counts(), counts.counts)

    def test_derived_quantities_match_ensemble(self, rng):
        opinions = rng.integers(0, 4, size=(6, 40))
        ensemble = EnsembleState(opinions, 3)
        counts = EnsembleCountsState.from_ensemble(ensemble)
        assert np.array_equal(
            counts.opinionated_counts(), ensemble.opinionated_counts()
        )
        assert np.allclose(
            counts.opinionated_fractions(), ensemble.opinionated_fractions()
        )
        assert np.allclose(
            counts.opinion_distributions(), ensemble.opinion_distributions()
        )
        for opinion in (1, 2, 3):
            assert np.allclose(
                counts.bias_toward(opinion), ensemble.bias_toward(opinion)
            )
            assert np.array_equal(
                counts.consensus_mask(opinion),
                ensemble.consensus_mask(opinion),
            )
            assert np.allclose(
                counts.correct_fractions(opinion),
                ensemble.correct_fractions(opinion),
            )
        assert np.array_equal(
            counts.plurality_opinions(), ensemble.plurality_opinions()
        )
        assert (
            counts.pooled_plurality_opinion()
            == ensemble.pooled_plurality_opinion()
        )

    def test_undecided_counts(self):
        counts = EnsembleCountsState(np.array([[3, 4], [0, 0]]), 10)
        assert np.array_equal(counts.undecided_counts(), [3, 10])
        assert counts.undecided_counts().dtype == np.int64

    def test_tiling_constructors(self):
        single = CountsState([2, 3], 10)
        tiled = EnsembleCountsState.from_counts_state(single, 4)
        assert tiled.num_trials == 4
        assert np.array_equal(tiled.counts, np.tile([2, 3], (4, 1)))
        state = PopulationState.from_counts(10, {1: 2, 2: 3}, 2, shuffle=False)
        assert EnsembleCountsState.from_state(state, 4) == tiled

    def test_trial_state(self):
        counts = EnsembleCountsState(np.array([[3, 4], [1, 0]]), 10)
        trial = counts.trial_state(1)
        assert isinstance(trial, CountsState)
        assert np.array_equal(trial.counts, [1, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            EnsembleCountsState(np.array([[6, 6]]), 10)
        with pytest.raises(ValueError):
            EnsembleCountsState(np.array([[-1, 2]]), 10)
        with pytest.raises(ValueError):
            EnsembleCountsState(np.array([1, 2]), 10)
        with pytest.raises(ValueError):
            EnsembleCountsState(np.zeros((0, 2), dtype=np.int64), 10)
        with pytest.raises(ValueError):
            EnsembleCountsState(np.array([[1, 2]]), 10).bias_toward(3)


class TestInt64DtypeSafety:
    """Regression: count hot paths stay int64 end-to-end so populations
    beyond ``2**31`` nodes cannot silently overflow where the platform
    default int is 32-bit."""

    #: A mocked huge-population count matrix: one trial holds > 2**31
    #: supporters of a single opinion, another splits > 2**32 across two.
    HUGE = np.array(
        [
            [2**31 + 7, 2**30, 0],
            [2**32, 2**31, 2**31],
        ],
        dtype=np.int64,
    )
    HUGE_NODES = 2**34

    def test_ensemble_counts_state_accepts_huge_counts(self):
        counts = EnsembleCountsState(self.HUGE, self.HUGE_NODES)
        assert counts.counts.dtype == np.int64
        totals = counts.opinionated_counts()
        assert totals.dtype == np.int64
        assert int(totals[1]) == 2**32 + 2**31 + 2**31
        undecided = counts.undecided_counts()
        assert undecided.dtype == np.int64
        assert int(undecided[0]) == self.HUGE_NODES - (2**31 + 7 + 2**30)
        assert counts.plurality_opinions().tolist() == [1, 1]
        # Bias arithmetic happens in float but from exact int64 counts.
        assert counts.bias_toward(1)[0] == pytest.approx(
            ((2**31 + 7) - 2**30) / self.HUGE_NODES
        )

    def test_counts_state_consensus_at_huge_n(self):
        full = CountsState([0, 2**33], 2**33)
        assert full.has_consensus_on(2)
        assert full.opinionated_count() == 2**33

    def test_group_sizes_and_pmf_are_exact_at_huge_n(self):
        from repro.network.pull_model import CountsPullModel
        from repro.noise.families import identity_matrix

        pull = CountsPullModel(self.HUGE_NODES, identity_matrix(3))
        sizes = pull.group_sizes(self.HUGE)
        assert sizes.dtype == np.int64
        assert int(sizes.sum(axis=1)[0]) == self.HUGE_NODES
        pmf = pull.observation_probabilities(self.HUGE)
        assert np.all(pmf >= 0) and np.allclose(pmf.sum(axis=1), 1.0)

    def test_opinion_counts_matrix_returns_int64(self):
        opinions = np.array([[0, 1, 2, 2], [1, 1, 1, 0]])
        counts = opinion_counts_matrix(opinions, 2)
        assert counts.dtype == np.int64

    def test_population_opinion_counts_returns_int64(self):
        state = PopulationState([0, 1, 2, 2], 2)
        assert state.opinion_counts().dtype == np.int64

    def test_ensemble_opinion_counts_returns_int64(self):
        ensemble = EnsembleState(np.array([[0, 1, 2, 2]]), 2)
        assert ensemble.opinion_counts().dtype == np.int64
