"""Tests for repro.core.state.PopulationState."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import PopulationState


class TestConstruction:
    def test_valid_state(self):
        state = PopulationState([0, 1, 2, 2], num_opinions=3)
        assert state.num_nodes == 4
        assert state.num_opinions == 3

    def test_rejects_out_of_range_opinion(self):
        with pytest.raises(ValueError):
            PopulationState([0, 4], num_opinions=3)

    def test_rejects_negative_opinion(self):
        with pytest.raises(ValueError):
            PopulationState([-1, 1], num_opinions=3)

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            PopulationState([], num_opinions=2)

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            PopulationState([[1, 2]], num_opinions=2)

    def test_input_is_copied(self):
        opinions = np.array([1, 2])
        state = PopulationState(opinions, num_opinions=2)
        opinions[0] = 2
        assert state.opinions[0] == 1


class TestConstructors:
    def test_all_undecided(self):
        state = PopulationState.all_undecided(10, 3)
        assert state.opinionated_count() == 0
        assert state.num_nodes == 10

    def test_single_source(self):
        state = PopulationState.single_source(10, 3, source_opinion=2, source_node=4)
        assert state.opinionated_count() == 1
        assert state.opinions[4] == 2

    def test_single_source_validation(self):
        with pytest.raises(ValueError):
            PopulationState.single_source(10, 3, source_opinion=4)
        with pytest.raises(ValueError):
            PopulationState.single_source(10, 3, source_opinion=1, source_node=10)

    def test_from_counts(self):
        state = PopulationState.from_counts(
            10, {1: 4, 3: 2}, num_opinions=3, random_state=0
        )
        counts = state.opinion_counts()
        assert counts.tolist() == [4, 0, 2]
        assert state.opinionated_count() == 6

    def test_from_counts_overflow_rejected(self):
        with pytest.raises(ValueError):
            PopulationState.from_counts(5, {1: 4, 2: 3}, num_opinions=2)

    def test_from_counts_invalid_opinion(self):
        with pytest.raises(ValueError):
            PopulationState.from_counts(5, {4: 1}, num_opinions=3)

    def test_from_counts_shuffle_randomizes_positions(self):
        unshuffled = PopulationState.from_counts(
            20, {1: 10, 2: 10}, 2, shuffle=False
        )
        shuffled = PopulationState.from_counts(
            20, {1: 10, 2: 10}, 2, random_state=1, shuffle=True
        )
        assert unshuffled.opinion_counts().tolist() == shuffled.opinion_counts().tolist()
        assert not np.array_equal(unshuffled.opinions, shuffled.opinions)

    def test_from_fractions(self):
        state = PopulationState.from_fractions(100, [0.5, 0.3, 0.1], random_state=0)
        counts = state.opinion_counts()
        assert counts.tolist() == [50, 30, 10]
        assert state.opinionated_fraction() == pytest.approx(0.9)

    def test_from_fractions_rounding_preserves_plurality(self):
        state = PopulationState.from_fractions(7, [0.52, 0.48], random_state=0)
        counts = state.opinion_counts()
        assert counts[0] > counts[1]
        assert counts.sum() == 7

    def test_from_fractions_validation(self):
        with pytest.raises(ValueError):
            PopulationState.from_fractions(10, [0.7, 0.6])
        with pytest.raises(ValueError):
            PopulationState.from_fractions(10, [-0.1, 0.5])


class TestDerivedQuantities:
    def test_opinion_distribution_sums_to_opinionated_fraction(self):
        state = PopulationState([0, 0, 1, 2, 2], num_opinions=3)
        distribution = state.opinion_distribution()
        assert distribution.sum() == pytest.approx(state.opinionated_fraction())
        assert distribution.tolist() == [0.2, 0.4, 0.0]

    def test_conditional_distribution(self):
        state = PopulationState([0, 0, 1, 2, 2], num_opinions=3)
        conditional = state.conditional_distribution()
        assert conditional.sum() == pytest.approx(1.0)
        assert conditional.tolist() == pytest.approx([1 / 3, 2 / 3, 0.0])

    def test_conditional_distribution_empty(self):
        state = PopulationState.all_undecided(5, 2)
        assert state.conditional_distribution().tolist() == [0.0, 0.0]

    def test_bias_toward(self):
        state = PopulationState([1, 1, 1, 2, 3], num_opinions=3)
        assert state.bias_toward(1) == pytest.approx(0.6 - 0.2)
        assert state.bias_toward(2) == pytest.approx(0.2 - 0.6)

    def test_bias_toward_invalid_opinion(self):
        state = PopulationState([1], num_opinions=2)
        with pytest.raises(ValueError):
            state.bias_toward(3)

    def test_bias_single_opinion_space(self):
        state = PopulationState([1, 1, 0], num_opinions=1)
        assert state.bias_toward(1) == pytest.approx(2 / 3)

    def test_plurality_opinion(self):
        state = PopulationState([1, 2, 2, 3], num_opinions=3)
        assert state.plurality_opinion() == 2

    def test_plurality_of_undecided_population_is_zero(self):
        assert PopulationState.all_undecided(4, 3).plurality_opinion() == 0

    def test_plurality_tie_smallest_label(self):
        state = PopulationState([1, 2], num_opinions=2)
        assert state.plurality_opinion() == 1

    def test_has_consensus(self):
        assert PopulationState([2, 2, 2], num_opinions=3).has_consensus_on(2)
        assert not PopulationState([2, 2, 1], num_opinions=3).has_consensus_on(2)
        assert not PopulationState([2, 2, 0], num_opinions=3).has_consensus_on(2)

    def test_is_delta_biased(self):
        state = PopulationState([1, 1, 1, 2], num_opinions=2)
        assert state.is_delta_biased(1, 0.5)
        assert not state.is_delta_biased(1, 0.6)

    def test_summary_keys(self):
        summary = PopulationState([1, 2, 2], num_opinions=2).summary()
        assert summary["plurality_opinion"] == 2
        assert summary["opinionated_fraction"] == pytest.approx(1.0)

    def test_copy_is_independent(self):
        state = PopulationState([1, 2], num_opinions=2)
        clone = state.copy()
        clone.opinions[0] = 2
        assert state.opinions[0] == 1

    def test_equality(self):
        a = PopulationState([1, 2], num_opinions=2)
        b = PopulationState([1, 2], num_opinions=2)
        c = PopulationState([2, 1], num_opinions=2)
        assert a == b
        assert a != c

    def test_opinionated_mask(self):
        state = PopulationState([0, 1, 0, 3], num_opinions=3)
        assert state.opinionated_mask().tolist() == [False, True, False, True]


class TestStateProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=60)
    )
    @settings(max_examples=80, deadline=None)
    def test_counts_and_fractions_consistent(self, opinions):
        state = PopulationState(opinions, num_opinions=4)
        counts = state.opinion_counts()
        assert counts.sum() == state.opinionated_count()
        assert state.opinion_distribution().sum() == pytest.approx(
            state.opinionated_fraction()
        )

    @given(
        st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=60)
    )
    @settings(max_examples=80, deadline=None)
    def test_plurality_has_non_negative_bias(self, opinions):
        state = PopulationState(opinions, num_opinions=4)
        plurality = state.plurality_opinion()
        assert state.bias_toward(plurality) >= 0
