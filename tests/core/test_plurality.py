"""Tests for repro.core.plurality (Theorem 2 wrapper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plurality import PluralityConsensus, PluralityInstance
from repro.noise.families import uniform_noise_matrix


class TestPluralityInstance:
    def test_basic_properties(self):
        instance = PluralityInstance(100, 3, {1: 30, 2: 20, 3: 10})
        assert instance.support_size == 60
        assert instance.plurality_opinion() == 1
        assert instance.plurality_bias_within_support() == pytest.approx(10 / 60)
        assert instance.plurality_bias_global() == pytest.approx(10 / 100)

    def test_tie_resolution_smallest_label(self):
        instance = PluralityInstance(100, 3, {2: 20, 3: 20})
        assert instance.plurality_opinion() == 2

    def test_single_opinion_instance(self):
        instance = PluralityInstance(10, 2, {2: 4})
        assert instance.plurality_bias_within_support() == pytest.approx(1.0)

    def test_validation_overflow(self):
        with pytest.raises(ValueError):
            PluralityInstance(10, 2, {1: 8, 2: 5})

    def test_validation_empty_support(self):
        with pytest.raises(ValueError):
            PluralityInstance(10, 2, {})

    def test_validation_bad_opinion(self):
        with pytest.raises(ValueError):
            PluralityInstance(10, 2, {3: 1})

    def test_initial_state_realizes_counts(self):
        instance = PluralityInstance(50, 3, {1: 20, 3: 10})
        state = instance.initial_state(random_state=0)
        assert state.opinion_counts().tolist() == [20, 0, 10]

    def test_from_support_fractions(self):
        instance = PluralityInstance.from_support_fractions(
            1000, 200, [0.5, 0.3, 0.2]
        )
        assert instance.support_size == 200
        assert instance.opinion_counts[1] == 100
        assert instance.plurality_opinion() == 1

    def test_from_support_fractions_preserves_plurality_under_rounding(self):
        instance = PluralityInstance.from_support_fractions(
            100, 7, [0.4, 0.35, 0.25]
        )
        counts = instance.opinion_counts
        assert counts[1] >= max(counts.get(2, 0), counts.get(3, 0)) + 1

    def test_from_support_fractions_validation(self):
        with pytest.raises(ValueError):
            PluralityInstance.from_support_fractions(100, 200, [0.5, 0.5])
        with pytest.raises(ValueError):
            PluralityInstance.from_support_fractions(100, 50, [0.5, 0.4])


class TestPluralityConsensus:
    def test_opinion_count_mismatch_rejected(self):
        instance = PluralityInstance(100, 3, {1: 10, 2: 5})
        with pytest.raises(ValueError):
            PluralityConsensus(instance, uniform_noise_matrix(4, 0.3), 0.3)

    def test_full_support_instance_succeeds(self):
        instance = PluralityInstance.from_support_fractions(
            800, 800, [0.45, 0.35, 0.20]
        )
        solver = PluralityConsensus(
            instance, uniform_noise_matrix(3, 0.3), 0.3, random_state=0
        )
        result = solver.run()
        assert result.success
        assert result.final_state.has_consensus_on(1)

    def test_partial_support_instance_succeeds(self):
        # 20% of nodes opinionated with a strong plurality bias: Stage 1
        # spreads, Stage 2 amplifies.
        instance = PluralityInstance.from_support_fractions(
            1000, 200, [0.6, 0.25, 0.15]
        )
        solver = PluralityConsensus(
            instance, uniform_noise_matrix(3, 0.3), 0.3, random_state=1
        )
        result = solver.run()
        assert result.success

    def test_plurality_not_absolute_majority(self):
        # The plurality opinion holds under 50% of the support yet still wins.
        instance = PluralityInstance.from_support_fractions(
            900, 900, [0.40, 0.32, 0.28]
        )
        solver = PluralityConsensus(
            instance, uniform_noise_matrix(3, 0.3), 0.3, random_state=2
        )
        result = solver.run()
        assert result.success
        assert result.target_opinion == 1

    def test_runs_are_statistically_independent_realizations(self):
        instance = PluralityInstance.from_support_fractions(
            400, 100, [0.6, 0.4]
        )
        solver = PluralityConsensus(
            instance, uniform_noise_matrix(2, 0.3), 0.3, random_state=3
        )
        first = solver.run()
        second = solver.run()
        assert first.success and second.success
