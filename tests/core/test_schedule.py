"""Tests for repro.core.schedule."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import (
    ProtocolSchedule,
    Stage1Schedule,
    Stage2Schedule,
    theoretical_round_complexity,
)


class TestTheoreticalRoundComplexity:
    def test_monotone_in_n(self):
        assert theoretical_round_complexity(
            2000, 0.2
        ) > theoretical_round_complexity(1000, 0.2)

    def test_scales_inverse_square_epsilon(self):
        assert theoretical_round_complexity(1000, 0.1) == pytest.approx(
            4 * theoretical_round_complexity(1000, 0.2)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            theoretical_round_complexity(0, 0.2)
        with pytest.raises(ValueError):
            theoretical_round_complexity(100, 0.0)


class TestStage1Schedule:
    def test_structure_has_at_least_two_phases(self):
        schedule = Stage1Schedule.for_population(1000, 0.3)
        assert schedule.num_phases >= 2
        assert schedule.num_growth_phases == schedule.num_phases - 2

    def test_phase_zero_and_final_scale_with_log_n(self):
        small = Stage1Schedule.for_population(1000, 0.3)
        large = Stage1Schedule.for_population(100_000, 0.3)
        assert large.phase_lengths[0] > small.phase_lengths[0]
        assert large.phase_lengths[-1] > small.phase_lengths[-1]

    def test_rounds_scale_with_inverse_epsilon_squared(self):
        low_noise = Stage1Schedule.for_population(4000, 0.4)
        high_noise = Stage1Schedule.for_population(4000, 0.1)
        assert high_noise.total_rounds > low_noise.total_rounds * 4

    def test_total_rounds_within_big_o_of_theory(self):
        for n in (500, 5000, 50_000):
            for eps in (0.1, 0.2, 0.4):
                schedule = Stage1Schedule.for_population(n, eps)
                clock = theoretical_round_complexity(n, eps)
                assert schedule.total_rounds <= 40 * clock

    def test_constants_must_be_ordered(self):
        with pytest.raises(ValueError):
            Stage1Schedule.for_population(1000, 0.3, s=2.0, beta=1.0, phi=3.0)

    def test_large_initial_support_removes_growth_phases(self):
        schedule = Stage1Schedule.for_population(
            1000, 0.3, initial_opinionated=1000
        )
        assert schedule.num_growth_phases == 0

    def test_initial_support_cannot_exceed_population(self):
        with pytest.raises(ValueError):
            Stage1Schedule.for_population(100, 0.3, initial_opinionated=200)

    def test_round_scale_shrinks_phases(self):
        base = Stage1Schedule.for_population(2000, 0.3)
        scaled = Stage1Schedule.for_population(2000, 0.3, round_scale=0.5)
        assert scaled.total_rounds < base.total_rounds

    def test_all_phases_have_at_least_one_round(self):
        schedule = Stage1Schedule.for_population(10, 0.45)
        assert all(length >= 1 for length in schedule.phase_lengths)


class TestStage2Schedule:
    def test_sample_sizes_and_lengths_aligned(self):
        schedule = Stage2Schedule.for_population(2000, 0.3)
        assert len(schedule.sample_sizes) == len(schedule.phase_lengths)
        for length, sample in zip(schedule.phase_lengths, schedule.sample_sizes):
            assert length == 2 * sample

    def test_sample_sizes_are_odd_by_default(self):
        schedule = Stage2Schedule.for_population(3000, 0.25)
        assert all(sample % 2 == 1 for sample in schedule.sample_sizes)

    def test_even_samples_allowed_when_requested(self):
        schedule = Stage2Schedule.for_population(
            3000, 0.25, odd_sample_size=False
        )
        # At least the construction runs; parity is unconstrained.
        assert schedule.num_phases >= 2

    def test_final_phase_is_longest(self):
        schedule = Stage2Schedule.for_population(5000, 0.3)
        assert schedule.sample_sizes[-1] == max(schedule.sample_sizes)

    def test_number_of_phases_grows_with_n(self):
        small = Stage2Schedule.for_population(100, 0.3)
        large = Stage2Schedule.for_population(1_000_000, 0.3)
        assert large.num_phases > small.num_phases

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Stage2Schedule(phase_lengths=[4, 4], sample_sizes=[2], epsilon=0.3)

    def test_sample_size_scales_with_inverse_epsilon_squared(self):
        coarse = Stage2Schedule.for_population(2000, 0.4)
        fine = Stage2Schedule.for_population(2000, 0.1)
        assert fine.sample_sizes[0] > coarse.sample_sizes[0] * 8


class TestProtocolSchedule:
    def test_total_rounds_is_sum_of_stages(self):
        schedule = ProtocolSchedule.for_population(2000, 0.3)
        assert schedule.total_rounds == (
            schedule.stage1.total_rounds + schedule.stage2.total_rounds
        )

    def test_custom_constants_forwarded(self):
        schedule = ProtocolSchedule.for_population(
            2000, 0.3, stage1_constants=(1.0, 2.0, 4.0), stage2_constants=(2.0, 0.5)
        )
        assert schedule.stage1.constants == (1.0, 2.0, 4.0)

    def test_total_rounds_order_of_magnitude(self):
        # The whole protocol stays within a constant factor of log(n)/eps^2.
        for n in (1000, 10_000):
            for eps in (0.15, 0.3):
                schedule = ProtocolSchedule.for_population(n, eps)
                clock = theoretical_round_complexity(n, eps)
                assert clock < schedule.total_rounds < 60 * clock


class TestScheduleProperties:
    @given(
        st.integers(min_value=10, max_value=200_000),
        st.floats(min_value=0.05, max_value=0.45),
    )
    @settings(max_examples=60, deadline=None)
    def test_schedules_are_well_formed(self, num_nodes, epsilon):
        schedule = ProtocolSchedule.for_population(num_nodes, epsilon)
        assert all(length >= 1 for length in schedule.stage1.phase_lengths)
        assert all(length >= 2 for length in schedule.stage2.phase_lengths)
        assert all(sample >= 1 for sample in schedule.stage2.sample_sizes)

    @given(
        st.integers(min_value=100, max_value=50_000),
        st.floats(min_value=0.05, max_value=0.45),
        st.floats(min_value=0.05, max_value=0.45),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_noise_never_shortens_stage1(self, num_nodes, eps_a, eps_b):
        low, high = sorted((eps_a, eps_b))
        noisy = Stage1Schedule.for_population(num_nodes, low)
        clean = Stage1Schedule.for_population(num_nodes, high)
        assert noisy.total_rounds >= clean.total_rounds
