"""Fixture-driven tests: every reprolint rule catches its violating
fixture at the exact location and stays silent on the conforming one."""

from pathlib import Path
from typing import List, Tuple

import pytest

from repro.analysis.lint import Finding, run_lint

FIXTURES = Path(__file__).parent / "lint_fixtures"


def lint(*names: str) -> List[Finding]:
    findings, files_scanned = run_lint([str(FIXTURES / name) for name in names])
    assert files_scanned >= len(names)
    return findings


def locations(findings: List[Finding]) -> List[Tuple[str, int]]:
    return [(finding.rule, finding.line) for finding in findings]


# --------------------------------------------------------------------- #
# One violating + one conforming fixture per rule
# --------------------------------------------------------------------- #

RULE_CASES = [
    pytest.param(
        "bad_rng.py",
        "good_rng.py",
        [("no-global-rng", 3), ("no-global-rng", 9), ("no-global-rng", 10)],
        id="no-global-rng",
    ),
    pytest.param(
        "bad_counts_tier.py",
        "good_counts_tier.py",
        [("counts-tier-n-free", 8)],
        id="counts-tier-n-free",
    ),
    pytest.param(
        "bad_dtype.py",
        "good_dtype.py",
        [("int64-dtype-pin", 7), ("int64-dtype-pin", 12)],
        id="int64-dtype-pin",
    ),
    pytest.param(
        "bad_wallclock.py",
        "benchmarks/good_wallclock.py",
        [
            ("no-wallclock-nondeterminism", 8),
            ("no-wallclock-nondeterminism", 9),
        ],
        id="no-wallclock-nondeterminism",
    ),
    pytest.param(
        "bad_serialization.py",
        "good_serialization.py",
        [("serialization-contract", 10), ("serialization-contract", 27)],
        id="serialization-contract",
    ),
    pytest.param(
        "bad_deprecation.py",
        "good_deprecation.py",
        [("deprecation-shim-hygiene", 4)],
        id="deprecation-shim-hygiene",
    ),
]


@pytest.mark.parametrize("bad_name, good_name, expected", RULE_CASES)
def test_rule_catches_violating_fixture(bad_name, good_name, expected):
    findings = lint(bad_name)
    assert locations(findings) == expected
    for finding in findings:
        assert finding.file.endswith(bad_name)
        assert finding.message


@pytest.mark.parametrize("bad_name, good_name, expected", RULE_CASES)
def test_rule_passes_conforming_fixture(bad_name, good_name, expected):
    assert lint(good_name) == []


# --------------------------------------------------------------------- #
# The cross-file rule needs its package fixture directories
# --------------------------------------------------------------------- #

def test_registry_rule_catches_missing_import():
    findings, _ = run_lint([str(FIXTURES / "registry_bad")])
    assert locations(findings) == [("experiment-registry-completeness", 1)]
    (finding,) = findings
    assert finding.file.endswith("registry_bad/experiments/__init__.py")
    assert "exp_missing" in finding.message


def test_registry_rule_passes_complete_package():
    findings, _ = run_lint([str(FIXTURES / "registry_good")])
    assert findings == []


def test_registry_rule_scopes_packages_independently():
    # Linting both packages in one run must only flag the bad one.
    findings, _ = run_lint(
        [str(FIXTURES / "registry_bad"), str(FIXTURES / "registry_good")]
    )
    assert [finding.file for finding in findings] == [
        str(FIXTURES / "registry_bad" / "experiments" / "__init__.py")
    ]


# --------------------------------------------------------------------- #
# Suppressions are honored, line-scoped
# --------------------------------------------------------------------- #

def test_suppression_silences_only_its_line():
    findings = lint("suppressed.py")
    assert locations(findings) == [("int64-dtype-pin", 13)]


def test_select_restricts_to_named_rules():
    findings, _ = run_lint(
        [str(FIXTURES / "bad_rng.py"), str(FIXTURES / "bad_dtype.py")],
        select=["no-global-rng"],
    )
    assert {finding.rule for finding in findings} == {"no-global-rng"}


# --------------------------------------------------------------------- #
# Whole-tree sweep: the fixture set is the rule-by-rule ground truth
# --------------------------------------------------------------------- #

def test_fixture_tree_totals():
    findings, _ = run_lint([str(FIXTURES)])
    by_rule: dict = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    assert by_rule == {
        "no-global-rng": 3,
        "counts-tier-n-free": 1,
        "int64-dtype-pin": 3,  # bad_dtype (2) + suppressed.py line 13
        "no-wallclock-nondeterminism": 2,
        "serialization-contract": 2,
        "deprecation-shim-hygiene": 1,
        "experiment-registry-completeness": 1,
    }
