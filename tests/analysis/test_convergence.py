"""Tests for repro.analysis.convergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.convergence import (
    estimate_success_probability,
    fit_round_complexity,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(8, 10)
        assert low <= 0.8 <= high

    def test_clamped_to_unit_interval(self):
        low, high = wilson_interval(0, 5)
        assert low == 0.0
        low, high = wilson_interval(5, 5)
        assert high == 1.0

    def test_narrower_with_more_trials(self):
        low_small, high_small = wilson_interval(8, 10)
        low_large, high_large = wilson_interval(800, 1000)
        assert (high_large - low_large) < (high_small - low_small)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_coverage_simulation(self):
        # The 95% interval should cover the true probability in the vast
        # majority of repeated experiments.
        rng = np.random.default_rng(0)
        true_p, trials = 0.7, 40
        covered = 0
        repetitions = 400
        for _ in range(repetitions):
            successes = rng.binomial(trials, true_p)
            low, high = wilson_interval(successes, trials)
            covered += int(low <= true_p <= high)
        assert covered / repetitions > 0.9


class TestEstimateSuccessProbability:
    def test_point_estimate(self):
        rate, (low, high) = estimate_success_probability([True, True, False, True])
        assert rate == pytest.approx(0.75)
        assert low < rate < high

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_success_probability([])


class TestFitRoundComplexity:
    def test_perfect_fit_recovered(self):
        nodes = [1000, 2000, 4000, 8000]
        epsilons = [0.2, 0.2, 0.3, 0.3]
        constant = 5.0
        rounds = [constant * np.log2(n) / e**2 for n, e in zip(nodes, epsilons)]
        fit = fit_round_complexity(nodes, epsilons, rounds)
        assert fit.constant == pytest.approx(constant)
        assert fit.relative_residual == pytest.approx(0.0, abs=1e-12)

    def test_noisy_fit_has_small_residual(self):
        rng = np.random.default_rng(0)
        nodes = [500, 1000, 2000, 4000, 8000, 16000]
        epsilons = [0.15, 0.2, 0.25, 0.3, 0.35, 0.4]
        rounds = [
            3.0 * np.log2(n) / e**2 * rng.uniform(0.9, 1.1)
            for n, e in zip(nodes, epsilons)
        ]
        fit = fit_round_complexity(nodes, epsilons, rounds)
        assert fit.constant == pytest.approx(3.0, rel=0.15)
        assert fit.relative_residual < 0.15

    def test_predictions_shape(self):
        fit = fit_round_complexity([1000, 2000], [0.2, 0.2], [100.0, 110.0])
        assert fit.predictions.shape == (2,)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_round_complexity([1000], [0.2, 0.3], [100.0, 120.0])
        with pytest.raises(ValueError):
            fit_round_complexity([], [], [])
        with pytest.raises(ValueError):
            fit_round_complexity([1000], [0.0], [100.0])
        with pytest.raises(ValueError):
            fit_round_complexity([1], [0.2], [100.0])
