"""Tests for repro.analysis.concentration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.concentration import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    hoeffding_bound,
    three_point_chernoff_bound,
)


class TestChernoffBounds:
    def test_upper_tail_decreasing_in_deviation(self):
        assert chernoff_upper_tail(100, 0.5) < chernoff_upper_tail(100, 0.1)

    def test_upper_tail_decreasing_in_mean(self):
        assert chernoff_upper_tail(1000, 0.2) < chernoff_upper_tail(100, 0.2)

    def test_lower_tail_tighter_than_upper(self):
        # exp(-d^2 mu / 2) <= exp(-d^2 mu / 3).
        assert chernoff_lower_tail(100, 0.2) <= chernoff_upper_tail(100, 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(-1, 0.1)
        with pytest.raises(ValueError):
            chernoff_upper_tail(10, 0.0)
        with pytest.raises(ValueError):
            chernoff_lower_tail(10, 1.5)

    def test_upper_tail_is_a_valid_bound_empirically(self, rng):
        # Binomial(n, p) with mean mu: the empirical tail beyond (1+d)mu must
        # not exceed the bound (allowing simulation noise).
        n, p, deviation = 400, 0.3, 0.3
        mean = n * p
        samples = rng.binomial(n, p, size=20_000)
        empirical = float(np.mean(samples >= (1 + deviation) * mean))
        assert empirical <= chernoff_upper_tail(mean, deviation) + 0.01

    def test_lower_tail_is_a_valid_bound_empirically(self, rng):
        n, p, deviation = 400, 0.3, 0.3
        mean = n * p
        samples = rng.binomial(n, p, size=20_000)
        empirical = float(np.mean(samples <= (1 - deviation) * mean))
        assert empirical <= chernoff_lower_tail(mean, deviation) + 0.01


class TestHoeffding:
    def test_decreasing_in_samples_and_deviation(self):
        assert hoeffding_bound(1000, 0.1) < hoeffding_bound(100, 0.1)
        assert hoeffding_bound(100, 0.2) < hoeffding_bound(100, 0.1)

    def test_capped_at_one(self):
        assert hoeffding_bound(1, 0.01) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hoeffding_bound(0, 0.1)
        with pytest.raises(ValueError):
            hoeffding_bound(10, 0.0)

    def test_empirically_valid(self, rng):
        n, deviation = 200, 0.1
        samples = rng.random((20_000, n)).mean(axis=1)
        empirical = float(np.mean(np.abs(samples - 0.5) >= deviation))
        assert empirical <= hoeffding_bound(n, deviation) + 0.01


class TestThreePointChernoff:
    def test_bound_shrinks_with_n(self):
        _, bound_small = three_point_chernoff_bound(100, 0.5, 0.2, 0.3, 0.2)
        _, bound_large = three_point_chernoff_bound(10_000, 0.5, 0.2, 0.3, 0.2)
        assert bound_large < bound_small

    def test_bound_capped_at_one(self):
        _, bound = three_point_chernoff_bound(1, 0.4, 0.2, 0.4, 0.01)
        assert bound <= 1.0

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            three_point_chernoff_bound(10, 0.5, 0.5, 0.5, 0.2)

    def test_theta_range(self):
        with pytest.raises(ValueError):
            three_point_chernoff_bound(10, 0.5, 0.3, 0.2, 0.0)
        with pytest.raises(ValueError):
            three_point_chernoff_bound(10, 0.5, 0.3, 0.2, 1.0)

    def test_lemma16_bound_holds_empirically(self, rng):
        # Simulate sums of {-1, 0, +1} variables and check the deviation
        # probability never exceeds the Lemma 16 bound.
        num_variables, p_plus, p_zero, p_minus = 300, 0.5, 0.3, 0.2
        theta = 0.2
        threshold, bound = three_point_chernoff_bound(
            num_variables, p_plus, p_zero, p_minus, theta
        )
        values = rng.choice(
            [1, 0, -1], size=(20_000, num_variables), p=[p_plus, p_zero, p_minus]
        )
        sums = values.sum(axis=1)
        empirical = float(np.mean(sums <= threshold))
        assert empirical <= bound + 0.01

    def test_threshold_formula(self):
        num_variables, p_plus, p_zero, p_minus, theta = 50, 0.6, 0.2, 0.2, 0.25
        threshold, _ = three_point_chernoff_bound(
            num_variables, p_plus, p_zero, p_minus, theta
        )
        expected_sum = num_variables * (p_plus - p_minus)
        assert threshold == pytest.approx(
            (1 - theta) * expected_sum - theta * num_variables
        )
