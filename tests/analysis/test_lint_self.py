"""Self-hosting gate: the shipped tree passes its own linter.

This is the tier-1 teeth of the static-analysis subsystem: deleting a
``dtype=np.int64`` pin, adding ``np.zeros(num_nodes)`` to counts-tier
code, or forgetting a ``from_dict`` fails this test (and the reprolint
CI job) without running a single simulation.
"""

from pathlib import Path

import pytest

import repro
from repro.analysis.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The trees reprolint gates in CI.  ``src/`` is located through the
#: installed package so the test also works from an installed checkout.
SRC_TREE = Path(repro.__file__).resolve().parent


def _lint_paths():
    paths = [str(SRC_TREE)]
    for extra in ("examples", "benchmarks"):
        tree = REPO_ROOT / extra
        if tree.is_dir():
            paths.append(str(tree))
    return paths


def test_shipped_tree_has_zero_findings():
    findings, files_scanned = run_lint(_lint_paths())
    assert files_scanned > 0
    assert findings == [], "\n" + "\n".join(
        finding.format_text() for finding in findings
    )


def test_every_rule_exercised_by_fixtures():
    """Every registered rule has at least one violating fixture — a rule
    nothing can trigger is dead weight (or silently broken)."""
    from repro.analysis.lint import rule_ids

    fixtures = Path(__file__).parent / "lint_fixtures"
    findings, _ = run_lint([str(fixtures)])
    triggered = {finding.rule for finding in findings}
    assert triggered == set(rule_ids())


@pytest.mark.parametrize("rule_id", ["no-global-rng", "int64-dtype-pin"])
def test_self_lint_per_rule_select(rule_id):
    """--select'ed runs over src/ are clean too (CI uses the full run;
    this pins the select path against regressions)."""
    findings, _ = run_lint([str(SRC_TREE)], select=[rule_id])
    assert findings == []
