"""Reporter contracts: text line format and the JSON schema."""

import json
from pathlib import Path

from repro.analysis.lint import (
    Finding,
    render_json,
    render_text,
    rule_ids,
    run_lint,
)
from repro.analysis.lint.reporters import JSON_SCHEMA_VERSION

FIXTURES = Path(__file__).parent / "lint_fixtures"


def test_finding_round_trips_through_dict():
    finding = Finding(
        file="src/x.py", line=3, column=7, rule="no-global-rng", message="m"
    )
    assert Finding.from_dict(finding.to_dict()) == finding


def test_text_line_format_is_clickable():
    finding = Finding(
        file="src/x.py", line=3, column=7, rule="no-global-rng", message="msg"
    )
    assert finding.format_text() == "src/x.py:3:7: no-global-rng msg"


def test_text_report_ends_with_summary():
    findings, files_scanned = run_lint([str(FIXTURES / "bad_rng.py")])
    report = render_text(findings, files_scanned)
    lines = report.splitlines()
    assert len(lines) == len(findings) + 1
    assert lines[-1] == f"reprolint: {len(findings)} findings in 1 files"


def test_json_schema():
    findings, files_scanned = run_lint([str(FIXTURES / "bad_rng.py")])
    document = json.loads(render_json(findings, files_scanned))

    assert set(document) == {"version", "files_scanned", "rules", "findings"}
    assert document["version"] == JSON_SCHEMA_VERSION
    assert document["files_scanned"] == files_scanned

    assert [rule["id"] for rule in document["rules"]] == rule_ids()
    assert all(rule["description"] for rule in document["rules"])

    assert len(document["findings"]) == len(findings)
    for entry, finding in zip(document["findings"], findings):
        assert set(entry) == {"file", "line", "column", "rule", "message"}
        assert entry == finding.to_dict()
        assert Finding.from_dict(entry) == finding


def test_json_report_is_deterministically_sorted():
    findings, files_scanned = run_lint([str(FIXTURES)])
    assert findings == sorted(findings)
    document = json.loads(render_json(findings, files_scanned))
    keys = [
        (entry["file"], entry["line"], entry["column"], entry["rule"])
        for entry in document["findings"]
    ]
    assert keys == sorted(keys)
