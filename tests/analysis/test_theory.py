"""Tests for repro.analysis.theory (closed-form quantities of the paper)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import (
    binomial_beta_survival,
    central_binomial_bounds,
    g_function,
    paper_central_binomial_bounds,
    stage1_bias_envelope,
    stage1_growth_envelope,
    theoretical_bias_after_stage1,
)


class TestGFunction:
    def test_small_delta_branch(self):
        # delta < 1/sqrt(l): g = delta (1 - delta^2)^((l-1)/2).
        delta, ell = 0.1, 25
        expected = delta * (1 - delta**2) ** 12
        assert g_function(delta, ell) == pytest.approx(expected)

    def test_large_delta_branch(self):
        # delta >= 1/sqrt(l): g = sqrt(1/l) (1 - 1/l)^((l-1)/2).
        delta, ell = 0.5, 25
        expected = (1 / 5) * (1 - 1 / 25) ** 12
        assert g_function(delta, ell) == pytest.approx(expected)

    def test_continuity_at_threshold(self):
        ell = 16
        threshold = 1 / math.sqrt(ell)
        below = g_function(threshold - 1e-9, ell)
        above = g_function(threshold, ell)
        assert below == pytest.approx(above, rel=1e-6)

    def test_zero_delta_gives_zero(self):
        assert g_function(0.0, 9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            g_function(-0.1, 9)
        with pytest.raises(ValueError):
            g_function(1.1, 9)
        with pytest.raises(ValueError):
            g_function(0.1, 0.5)

    # Lemma 15: monotone non-decreasing in delta, non-increasing in l.
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=100, deadline=None)
    def test_lemma15_monotone_in_delta(self, delta_a, delta_b, ell):
        low, high = sorted((delta_a, delta_b))
        assert g_function(low, ell) <= g_function(high, ell) + 1e-12

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=100, deadline=None)
    def test_lemma15_monotone_in_sample_size(self, delta, ell_a, ell_b):
        small, large = sorted((ell_a, ell_b))
        assert g_function(delta, large) <= g_function(delta, small) + 1e-12


class TestCentralBinomialBounds:
    def test_corrected_bounds_bracket_exact_value(self):
        for r in (1, 2, 3, 5, 10, 25, 60):
            lower, exact, upper = central_binomial_bounds(r)
            assert lower <= exact <= upper

    def test_paper_upper_bound_valid_but_lower_is_not(self):
        # Documents the Lemma 13 typo: the printed upper bound holds, the
        # printed lower bound slightly exceeds C(2r, r) for every r.
        for r in (1, 2, 5, 10, 30):
            paper_lower, exact, paper_upper = paper_central_binomial_bounds(r)
            assert exact <= paper_upper
            assert paper_lower > exact

    def test_bounds_tighten_with_r(self):
        lower_small, exact_small, upper_small = central_binomial_bounds(2)
        lower_big, exact_big, upper_big = central_binomial_bounds(50)
        assert (upper_small - lower_small) / exact_small > (
            upper_big - lower_big
        ) / exact_big

    def test_validation(self):
        with pytest.raises(ValueError):
            central_binomial_bounds(0)


class TestBinomialBetaSurvival:
    # Lemma 8: the binomial survival function equals the beta integral.
    @pytest.mark.parametrize("p", [0.1, 0.35, 0.5, 0.8])
    @pytest.mark.parametrize("ell", [3, 7, 12])
    def test_identity_holds(self, p, ell):
        for j in range(ell + 1):
            binomial_sum, beta_integral = binomial_beta_survival(p, j, ell)
            assert binomial_sum == pytest.approx(beta_integral, abs=1e-10)

    def test_j_equals_ell_gives_zero(self):
        binomial_sum, beta_integral = binomial_beta_survival(0.4, 5, 5)
        assert binomial_sum == pytest.approx(0.0)
        assert beta_integral == pytest.approx(0.0)

    def test_j_zero_gives_one_minus_failure_mass(self):
        p, ell = 0.3, 6
        binomial_sum, _ = binomial_beta_survival(p, 0, ell)
        assert binomial_sum == pytest.approx(1 - (1 - p) ** ell)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_beta_survival(0.5, 9, 5)
        with pytest.raises(ValueError):
            binomial_beta_survival(1.5, 1, 5)


class TestStage1Envelopes:
    def test_growth_envelope_increases_with_phase(self):
        lower1, upper1 = stage1_growth_envelope(0.001, 0.3, 2.0, 1)
        lower2, upper2 = stage1_growth_envelope(0.001, 0.3, 2.0, 2)
        assert upper2 > upper1
        assert lower2 > lower1

    def test_growth_envelope_capped_at_one(self):
        lower, upper = stage1_growth_envelope(0.5, 0.3, 2.0, 10)
        assert upper == 1.0
        assert lower <= 1.0

    def test_growth_envelope_phase_zero_is_identity(self):
        lower, upper = stage1_growth_envelope(0.01, 0.3, 2.0, 0)
        assert upper == pytest.approx(0.01)
        assert lower == pytest.approx(0.01 / 8)

    def test_growth_envelope_validation(self):
        with pytest.raises(ValueError):
            stage1_growth_envelope(-0.1, 0.3, 2.0, 1)
        with pytest.raises(ValueError):
            stage1_growth_envelope(0.1, 0.0, 2.0, 1)
        with pytest.raises(ValueError):
            stage1_growth_envelope(0.1, 0.3, 2.0, -1)

    def test_bias_envelope_decays_geometrically(self):
        assert stage1_bias_envelope(0.3, 2) == pytest.approx(0.15**2)
        assert stage1_bias_envelope(0.3, 3) < stage1_bias_envelope(0.3, 2)

    def test_bias_envelope_validation(self):
        with pytest.raises(ValueError):
            stage1_bias_envelope(0.0, 1)
        with pytest.raises(ValueError):
            stage1_bias_envelope(0.3, 0)

    def test_theoretical_bias_after_stage1_decreases_with_n(self):
        assert theoretical_bias_after_stage1(10_000) < theoretical_bias_after_stage1(
            1000
        )

    def test_theoretical_bias_value(self):
        n = 1000
        assert theoretical_bias_after_stage1(n) == pytest.approx(
            math.sqrt(math.log(n) / n)
        )
