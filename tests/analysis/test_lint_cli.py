"""CLI contract: exit codes, --select, --list-rules, report selection."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import rule_ids
from repro.analysis.lint.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"


def test_exit_zero_on_clean_tree(capsys):
    code = main([str(FIXTURES / "good_rng.py")])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 findings in 1 files" in out


def test_exit_one_on_findings(capsys):
    code = main([str(FIXTURES / "bad_rng.py")])
    assert code == 1
    out = capsys.readouterr().out
    assert "no-global-rng" in out
    assert out.strip().endswith("3 findings in 1 files")


def test_exit_two_on_missing_path(capsys):
    code = main([str(FIXTURES / "does_not_exist.py")])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_exit_two_on_unknown_rule(capsys):
    code = main([str(FIXTURES / "good_rng.py"), "--select", "no-such-rule"])
    assert code == 2
    assert "unknown rule ids" in capsys.readouterr().err


def test_exit_two_on_no_paths(capsys):
    assert main([]) == 2


def test_exit_two_on_unparsable_source(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def half(:\n")
    assert main([str(broken)]) == 2
    assert "cannot parse" in capsys.readouterr().err


def test_select_filters_rules(capsys):
    code = main(
        [
            str(FIXTURES / "bad_rng.py"),
            str(FIXTURES / "bad_dtype.py"),
            "--select",
            "int64-dtype-pin",
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "int64-dtype-pin" in out
    assert "no-global-rng" not in out


def test_json_format(capsys):
    code = main([str(FIXTURES / "bad_dtype.py"), "--format", "json"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert [f["rule"] for f in document["findings"]] == [
        "int64-dtype-pin",
        "int64-dtype-pin",
    ]


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out
    # The issue's contract: at least the seven repo-specific rules ship.
    assert len(rule_ids()) >= 7


@pytest.mark.parametrize(
    "expected_rule",
    [
        "no-global-rng",
        "counts-tier-n-free",
        "int64-dtype-pin",
        "no-wallclock-nondeterminism",
        "serialization-contract",
        "deprecation-shim-hygiene",
        "experiment-registry-completeness",
    ],
)
def test_required_rules_registered(expected_rule):
    assert expected_rule in rule_ids()
