"""Tests for repro.analysis.poisson (O/B/P diagnostics)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.poisson import (
    per_opinion_count_histograms,
    poisson_transfer_factor,
    process_count_distribution,
    total_variation_distance,
)
from repro.network.balls_bins import BallsIntoBinsProcess
from repro.network.poisson_model import PoissonizedProcess
from repro.network.push_model import UniformPushModel
from repro.noise.families import uniform_noise_matrix


class TestTotalVariationDistance:
    def test_identical_distributions(self):
        assert total_variation_distance([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_symmetry(self):
        p, q = [0.7, 0.3], [0.4, 0.6]
        assert total_variation_distance(p, q) == total_variation_distance(q, p)

    def test_padding_of_different_lengths(self):
        assert total_variation_distance([1.0], [0.5, 0.5]) == pytest.approx(0.5)

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            total_variation_distance([-0.1, 1.1], [0.5, 0.5])

    def test_triangle_inequality(self):
        p, q, r = [0.6, 0.4], [0.3, 0.7], [0.5, 0.5]
        assert total_variation_distance(p, q) <= (
            total_variation_distance(p, r) + total_variation_distance(r, q) + 1e-12
        )


class TestProcessCountDistribution:
    def test_probability_vector(self, uniform3, rng):
        engine = UniformPushModel(30, uniform3, rng)
        deliveries = [engine.run_phase(np.array([1, 2, 3] * 5), 3) for _ in range(20)]
        distribution = process_count_distribution(deliveries, max_count=10)
        assert distribution.shape == (11,)
        assert distribution.sum() == pytest.approx(1.0)

    def test_tail_truncation(self, uniform3, rng):
        engine = UniformPushModel(2, uniform3, rng)
        deliveries = [engine.run_phase(np.array([1] * 50), 2)]
        distribution = process_count_distribution(deliveries, max_count=5)
        # Every node receives far more than 5 messages, so all mass is in the
        # final bucket.
        assert distribution[-1] == pytest.approx(1.0)

    def test_per_opinion_histograms_shape(self, uniform3, rng):
        engine = UniformPushModel(30, uniform3, rng)
        deliveries = [engine.run_phase(np.array([1, 2, 3] * 5), 3) for _ in range(5)]
        histograms = per_opinion_count_histograms(deliveries, max_count=8)
        assert histograms.shape == (3, 9)
        assert np.allclose(histograms.sum(axis=1), 1.0)

    def test_per_opinion_histograms_require_deliveries(self):
        with pytest.raises(ValueError):
            per_opinion_count_histograms([])


class TestPoissonTransferFactor:
    def test_formula(self):
        histogram = [4, 9]
        expected = math.exp(2) * math.sqrt(36)
        assert poisson_transfer_factor(histogram) == pytest.approx(expected)

    def test_zero_counts_contribute_factor_one(self):
        assert poisson_transfer_factor([4, 0]) == pytest.approx(math.exp(2) * 2.0)

    def test_monotone_in_message_count(self):
        assert poisson_transfer_factor([100, 100]) > poisson_transfer_factor([10, 10])

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_transfer_factor([])
        with pytest.raises(ValueError):
            poisson_transfer_factor([-1, 2])


class TestClaim1AndLemma2Statistically:
    def test_push_and_balls_bins_distributions_close(self, rng):
        noise = uniform_noise_matrix(3, 0.25)
        num_nodes = 40
        senders = np.array([1] * 30 + [2] * 15 + [3] * 5)
        push = UniformPushModel(num_nodes, noise, rng)
        bins = BallsIntoBinsProcess(num_nodes, noise, rng)
        push_deliveries = [push.run_phase(senders, 4) for _ in range(150)]
        bins_deliveries = [
            bins.run_phase_from_senders(senders, 4) for _ in range(150)
        ]
        tv = total_variation_distance(
            process_count_distribution(push_deliveries),
            process_count_distribution(bins_deliveries),
        )
        assert tv < 0.05

    def test_poissonized_process_close_to_push(self, rng):
        noise = uniform_noise_matrix(3, 0.25)
        num_nodes = 40
        senders = np.array([1] * 30 + [2] * 15 + [3] * 5)
        push = UniformPushModel(num_nodes, noise, rng)
        poisson = PoissonizedProcess(num_nodes, noise, rng)
        push_deliveries = [push.run_phase(senders, 4) for _ in range(150)]
        poisson_deliveries = [
            poisson.run_phase_from_senders(senders, 4) for _ in range(150)
        ]
        tv = total_variation_distance(
            process_count_distribution(push_deliveries),
            process_count_distribution(poisson_deliveries),
        )
        # Poissonization is an approximation, not an identity; the distance is
        # small but need not vanish.
        assert tv < 0.08
