"""An experiment module the package __init__ forgot to import."""


def register_experiment(spec):
    return spec


@register_experiment
def run():
    return None
