"""An experiment module that *is* imported by the package."""


def register_experiment(spec):
    return spec


@register_experiment
def run():
    return None
