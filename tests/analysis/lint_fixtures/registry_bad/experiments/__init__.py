"""Violating experiment package: ``exp_missing`` registers an experiment
but is never imported here, so the registry silently drops it."""

from tests.analysis.lint_fixtures.registry_bad.experiments import (  # noqa: F401
    exp_present,
)
