"""Violates no-wallclock-nondeterminism: wall-clock reads off-allowlist."""

import time
from datetime import datetime


def stamp() -> float:
    started = time.perf_counter()  # line 8: flagged
    _ = datetime.now()  # line 9: flagged
    return started
