"""Violates deprecation-shim-hygiene: documented deprecated, never warns."""


def make_legacy_engine(kind: str):  # line 4: flagged
    """Deprecated: use the facade instead.

    This shim forgot its ``warnings.warn`` call, so callers never learn
    to migrate.
    """
    return kind
