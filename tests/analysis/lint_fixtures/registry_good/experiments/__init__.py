"""Conforming experiment package: every registering module is imported."""

from tests.analysis.lint_fixtures.registry_good.experiments import (  # noqa: F401
    exp_alpha,
    exp_beta,
)
