"""First registered experiment module."""


def register_experiment(spec):
    return spec


@register_experiment
def run():
    return None
