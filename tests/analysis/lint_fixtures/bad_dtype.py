"""Violates int64-dtype-pin: count-state constructions without the pin."""

import numpy as np


def unpinned(num_opinions: int) -> np.ndarray:
    counts = np.zeros(num_opinions)  # line 7: flagged (no dtype)
    return counts


def narrow(values) -> np.ndarray:
    opinion_counts = np.asarray(values).astype(int)  # line 12: flagged
    return opinion_counts
