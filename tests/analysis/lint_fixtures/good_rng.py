"""Conforms to no-global-rng: sanctioned Generator-based randomness only."""

import numpy as np
from numpy.random import Generator, default_rng


def draw(rng: Generator) -> float:
    return float(rng.random())


def fresh_draw(seed: int) -> float:
    return draw(np.random.default_rng(seed))


def seeded() -> Generator:
    return default_rng(np.random.SeedSequence(7))
