"""Conforms to serialization-contract: explicit coverage and the
``dataclasses.fields`` covering idiom both round-trip every field."""

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping


@dataclass(frozen=True)
class Explicit:
    alpha: float
    beta: float

    def to_dict(self) -> Dict[str, Any]:
        return {"alpha": self.alpha, "beta": self.beta}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Explicit":
        return cls(alpha=payload["alpha"], beta=payload["beta"])


@dataclass(frozen=True)
class Idiomatic:
    gamma: float
    delta: float

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Idiomatic":
        return cls(**{f.name: payload[f.name] for f in fields(cls)})
