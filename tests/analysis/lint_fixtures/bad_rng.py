"""Violates no-global-rng: stdlib random import and numpy global draws."""

import random  # line 3: flagged (stdlib random import)

import numpy as np


def draw() -> float:
    a = random.random()  # line 9: flagged (stdlib global RNG call)
    b = np.random.rand()  # line 10: flagged (numpy global RNG call)
    return a + b
