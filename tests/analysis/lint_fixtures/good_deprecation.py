"""Conforms to deprecation-shim-hygiene: every declared-deprecated shim
warns, directly or via a shared deprecation helper."""

import warnings


def _deprecated_call(name: str, replacement: str) -> None:
    """Shared shim body: emit the migration warning for ``name``.

    .. deprecated:: 0.5
       Helpers documented with this directive must themselves warn.
    """
    warnings.warn(
        f"{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def make_legacy_engine(kind: str):
    """Deprecated: use the facade instead."""
    _deprecated_call("make_legacy_engine", "simulate(Scenario(...))")
    return kind


def make_direct_engine(kind: str):
    """Deprecated: warns inline rather than via the helper."""
    warnings.warn(
        "make_direct_engine is deprecated", DeprecationWarning, stacklevel=2
    )
    return kind


def make_current_engine(kind: str):
    """Current API: no warning required."""
    return kind
