"""Line-scoped suppressions: the disabled line passes, the rest still fail."""

import numpy as np


def tolerated(num_opinions: int) -> np.ndarray:
    # Validation-only view; justification comments ride with the pragma.
    counts = np.zeros(num_opinions)  # reprolint: disable=int64-dtype-pin
    return counts


def not_tolerated(num_opinions: int) -> np.ndarray:
    counts = np.zeros(num_opinions)  # line 13: still flagged
    return counts
