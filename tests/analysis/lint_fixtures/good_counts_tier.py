"""Conforms to counts-tier-n-free: O(k)-per-trial allocations only.

``num_nodes`` may flow into *scalar* arithmetic (Poisson intensities,
probabilities) — only array shapes are constrained.
"""

import numpy as np


# reprolint: counts-tier
def evolve(
    num_nodes: int, num_opinions: int, num_trials: int
) -> np.ndarray:
    intensity = 3.0 / float(num_nodes)
    law = np.zeros((num_trials, num_opinions), dtype=np.int64)
    return law + intensity


def reference_process(num_nodes: int) -> np.ndarray:
    # Unmarked per-node code: n-sized allocation is legitimate here.
    return np.zeros(num_nodes, dtype=np.int64)
