"""Conforms to int64-dtype-pin: every count-state construction pins int64."""

import numpy as np


def pinned(num_opinions: int) -> np.ndarray:
    counts = np.zeros(num_opinions, dtype=np.int64)
    return counts


def converted(values) -> np.ndarray:
    opinion_counts = np.asarray(values, dtype=np.int64)
    return opinion_counts.astype(np.int64, copy=False)


def not_counts(num_opinions: int) -> np.ndarray:
    # Not a count state: float allocations are unconstrained.
    weights = np.zeros(num_opinions)
    return weights
