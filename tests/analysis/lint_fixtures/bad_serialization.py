"""Violates serialization-contract twice: a frozen dataclass whose
``to_dict`` has no ``from_dict`` counterpart, and one whose ``from_dict``
never mentions a field (so a round trip silently drops it)."""

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class OneWay:  # line 10: flagged (to_dict without from_dict)
    alpha: float
    beta: float

    def to_dict(self) -> Dict[str, Any]:
        return {"alpha": self.alpha, "beta": self.beta}


@dataclass(frozen=True)
class Lossy:
    gamma: float
    delta: float

    def to_dict(self) -> Dict[str, Any]:
        return {"gamma": self.gamma, "delta": self.delta}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Lossy":  # line 27: flagged
        return cls(payload["gamma"], 0.0)
