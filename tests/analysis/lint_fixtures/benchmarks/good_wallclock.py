"""Conforms to no-wallclock-nondeterminism via the benchmarks/ allowlist:
this file lives under a ``benchmarks/`` directory, whose entire purpose is
measuring wall-clock time."""

import time


def measure() -> float:
    return time.perf_counter()
