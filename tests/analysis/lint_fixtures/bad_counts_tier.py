"""Violates counts-tier-n-free: n-sized allocation in marked code."""

import numpy as np


# reprolint: counts-tier
def evolve(num_nodes: int, num_opinions: int) -> np.ndarray:
    per_node = np.zeros(num_nodes, dtype=np.int64)  # line 8: flagged
    per_opinion = np.zeros(num_opinions, dtype=np.int64)
    return per_node[:1] + per_opinion[:1]
