"""Tests for repro.analysis.bias."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bias import (
    bias_toward,
    distribution_after_noise,
    is_delta_biased,
    make_biased_distribution,
    plurality_of,
)
from repro.noise.families import identity_matrix, uniform_noise_matrix


class TestBiasToward:
    def test_basic_bias(self):
        assert bias_toward([0.5, 0.3, 0.2], 1) == pytest.approx(0.2)
        assert bias_toward([0.5, 0.3, 0.2], 2) == pytest.approx(-0.2)

    def test_single_opinion_convention(self):
        assert bias_toward([0.7], 1) == pytest.approx(0.7)

    def test_partial_distributions_allowed(self):
        assert bias_toward([0.3, 0.1, 0.0], 1) == pytest.approx(0.2)

    def test_invalid_opinion(self):
        with pytest.raises(ValueError):
            bias_toward([0.5, 0.5], 3)

    def test_invalid_distribution(self):
        with pytest.raises(ValueError):
            bias_toward([0.8, 0.8], 1)
        with pytest.raises(ValueError):
            bias_toward([-0.1, 0.5], 1)


class TestIsDeltaBiased:
    def test_true_and_false_cases(self):
        assert is_delta_biased([0.75, 0.25], 1, 0.5)
        assert not is_delta_biased([0.75, 0.25], 1, 0.6)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            is_delta_biased([0.6, 0.4], 1, -0.1)


class TestPluralityOf:
    def test_plurality(self):
        assert plurality_of([0.2, 0.5, 0.3]) == 2

    def test_empty_distribution(self):
        assert plurality_of([0.0, 0.0]) == 0

    def test_tie_smallest_label(self):
        assert plurality_of([0.4, 0.4, 0.2]) == 1


class TestDistributionAfterNoise:
    def test_identity_noise(self):
        c = [0.5, 0.3, 0.2]
        assert np.allclose(distribution_after_noise(c, identity_matrix(3)), c)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            distribution_after_noise([0.5, 0.5], identity_matrix(3))

    def test_uniform_noise_shrinks_bias(self):
        noise = uniform_noise_matrix(3, 0.2)
        c = [0.6, 0.3, 0.1]
        after = distribution_after_noise(c, noise)
        assert bias_toward(after, 1) < bias_toward(c, 1)
        assert bias_toward(after, 1) > 0


class TestMakeBiasedDistribution:
    def test_uniform_rest_shape(self):
        c = make_biased_distribution(4, 0.2, 1)
        assert c.sum() == pytest.approx(1.0)
        assert bias_toward(c, 1) == pytest.approx(0.2)
        # All rivals equal.
        assert np.allclose(c[1:], c[1])

    def test_two_block_shape(self):
        c = make_biased_distribution(4, 0.3, 2, style="two_block")
        assert c.sum() == pytest.approx(1.0)
        assert c[1] == pytest.approx(0.65)
        assert c[0] == pytest.approx(0.35)
        assert c[2] == 0.0 and c[3] == 0.0

    def test_majority_opinion_placement(self):
        c = make_biased_distribution(3, 0.2, 3)
        assert plurality_of(c) == 3

    def test_single_opinion(self):
        assert make_biased_distribution(1, 0.5, 1).tolist() == [1.0]

    def test_delta_too_large_for_uniform_rest(self):
        with pytest.raises(ValueError):
            make_biased_distribution(3, 1.5, 1)

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            make_biased_distribution(3, 0.2, 1, style="bogus")

    def test_invalid_majority_opinion(self):
        with pytest.raises(ValueError):
            make_biased_distribution(3, 0.2, 4)

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_rest_always_achieves_requested_bias(self, k, delta):
        c = make_biased_distribution(k, delta, 1)
        assert bias_toward(c, 1) == pytest.approx(delta, abs=1e-9)
        assert c.sum() == pytest.approx(1.0)
        assert np.all(c >= -1e-12)

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_block_always_achieves_requested_bias(self, k, delta):
        c = make_biased_distribution(k, delta, 1, style="two_block")
        assert bias_toward(c, 1) == pytest.approx(delta, abs=1e-9)
