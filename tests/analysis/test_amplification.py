"""Tests for repro.analysis.amplification (Proposition 1 machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.amplification import (
    amplification_lower_bound,
    binary_majority_gap_exact,
    expected_amplification_factor,
    majority_gap_monte_carlo,
    majority_probabilities_exact,
)
from repro.analysis.bias import make_biased_distribution
from repro.noise.families import uniform_noise_matrix


class TestAmplificationLowerBound:
    def test_increases_with_delta_in_small_regime(self):
        assert amplification_lower_bound(0.2, 25, 2) > amplification_lower_bound(
            0.05, 25, 2
        )

    def test_decreases_with_k(self):
        assert amplification_lower_bound(0.1, 25, 2) > amplification_lower_bound(
            0.1, 25, 4
        )

    def test_never_exceeds_one(self):
        for delta in (0.01, 0.1, 0.5, 1.0):
            for ell in (1, 9, 101, 1001):
                assert amplification_lower_bound(delta, ell, 2) <= 1.0 + 1e-9

    def test_matches_formula(self):
        import math

        from repro.analysis.theory import g_function

        delta, ell, k = 0.1, 25, 3
        expected = math.sqrt(2 * ell / math.pi) * g_function(delta, ell) / 4.0
        assert amplification_lower_bound(delta, ell, k) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            amplification_lower_bound(0.1, 0, 2)
        with pytest.raises(ValueError):
            amplification_lower_bound(0.1, 9, 1)
        with pytest.raises(ValueError):
            amplification_lower_bound(1.5, 9, 2)


class TestBinaryMajorityGapExact:
    def test_unbiased_sample_has_zero_gap(self):
        assert binary_majority_gap_exact(0.5, 9) == pytest.approx(0.0, abs=1e-12)

    def test_certain_opinion(self):
        assert binary_majority_gap_exact(1.0, 9) == pytest.approx(1.0)
        assert binary_majority_gap_exact(0.0, 9) == pytest.approx(-1.0)

    def test_gap_increases_with_probability(self):
        assert binary_majority_gap_exact(0.7, 11) > binary_majority_gap_exact(0.6, 11)

    def test_gap_increases_with_odd_sample_size(self):
        assert binary_majority_gap_exact(0.6, 21) > binary_majority_gap_exact(0.6, 5)

    def test_matches_exact_enumeration(self):
        p, ell = 0.62, 7
        gap_binomial = binary_majority_gap_exact(p, ell)
        probabilities = majority_probabilities_exact([p, 1 - p], ell)
        assert gap_binomial == pytest.approx(
            probabilities[0] - probabilities[1], abs=1e-10
        )

    def test_proposition1_bound_respected_k2(self):
        # For k = 2, the paper's Lemma 9: gap >= sqrt(2l/pi) g(delta, l) where
        # the sampling distribution is ((1+delta)/2, (1-delta)/2).
        for delta in (0.02, 0.1, 0.3):
            for ell in (5, 11, 25, 51):
                gap = binary_majority_gap_exact((1 + delta) / 2, ell)
                assert gap >= amplification_lower_bound(delta, ell, 2) - 1e-9


class TestMajorityProbabilitiesExact:
    def test_distribution_sums_to_one(self):
        result = majority_probabilities_exact([0.4, 0.35, 0.25], 9)
        assert result.sum() == pytest.approx(1.0)

    def test_plurality_opinion_wins_most_often(self):
        result = majority_probabilities_exact([0.5, 0.3, 0.2], 11)
        assert result[0] == result.max()

    def test_symmetric_distribution_gives_equal_probabilities(self):
        result = majority_probabilities_exact([1 / 3, 1 / 3, 1 / 3], 7)
        assert np.allclose(result, 1 / 3, atol=1e-9)

    def test_sample_size_one(self):
        probabilities = [0.6, 0.3, 0.1]
        result = majority_probabilities_exact(probabilities, 1)
        assert np.allclose(result, probabilities)

    def test_refuses_huge_enumerations(self):
        with pytest.raises(ValueError):
            majority_probabilities_exact([0.1] * 10, 200)

    def test_agrees_with_monte_carlo(self, rng):
        probabilities = [0.45, 0.35, 0.2]
        exact = majority_probabilities_exact(probabilities, 9)
        estimate = majority_gap_monte_carlo(probabilities, 9, 200_000, rng)
        assert np.allclose(exact, estimate, atol=0.01)


class TestMajorityGapMonteCarlo:
    def test_probabilities_sum_to_one(self, rng):
        estimate = majority_gap_monte_carlo([0.4, 0.6], 11, 10_000, rng)
        assert estimate.sum() == pytest.approx(1.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            majority_gap_monte_carlo([0.4, 0.7], 11, 100, rng)
        with pytest.raises(ValueError):
            majority_gap_monte_carlo([0.5, 0.5], 0, 100, rng)


class TestExpectedAmplificationFactor:
    def test_bound_holds_on_grid(self, rng):
        for k in (2, 3):
            for ell in (5, 11):
                for delta in (0.05, 0.2):
                    outcome = expected_amplification_factor(
                        delta, ell, k, random_state=rng
                    )
                    assert outcome["measured_gap"] >= outcome["lower_bound"] - 0.02

    def test_amplification_exceeds_one_for_stage2_samples(self, rng):
        # The whole point of Stage 2: the per-phase gap exceeds the incoming
        # bias, i.e. the amplification factor is > 1.
        outcome = expected_amplification_factor(0.1, 33, 3, random_state=rng)
        assert outcome["amplification"] > 1.0

    def test_noise_matrix_reduces_but_preserves_gap(self, rng):
        noise = uniform_noise_matrix(3, 0.3)
        with_noise = expected_amplification_factor(
            0.1, 33, 3, noise_matrix=noise, random_state=rng
        )
        without_noise = expected_amplification_factor(0.1, 33, 3, random_state=rng)
        assert 0 < with_noise["measured_gap"] < without_noise["measured_gap"]

    def test_method_validation(self, rng):
        with pytest.raises(ValueError):
            expected_amplification_factor(0.1, 5, 2, method="bogus", random_state=rng)

    def test_monte_carlo_method_available(self, rng):
        outcome = expected_amplification_factor(
            0.2, 7, 3, method="monte_carlo", num_trials=20_000, random_state=rng
        )
        assert outcome["measured_gap"] > 0


class TestProposition1Property:
    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_binary_gap_dominates_bound(self, delta, half_ell):
        ell = 2 * half_ell + 1  # odd sample sizes, as in the paper's analysis
        gap = binary_majority_gap_exact((1 + delta) / 2, ell)
        assert gap >= amplification_lower_bound(delta, ell, 2) - 1e-9

    @given(
        st.floats(min_value=0.02, max_value=0.4),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=30, deadline=None)
    def test_ternary_gap_dominates_bound(self, delta, half_ell):
        ell = 2 * half_ell + 1
        distribution = make_biased_distribution(3, delta, 1)
        win = majority_probabilities_exact(distribution, ell)
        gap = win[0] - max(win[1], win[2])
        assert gap >= amplification_lower_bound(delta, ell, 3) - 1e-9
