"""Distribution-level verification helpers for the engine-agreement suite.

The analytic tier gives the test-suite something the sampled tiers never
could: an *exact reference distribution*.  Two statistics turn that into
assertions with quantifiable false-alarm rates:

* **Total-variation distance** between the exact one-round transition
  distribution and the empirical distribution of ``R`` sampled rounds.
  When the sampler is distribution-correct, the plug-in TVD is pure
  sampling noise: over a support of ``S`` states its expectation is at
  most ``0.5 * sqrt(S / R)`` (Cauchy–Schwarz on the per-state errors) and
  it concentrates around that mean within ``sqrt(ln(1/alpha) / (2 R))``
  with probability ``1 - alpha`` (McDiarmid — changing one sample moves
  the TVD by at most ``1/R``).  :func:`sampling_tvd_threshold` is the sum
  of the two terms and is the documented threshold the agreement tests
  assert against.

* **Wilson score intervals** around each sampled tier's empirical success
  frequency.  The exact success probability must land inside the 99.9%
  interval; a miss is a one-in-a-thousand event per check under the null
  hypothesis that the tier is correct.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.analytic.simplex import state_indices, state_space_size

__all__ = [
    "total_variation_distance",
    "empirical_state_distribution",
    "sampling_tvd_threshold",
    "wilson_interval",
    "Z_99_9",
]

#: Two-sided 99.9% standard-normal quantile (z for a Wilson score
#: interval at confidence 0.999).
Z_99_9 = 3.2905267314919255


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``TV(p, q) = 0.5 * ||p - q||_1`` for two pmf vectors."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(
            f"distributions must have the same shape, got {p.shape} vs {q.shape}"
        )
    return 0.5 * float(np.abs(p - q).sum())


def empirical_state_distribution(
    counts: np.ndarray, num_nodes: int, num_opinions: int
) -> np.ndarray:
    """Empirical pmf over the count simplex from ``(R, k)`` sampled counts."""
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 2 or counts.shape[1] != num_opinions:
        raise ValueError(
            f"counts must have shape (R, {num_opinions}), got {counts.shape}"
        )
    indices = state_indices(counts, num_nodes, num_opinions)
    if indices.size and indices.min() < 0:
        raise ValueError("sampled counts fall outside the state simplex")
    size = state_space_size(num_nodes, num_opinions)
    return np.bincount(indices, minlength=size) / counts.shape[0]


def sampling_tvd_threshold(
    support_size: int, num_samples: int, alpha: float = 0.001
) -> float:
    """Bound exceeded with probability at most ``alpha`` by the plug-in TVD.

    ``0.5 * sqrt(S / R)`` bounds the expectation (Cauchy–Schwarz over the
    ``S`` per-state deviations of an ``R``-sample empirical pmf), and
    ``sqrt(ln(1/alpha) / (2 R))`` is the McDiarmid deviation allowance at
    level ``alpha``.  Valid for any sampler whose rounds are i.i.d. and
    exactly distributed as the reference — which the counts engines are by
    construction, making any systematic excess a real bug.
    """
    if support_size < 1 or num_samples < 1:
        raise ValueError("support_size and num_samples must be positive")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    expectation = 0.5 * math.sqrt(support_size / num_samples)
    deviation = math.sqrt(math.log(1.0 / alpha) / (2.0 * num_samples))
    return expectation + deviation


def wilson_interval(
    successes: int, trials: int, z: float = Z_99_9
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; with the default ``z`` the interval covers
    the true probability with ~99.9% confidence, so an exact success
    probability falling outside it is strong evidence the sampler is
    biased.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    frequency = successes / trials
    z_squared = z * z
    center = (frequency + z_squared / (2 * trials)) / (1 + z_squared / trials)
    radius = (
        z
        * math.sqrt(
            frequency * (1 - frequency) / trials
            + z_squared / (4 * trials * trials)
        )
        / (1 + z_squared / trials)
    )
    return max(0.0, center - radius), min(1.0, center + radius)
