"""Exact distributions over the opinion-count simplex.

The analytic engine tier evolves the *distribution* of the ``(k,)``
opinion-count vector instead of sampling trajectories.  On the complete
graph every per-round update of the counts engines is a grouped
multinomial: the ``m_g`` nodes currently in opinion group ``g`` each draw
an i.i.d. outcome from a group-specific law over ``{stay/become
undecided, opinion 1, …, opinion k}``, and the next count vector is the
sum of the per-group outcome tallies.  This module provides the shared
machinery:

* enumeration and O(1) indexing of the count simplex
  ``{c in Z^k_{>=0} : sum(c) <= n}`` (``C(n + k, k)`` states),
* the exact multinomial outcome law of one group
  (:func:`multinomial_outcome_law`),
* the exact next-state distribution of one grouped-multinomial round
  (:func:`next_state_distribution`) — the convolution over groups that
  every analytic kernel row is built from.

Everything here is exact up to float64 rounding; no randomness is
involved anywhere in this package.
"""

from __future__ import annotations

import math
from functools import lru_cache
from itertools import combinations
from typing import Tuple

import numpy as np

__all__ = [
    "DEFAULT_STATE_BUDGET",
    "state_space_size",
    "states_within_budget",
    "enumerate_states",
    "state_lookup",
    "state_indices",
    "multinomial_outcome_law",
    "next_state_distribution",
]

#: Largest count-simplex size the exact tier will build a dense
#: ``S x S`` kernel for.  ``S = C(n + k, k)``, so the default admits
#: ``k = 2`` up to ``n = 43`` and ``k = 3`` up to ``n = 16`` — the
#: "small n*k" regime the exact tier is meant for; larger scenarios fall
#: back to the mean-field tier.
DEFAULT_STATE_BUDGET = 1_000


def state_space_size(num_nodes: int, num_opinions: int) -> int:
    """Number of opinion-count states ``C(n + k, k)``."""
    return math.comb(num_nodes + num_opinions, num_opinions)


def states_within_budget(
    num_nodes: int,
    num_opinions: int,
    budget: int = DEFAULT_STATE_BUDGET,
) -> bool:
    """Whether the exact tier's dense kernel fits the state budget."""
    return state_space_size(num_nodes, num_opinions) <= budget


@lru_cache(maxsize=None)
def enumerate_states(num_nodes: int, num_opinions: int) -> np.ndarray:
    """Every opinion-count vector, shape ``(S, k)`` int64, lexicographic.

    Row ``s`` is a count vector ``(c_1, …, c_k)`` with ``sum(c) <= n``;
    the undecided count is implicitly ``n - sum(c)``.
    """
    if num_nodes < 0 or num_opinions < 1:
        raise ValueError(
            "need num_nodes >= 0 and num_opinions >= 1, got "
            f"n={num_nodes}, k={num_opinions}"
        )
    states = np.asarray(
        list(_compositions_at_most(num_nodes, num_opinions)), dtype=np.int64
    )
    states.setflags(write=False)
    return states


def _compositions_at_most(total: int, parts: int):
    """All ``parts``-tuples of non-negative ints with sum at most ``total``."""
    if parts == 1:
        for value in range(total + 1):
            yield (value,)
        return
    for value in range(total + 1):
        for rest in _compositions_at_most(total - value, parts - 1):
            yield (value,) + rest


@lru_cache(maxsize=None)
def state_lookup(num_nodes: int, num_opinions: int) -> np.ndarray:
    """Dense rank table: ``lookup[c_1, …, c_k]`` is the state index.

    Shape ``(n + 1,) * k``; entries outside the simplex (``sum > n``) are
    ``-1``.  Lets :func:`state_indices` rank whole batches of count
    vectors with one fancy-indexing pass.
    """
    states = enumerate_states(num_nodes, num_opinions)
    lookup = np.full((num_nodes + 1,) * num_opinions, -1, dtype=np.int64)
    lookup[tuple(states.T)] = np.arange(states.shape[0], dtype=np.int64)
    lookup.setflags(write=False)
    return lookup


def state_indices(counts: np.ndarray, num_nodes: int, num_opinions: int) -> np.ndarray:
    """Vectorized state ranks of ``counts`` (shape ``(…, k)`` -> ``(…,)``)."""
    counts = np.asarray(counts, dtype=np.int64)
    lookup = state_lookup(num_nodes, num_opinions)
    return lookup[tuple(np.moveaxis(counts, -1, 0))]


@lru_cache(maxsize=None)
def _compositions_of(total: int, parts: int) -> np.ndarray:
    """All compositions of ``total`` into ``parts`` parts, ``(C, parts)``."""
    width = parts
    rows = []
    for dividers in combinations(range(total + width - 1), width - 1):
        previous = -1
        cells = []
        for divider in dividers + (total + width - 1,):
            cells.append(divider - previous - 1)
            previous = divider
        rows.append(cells)
    compositions = np.asarray(rows, dtype=np.int64)
    compositions.setflags(write=False)
    return compositions


@lru_cache(maxsize=None)
def _log_factorials(limit: int) -> np.ndarray:
    values = np.zeros(limit + 1)
    if limit >= 2:
        values[2:] = np.cumsum(np.log(np.arange(2, limit + 1, dtype=float)))
    values.setflags(write=False)
    return values


def multinomial_outcome_law(
    num_draws: int, probabilities: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """The exact law of ``Multinomial(num_draws, probabilities)``.

    Returns ``(outcomes, pmf)`` where ``outcomes`` is the ``(C, O)``
    matrix of outcome-count compositions and ``pmf`` their probabilities
    (log-space multinomial coefficients, exact to float64).  Compositions
    with probability exactly zero — those using an outcome of zero
    probability — are pruned, so deterministic laws reduce to a single
    row.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    compositions = _compositions_of(int(num_draws), probabilities.shape[0])
    log_fact = _log_factorials(int(num_draws))
    log_coefficients = log_fact[num_draws] - log_fact[compositions].sum(axis=1)
    positive = probabilities > 0.0
    log_p = np.where(positive, np.log(np.where(positive, probabilities, 1.0)), -np.inf)
    with np.errstate(invalid="ignore"):
        terms = np.where(compositions > 0, compositions * log_p[np.newaxis, :], 0.0)
    pmf = np.exp(log_coefficients + terms.sum(axis=1))
    keep = pmf > 0.0
    return compositions[keep], pmf[keep]


def next_state_distribution(
    group_sizes: np.ndarray,
    group_laws: np.ndarray,
    num_nodes: int,
    num_opinions: int,
) -> np.ndarray:
    """Exact distribution of the next count vector after one grouped round.

    ``group_sizes`` has shape ``(k + 1,)`` (entry 0 = undecided nodes) and
    ``group_laws`` shape ``(k + 1, k + 1)``: row ``g`` is the outcome law
    of a single group-``g`` node over ``{0 = end undecided, 1, …, k}``.
    The next count vector is the convolution over groups of
    ``Multinomial(group_sizes[g], group_laws[g])`` tallies — returned as a
    length-``S`` probability vector over :func:`enumerate_states` order.
    """
    group_sizes = np.asarray(group_sizes, dtype=np.int64)
    group_laws = np.asarray(group_laws, dtype=float)
    states = enumerate_states(num_nodes, num_opinions)
    lookup = state_lookup(num_nodes, num_opinions)
    distribution = np.zeros(states.shape[0])
    distribution[int(lookup[(0,) * num_opinions])] = 1.0
    for size, law in zip(group_sizes, group_laws):
        if size == 0:
            continue
        outcomes, pmf = multinomial_outcome_law(int(size), law)
        support = np.nonzero(distribution)[0]
        # Partial tallies always stay inside the simplex (total assigned
        # nodes never exceeds n), so every target rank is valid.
        targets = lookup[
            tuple(
                np.moveaxis(
                    states[support][:, np.newaxis, :] + outcomes[np.newaxis, :, 1:],
                    -1,
                    0,
                )
            )
        ]
        updated = np.zeros_like(distribution)
        np.add.at(
            updated,
            targets.ravel(),
            (distribution[support][:, np.newaxis] * pmf[np.newaxis, :]).ravel(),
        )
        distribution = updated
    return distribution
