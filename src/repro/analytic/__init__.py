"""Sampling-free engines: exact Markov chains and mean-field integration.

This package holds the shared machinery of the ``analytic`` engine tier —
count-simplex enumeration, exact grouped-multinomial convolution, and the
distribution-level verification statistics (total-variation distance,
Wilson intervals) the engine-agreement suite asserts with.  The workload
engines themselves live next to their sampled counterparts:
:mod:`repro.dynamics.analytic` for the five baseline dynamics and
:mod:`repro.core.analytic` for the two-stage protocol.
"""

from repro.analytic.simplex import (
    DEFAULT_STATE_BUDGET,
    enumerate_states,
    multinomial_outcome_law,
    next_state_distribution,
    state_indices,
    state_lookup,
    state_space_size,
    states_within_budget,
)
from repro.analytic.verify import (
    Z_99_9,
    empirical_state_distribution,
    sampling_tvd_threshold,
    total_variation_distance,
    wilson_interval,
)

__all__ = [
    "DEFAULT_STATE_BUDGET",
    "enumerate_states",
    "multinomial_outcome_law",
    "next_state_distribution",
    "state_indices",
    "state_lookup",
    "state_space_size",
    "states_within_budget",
    "Z_99_9",
    "empirical_state_distribution",
    "sampling_tvd_threshold",
    "total_variation_distance",
    "wilson_interval",
]
