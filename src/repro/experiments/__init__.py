"""The experiment harness: one module per reproduced quantitative statement.

The paper has no numbered tables or figures; its evaluation is the set of
theorems, lemmas, claims and worked examples listed in DESIGN.md Section 6.
Each ``exp_*`` module here regenerates the empirical counterpart of one of
those statements and returns an :class:`~repro.experiments.results.
ExperimentTable` whose rows are recorded in EXPERIMENTS.md and printed by the
corresponding benchmark in ``benchmarks/``.

All experiments accept a configuration dataclass with a ``quick()``
constructor (minutes on a laptop, used by the benchmark suite) and a
``full()`` constructor (closer to the asymptotic regime).

Each module registers itself in the declarative spec registry
(:mod:`~repro.experiments.spec`) at import time — id, paper claim,
quick/full configuration constructors, and the trial engines it supports —
and the orchestration layer (:mod:`~repro.experiments.orchestrator`)
executes any subset of registered experiments in parallel with
content-keyed result persistence (``python -m repro run-all``).
"""

from repro.experiments.results import ExperimentTable
from repro.experiments.runner import repeat_trials, sweep_product
from repro.experiments.spec import ExperimentSpec, all_specs, get_spec, registered_ids

from repro.experiments import (  # noqa: F401  (re-exported experiment modules)
    exp_ablation_sampling,
    exp_amplification,
    exp_baselines,
    exp_byzantine_degradation,
    exp_epsilon_threshold,
    exp_memory,
    exp_noise_matrices,
    exp_parity,
    exp_plurality_consensus,
    exp_poissonization,
    exp_rumor_scaling,
    exp_stage1_bias,
    exp_stage1_growth,
    exp_stage2_trajectory,
    exp_topologies,
)
from repro.experiments import orchestrator  # noqa: F401,E402  (needs the registry above)
from repro.experiments.orchestrator import ResultStore, run_all  # noqa: E402

__all__ = [
    "ExperimentTable",
    "ExperimentSpec",
    "ResultStore",
    "all_specs",
    "get_spec",
    "registered_ids",
    "run_all",
    "exp_ablation_sampling",
    "exp_amplification",
    "exp_baselines",
    "exp_byzantine_degradation",
    "exp_epsilon_threshold",
    "exp_memory",
    "exp_noise_matrices",
    "exp_parity",
    "exp_plurality_consensus",
    "exp_poissonization",
    "exp_rumor_scaling",
    "exp_stage1_bias",
    "exp_stage1_growth",
    "exp_stage2_trajectory",
    "exp_topologies",
    "repeat_trials",
    "sweep_product",
]
