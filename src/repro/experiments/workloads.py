"""Workload generators shared by the experiments and examples.

The experiments need a small vocabulary of initial conditions:

* a *rumor* instance (one source node, everyone else undecided);
* a *fully opinionated* delta-biased population (the state Stage 2 starts
  from, and the natural input for the baseline dynamics);
* a *partially opinionated* plurality instance with a prescribed support
  size ``|S|`` and bias within the support (the Theorem 2 setting).

All generators delegate to :class:`~repro.core.state.PopulationState` /
:class:`~repro.core.plurality.PluralityInstance` and exist so experiment
modules read as parameter sweeps rather than state plumbing.

The ``ensemble_*`` variants produce the batched
:class:`~repro.core.state.EnsembleState` counterparts consumed by the
vectorized multi-trial paths — :class:`~repro.core.protocol.EnsembleProtocol`
and the engine-aware stage helpers
(:func:`~repro.experiments.runner.stage2_trial_trajectories` builds E6's
and E13's per-trial initial placements from
:func:`ensemble_biased_population`); the counts engine reduces them to
sufficient statistics on entry.
"""

from __future__ import annotations



from repro.analysis.bias import make_biased_distribution
from repro.core.plurality import PluralityInstance
from repro.core.state import EnsembleState, PopulationState
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import require_fraction, require_positive_int

__all__ = [
    "rumor_instance",
    "biased_population",
    "plurality_instance_with_bias",
    "ensemble_rumor_instance",
    "ensemble_biased_population",
]


def rumor_instance(
    num_nodes: int,
    num_opinions: int,
    correct_opinion: int = 1,
) -> PopulationState:
    """The Theorem 1 initial condition: a single source node."""
    return PopulationState.single_source(
        num_nodes, num_opinions, correct_opinion
    )


def biased_population(
    num_nodes: int,
    num_opinions: int,
    bias: float,
    *,
    majority_opinion: int = 1,
    style: str = "uniform_rest",
    random_state: RandomState = None,
) -> PopulationState:
    """A fully opinionated population whose distribution is ``bias``-biased.

    Every node holds an opinion; the majority opinion leads every rival by
    (approximately, up to integer rounding) ``bias`` as a fraction of ``n``.
    """
    num_nodes = require_positive_int(num_nodes, "num_nodes")
    bias = require_fraction(bias, "bias")
    distribution = make_biased_distribution(
        num_opinions, bias, majority_opinion, style=style
    )
    return PopulationState.from_fractions(
        num_nodes, distribution, random_state=random_state
    )


def plurality_instance_with_bias(
    num_nodes: int,
    support_size: int,
    num_opinions: int,
    bias_within_support: float,
    *,
    majority_opinion: int = 1,
) -> PluralityInstance:
    """A Theorem 2 instance: ``|S|`` opinionated nodes, given bias within ``S``.

    The opinion shares within ``S`` follow the "uniform rest" shape: the
    plurality opinion leads every rival by ``bias_within_support`` (as a
    fraction of ``|S|``).
    """
    shares = make_biased_distribution(
        num_opinions, bias_within_support, majority_opinion
    )
    return PluralityInstance.from_support_fractions(
        num_nodes, support_size, shares
    )


def ensemble_rumor_instance(
    num_nodes: int,
    num_opinions: int,
    num_trials: int,
    correct_opinion: int = 1,
) -> EnsembleState:
    """``num_trials`` independent Theorem-1 initial conditions, batched.

    The single-source state is deterministic, so every trial starts from the
    same row; the trials diverge through their independent randomness.
    """
    return EnsembleState.from_state(
        rumor_instance(num_nodes, num_opinions, correct_opinion), num_trials
    )


def ensemble_biased_population(
    num_nodes: int,
    num_opinions: int,
    bias: float,
    num_trials: int,
    *,
    majority_opinion: int = 1,
    style: str = "uniform_rest",
    random_state: RandomState = None,
) -> EnsembleState:
    """``num_trials`` fully opinionated ``bias``-biased populations, batched.

    Each trial gets its own independently shuffled placement (derived from
    ``random_state``), mirroring what a sequential loop over
    :func:`biased_population` would produce.
    """
    generators = spawn_generators(num_trials, random_state)
    return EnsembleState.from_states(
        [
            biased_population(
                num_nodes,
                num_opinions,
                bias,
                majority_opinion=majority_opinion,
                style=style,
                random_state=generator,
            )
            for generator in generators
        ]
    )
