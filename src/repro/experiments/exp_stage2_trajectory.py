"""Experiment E6 — Lemma 12: Stage 2 amplifies the bias phase after phase.

Starting from a fully opinionated population whose distribution is only
weakly biased (the state Lemma 4 hands over from Stage 1), the experiment
runs Stage 2 and records the bias toward the plurality opinion after every
phase.  Lemma 12 predicts the bias grows by a constant factor > 1 per phase
until it exceeds 1/2, after which the final long phase finishes the job and
all nodes agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.schedule import Stage2Schedule
from repro.core.stage2 import Stage2Executor
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import repeat_trials
from repro.experiments.workloads import biased_population
from repro.network.push_model import UniformPushModel
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState

__all__ = ["Stage2TrajectoryConfig", "run"]


@dataclass
class Stage2TrajectoryConfig:
    """Parameters of the E6 run."""

    num_nodes: int = 3000
    num_opinions: int = 3
    epsilon: float = 0.3
    initial_bias_multiplier: float = 2.0
    num_trials: int = 5

    @classmethod
    def quick(cls) -> "Stage2TrajectoryConfig":
        """A configuration that completes in seconds."""
        return cls(num_nodes=1500, num_trials=3)

    @classmethod
    def full(cls) -> "Stage2TrajectoryConfig":
        """A configuration with a larger population."""
        return cls(num_nodes=20000, num_trials=10)


def run(
    config: Optional[Stage2TrajectoryConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E6 experiment and return the per-phase bias table."""
    config = config or Stage2TrajectoryConfig.quick()
    table = ExperimentTable(
        experiment_id="E6",
        title="Stage 2: per-phase bias trajectory toward the plurality opinion",
        paper_claim=(
            "Lemma 12: each Stage-2 phase multiplies the bias by a constant factor "
            "> 1 (w.h.p.) until it exceeds 1/2, after which consensus is reached"
        ),
    )
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    schedule = Stage2Schedule.for_population(config.num_nodes, config.epsilon)
    initial_bias = min(
        0.4,
        config.initial_bias_multiplier
        * math.sqrt(math.log(config.num_nodes) / config.num_nodes),
    )

    def trial(rng: np.random.Generator):
        initial = biased_population(
            config.num_nodes, config.num_opinions, initial_bias, random_state=rng
        )
        engine = UniformPushModel(config.num_nodes, noise, rng)
        executor = Stage2Executor(engine, schedule, rng)
        final_state, records = executor.run(initial, track_opinion=1)
        biases = [record.bias_after for record in records]
        return biases, final_state.has_consensus_on(1)

    outcomes = repeat_trials(trial, config.num_trials, random_state)
    trajectories = np.asarray([biases for biases, _ in outcomes])
    successes = [success for _, success in outcomes]
    mean_trajectory = trajectories.mean(axis=0)
    previous_bias = initial_bias
    for phase_index, bias in enumerate(mean_trajectory):
        amplification = float(bias / previous_bias) if previous_bias > 0 else float("inf")
        table.add_record(
            phase=phase_index,
            sample_size=schedule.sample_sizes[phase_index],
            num_rounds=schedule.phase_lengths[phase_index],
            mean_bias_before=float(previous_bias),
            mean_bias_after=float(bias),
            amplification=amplification,
            amplified=bool(bias > previous_bias or previous_bias >= 0.999),
        )
        previous_bias = float(bias)
    table.add_note(
        f"initial bias {initial_bias:.4f}; consensus reached in "
        f"{sum(successes)}/{len(successes)} trials"
    )
    return table
