"""Experiment E6 — Lemma 12: Stage 2 amplifies the bias phase after phase.

Starting from a fully opinionated population whose distribution is only
weakly biased (the state Lemma 4 hands over from Stage 1), the experiment
runs Stage 2 and records the bias toward the plurality opinion after every
phase.  Lemma 12 predicts the bias grows by a constant factor > 1 per phase
until it exceeds 1/2, after which the final long phase finishes the job and
all nodes agree.

The per-phase trajectories route through the engine-aware
:func:`~repro.experiments.runner.stage2_trial_trajectories`, so the
experiment runs on the batched ensemble engine by default and supports
``trial_engine="counts"`` / ``"sequential"`` / ``"auto"`` like the other
experiments.  Each trial starts from its own independently sampled initial
placement, mirroring the sequential loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.experiments.results import ExperimentTable
from repro.experiments.runner import stage2_trial_trajectories
from repro.experiments.spec import register_experiment
from repro.experiments.workloads import ensemble_biased_population
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState, derive_seed

__all__ = ["Stage2TrajectoryConfig", "run"]

_TITLE = "Stage 2: per-phase bias trajectory toward the plurality opinion"
_PAPER_CLAIM = (
    "Lemma 12: each Stage-2 phase multiplies the bias by a constant factor "
    "> 1 (w.h.p.) until it exceeds 1/2, after which consensus is reached"
)


@dataclass
class Stage2TrajectoryConfig:
    """Parameters of the E6 run.

    ``trial_engine`` selects the repeated-trial execution engine
    (``"batched"``, ``"sequential"``, ``"counts"`` or ``"auto"``).
    """

    num_nodes: int = 3000
    num_opinions: int = 3
    epsilon: float = 0.3
    initial_bias_multiplier: float = 2.0
    num_trials: int = 5
    trial_engine: str = "batched"

    @classmethod
    def quick(cls) -> "Stage2TrajectoryConfig":
        """A configuration that completes in seconds."""
        return cls(num_nodes=1500, num_trials=3)

    @classmethod
    def full(cls) -> "Stage2TrajectoryConfig":
        """A configuration with a larger population."""
        return cls(num_nodes=20000, num_trials=10)


@register_experiment(
    experiment_id="E6",
    description="Lemma 12: Stage-2 trajectory",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("batched", "sequential", "counts"),
    config_cls=Stage2TrajectoryConfig,
)
def run(
    config: Optional[Stage2TrajectoryConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E6 experiment and return the per-phase bias table."""
    config = config or Stage2TrajectoryConfig.quick()
    table = ExperimentTable(
        experiment_id="E6",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    initial_bias = min(
        0.4,
        config.initial_bias_multiplier
        * math.sqrt(math.log(config.num_nodes) / config.num_nodes),
    )
    # Independent per-trial initial placements, derived from a different
    # child seed than the run randomness so the two streams never overlap.
    initial_states = ensemble_biased_population(
        config.num_nodes,
        config.num_opinions,
        initial_bias,
        config.num_trials,
        random_state=derive_seed(random_state, 0),
    )
    trajectories = stage2_trial_trajectories(
        initial_states,
        noise,
        config.epsilon,
        config.num_trials,
        derive_seed(random_state, 1),
        track_opinion=1,
        trial_engine=config.trial_engine,
    )
    mean_trajectory = trajectories.biases.mean(axis=0)
    previous_bias = initial_bias
    for phase_index, bias in enumerate(mean_trajectory):
        amplification = float(bias / previous_bias) if previous_bias > 0 else float("inf")
        table.add_record(
            phase=phase_index,
            sample_size=trajectories.sample_sizes[phase_index],
            num_rounds=trajectories.phase_lengths[phase_index],
            mean_bias_before=float(previous_bias),
            mean_bias_after=float(bias),
            amplification=amplification,
            amplified=bool(bias > previous_bias or previous_bias >= 0.999),
        )
        previous_bias = float(bias)
    table.add_note(
        f"initial bias {initial_bias:.4f}; consensus reached in "
        f"{int(trajectories.consensus.sum())}/{trajectories.num_trials} trials; "
        f"trial engine: {config.trial_engine}"
    )
    return table
