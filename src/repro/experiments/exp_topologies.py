"""Experiment E14 (extension) — the protocol beyond the complete graph.

The paper's analysis is specific to the complete graph: every push lands on a
uniformly random node, which is what makes the balls-into-bins /
Poissonization machinery (and hence Stage 2's concentration) work.  This
extension experiment runs the *unchanged* two-stage protocol on a range of
sparser topologies via :class:`~repro.network.topology.GraphPushModel` and
records how the guarantee degrades:

* on dense random graphs (average degree ``Omega(polylog n)``) the behaviour
  is close to the complete graph;
* on constant-degree graphs (random regular with small degree, cycles, grids)
  Stage 1's growth slows down and the local correlations break Stage 2's
  sample-majority argument, so the success rate and the fraction of correct
  nodes drop — often all the way to losing the rumor.

This is not a claim of the paper (which is why the experiment is labelled an
extension); it documents the boundary of the complete-graph assumption for
users who want to apply the protocol on real topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.convergence import estimate_success_probability
from repro.core.protocol import TwoStageProtocol
from repro.core.state import PopulationState
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import repeat_trials
from repro.experiments.spec import register_experiment
from repro.network.topology import GraphPushModel, standard_topology
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState

__all__ = ["TopologyConfig", "run"]

_TITLE = "Extension: the unchanged protocol on non-complete topologies"
_PAPER_CLAIM = (
    "No claim in the paper - the analysis assumes the complete graph; this "
    "extension measures how the guarantee degrades on sparser topologies"
)


@dataclass
class TopologyConfig:
    """Parameters of the E14 sweep."""

    num_nodes: int = 1000
    num_opinions: int = 3
    epsilon: float = 0.3
    num_trials: int = 3
    #: (label, topology name, keyword arguments) triples to evaluate.
    topologies: Sequence[Tuple[str, str, dict]] = (
        ("complete graph (paper)", "complete", {}),
        ("random regular, degree 8", "random_regular", {"degree": 8}),
        ("random regular, degree 64", "random_regular", {"degree": 64}),
        ("Erdos-Renyi, avg degree ~4 ln n", "erdos_renyi", {}),
        ("cycle", "cycle", {}),
    )

    @classmethod
    def quick(cls) -> "TopologyConfig":
        """A configuration that completes in about a minute."""
        return cls(num_nodes=600, num_trials=2)

    @classmethod
    def full(cls) -> "TopologyConfig":
        """A larger sweep with more trials and an added grid topology."""
        return cls(
            num_nodes=4000,
            num_trials=8,
            topologies=(
                ("complete graph (paper)", "complete", {}),
                ("random regular, degree 8", "random_regular", {"degree": 8}),
                ("random regular, degree 32", "random_regular", {"degree": 32}),
                ("random regular, degree 128", "random_regular", {"degree": 128}),
                ("Erdos-Renyi, avg degree ~4 ln n", "erdos_renyi", {}),
                ("2-D torus grid", "grid", {}),
                ("cycle", "cycle", {}),
            ),
        )


@register_experiment(
    experiment_id="E14",
    description="Extension: non-complete topologies",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("sequential",),
    config_cls=TopologyConfig,
)
def run(
    config: Optional[TopologyConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E14 sweep and return the result table."""
    config = config or TopologyConfig.quick()
    table = ExperimentTable(
        experiment_id="E14",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    for label, topology_name, kwargs in config.topologies:

        def trial(rng: np.random.Generator):
            graph = standard_topology(
                topology_name, config.num_nodes, random_state=rng, **kwargs
            )
            engine = GraphPushModel(graph, noise, rng)
            protocol = TwoStageProtocol(
                config.num_nodes,
                noise,
                epsilon=config.epsilon,
                engine=engine,
                random_state=rng,
            )
            initial = PopulationState.single_source(
                config.num_nodes, config.num_opinions, source_opinion=1
            )
            result = protocol.run(initial, target_opinion=1)
            mean_degree = float(engine.degrees().mean())
            return result.success, result.correct_fraction(), mean_degree

        outcomes = repeat_trials(trial, config.num_trials, random_state)
        success_rate, _ = estimate_success_probability(
            [success for success, _, _ in outcomes]
        )
        table.add_record(
            topology=label,
            n=config.num_nodes,
            mean_degree=float(np.mean([degree for _, _, degree in outcomes])),
            success_rate=success_rate,
            mean_correct_fraction=float(
                np.mean([fraction for _, fraction, _ in outcomes])
            ),
        )
    table.add_note(
        "the complete graph reproduces Theorem 1; dense random graphs come close; "
        "constant-degree topologies lose the guarantee, matching the intuition that "
        "the balls-into-bins / Poissonization analysis needs well-mixed pushes"
    )
    return table
