"""Experiment E5 — Proposition 1: the sample-majority bias amplification bound.

For a grid of biases ``delta``, sample sizes ``l`` and opinion counts ``k``,
the experiment computes the probability gap
``Pr[maj_l = m] - max_{i != m} Pr[maj_l = i]`` for a canonical delta-biased
distribution (exactly when feasible, by Monte Carlo otherwise), together with
Proposition 1's closed-form lower bound
``sqrt(2 l / pi) * g(delta, l) / 4^(k-2)``.

The reproduced trend: the measured gap always dominates the bound, the bound
becomes loose as ``k`` grows (the ``4^-(k-2)`` factor is an artifact of the
induction), and the implied per-phase amplification factor exceeds 1 for the
sample sizes Stage 2 actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.amplification import expected_amplification_factor
from repro.experiments.results import ExperimentTable
from repro.experiments.spec import register_experiment
from repro.utils.rng import RandomState, as_generator

__all__ = ["AmplificationConfig", "run"]

_TITLE = "Sample-majority amplification: measured gap vs. Proposition 1 bound"
_PAPER_CLAIM = (
    "Proposition 1: Pr[maj_l = m] - Pr[maj_l = i] >= "
    "sqrt(2 l / pi) * g(delta, l) / 4^(k-2) for every rival opinion i"
)


@dataclass
class AmplificationConfig:
    """Parameters of the E5 grid."""

    num_opinions_grid: Sequence[int] = (2, 3, 4)
    sample_size_grid: Sequence[int] = (5, 11, 25)
    delta_grid: Sequence[float] = (0.02, 0.1, 0.3)
    monte_carlo_trials: int = 100_000

    @classmethod
    def quick(cls) -> "AmplificationConfig":
        """A configuration that completes in seconds."""
        return cls(
            num_opinions_grid=(2, 3),
            sample_size_grid=(5, 11),
            delta_grid=(0.05, 0.2),
            monte_carlo_trials=50_000,
        )

    @classmethod
    def full(cls) -> "AmplificationConfig":
        """The full grid (still fast; everything is closed-form or vectorized)."""
        return cls(
            num_opinions_grid=(2, 3, 4, 6),
            sample_size_grid=(5, 11, 25, 51),
            delta_grid=(0.01, 0.05, 0.1, 0.3),
            monte_carlo_trials=300_000,
        )


@register_experiment(
    experiment_id="E5",
    description="Proposition 1: amplification bound",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("sequential",),
    config_cls=AmplificationConfig,
)
def run(
    config: Optional[AmplificationConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E5 grid and return the result table."""
    config = config or AmplificationConfig.quick()
    rng = as_generator(random_state)
    table = ExperimentTable(
        experiment_id="E5",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    violations = 0
    for num_opinions in config.num_opinions_grid:
        for sample_size in config.sample_size_grid:
            for delta in config.delta_grid:
                outcome = expected_amplification_factor(
                    delta,
                    sample_size,
                    num_opinions,
                    num_trials=config.monte_carlo_trials,
                    random_state=rng,
                )
                bound_holds = outcome["measured_gap"] >= outcome["lower_bound"] - 1e-2
                violations += 0 if bound_holds else 1
                table.add_record(
                    k=num_opinions,
                    sample_size=sample_size,
                    delta=delta,
                    measured_gap=outcome["measured_gap"],
                    proposition1_bound=outcome["lower_bound"],
                    bound_holds=bound_holds,
                    amplification_factor=outcome["amplification"],
                )
    table.add_note(
        f"{violations} grid points violated the bound "
        "(expected: 0, small Monte-Carlo noise tolerated)"
    )
    return table
