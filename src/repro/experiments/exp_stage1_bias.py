"""Experiment E3 — Lemma 4/6/7: Stage 1 opinionates everyone and keeps a bias.

For a grid of population sizes, the experiment runs the protocol from a
single source and records, at the end of Stage 1:

* the fraction of opinionated nodes (Lemma 6 says 1 w.h.p.),
* the bias of the opinion distribution toward the source's opinion,
* the theoretical scale ``sqrt(log n / n)`` that Lemma 4 guarantees the bias
  does not fall below (up to constants).

The reproduced trend: the opinionated fraction is 1 in essentially every
trial, and the measured bias tracks (and typically exceeds) the
``sqrt(log n / n)`` scale as ``n`` grows.

Repeated trials route through the engine-aware
:func:`~repro.experiments.runner.stage1_trial_trajectories` (only Stage 1
executes — Stage 2 would be wasted work for this measurement), so the
sweep runs on the batched ensemble engine by default and supports
``trial_engine="counts"`` / ``"sequential"`` / ``"auto"`` uniformly with
the other experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.theory import theoretical_bias_after_stage1
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import stage1_trial_trajectories, summarize
from repro.experiments.spec import register_experiment
from repro.experiments.workloads import rumor_instance
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState

__all__ = ["Stage1BiasConfig", "run"]

_TITLE = "Stage 1: opinionated fraction and bias at the end of the stage"
_PAPER_CLAIM = (
    "Lemma 4: Stage 1 takes O(log n / eps^2) rounds, after which w.h.p. "
    "all nodes are opinionated and the distribution is "
    "Omega(sqrt(log n / n))-biased toward the correct opinion"
)


@dataclass
class Stage1BiasConfig:
    """Parameters of the E3 sweep.

    ``trial_engine`` selects the repeated-trial execution engine
    (``"batched"``, ``"sequential"``, ``"counts"`` or ``"auto"``).
    """

    num_nodes_grid: Sequence[int] = (500, 1000, 2000, 4000)
    num_opinions: int = 3
    epsilon: float = 0.3
    num_trials: int = 5
    trial_engine: str = "batched"

    @classmethod
    def quick(cls) -> "Stage1BiasConfig":
        """A configuration that completes in seconds."""
        return cls(num_nodes_grid=(400, 800, 1600), num_trials=3)

    @classmethod
    def full(cls) -> "Stage1BiasConfig":
        """A configuration with larger populations."""
        return cls(num_nodes_grid=(1000, 2000, 4000, 8000, 16000), num_trials=10)


@register_experiment(
    experiment_id="E3",
    description="Lemma 4/6/7: Stage-1 bias",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("batched", "sequential", "counts"),
    config_cls=Stage1BiasConfig,
)
def run(
    config: Optional[Stage1BiasConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E3 sweep and return the result table."""
    config = config or Stage1BiasConfig.quick()
    table = ExperimentTable(
        experiment_id="E3",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    for num_nodes in config.num_nodes_grid:
        trajectories = stage1_trial_trajectories(
            rumor_instance(num_nodes, config.num_opinions, 1),
            noise,
            config.epsilon,
            config.num_trials,
            random_state,
            track_opinion=1,
            trial_engine=config.trial_engine,
        )
        fractions = summarize(trajectories.opinionated_fractions[:, -1])
        biases = summarize(trajectories.biases[:, -1])
        theory_bias = theoretical_bias_after_stage1(num_nodes)
        table.add_record(
            n=num_nodes,
            epsilon=config.epsilon,
            stage1_rounds=trajectories.total_rounds,
            mean_opinionated_fraction=fractions["mean"],
            min_opinionated_fraction=fractions["min"],
            mean_bias=biases["mean"],
            min_bias=biases["min"],
            theory_bias_scale=theory_bias,
            bias_over_theory=biases["mean"] / theory_bias,
        )
    table.add_note(
        "bias_over_theory is the measured bias divided by sqrt(log n / n); "
        "Lemma 4 predicts it stays bounded away from 0 as n grows; "
        f"trial engine: {config.trial_engine}"
    )
    return table
