"""Experiment E3 — Lemma 4/6/7: Stage 1 opinionates everyone and keeps a bias.

For a grid of population sizes, the experiment runs *only Stage 1* from a
single source and records, at the end of the stage:

* the fraction of opinionated nodes (Lemma 6 says 1 w.h.p.),
* the bias of the opinion distribution toward the source's opinion,
* the theoretical scale ``sqrt(log n / n)`` that Lemma 4 guarantees the bias
  does not fall below (up to constants).

The reproduced trend: the opinionated fraction is 1 in essentially every
trial, and the measured bias tracks (and typically exceeds) the
``sqrt(log n / n)`` scale as ``n`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.theory import theoretical_bias_after_stage1
from repro.core.schedule import Stage1Schedule
from repro.core.stage1 import Stage1Executor
from repro.core.state import PopulationState
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import repeat_trials, summarize
from repro.network.push_model import UniformPushModel
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState

__all__ = ["Stage1BiasConfig", "run"]


@dataclass
class Stage1BiasConfig:
    """Parameters of the E3 sweep."""

    num_nodes_grid: Sequence[int] = (500, 1000, 2000, 4000)
    num_opinions: int = 3
    epsilon: float = 0.3
    num_trials: int = 5

    @classmethod
    def quick(cls) -> "Stage1BiasConfig":
        """A configuration that completes in seconds."""
        return cls(num_nodes_grid=(400, 800, 1600), num_trials=3)

    @classmethod
    def full(cls) -> "Stage1BiasConfig":
        """A configuration with larger populations."""
        return cls(num_nodes_grid=(1000, 2000, 4000, 8000, 16000), num_trials=10)


def run(
    config: Optional[Stage1BiasConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E3 sweep and return the result table."""
    config = config or Stage1BiasConfig.quick()
    table = ExperimentTable(
        experiment_id="E3",
        title="Stage 1: opinionated fraction and bias at the end of the stage",
        paper_claim=(
            "Lemma 4: Stage 1 takes O(log n / eps^2) rounds, after which w.h.p. "
            "all nodes are opinionated and the distribution is "
            "Omega(sqrt(log n / n))-biased toward the correct opinion"
        ),
    )
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    for num_nodes in config.num_nodes_grid:
        schedule = Stage1Schedule.for_population(num_nodes, config.epsilon)

        def trial(rng: np.random.Generator):
            engine = UniformPushModel(num_nodes, noise, rng)
            executor = Stage1Executor(engine, schedule, rng)
            initial = PopulationState.single_source(
                num_nodes, config.num_opinions, source_opinion=1
            )
            final_state, records = executor.run(initial, track_opinion=1)
            return (
                final_state.opinionated_fraction(),
                final_state.bias_toward(1),
                sum(record.num_rounds for record in records),
            )

        outcomes = repeat_trials(trial, config.num_trials, random_state)
        fractions = summarize([fraction for fraction, _, _ in outcomes])
        biases = summarize([bias for _, bias, _ in outcomes])
        rounds = outcomes[0][2]
        theory_bias = theoretical_bias_after_stage1(num_nodes)
        table.add_record(
            n=num_nodes,
            epsilon=config.epsilon,
            stage1_rounds=rounds,
            mean_opinionated_fraction=fractions["mean"],
            min_opinionated_fraction=fractions["min"],
            mean_bias=biases["mean"],
            min_bias=biases["min"],
            theory_bias_scale=theory_bias,
            bias_over_theory=biases["mean"] / theory_bias,
        )
    table.add_note(
        "bias_over_theory is the measured bias divided by sqrt(log n / n); "
        "Lemma 4 predicts it stays bounded away from 0 as n grows"
    )
    return table
