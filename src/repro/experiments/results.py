"""Experiment result containers.

Every experiment returns an :class:`ExperimentTable`: a named list of record
dictionaries plus the paper statement it reproduces.  The table renders
itself as plain text (for benches and examples) and exposes simple accessors
so tests can assert on the reproduced trends without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.utils.tables import format_records

__all__ = ["ExperimentTable"]


@dataclass
class ExperimentTable:
    """A reproduced table: rows of measurements plus provenance.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md experiment id (``"E1"`` … ``"E13"``).
    title:
        Human-readable title.
    paper_claim:
        The paper statement (theorem/lemma/claim) the table reproduces.
    records:
        One dictionary per row.
    notes:
        Free-form remarks recorded alongside the measurements (e.g. observed
        deviations, scale caveats).
    """

    experiment_id: str
    title: str
    paper_claim: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_record(self, **fields: Any) -> Dict[str, Any]:
        """Append a row and return it."""
        record = dict(fields)
        self.records.append(record)
        return record

    def add_note(self, note: str) -> None:
        """Append a free-form note."""
        self.notes.append(str(note))

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [record.get(name) for record in self.records]

    def filtered(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows whose fields match every keyword criterion exactly."""
        return [
            record
            for record in self.records
            if all(record.get(key) == value for key, value in criteria.items())
        ]

    def to_text(self, *, columns: Optional[Sequence[str]] = None) -> str:
        """Render the table (and notes) as plain text."""
        header = f"[{self.experiment_id}] {self.title}"
        claim = f"paper claim: {self.paper_claim}"
        body = format_records(self.records, columns=columns)
        parts = [header, claim, "", body]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[Dict[str, Any]]:
        return iter(self.records)
