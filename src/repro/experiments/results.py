"""Experiment result containers.

Every experiment returns an :class:`ExperimentTable`: a named list of record
dictionaries plus the paper statement it reproduces.  The table renders
itself as plain text (for benches and examples) and exposes simple accessors
so tests can assert on the reproduced trends without re-running anything.

Tables also serialize to and from JSON (:meth:`ExperimentTable.to_json` /
:meth:`ExperimentTable.from_json`), which is what the orchestration layer's
content-keyed result store persists under ``results/``: the provenance
dictionary carries the run's seed, engine, configuration and code version so
a stored table is self-describing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.utils.tables import format_records

__all__ = ["ExperimentTable", "jsonify_value"]


def jsonify_value(value: Any) -> Any:
    """Reduce ``value`` to plain JSON-serializable Python.

    Experiment records routinely carry numpy scalars (means, counts,
    boolean verdicts) and the occasional array or tuple; persisting them
    requires the plain-Python equivalents, and normalizing *before* writing
    keeps the ``to_json``/``from_json`` round trip exact.
    """
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify_value(entry) for entry in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [jsonify_value(entry) for entry in value]
    if isinstance(value, Mapping):
        return {str(key): jsonify_value(entry) for key, entry in value.items()}
    return value


@dataclass
class ExperimentTable:
    """A reproduced table: rows of measurements plus provenance.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md experiment id (``"E1"`` … ``"E14"``).
    title:
        Human-readable title.
    paper_claim:
        The paper statement (theorem/lemma/claim) the table reproduces.
    records:
        One dictionary per row.
    notes:
        Free-form remarks recorded alongside the measurements (e.g. observed
        deviations, scale caveats).
    provenance:
        How the table was produced (seed, trial engine, configuration, code
        version, timestamps) — filled in by the orchestration layer; empty
        for ad-hoc programmatic runs.
    """

    experiment_id: str
    title: str
    paper_claim: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    provenance: Dict[str, Any] = field(default_factory=dict)

    def add_record(self, **fields: Any) -> Dict[str, Any]:
        """Append a row and return it."""
        record = dict(fields)
        self.records.append(record)
        return record

    def add_note(self, note: str) -> None:
        """Append a free-form note."""
        self.notes.append(str(note))

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [record.get(name) for record in self.records]

    def filtered(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows whose fields match every keyword criterion exactly."""
        return [
            record
            for record in self.records
            if all(record.get(key) == value for key, value in criteria.items())
        ]

    def to_text(self, *, columns: Optional[Sequence[str]] = None) -> str:
        """Render the table (and notes) as plain text."""
        header = f"[{self.experiment_id}] {self.title}"
        claim = f"paper claim: {self.paper_claim}"
        body = format_records(self.records, columns=columns)
        parts = [header, claim, "", body]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    # ------------------------------------------------------------------ #
    # JSON persistence (the orchestrator's result-store format)
    # ------------------------------------------------------------------ #

    def to_json_dict(self) -> Dict[str, Any]:
        """The table as a plain-Python dictionary (numpy types reduced)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "records": [jsonify_value(record) for record in self.records],
            "notes": list(self.notes),
            "provenance": jsonify_value(self.provenance),
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Serialize the table (records, notes, provenance) to JSON."""
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(
        cls, document: Union[str, Mapping[str, Any]]
    ) -> "ExperimentTable":
        """Rebuild a table from :meth:`to_json` output (string or dict)."""
        if isinstance(document, str):
            document = json.loads(document)
        if not isinstance(document, Mapping):
            raise TypeError(
                "document must be a JSON object string or a mapping, got "
                f"{type(document).__name__}"
            )
        missing = [
            key
            for key in ("experiment_id", "title", "paper_claim")
            if key not in document
        ]
        if missing:
            raise ValueError(
                f"experiment-table document is missing fields: {missing}"
            )
        return cls(
            experiment_id=str(document["experiment_id"]),
            title=str(document["title"]),
            paper_claim=str(document["paper_claim"]),
            records=[dict(record) for record in document.get("records", [])],
            notes=[str(note) for note in document.get("notes", [])],
            provenance=dict(document.get("provenance", {})),
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[Dict[str, Any]]:
        return iter(self.records)
