"""Experiment E8 — Claim 1 and Lemma 2/3: the O ≡ B ≈ P process comparison.

Two checks:

1. **Static check.**  Fix a phase (a sender-opinion multiset and a number of
   rounds), deliver it repeatedly under each of the three processes (O: real
   push; B: balls-into-bins; P: Poissonized), and compare the distributions
   of per-node received counts via the total-variation distance.  Claim 1
   predicts O and B are statistically indistinguishable; Lemma 2 predicts P
   is close (the Poissonization differs from B only in the total message
   count fluctuating, an effect that vanishes as ``n`` grows).

2. **Dynamic check.**  Run the *full protocol* under each delivery process
   and compare success rates and final biases: the protocol's behaviour is
   insensitive to the substitution, which is what licenses the paper's proof
   strategy of analysing P instead of O.

The Lemma-2 transfer factor ``e^k sqrt(prod h_i)`` is reported alongside, to
show the regime where Lemma 3's condition on the failure exponent applies.

The dynamic check routes through the shared trial runner
(:func:`~repro.experiments.runner.protocol_trial_outcomes` with its
``process`` knob), so it runs on the batched ensemble engine by default;
``trial_engine="sequential"`` cross-checks against the reference loop.  The
counts engine is *not* offered: its delivery is always the counts-native
Claim-1/Poissonized model, which would make the O/B/P comparison vacuous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.poisson import (
    per_opinion_count_histograms,
    poisson_transfer_factor,
    process_count_distribution,
    total_variation_distance,
)
from repro.network.delivery import make_delivery_engine
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import protocol_trial_outcomes
from repro.experiments.spec import register_experiment
from repro.experiments.workloads import biased_population, rumor_instance
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState, as_generator

__all__ = ["PoissonizationConfig", "run"]

_TITLE = "Process equivalence: push (O) vs balls-into-bins (B) vs Poissonized (P)"
_PAPER_CLAIM = (
    "Claim 1: O and B induce the same end-of-phase distribution; "
    "Lemma 2/3: w.h.p. events transfer from P to O at cost e^k sqrt(prod h_i)"
)


@dataclass
class PoissonizationConfig:
    """Parameters of the E8 comparison.

    ``trial_engine`` selects how the dynamic check's repeated trials run:
    ``"batched"`` (vectorized ensemble) or ``"sequential"`` (reference
    loop).  The counts engine is unsupported — it replaces the delivery
    process under comparison.
    """

    num_nodes: int = 500
    num_opinions: int = 3
    epsilon: float = 0.3
    rounds_per_phase: int = 5
    num_deliveries: int = 200
    dynamic_trials: int = 3
    dynamic_num_nodes: int = 800
    trial_engine: str = "batched"

    @classmethod
    def quick(cls) -> "PoissonizationConfig":
        """A configuration that completes in seconds."""
        return cls(num_deliveries=100, dynamic_trials=2, dynamic_num_nodes=600)

    @classmethod
    def full(cls) -> "PoissonizationConfig":
        """A configuration with tighter statistics."""
        return cls(
            num_nodes=2000,
            num_deliveries=1000,
            dynamic_trials=10,
            dynamic_num_nodes=3000,
        )


def _static_comparison(
    config: PoissonizationConfig,
    rng: np.random.Generator,
    table: ExperimentTable,
) -> None:
    """The fixed-phase delivery comparison between O, B and P."""
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    population = biased_population(
        config.num_nodes, config.num_opinions, 0.2, random_state=rng
    )
    sender_opinions = population.opinions[population.opinionated_mask()]
    histogram = np.bincount(
        sender_opinions, minlength=config.num_opinions + 1
    )[1:] * config.rounds_per_phase

    deliveries: Dict[str, List] = {"push": [], "balls_bins": [], "poisson": []}
    for process in deliveries:
        engine = make_delivery_engine(process, config.num_nodes, noise, rng)
        for _ in range(config.num_deliveries):
            deliveries[process].append(
                engine.run_phase_from_senders(
                    sender_opinions, config.rounds_per_phase
                )
            )

    distributions = {
        process: process_count_distribution(batch)
        for process, batch in deliveries.items()
    }
    per_opinion = {
        process: per_opinion_count_histograms(batch)
        for process, batch in deliveries.items()
    }
    pairs = [("push", "balls_bins"), ("push", "poisson"), ("balls_bins", "poisson")]
    for first, second in pairs:
        tv_totals = total_variation_distance(
            distributions[first], distributions[second]
        )
        tv_per_opinion = float(
            np.mean(
                [
                    total_variation_distance(
                        per_opinion[first][index], per_opinion[second][index]
                    )
                    for index in range(config.num_opinions)
                ]
            )
        )
        table.add_record(
            check="static",
            comparison=f"{first} vs {second}",
            tv_total_counts=tv_totals,
            tv_per_opinion_counts=tv_per_opinion,
            success_rate=None,
            mean_final_bias=None,
        )
    table.add_note(
        "Lemma 2 transfer factor for this phase: "
        f"{poisson_transfer_factor(histogram):.3g} "
        f"(h = {int(histogram.sum())} messages, k = {config.num_opinions})"
    )


def _dynamic_comparison(
    config: PoissonizationConfig,
    rng: np.random.Generator,
    table: ExperimentTable,
) -> None:
    """Full protocol runs under each delivery process."""
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    initial = rumor_instance(config.dynamic_num_nodes, config.num_opinions, 1)
    for process in ("push", "balls_bins", "poisson"):
        outcomes = protocol_trial_outcomes(
            initial,
            noise,
            config.epsilon,
            config.dynamic_trials,
            rng,
            target_opinion=1,
            process=process,
            trial_engine=config.trial_engine,
        )
        success_rate = float(
            np.mean([outcome.success for outcome in outcomes])
        )
        mean_bias = float(
            np.mean([outcome.final_bias for outcome in outcomes])
        )
        table.add_record(
            check="dynamic",
            comparison=f"protocol under {process}",
            tv_total_counts=None,
            tv_per_opinion_counts=None,
            success_rate=success_rate,
            mean_final_bias=mean_bias,
        )


@register_experiment(
    experiment_id="E8",
    description="Claim 1 / Lemma 2: process equivalence",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("batched", "sequential"),
    config_cls=PoissonizationConfig,
)
def run(
    config: Optional[PoissonizationConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E8 comparison and return the result table."""
    config = config or PoissonizationConfig.quick()
    rng = as_generator(random_state)
    table = ExperimentTable(
        experiment_id="E8",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    _static_comparison(config, rng, table)
    _dynamic_comparison(config, rng, table)
    table.add_note(f"dynamic-check trial engine: {config.trial_engine}")
    return table
