"""The experiment orchestration layer: parallel sweeps + persistent results.

Three pieces turn the registered experiment specs
(:mod:`~repro.experiments.spec`) into a production-style batch system:

* :class:`ResultStore` — a content-keyed JSON store under a ``results/``
  directory.  A run's key is the SHA-256 of its *identity*: experiment id,
  configuration (as a canonical dictionary), seed, engine override, and the
  code version of the defining experiment module (plus the shared runner).
  Identical identities hit the cache; any change to the configuration, the
  seed, the engine, or the experiment code misses and recomputes.
* :func:`run_experiment_job` — one experiment execution as a plain,
  picklable function of an :class:`ExperimentJob`, so work can fan out
  across a process pool.
* :func:`run_all` — the sweep executor behind ``python -m repro run-all``:
  runs every requested experiment (quick or full configuration) with a
  deterministic per-experiment seed (the
  :func:`~repro.utils.rng.derive_seed` spawned-generator discipline, keyed
  on the experiment's numeric id so the derivation is independent of which
  subset runs), optionally in parallel over ``jobs`` worker processes, and
  persists every table to the store.  Because each job's randomness is
  derived from its identity rather than from execution order, a parallel
  run produces *identical records* to a serial run — the property the
  test-suite asserts — and a second run with ``resume=True`` reports every
  experiment as cached without recomputing anything.

The process pool falls back to serial execution when the platform cannot
provide worker processes (or when ``jobs <= 1``), so ``run_all`` always
completes.  The sweep is also *crash-tolerant*: a job that raises (or
takes its worker process down) no longer kills the batch — it is retried
once, and if it fails again a structured failure table takes its place
(status ``"failed"``, never persisted to the store) while every other
experiment completes normally.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.experiments import runner as runner_module
from repro.experiments import spec as spec_module
from repro.experiments.results import ExperimentTable, jsonify_value
from repro.experiments.spec import ExperimentSpec, get_spec, registered_ids
from repro.utils.rng import derive_seed

__all__ = [
    "ResultStore",
    "ExperimentJob",
    "ExperimentRunReport",
    "run_experiment_job",
    "run_all",
    "job_seed",
    "experiment_code_version",
    "config_fingerprint",
    "DEFAULT_STORE_DIR",
]

#: Default location of the persistent result artifacts, relative to the
#: caller's working directory.
DEFAULT_STORE_DIR = "results"

_code_version_cache: Dict[str, str] = {}


def _module_source(module) -> str:
    """The module's source text ('' when unavailable, e.g. frozen builds)."""
    try:
        return inspect.getsource(module)
    except (OSError, TypeError):  # pragma: no cover - frozen/packed builds
        return ""


def experiment_code_version(spec: ExperimentSpec) -> str:
    """A short fingerprint of the code a run of ``spec`` executes.

    Hashes the defining experiment module together with the shared trial
    runner and the :mod:`repro.sim` dispatch layer the runner routes
    through, so editing any of them invalidates the store entries of the
    affected experiments (the "code version" component of the content
    key).  The deeper simulation layers are deliberately not hashed — they
    are covered by the engine-equivalence test-suite, and hashing the whole
    package would turn every docstring edit into a full cache flush.
    """
    cached = _code_version_cache.get(spec.module_name)
    if cached is not None:
        return cached
    import importlib

    from repro.sim import engines as sim_engines_module
    from repro.sim import facade as sim_facade_module
    from repro.sim import result as sim_result_module
    from repro.sim import scenario as sim_scenario_module

    module = importlib.import_module(spec.module_name)
    digest = hashlib.sha256()
    digest.update(_module_source(module).encode())
    digest.update(_module_source(runner_module).encode())
    digest.update(_module_source(spec_module).encode())
    digest.update(_module_source(sim_engines_module).encode())
    digest.update(_module_source(sim_facade_module).encode())
    digest.update(_module_source(sim_scenario_module).encode())
    digest.update(_module_source(sim_result_module).encode())
    version = digest.hexdigest()[:16]
    _code_version_cache[spec.module_name] = version
    return version


def config_fingerprint(config: Any) -> Any:
    """``config`` as canonical plain-Python data for hashing and storage.

    Dataclass configurations become (sorted) dictionaries with tuples
    reduced to lists, so two configurations with equal field values always
    produce the same fingerprint regardless of sequence type.
    """
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return jsonify_value(dataclasses.asdict(config))
    return jsonify_value(config)


@dataclass(frozen=True)
class ExperimentJob:
    """The identity of one orchestrated experiment run.

    Everything that determines the run's output is here — which is exactly
    why the store can key on it: same job, same records.  In particular the
    ``"auto"`` engine's counts switch-over threshold is part of the job
    (not just a process-global), so it both keys the store and reaches
    worker processes regardless of the multiprocessing start method.
    """

    experiment_id: str
    full: bool = False
    seed: int = 0
    engine: Optional[str] = None
    counts_threshold: Optional[int] = None

    def build_config(self) -> Any:
        """The configuration object this job runs with (engine applied)."""
        spec = get_spec(self.experiment_id)
        config = spec.build_config(self.full)
        if self.engine is not None:
            spec.validate_engine(self.engine)
            if config is not None and hasattr(config, "trial_engine"):
                config.trial_engine = self.engine
        return config

    def identity(self) -> Dict[str, Any]:
        """The canonical content-key material for this job."""
        spec = get_spec(self.experiment_id)
        return {
            "experiment_id": self.experiment_id,
            "config": config_fingerprint(self.build_config()),
            "seed": int(self.seed),
            "engine": self.engine,
            "counts_threshold": self.counts_threshold,
            "code_version": experiment_code_version(spec),
        }


class ResultStore:
    """Content-keyed persistence of experiment tables under one directory.

    Entries are JSON files named ``<experiment_id>_<key-prefix>.json``; the
    key is the SHA-256 of the job identity (experiment id + canonical
    config + seed + engine + code version).  ``get``/``put`` work on
    :class:`ExperimentTable` objects; the lower-level ``fetch``/``store``
    pair works on arbitrary JSON payloads so other sweep scripts (e.g.
    ``examples/scaling_study.py``) can reuse the same resume semantics.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)

    # ---------------- low-level payload interface ---------------- #

    @staticmethod
    def key_of(identity: Mapping[str, Any]) -> str:
        """The SHA-256 content key of a canonical identity mapping."""
        canonical = json.dumps(
            jsonify_value(identity), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _payload_path(self, label: str, key: str) -> Path:
        return self.root / f"{label}_{key[:16]}.json"

    def fetch(
        self, label: str, identity: Mapping[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The stored payload for ``identity`` (``None`` on a cache miss)."""
        path = self._payload_path(label, self.key_of(identity))
        if not path.exists():
            return None
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if document.get("store_key") != self.key_of(identity):
            return None
        return document.get("payload")

    def store(
        self,
        label: str,
        identity: Mapping[str, Any],
        payload: Mapping[str, Any],
    ) -> Path:
        """Persist ``payload`` under ``identity``'s content key."""
        key = self.key_of(identity)
        path = self._payload_path(label, key)
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "store_key": key,
            "identity": jsonify_value(identity),
            "payload": jsonify_value(payload),
        }
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        return path

    # ---------------- experiment-table interface ---------------- #

    def get(self, job: ExperimentJob) -> Optional[ExperimentTable]:
        """The cached table for ``job``, or ``None`` on a miss."""
        payload = self.fetch(job.experiment_id, job.identity())
        if payload is None:
            return None
        return ExperimentTable.from_json(payload)

    def put(self, job: ExperimentJob, table: ExperimentTable) -> Path:
        """Persist ``table`` as the result of ``job``."""
        return self.store(
            job.experiment_id, job.identity(), table.to_json_dict()
        )

    def has(self, job: ExperimentJob) -> bool:
        """``True`` iff a valid cached table exists for ``job``."""
        return self.get(job) is not None


def run_experiment_job(job: ExperimentJob) -> ExperimentTable:
    """Execute one experiment job and return its provenance-stamped table.

    Module-level (hence picklable) so :func:`run_all` can dispatch jobs to
    worker processes; the provenance records the full identity, which makes
    every stored artifact self-describing.
    """
    spec = get_spec(job.experiment_id)
    if job.engine is not None:
        spec.validate_engine(job.engine)
    config = job.build_config()
    started = time.perf_counter()
    try:
        if job.counts_threshold is not None:
            runner_module.set_default_counts_threshold(job.counts_threshold)
        table = spec.run_fn(config, random_state=job.seed)
    finally:
        if job.counts_threshold is not None:
            runner_module.set_default_counts_threshold(None)
    elapsed = time.perf_counter() - started
    table.provenance = {
        **job.identity(),
        "full": job.full,
        "seconds": round(elapsed, 4),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    return table


@dataclass
class ExperimentRunReport:
    """What ``run_all`` did for one experiment (at one base seed).

    ``status`` is ``"ran"``, ``"cached"``, ``"skipped"`` (engine
    unsupported), or ``"failed"`` (the job raised on both attempts; the
    report then carries the structured failure table and the error text).
    """

    experiment_id: str
    status: str  # "ran" | "cached" | "skipped" | "failed"
    seconds: float
    table: Optional[ExperimentTable] = field(repr=False, default=None)
    base_seed: int = 0
    error: Optional[str] = None


def job_seed(base_seed: int, spec: ExperimentSpec) -> int:
    """Deterministic per-experiment seed, independent of the run subset.

    Derives a child seed from the base via the spawned-generator discipline
    (:func:`~repro.utils.rng.derive_seed`), keyed on the experiment's
    numeric id — so E7 gets the same seed whether ``run_all`` executes two
    experiments or all fourteen, serially or in parallel.
    """
    return derive_seed(int(base_seed), spec.index)


def _failure_table(
    job: ExperimentJob, error: BaseException, attempts: int
) -> ExperimentTable:
    """A structured failure entry standing in for a crashed job's table.

    One row naming the exception, the attempt count, and the job knobs, so
    a batch artifact that contains failures is still complete and
    self-describing.  Failure tables are deliberately *not* persisted to
    the result store — a later ``resume`` run retries the job instead of
    serving the crash from cache.
    """
    spec = get_spec(job.experiment_id)
    table = ExperimentTable(
        experiment_id=job.experiment_id,
        title=spec.title,
        paper_claim=spec.paper_claim,
    )
    table.add_record(
        status="failed",
        error_type=type(error).__name__,
        error=str(error) or repr(error),
        attempts=attempts,
        seed=job.seed,
        engine=job.engine,
        full=job.full,
    )
    table.add_note(
        f"the job raised on all {attempts} attempts; the sweep continued "
        "without it (see the error column)"
    )
    table.provenance = {
        **job.identity(),
        "full": job.full,
        "failed": True,
        "error": repr(error),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    return table


#: One executed job: ``(table, status, error)`` with status ``"ran"`` or
#: ``"failed"`` (error text set only on failure).
_JobOutcome = tuple


def _retry_once(
    job: ExperimentJob,
    first_error: BaseException,
    log: Callable[[str], None],
) -> _JobOutcome:
    """The single in-process retry after a failed first attempt."""
    log(
        f"{job.experiment_id}: attempt 1 failed ({first_error!r}); "
        "retrying once"
    )
    try:
        return run_experiment_job(job), "ran", None
    except Exception as error:
        log(f"{job.experiment_id}: failed after retry ({error!r})")
        return _failure_table(job, error, attempts=2), "failed", repr(error)


def _run_jobs_serial(
    jobs_list: Sequence[ExperimentJob],
    log: Callable[[str], None],
) -> List[_JobOutcome]:
    outcomes: List[_JobOutcome] = []
    for job in jobs_list:
        try:
            outcomes.append((run_experiment_job(job), "ran", None))
        except Exception as error:
            outcomes.append(_retry_once(job, error, log))
    return outcomes


def _pool_probe() -> bool:  # pragma: no cover - trivial worker payload
    return True


def _run_jobs_parallel(
    jobs_list: Sequence[ExperimentJob],
    jobs: int,
    log: Callable[[str], None],
) -> List[_JobOutcome]:
    """Fan jobs out over a process pool; fall back to serial on failure.

    Only *pool* failures (platforms without working worker processes —
    sandboxes, missing semaphores) trigger the serial fallback; a no-op
    probe task forces worker spawn before any real job is dispatched.
    Jobs are dispatched as individual futures, so one crashing job fails
    only its own future: the job is retried once in-process, and if it
    fails again a structured failure entry takes its place while the
    other jobs complete normally.  (A worker that dies outright breaks
    the pool and fails its siblings' futures too — each of those is then
    retried in-process the same way, so even a hard crash cannot kill
    the sweep.)
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=jobs)
        pool.submit(_pool_probe).result()
    except Exception as error:
        log(
            f"process pool unavailable ({error!r}); "
            "falling back to serial execution"
        )
        return _run_jobs_serial(jobs_list, log)
    outcomes: List[_JobOutcome] = []
    with pool:
        futures = [pool.submit(run_experiment_job, job) for job in jobs_list]
        for job, future in zip(jobs_list, futures):
            try:
                outcomes.append((future.result(), "ran", None))
            except Exception as error:
                outcomes.append(_retry_once(job, error, log))
    return outcomes


def run_all(
    experiment_ids: Optional[Sequence[str]] = None,
    *,
    jobs: int = 1,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    full: bool = False,
    engine: Optional[str] = None,
    counts_threshold: Optional[int] = None,
    store: Optional[Union[ResultStore, str, Path]] = None,
    resume: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> List[ExperimentRunReport]:
    """Run a set of registered experiments, optionally in parallel.

    Parameters
    ----------
    experiment_ids:
        The experiments to run (default: every registered spec, in numeric
        order).
    jobs:
        Worker processes; ``1`` (default) runs serially in-process.
        Parallel results are identical to serial results because every
        job's seed derives from its identity, not from execution order.
    seed:
        Base seed; each experiment derives its own child seed from it.
    seeds:
        Optional replication sweep: run every experiment once per base seed
        (overrides ``seed``).  One report per ``(seed, experiment)`` pair,
        seed-major, and every pair is its own store entry — the way to
        accumulate statistics across independent repetitions.
    full:
        Use the ``full()`` configurations instead of ``quick()``.
    engine:
        Optional trial-engine override applied to every experiment that
        supports it; experiments that do not support the requested engine
        are reported as ``"skipped"`` (with a log line naming their
        supported engines) instead of failing the whole sweep.
    counts_threshold:
        The ``"auto"`` engine's counts switch-over population size.  Part
        of every job (and hence of the store identity and the worker-side
        execution), so cached artifacts never mix thresholds.
    store:
        A :class:`ResultStore` (or directory path) to persist result
        artifacts into; ``None`` disables persistence (and ``resume``).
    resume:
        Skip experiments whose identity already has a stored table and
        report them as ``"cached"``.
    log:
        Progress callback (one line per event); ``None`` silences it.

    Returns
    -------
    list of ExperimentRunReport
        One report per requested ``(seed, experiment)`` pair, in request
        order, each carrying the (fresh or cached) :class:`ExperimentTable`.
        A job that raises on both attempts is reported as ``"failed"``
        with a structured failure table (not persisted to the store) —
        the sweep itself always completes.
    """
    if log is None:
        def log(message: str) -> None:  # noqa: ANN001 - simple sink
            pass
    if experiment_ids is None:
        experiment_ids = registered_ids()
    if seeds is None:
        seeds = (int(seed),)
    if isinstance(store, (str, Path)):
        store = ResultStore(store)
    if resume and store is None:
        raise ValueError("resume=True requires a result store")

    request = [
        (int(base_seed), experiment_id)
        for base_seed in seeds
        for experiment_id in experiment_ids
    ]
    jobs_by_key: Dict[tuple, ExperimentJob] = {}
    reports: Dict[tuple, ExperimentRunReport] = {}
    for base_seed, experiment_id in request:
        spec = get_spec(experiment_id)
        if engine is not None and not spec.supports_engine(engine):
            log(
                f"{experiment_id}: skipped — engine {engine!r} unsupported "
                f"(supported: {', '.join(spec.supported_engines)})"
            )
            reports[(base_seed, experiment_id)] = ExperimentRunReport(
                experiment_id=experiment_id,
                status="skipped",
                seconds=0.0,
                base_seed=base_seed,
            )
            continue
        jobs_by_key[(base_seed, experiment_id)] = ExperimentJob(
            experiment_id=experiment_id,
            full=full,
            seed=job_seed(base_seed, spec),
            engine=engine,
            counts_threshold=counts_threshold,
        )

    pending: List[tuple] = []
    for key, job in jobs_by_key.items():
        cached = store.get(job) if (resume and store is not None) else None
        if cached is not None:
            log(
                f"{key[1]}: cached ({store.key_of(job.identity())[:16]})"
            )
            reports[key] = ExperimentRunReport(
                experiment_id=key[1],
                status="cached",
                seconds=0.0,
                table=cached,
                base_seed=key[0],
            )
        else:
            pending.append(key)

    if pending:
        log(
            f"running {len(pending)} experiment job(s) with "
            f"{'1 process' if jobs <= 1 else f'{jobs} processes'}"
        )
        pending_jobs = [jobs_by_key[key] for key in pending]
        if jobs <= 1 or len(pending_jobs) == 1:
            outcomes = _run_jobs_serial(pending_jobs, log)
        else:
            outcomes = _run_jobs_parallel(pending_jobs, jobs, log)
        for key, job, (table, status, error) in zip(
            pending, pending_jobs, outcomes
        ):
            seconds = 0.0
            if status == "ran":
                if store is not None:
                    store.put(job, table)
                seconds = float(table.provenance.get("seconds", 0.0))
                log(f"{job.experiment_id}: ran in {seconds:.2f}s")
            reports[key] = ExperimentRunReport(
                experiment_id=job.experiment_id,
                status=status,
                seconds=seconds,
                table=table,
                base_seed=key[0],
                error=error,
            )

    return [reports[key] for key in request]
