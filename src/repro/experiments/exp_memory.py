"""Experiment E11 — the memory bound ``O(log log n + log(1/eps))`` bits.

Theorems 1 and 2 bound the per-node memory of the protocol.  The experiment
builds the concrete schedule for a grid of ``n`` and ``eps`` values, counts
the bits the protocol actually needs (opinion register, phase and round
counters, Stage-2 sample counters), and compares the total against the
asymptotic bound ``k * (log2 log2 n + log2(1/eps))``.

The reproduced trend: the measured bits grow like the bound (the ratio
measured/bound stays bounded as ``n`` grows at fixed ``eps`` and as ``eps``
shrinks at fixed ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.memory import memory_bound_bits, protocol_memory_usage
from repro.core.schedule import ProtocolSchedule
from repro.experiments.results import ExperimentTable
from repro.experiments.spec import register_experiment
from repro.utils.rng import RandomState

__all__ = ["MemoryConfig", "run"]

_TITLE = "Per-node memory of the protocol vs. the O(log log n + log 1/eps) bound"
_PAPER_CLAIM = (
    "Theorems 1/2: the protocol uses O(log log n + log(1/eps)) bits of "
    "memory per node (each node only counts opinions within a phase)"
)


@dataclass
class MemoryConfig:
    """Parameters of the E11 evaluation."""

    num_nodes_grid: Sequence[int] = (1_000, 10_000, 100_000, 1_000_000)
    epsilon_grid: Sequence[float] = (0.4, 0.2, 0.1, 0.05)
    num_opinions: int = 4

    @classmethod
    def quick(cls) -> "MemoryConfig":
        """The default grid (already instantaneous: no simulation involved)."""
        return cls()

    @classmethod
    def full(cls) -> "MemoryConfig":
        """A wider grid reaching further into the asymptotic regime."""
        return cls(
            num_nodes_grid=(10**3, 10**4, 10**5, 10**6, 10**7, 10**8),
            epsilon_grid=(0.4, 0.2, 0.1, 0.05, 0.02, 0.01),
        )


@register_experiment(
    experiment_id="E11",
    description="Memory bound",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("sequential",),
    config_cls=MemoryConfig,
)
def run(
    config: Optional[MemoryConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E11 evaluation and return the result table."""
    config = config or MemoryConfig.quick()
    table = ExperimentTable(
        experiment_id="E11",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    ratios = []
    for num_nodes in config.num_nodes_grid:
        for epsilon in config.epsilon_grid:
            schedule = ProtocolSchedule.for_population(num_nodes, epsilon)
            usage = protocol_memory_usage(schedule, config.num_opinions)
            bound = memory_bound_bits(num_nodes, epsilon, config.num_opinions)
            ratio = usage.total_bits / bound
            ratios.append(ratio)
            table.add_record(
                n=num_nodes,
                epsilon=epsilon,
                k=config.num_opinions,
                opinion_bits=usage.opinion_bits,
                phase_counter_bits=usage.phase_counter_bits,
                round_counter_bits=usage.round_counter_bits,
                sample_counter_bits=usage.sample_counter_bits,
                total_bits=usage.total_bits,
                bound_bits=bound,
                measured_over_bound=ratio,
            )
    table.add_note(
        "measured_over_bound stays bounded "
        f"(max {max(ratios):.2f} across the grid), matching the asymptotic claim"
    )
    return table
