"""Experiment E2 — Theorem 2: plurality consensus from a partial, biased start.

The Theorem 2 setting: an initial set ``S`` of opinionated nodes (the rest
undecided) whose plurality opinion leads every rival by a bias of
``Omega(sqrt(log n / |S|))`` within ``S``.  The experiment sweeps the support
size ``|S|`` and the bias within the support, runs the full two-stage
protocol, and records the success probability of reaching consensus on the
initial plurality opinion.

The reproduced trend: configurations whose bias clears the
``sqrt(log n / |S|)`` requirement succeed (nearly) always, while
configurations well below the requirement degrade toward chance.

Repeated trials route through the shared trial runner
(:func:`~repro.experiments.runner.protocol_trial_outcomes`), so the sweep
runs on the batched ensemble engine by default; set
``trial_engine="sequential"`` to cross-check against the reference loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.convergence import estimate_success_probability
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import protocol_trial_outcomes
from repro.experiments.spec import register_experiment
from repro.experiments.workloads import plurality_instance_with_bias
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState, derive_seed

__all__ = ["PluralityConsensusConfig", "run"]

_TITLE = "Plurality consensus: success vs. support size and initial bias"
_PAPER_CLAIM = (
    "Theorem 2: with |S| = Omega(log n / eps^2) opinionated nodes and a "
    "plurality bias of Omega(sqrt(log n / |S|)) within S, all nodes adopt "
    "the plurality opinion w.h.p. in O(log n / eps^2) rounds"
)


@dataclass
class PluralityConsensusConfig:
    """Parameters of the E2 sweep."""

    num_nodes: int = 2000
    num_opinions: int = 3
    epsilon: float = 0.3
    support_fractions: Sequence[float] = (0.05, 0.2, 1.0)
    bias_multipliers: Sequence[float] = (0.5, 2.0, 4.0)
    num_trials: int = 5
    round_scale: float = 1.0
    trial_engine: str = "batched"

    @classmethod
    def quick(cls) -> "PluralityConsensusConfig":
        """A configuration that completes in well under a minute."""
        return cls(
            num_nodes=1000,
            support_fractions=(0.1, 1.0),
            bias_multipliers=(0.5, 3.0),
            num_trials=3,
        )

    @classmethod
    def full(cls) -> "PluralityConsensusConfig":
        """A larger sweep (a few minutes)."""
        return cls(
            num_nodes=5000,
            support_fractions=(0.02, 0.1, 0.5, 1.0),
            bias_multipliers=(0.25, 1.0, 2.0, 4.0),
            num_trials=10,
        )


@register_experiment(
    experiment_id="E2",
    description="Theorem 2: plurality consensus",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("batched", "sequential", "counts"),
    config_cls=PluralityConsensusConfig,
)
def run(
    config: Optional[PluralityConsensusConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E2 sweep and return the result table."""
    config = config or PluralityConsensusConfig.quick()
    table = ExperimentTable(
        experiment_id="E2",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    log_n = math.log(config.num_nodes)
    minimum_support = log_n / (config.epsilon**2)
    for support_fraction in config.support_fractions:
        support_size = max(config.num_opinions, int(support_fraction * config.num_nodes))
        required_bias = math.sqrt(log_n / support_size)
        for multiplier in config.bias_multipliers:
            bias_within_support = min(0.9, multiplier * required_bias)
            instance = plurality_instance_with_bias(
                config.num_nodes,
                support_size,
                config.num_opinions,
                bias_within_support,
            )
            initial_state = instance.initial_state(
                derive_seed(random_state, len(table))
            )
            outcomes = protocol_trial_outcomes(
                initial_state,
                noise,
                config.epsilon,
                config.num_trials,
                random_state,
                target_opinion=instance.plurality_opinion(),
                round_scale=config.round_scale,
                trial_engine=config.trial_engine,
            )
            success_rate, interval = estimate_success_probability(
                [outcome.success for outcome in outcomes]
            )
            mean_rounds = float(
                np.mean([outcome.total_rounds for outcome in outcomes])
            )
            table.add_record(
                n=config.num_nodes,
                support_size=support_size,
                support_meets_theorem=support_size >= minimum_support,
                bias_within_support=instance.plurality_bias_within_support(),
                required_bias=required_bias,
                bias_over_required=instance.plurality_bias_within_support()
                / required_bias,
                success_rate=success_rate,
                success_low=interval[0],
                success_high=interval[1],
                mean_rounds=mean_rounds,
            )
    table.add_note(
        f"Theorem 2 needs |S| >= ~log(n)/eps^2 = {minimum_support:.0f} nodes here; "
        f"trial engine: {config.trial_engine}"
    )
    return table
