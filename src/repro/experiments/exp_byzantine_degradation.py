"""Experiment E15 — success probability under fault injection.

The fault subsystem (:mod:`repro.faults`) models four adversary
families against the push-based protocols: **crash** (faulty nodes fall
silent after a configured round), **omission** (each faulty message is
dropped independently), the **random-liar** Byzantine adversary (faulty
nodes push uniformly random opinions), and the **adaptive**
plurality-targeting Byzantine adversary (faulty nodes push the current
runner-up opinion, actively fighting the plurality signal).

This experiment charts the success probability of the rumor-spreading
and plurality-consensus workloads as the faulty fraction ``f`` grows,
for every adversary family, via one :class:`~repro.sim.sweep.ScenarioGrid`
per workload with a swept ``faults`` axis (a fault-free ``faults=None``
reference point leads each sweep).  Expectations:

* the oblivious families degrade success gracefully — crash and omission
  mostly *remove* useful messages, the random liar adds unbiased noise
  that the epsilon-noise analysis already tolerates;
* the adaptive adversary is strictly more damaging at equal ``f``
  because its balls are concentrated on the plurality's strongest rival;
* the adaptive family admits no counts-tier sufficient statistic, so on
  the counts (or auto-resolved-counts) engine those grid points
  *degrade* to the batched tier; the table records the degraded engine
  and the provenance reason instead of erroring — the graceful-
  degradation contract this PR introduces.

Registered as E15 with quick/full configurations; the repeated trials
run on any sampling tier (``trial_engine``), with the degradation rule
above applying per grid point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.results import ExperimentTable
from repro.experiments.spec import register_experiment
from repro.faults import FaultModel
from repro.sim import Scenario, ScenarioGrid, simulate_sweep
from repro.utils.rng import RandomState, derive_seed

__all__ = ["ByzantineDegradationConfig", "run"]

_TITLE = "Fault injection: success probability vs faulty fraction f"
_PAPER_CLAIM = (
    "Robustness of the noisy push protocols: oblivious faults (crash, "
    "omission, uniform liars) act like removed or unbiased-noise messages "
    "and degrade success gracefully, while an adaptive plurality-targeting "
    "adversary is strictly more damaging at equal f"
)

#: The adversary families swept by the experiment, in table order.
ADVERSARIES: Tuple[str, ...] = ("crash", "omission", "liar", "adaptive")


@dataclass
class ByzantineDegradationConfig:
    """Parameters of the E15 fault sweep.

    ``fractions`` are the faulty fractions ``f`` swept per adversary
    family; every sweep is led by a fault-free reference point.
    ``trial_engine`` is the *requested* sampling tier — adaptive grid
    points degrade counts to batched per the fault-degradation rule, and
    the table records the engine each point actually ran on.
    """

    num_nodes: int = 200
    num_opinions: int = 3
    epsilon: float = 0.3
    plurality_bias: float = 0.3
    fractions: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.3)
    crash_round: int = 3
    drop_rate: float = 0.5
    num_trials: int = 100
    trial_engine: str = "counts"

    @classmethod
    def quick(cls) -> "ByzantineDegradationConfig":
        """A configuration that completes in a few seconds."""
        return cls(num_nodes=120, fractions=(0.05, 0.2), num_trials=24)

    @classmethod
    def full(cls) -> "ByzantineDegradationConfig":
        """The full sweep (finer f grid, tighter rate estimates)."""
        return cls(
            num_nodes=600,
            fractions=(0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4),
            num_trials=400,
        )


def _fault_axis(config: ByzantineDegradationConfig) -> List[Optional[FaultModel]]:
    """The swept ``faults`` values: fault-free first, then every family."""
    axis: List[Optional[FaultModel]] = [None]
    for kind in ADVERSARIES:
        for fraction in config.fractions:
            knobs = {"kind": kind, "fraction": float(fraction)}
            if kind == "crash":
                knobs["crash_round"] = config.crash_round
            elif kind == "omission":
                knobs["drop_rate"] = config.drop_rate
            axis.append(FaultModel(**knobs))
    return axis


def _workload_grid(
    config: ByzantineDegradationConfig, workload: str, seed: int
) -> ScenarioGrid:
    base = Scenario(
        workload=workload,
        num_nodes=config.num_nodes,
        num_opinions=config.num_opinions,
        epsilon=config.epsilon,
        bias=config.plurality_bias if workload == "plurality" else 0.0,
        engine=config.trial_engine,
        num_trials=config.num_trials,
        seed=seed,
    )
    return ScenarioGrid(base, {"faults": _fault_axis(config)})


@register_experiment(
    experiment_id="E15",
    description="Success probability vs faulty fraction across adversaries",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("counts", "batched", "sequential"),
    config_cls=ByzantineDegradationConfig,
)
def run(
    config: Optional[ByzantineDegradationConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Sweep success probability over (workload, adversary, f)."""
    if config is None:
        config = ByzantineDegradationConfig.quick()
    table = ExperimentTable(
        experiment_id="E15", title=_TITLE, paper_claim=_PAPER_CLAIM
    )

    degraded_points = 0
    for workload_index, workload in enumerate(("rumor", "plurality")):
        grid = _workload_grid(
            config, workload, derive_seed(random_state, workload_index)
        )
        sweep = simulate_sweep(grid)
        for index, result in enumerate(sweep):
            faults = grid.point_overrides(index)["faults"]
            reason = result.provenance.get("engine_degraded_reason")
            if reason is not None:
                degraded_points += 1
            table.add_record(
                workload=workload,
                adversary=faults.kind if faults is not None else "none",
                fraction=float(faults.fraction) if faults is not None else 0.0,
                num_nodes=config.num_nodes,
                num_trials=result.num_trials,
                engine=result.provenance["engine"],
                engine_degraded_reason=reason,
                success_rate=float(np.mean(result.successes)),
                mean_rounds=float(np.mean(result.rounds)),
            )

    table.add_note(
        f"requested trial engine: {config.trial_engine}; adversary order: "
        + ", ".join(ADVERSARIES)
    )
    table.add_note(
        f"{degraded_points} adaptive grid points degraded counts -> batched "
        "(engine_degraded_reason column); oblivious families keep their "
        "counts-tier sufficient statistics"
    )
    if "crash" in ADVERSARIES:
        table.add_note(
            f"crash adversary falls silent after round {config.crash_round}; "
            f"omission drops each faulty message w.p. {config.drop_rate}"
        )
    return table
