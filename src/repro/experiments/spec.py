"""Declarative experiment specifications and the module-decorator registry.

Every reproduced statement of the paper is described by one
:class:`ExperimentSpec`: its id (``"E1"`` … ``"E15"``), the paper claim it
reproduces, zero-argument constructors for its quick and full
configurations, the ``run`` function, and — crucially for the orchestration
layer — the set of *trial engines* the experiment supports.  Experiment
modules register themselves at import time with the
:func:`register_experiment` decorator, so the registry replaces the
hand-maintained experiment dictionary the CLI used to carry:

    @register_experiment(
        experiment_id="E1",
        description="Theorem 1: rumor-spreading scaling",
        title="...",
        paper_claim="...",
        config_cls=RumorScalingConfig,
        supported_engines=("batched", "sequential", "counts"),
    )
    def run(config=None, random_state=0) -> ExperimentTable: ...

``supported_engines`` names the concrete engines of
:data:`~repro.experiments.runner.TRIAL_ENGINES` the experiment can route its
repeated trials through.  Experiments whose measurement is inherently
per-node or analytic (memory traces, exact probability computations,
topology sweeps over per-node graph engines) declare
``supported_engines=("sequential",)``; the CLI rejects any other request
with an explicit error instead of silently ignoring it.  The pseudo-engine
``"auto"`` is accepted exactly when the spec supports both engines it
arbitrates between (``"batched"`` and ``"counts"``).

The registry is the single source of truth for the CLI
(``list-experiments``, ``run-experiment``, ``run-all``) and for the
:mod:`~repro.experiments.orchestrator`'s content-keyed result store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.results import ExperimentTable
from repro.experiments.runner import TRIAL_ENGINES

#: Engine names an experiment may declare in ``supported_engines``: the
#: per-trial engines plus the distribution-level ``"analytic"`` tier (for
#: experiments that compute exact probabilities through ``repro.sim``
#: instead of sampling trials).
DECLARABLE_ENGINES = TRIAL_ENGINES + ("analytic",)

__all__ = [
    "DECLARABLE_ENGINES",
    "ExperimentSpec",
    "register_experiment",
    "get_spec",
    "all_specs",
    "registered_ids",
    "UnsupportedEngineError",
]


class UnsupportedEngineError(ValueError):
    """Raised when an experiment is asked to run on an engine it lacks."""


@dataclass(frozen=True)
class ExperimentSpec:
    """The declarative description of one registered experiment.

    Attributes
    ----------
    experiment_id:
        The experiment index id (``"E1"`` … ``"E15"``).
    title:
        Human-readable one-line title (what the result table is about).
    paper_claim:
        The paper statement (theorem/lemma/claim) the experiment reproduces.
    description:
        The short index line shown by ``list-experiments``.
    quick_config, full_config:
        Zero-argument callables building the quick/full configuration, or
        ``None`` when the experiment takes no configuration object.
    run_fn:
        ``run(config, random_state) -> ExperimentTable``.
    supported_engines:
        The concrete trial engines (subset of
        :data:`~repro.experiments.runner.TRIAL_ENGINES`) the experiment can
        execute its repeated trials on.
    config_cls:
        The configuration dataclass (``None`` for config-free experiments);
        kept so callers can build custom configurations programmatically.
    module_name:
        The defining module's import path (used by the orchestrator's
        code-version fingerprint).
    """

    experiment_id: str
    title: str
    paper_claim: str
    description: str
    quick_config: Optional[Callable[[], Any]]
    full_config: Optional[Callable[[], Any]]
    run_fn: Callable[..., ExperimentTable]
    supported_engines: Tuple[str, ...]
    config_cls: Optional[type] = None
    module_name: str = ""

    @property
    def index(self) -> int:
        """The numeric part of the experiment id (for stable ordering)."""
        return int(self.experiment_id[1:])

    def supports_engine(self, engine: str) -> bool:
        """``True`` iff ``engine`` is a valid trial engine for this spec.

        Concrete engines must be declared; the ``"auto"`` choice is valid
        exactly when the spec supports both engines auto arbitrates
        between (``"batched"`` and ``"counts"``).
        """
        if engine == "auto":
            return {"batched", "counts"} <= set(self.supported_engines)
        return engine in self.supported_engines

    def validate_engine(self, engine: str) -> str:
        """Return ``engine`` if supported, else raise a clear error."""
        if self.supports_engine(engine):
            return engine
        raise UnsupportedEngineError(
            f"experiment {self.experiment_id} does not support "
            f"--engine {engine}; supported engines: "
            f"{', '.join(self.supported_engines)}"
        )

    def build_config(self, full: bool = False) -> Any:
        """The quick (default) or full configuration, ``None`` if config-free."""
        constructor = self.full_config if full else self.quick_config
        return constructor() if constructor is not None else None

    def run(self, config: Any = None, random_state: Any = 0) -> ExperimentTable:
        """Execute the experiment (quick configuration when ``config=None``)."""
        return self.run_fn(config, random_state=random_state)


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(
    *,
    experiment_id: str,
    description: str,
    title: str,
    paper_claim: str,
    supported_engines: Tuple[str, ...],
    config_cls: Optional[type] = None,
) -> Callable[[Callable[..., ExperimentTable]], Callable[..., ExperimentTable]]:
    """Class the decorated ``run`` function under ``experiment_id``.

    The decorator validates the declaration (id shape, engine names, the
    ``quick``/``full`` constructors of ``config_cls``) and stores an
    :class:`ExperimentSpec` in the module-level registry.  Re-registering an
    id replaces the previous spec (so ``importlib.reload`` of an experiment
    module keeps working).
    """
    if not experiment_id.startswith("E") or not experiment_id[1:].isdigit():
        raise ValueError(
            f"experiment_id must look like 'E<number>', got {experiment_id!r}"
        )
    if not supported_engines:
        raise ValueError(
            f"{experiment_id}: supported_engines must name at least one of "
            f"{DECLARABLE_ENGINES}"
        )
    unknown = [e for e in supported_engines if e not in DECLARABLE_ENGINES]
    if unknown:
        raise ValueError(
            f"{experiment_id}: unknown engines {unknown}; valid engines are "
            f"{DECLARABLE_ENGINES}"
        )
    if config_cls is not None and not (
        callable(getattr(config_cls, "quick", None))
        and callable(getattr(config_cls, "full", None))
    ):
        raise ValueError(
            f"{experiment_id}: config_cls must provide quick() and full() "
            "constructors"
        )

    def decorator(run_fn: Callable[..., ExperimentTable]):
        spec = ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            paper_claim=paper_claim,
            description=description,
            quick_config=(
                config_cls.quick if config_cls is not None else None
            ),
            full_config=(
                config_cls.full if config_cls is not None else None
            ),
            run_fn=run_fn,
            supported_engines=tuple(supported_engines),
            config_cls=config_cls,
            module_name=run_fn.__module__,
        )
        _REGISTRY[experiment_id] = spec
        return run_fn

    return decorator


def get_spec(experiment_id: str) -> ExperimentSpec:
    """The registered spec for ``experiment_id`` (KeyError with a hint if absent)."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(registered_ids())
        raise KeyError(
            f"no experiment registered under {experiment_id!r}; known "
            f"experiments: {known}"
        ) from None


def all_specs() -> List[ExperimentSpec]:
    """Every registered spec, ordered by numeric experiment id."""
    return sorted(_REGISTRY.values(), key=lambda spec: spec.index)


def registered_ids() -> List[str]:
    """The registered experiment ids, ordered numerically."""
    return [spec.experiment_id for spec in all_specs()]
