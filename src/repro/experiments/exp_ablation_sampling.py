"""Experiment E13 — ablations of two implementation decisions.

Two design choices called out in DESIGN.md are ablated here:

1. **Sampling rule.**  Stage 2 has nodes vote on a bounded uniform sample of
   size ``L`` (reservoir semantics, "without replacement"); the ablation
   compares that against (a) sampling with replacement from the received
   multiset and (b) voting on the *entire* received multiset (the
   memory-unbounded variant).  The paper's analysis covers (without
   replacement); the ablation shows the outcome is insensitive to the choice,
   while only the bounded-sample variants respect the memory bound.

2. **Delivery engine.**  The vectorized push engine versus the naive
   per-message reference implementation: statistically they are the same
   process (the tests check distributional agreement), so the ablation here
   records the wall-clock speedup at a fixed workload — the quantity that
   justifies the vectorized design.  (The timing comparison also runs inside
   the benchmark harness, where pytest-benchmark measures it properly.)

The sampling ablation routes through the engine-aware
:func:`~repro.experiments.runner.stage2_trial_trajectories`, so it runs on
the batched ensemble engine by default (``trial_engine="sequential"`` for
the reference loop).  The counts engine is unsupported: the ablated
variants condition on per-node arrival totals, which the sufficient
statistics deliberately discard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional


from repro.analysis.convergence import estimate_success_probability
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import stage2_trial_trajectories
from repro.experiments.spec import register_experiment
from repro.experiments.workloads import ensemble_biased_population
from repro.network.push_model import UniformPushModel
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState, as_generator, derive_seed

__all__ = ["AblationConfig", "run"]

_TITLE = "Ablations: Stage-2 voting rule and delivery-engine implementation"
_PAPER_CLAIM = (
    "Design decisions (DESIGN.md): reservoir sampling keeps the memory bound "
    "without hurting convergence; the vectorized engine is what makes "
    "laptop-scale sweeps feasible"
)


@dataclass
class AblationConfig:
    """Parameters of the E13 ablations.

    ``trial_engine`` selects the sampling ablation's repeated-trial engine
    (``"batched"`` or ``"sequential"``; the ablated voting rules condition
    on per-node state, so the counts engine is unsupported).
    """

    num_nodes: int = 1200
    num_opinions: int = 3
    epsilon: float = 0.3
    initial_bias: float = 0.08
    num_trials: int = 4
    timing_nodes: int = 400
    timing_rounds: int = 20
    trial_engine: str = "batched"

    @classmethod
    def quick(cls) -> "AblationConfig":
        """A configuration that completes in under a minute."""
        return cls(num_nodes=800, num_trials=3, timing_nodes=200, timing_rounds=10)

    @classmethod
    def full(cls) -> "AblationConfig":
        """A larger ablation."""
        return cls(num_nodes=5000, num_trials=10, timing_nodes=1000, timing_rounds=40)


def _sampling_ablation(
    config: AblationConfig, random_state, table: ExperimentTable
) -> None:
    """Compare the three Stage-2 voting variants."""
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    variants = (
        ("reservoir sample (paper)", "without_replacement", False),
        ("sample with replacement", "with_replacement", False),
        ("full received multiset", "without_replacement", True),
    )
    initial_states = ensemble_biased_population(
        config.num_nodes,
        config.num_opinions,
        config.initial_bias,
        config.num_trials,
        random_state=derive_seed(random_state, 0),
    )
    for label, method, full_multiset in variants:
        trajectories = stage2_trial_trajectories(
            initial_states,
            noise,
            config.epsilon,
            config.num_trials,
            derive_seed(random_state, 1),
            track_opinion=1,
            sampling_method=method,
            use_full_multiset=full_multiset,
            trial_engine=config.trial_engine,
        )
        success_rate, _ = estimate_success_probability(
            [bool(flag) for flag in trajectories.consensus]
        )
        table.add_record(
            ablation="stage2 voting rule",
            variant=label,
            success_rate=success_rate,
            mean_final_bias=float(trajectories.final_biases.mean()),
            speedup=None,
        )


def _engine_ablation(
    config: AblationConfig, random_state, table: ExperimentTable
) -> None:
    """Time the vectorized push engine against the naive reference."""
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    rng = as_generator(random_state)
    sender_opinions = rng.integers(
        1, config.num_opinions + 1, size=config.timing_nodes
    )
    engine = UniformPushModel(config.timing_nodes, noise, rng)

    start = time.perf_counter()
    engine.run_phase(sender_opinions, config.timing_rounds)
    vectorized_seconds = time.perf_counter() - start

    start = time.perf_counter()
    engine.run_phase_naive(sender_opinions, config.timing_rounds)
    naive_seconds = time.perf_counter() - start

    table.add_record(
        ablation="delivery engine",
        variant="vectorized vs naive per-message loop",
        success_rate=None,
        mean_final_bias=None,
        speedup=naive_seconds / max(vectorized_seconds, 1e-9),
    )


@register_experiment(
    experiment_id="E13",
    description="Ablations: sampling rule, engine",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("batched", "sequential"),
    config_cls=AblationConfig,
)
def run(
    config: Optional[AblationConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E13 ablations and return the result table."""
    config = config or AblationConfig.quick()
    table = ExperimentTable(
        experiment_id="E13",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    _sampling_ablation(config, random_state, table)
    _engine_ablation(config, random_state, table)
    table.add_note(f"sampling-ablation trial engine: {config.trial_engine}")
    return table
