"""Experiment E13 — ablations of two implementation decisions.

Two design choices called out in DESIGN.md are ablated here:

1. **Sampling rule.**  Stage 2 has nodes vote on a bounded uniform sample of
   size ``L`` (reservoir semantics, "without replacement"); the ablation
   compares that against (a) sampling with replacement from the received
   multiset and (b) voting on the *entire* received multiset (the
   memory-unbounded variant).  The paper's analysis covers (without
   replacement); the ablation shows the outcome is insensitive to the choice,
   while only the bounded-sample variants respect the memory bound.

2. **Delivery engine.**  The vectorized push engine versus the naive
   per-message reference implementation: statistically they are the same
   process (the tests check distributional agreement), so the ablation here
   records the wall-clock speedup at a fixed workload — the quantity that
   justifies the vectorized design.  (The timing comparison also runs inside
   the benchmark harness, where pytest-benchmark measures it properly.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.convergence import estimate_success_probability
from repro.core.schedule import Stage2Schedule
from repro.core.stage2 import Stage2Executor
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import repeat_trials
from repro.experiments.workloads import biased_population
from repro.network.push_model import UniformPushModel
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState, as_generator

__all__ = ["AblationConfig", "run"]


@dataclass
class AblationConfig:
    """Parameters of the E13 ablations."""

    num_nodes: int = 1200
    num_opinions: int = 3
    epsilon: float = 0.3
    initial_bias: float = 0.08
    num_trials: int = 4
    timing_nodes: int = 400
    timing_rounds: int = 20

    @classmethod
    def quick(cls) -> "AblationConfig":
        """A configuration that completes in under a minute."""
        return cls(num_nodes=800, num_trials=3, timing_nodes=200, timing_rounds=10)

    @classmethod
    def full(cls) -> "AblationConfig":
        """A larger ablation."""
        return cls(num_nodes=5000, num_trials=10, timing_nodes=1000, timing_rounds=40)


def _sampling_ablation(
    config: AblationConfig, random_state, table: ExperimentTable
) -> None:
    """Compare the three Stage-2 voting variants."""
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    schedule = Stage2Schedule.for_population(config.num_nodes, config.epsilon)
    variants = (
        ("reservoir sample (paper)", "without_replacement", False),
        ("sample with replacement", "with_replacement", False),
        ("full received multiset", "without_replacement", True),
    )
    for label, method, full_multiset in variants:

        def trial(rng: np.random.Generator):
            initial = biased_population(
                config.num_nodes,
                config.num_opinions,
                config.initial_bias,
                random_state=rng,
            )
            engine = UniformPushModel(config.num_nodes, noise, rng)
            executor = Stage2Executor(
                engine,
                schedule,
                rng,
                sampling_method=method,
                use_full_multiset=full_multiset,
            )
            final_state, _ = executor.run(initial, track_opinion=1)
            return final_state.has_consensus_on(1), final_state.bias_toward(1)

        outcomes = repeat_trials(trial, config.num_trials, random_state)
        success_rate, _ = estimate_success_probability(
            [success for success, _ in outcomes]
        )
        table.add_record(
            ablation="stage2 voting rule",
            variant=label,
            success_rate=success_rate,
            mean_final_bias=float(np.mean([bias for _, bias in outcomes])),
            speedup=None,
        )


def _engine_ablation(
    config: AblationConfig, random_state, table: ExperimentTable
) -> None:
    """Time the vectorized push engine against the naive reference."""
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    rng = as_generator(random_state)
    sender_opinions = rng.integers(
        1, config.num_opinions + 1, size=config.timing_nodes
    )
    engine = UniformPushModel(config.timing_nodes, noise, rng)

    start = time.perf_counter()
    engine.run_phase(sender_opinions, config.timing_rounds)
    vectorized_seconds = time.perf_counter() - start

    start = time.perf_counter()
    engine.run_phase_naive(sender_opinions, config.timing_rounds)
    naive_seconds = time.perf_counter() - start

    table.add_record(
        ablation="delivery engine",
        variant="vectorized vs naive per-message loop",
        success_rate=None,
        mean_final_bias=None,
        speedup=naive_seconds / max(vectorized_seconds, 1e-9),
    )


def run(
    config: Optional[AblationConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E13 ablations and return the result table."""
    config = config or AblationConfig.quick()
    table = ExperimentTable(
        experiment_id="E13",
        title="Ablations: Stage-2 voting rule and delivery-engine implementation",
        paper_claim=(
            "Design decisions (DESIGN.md): reservoir sampling keeps the memory bound "
            "without hurting convergence; the vectorized engine is what makes "
            "laptop-scale sweeps feasible"
        ),
    )
    _sampling_ablation(config, random_state, table)
    _engine_ablation(config, random_state, table)
    return table
