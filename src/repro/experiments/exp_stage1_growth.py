"""Experiment E4 — Claims 2/3: geometric growth of the opinionated set.

Claim 2 bounds the number of opinionated nodes after phase 0 of Stage 1
(roughly ``(s/eps^2) log n``, up to a constant), and Claim 3 states that each
subsequent growth phase multiplies the opinionated count by roughly
``beta/eps^2 + 1`` (within a factor-8 envelope).  The experiment runs Stage 1
once per trial, records the opinionated fraction after every phase, and
checks it against the claimed envelope.

The per-phase trajectories route through the engine-aware
:func:`~repro.experiments.runner.stage1_trial_trajectories`, so the
experiment runs on the batched ensemble engine by default and supports
``trial_engine="counts"`` / ``"sequential"`` / ``"auto"`` like the other
experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


from repro.analysis.theory import stage1_growth_envelope
from repro.core.schedule import DEFAULT_BETA, DEFAULT_S
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import stage1_trial_trajectories
from repro.experiments.spec import register_experiment
from repro.experiments.workloads import rumor_instance
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState

__all__ = ["Stage1GrowthConfig", "run"]

_TITLE = "Stage 1: per-phase growth of the opinionated set"
_PAPER_CLAIM = (
    "Claim 2/3: phase 0 opinionates Theta((s/eps^2) log n) nodes, and each "
    "growth phase multiplies the opinionated set by (beta/eps^2 + 1) up to "
    "a constant-factor envelope"
)


@dataclass
class Stage1GrowthConfig:
    """Parameters of the E4 run.

    ``trial_engine`` selects the repeated-trial execution engine
    (``"batched"``, ``"sequential"``, ``"counts"`` or ``"auto"``).
    """

    num_nodes: int = 4000
    num_opinions: int = 3
    epsilon: float = 0.3
    num_trials: int = 5
    envelope_slack: float = 2.0
    trial_engine: str = "batched"

    @classmethod
    def quick(cls) -> "Stage1GrowthConfig":
        """A configuration that completes in seconds."""
        return cls(num_nodes=2000, num_trials=3)

    @classmethod
    def full(cls) -> "Stage1GrowthConfig":
        """A configuration with a larger population."""
        return cls(num_nodes=20000, num_trials=10)


@register_experiment(
    experiment_id="E4",
    description="Claims 2/3: Stage-1 growth",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("batched", "sequential", "counts"),
    config_cls=Stage1GrowthConfig,
)
def run(
    config: Optional[Stage1GrowthConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E4 experiment and return the per-phase growth table."""
    config = config or Stage1GrowthConfig.quick()
    table = ExperimentTable(
        experiment_id="E4",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    noise = uniform_noise_matrix(config.num_opinions, config.epsilon)
    trajectories = stage1_trial_trajectories(
        rumor_instance(config.num_nodes, config.num_opinions, 1),
        noise,
        config.epsilon,
        config.num_trials,
        random_state,
        track_opinion=1,
        trial_engine=config.trial_engine,
    )
    mean_trajectory = trajectories.opinionated_fractions.mean(axis=0)

    # The Claim 2 prediction for the fraction opinionated after phase 0.
    phase0_prediction = min(
        1.0,
        DEFAULT_S
        / (config.epsilon**2)
        * math.log2(config.num_nodes)
        / config.num_nodes,
    )
    fraction_after_phase0 = float(mean_trajectory[0])
    for phase_index, fraction in enumerate(mean_trajectory):
        if phase_index == 0:
            lower, upper = phase0_prediction / 3.0, phase0_prediction
        else:
            lower, upper = stage1_growth_envelope(
                fraction_after_phase0,
                config.epsilon,
                DEFAULT_BETA,
                phase_index,
            )
        within = (
            fraction >= lower / config.envelope_slack
            and fraction <= min(1.0, upper * config.envelope_slack)
        )
        table.add_record(
            phase=phase_index,
            num_rounds=trajectories.phase_lengths[phase_index],
            mean_opinionated_fraction=float(fraction),
            envelope_lower=lower,
            envelope_upper=upper,
            within_envelope=within,
        )
    table.add_note(
        f"envelope checked with a slack factor of {config.envelope_slack} to "
        "absorb the unspecified constants of Claims 2/3; "
        f"trial engine: {config.trial_engine}"
    )
    return table
