"""Experiment E1 — Theorem 1: noisy rumor spreading in ``O(log n / eps^2)`` rounds.

For a grid of population sizes ``n`` and noise parameters ``eps`` (with the
canonical uniform-noise matrix over ``k`` opinions), the experiment runs the
full two-stage protocol from a single source and records:

* the empirical success probability (every node ends with the source's
  opinion) with a Wilson confidence interval,
* the mean number of communication rounds,
* the theoretical clock ``log2(n)/eps^2`` the rounds should scale with.

A final least-squares fit of mean rounds against the clock summarizes the
scaling; Theorem 1 predicts a near-constant proportionality factor and
success probability close to 1 throughout the grid (for ``eps`` well above
the ``n^(-1/4)`` threshold explored separately in E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.convergence import estimate_success_probability, fit_round_complexity
from repro.core.schedule import theoretical_round_complexity
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import protocol_trial_outcomes, summarize
from repro.experiments.spec import register_experiment
from repro.experiments.workloads import rumor_instance
from repro.noise.families import uniform_noise_matrix
from repro.utils.rng import RandomState

__all__ = ["RumorScalingConfig", "run"]

_TITLE = "Rumor spreading: success rate and round count vs. n and epsilon"
_PAPER_CLAIM = (
    "Theorem 1: with an (eps, delta)-majority-preserving noise matrix, "
    "rumor spreading with k opinions succeeds w.h.p. in O(log n / eps^2) rounds"
)


@dataclass
class RumorScalingConfig:
    """Parameters of the E1 sweep.

    ``trial_engine`` selects how the repeated trials of every grid point are
    executed: ``"batched"`` (the vectorized ensemble, default) or
    ``"sequential"`` (the reference single-trial loop).
    """

    num_nodes_grid: Sequence[int] = (500, 1000, 2000)
    epsilon_grid: Sequence[float] = (0.2, 0.3, 0.4)
    num_opinions: int = 3
    num_trials: int = 5
    round_scale: float = 1.0
    trial_engine: str = "batched"

    @classmethod
    def quick(cls) -> "RumorScalingConfig":
        """A configuration that completes in well under a minute."""
        return cls(
            num_nodes_grid=(300, 600, 1200),
            epsilon_grid=(0.25, 0.4),
            num_opinions=3,
            num_trials=3,
        )

    @classmethod
    def full(cls) -> "RumorScalingConfig":
        """A configuration closer to the asymptotic regime (a few minutes)."""
        return cls(
            num_nodes_grid=(1000, 2000, 4000, 8000),
            epsilon_grid=(0.15, 0.2, 0.3, 0.4),
            num_opinions=4,
            num_trials=10,
        )


@register_experiment(
    experiment_id="E1",
    description="Theorem 1: rumor-spreading scaling",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("batched", "sequential", "counts"),
    config_cls=RumorScalingConfig,
)
def run(
    config: Optional[RumorScalingConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E1 sweep and return the result table."""
    config = config or RumorScalingConfig.quick()
    table = ExperimentTable(
        experiment_id="E1",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    mean_rounds: List[float] = []
    nodes_for_fit: List[int] = []
    eps_for_fit: List[float] = []
    for num_nodes in config.num_nodes_grid:
        for epsilon in config.epsilon_grid:
            noise = uniform_noise_matrix(config.num_opinions, epsilon)
            outcomes = protocol_trial_outcomes(
                rumor_instance(num_nodes, config.num_opinions, 1),
                noise,
                epsilon,
                config.num_trials,
                random_state,
                target_opinion=1,
                round_scale=config.round_scale,
                trial_engine=config.trial_engine,
            )
            successes = [outcome.success for outcome in outcomes]
            rounds = [outcome.total_rounds for outcome in outcomes]
            success_rate, interval = estimate_success_probability(successes)
            rounds_summary = summarize(rounds)
            clock = theoretical_round_complexity(num_nodes, epsilon)
            table.add_record(
                n=num_nodes,
                epsilon=epsilon,
                k=config.num_opinions,
                trials=config.num_trials,
                success_rate=success_rate,
                success_low=interval[0],
                success_high=interval[1],
                mean_rounds=rounds_summary["mean"],
                theory_clock=clock,
                rounds_per_clock=rounds_summary["mean"] / clock,
            )
            mean_rounds.append(rounds_summary["mean"])
            nodes_for_fit.append(num_nodes)
            eps_for_fit.append(epsilon)
    fit = fit_round_complexity(nodes_for_fit, eps_for_fit, mean_rounds)
    table.add_note(
        f"least-squares fit: rounds ~ {fit.constant:.2f} * log2(n)/eps^2 "
        f"(relative residual {fit.relative_residual:.2%}); "
        f"trial engine: {config.trial_engine}"
    )
    return table
