"""Experiment E10 — Lemma 17 / Appendix C: the sample-size parity is harmless.

The Stage-2 analysis assumes the sample size ``l`` is odd.  Lemma 17 shows
that for two opinions the winning probability of the plurality opinion
satisfies

    ``Pr[maj_l = m] = Pr[maj_{l+1} = m] <= Pr[maj_{l+2} = m]``

(and the mirror statement for the rival), so rounding the sample size to the
next odd number never hurts; through the induction of Proposition 1 the
*monotonicity* (but not the exact equality, which is specific to ``k = 2``)
carries over to larger ``k``.  The experiment computes these probabilities
exactly for a range of odd ``l`` and checks the k = 2 equality and the
monotonicity for binary and ternary sampling distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.amplification import majority_probabilities_exact
from repro.experiments.results import ExperimentTable
from repro.experiments.spec import register_experiment
from repro.utils.rng import RandomState

__all__ = ["ParityConfig", "run"]

_TITLE = "Parity of the sample size: Pr[maj_l = m] for l, l+1, l+2"
_PAPER_CLAIM = (
    "Lemma 17: for odd l, Pr[maj_l = m] = Pr[maj_{l+1} = m] <= "
    "Pr[maj_{l+2} = m] (and symmetrically for the rival opinion)"
)


@dataclass
class ParityConfig:
    """Parameters of the E10 check."""

    sample_sizes: Sequence[int] = (3, 5, 9, 15, 25)
    binary_probabilities: Sequence[float] = (0.52, 0.6, 0.75)
    ternary_distributions: Sequence[Tuple[float, float, float]] = (
        (0.4, 0.35, 0.25),
        (0.5, 0.3, 0.2),
    )

    @classmethod
    def quick(cls) -> "ParityConfig":
        """A configuration that completes in seconds."""
        return cls(sample_sizes=(3, 5, 9), binary_probabilities=(0.55, 0.7))

    @classmethod
    def full(cls) -> "ParityConfig":
        """A wider grid of sample sizes."""
        return cls(sample_sizes=(3, 5, 9, 15, 25, 41, 61))


@register_experiment(
    experiment_id="E10",
    description="Lemma 17: sample-size parity",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("sequential",),
    config_cls=ParityConfig,
)
def run(
    config: Optional[ParityConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E10 check and return the result table."""
    config = config or ParityConfig.quick()
    table = ExperimentTable(
        experiment_id="E10",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    violations = 0

    def check(distribution: np.ndarray, label: str, *, expect_equality: bool) -> None:
        nonlocal violations
        for sample_size in config.sample_sizes:
            if sample_size % 2 == 0:
                raise ValueError("sample sizes in the parity check must be odd")
            prob_l = majority_probabilities_exact(distribution, sample_size)[0]
            prob_l1 = majority_probabilities_exact(distribution, sample_size + 1)[0]
            prob_l2 = majority_probabilities_exact(distribution, sample_size + 2)[0]
            equality_holds = bool(abs(prob_l - prob_l1) < 1e-9)
            monotone_nondecreasing = bool(
                prob_l2 >= prob_l1 - 1e-9 and prob_l1 >= prob_l - 1e-9
            )
            lemma_holds = monotone_nondecreasing and (
                equality_holds or not expect_equality
            )
            if not lemma_holds:
                violations += 1
            table.add_record(
                distribution=label,
                sample_size=sample_size,
                prob_win_l=float(prob_l),
                prob_win_l_plus_1=float(prob_l1),
                prob_win_l_plus_2=float(prob_l2),
                equality_expected=expect_equality,
                equality_holds=equality_holds,
                monotone_holds=monotone_nondecreasing,
                lemma_holds=lemma_holds,
            )

    for probability in config.binary_probabilities:
        distribution = np.array([probability, 1.0 - probability])
        check(distribution, f"binary p1={probability:g}", expect_equality=True)
    for ternary in config.ternary_distributions:
        check(
            np.asarray(ternary, dtype=float),
            f"ternary {ternary}",
            expect_equality=False,
        )
    table.add_note(
        f"{violations} (distribution, l) pairs violated the Lemma 17 statement "
        "(expected: 0).  The exact equality Pr[maj_l] = Pr[maj_{l+1}] is a k = 2 "
        "statement; for k > 2 only the (non-strict) monotonicity in l is claimed "
        "via the Proposition 1 induction, and that is what the ternary rows check"
    )
    return table
