"""Experiment E7 — Section 4: which noise matrices preserve the majority.

The experiment evaluates the paper's worked examples (plus the other noise
shapes discussed in the introduction) with the exact LP checker of
Definition 2 and, where applicable, the Eq. (17)/(18) sufficient condition:

* the k-opinion uniform-noise matrix — m.p. for every ``delta > 0``;
* the diagonally dominant 3x3 counterexample — fails to preserve even the
  plurality for ``eps, delta < 1/6``;
* cyclic-shift ("close opinion") noise and reset noise — illustrating the
  introduction's point that not every noise pattern admits consensus;
* a random near-uniform matrix of the Eq. (17) form.

For the counterexample the experiment additionally runs the full protocol to
show the *dynamic* consequence: consensus on the original plurality opinion
is not reached, matching Section 4's argument that no anonymous protocol can
recover it.  That repeated-trial check routes through the shared trial
runner (:func:`~repro.experiments.runner.protocol_trial_outcomes`), so it
runs on the batched ensemble engine by default; set
``trial_engine="sequential"`` to cross-check against the reference loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.convergence import estimate_success_probability
from repro.core.plurality import PluralityInstance
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import protocol_trial_outcomes
from repro.noise.families import (
    cyclic_shift_matrix,
    diagonally_dominant_counterexample,
    near_uniform_matrix,
    reset_matrix,
    uniform_noise_matrix,
)
from repro.noise.majority_preserving import (
    check_majority_preserving,
    epsilon_for_delta,
    sufficient_condition_epsilon,
    worst_case_distribution,
)
from repro.experiments.spec import register_experiment
from repro.utils.rng import RandomState, as_generator

__all__ = ["NoiseMatrixConfig", "run"]

_TITLE = "(eps, delta)-majority preservation of the Section-4 example matrices"
_PAPER_CLAIM = (
    "Section 4: the uniform-noise generalization of Eq. (1) is m.p. for every "
    "delta; the diagonally dominant counterexample fails for eps, delta < 1/6; "
    "Eq. (18) gives a sufficient condition for near-uniform matrices"
)


@dataclass
class NoiseMatrixConfig:
    """Parameters of the E7 evaluation."""

    epsilon: float = 0.1
    delta_grid: Sequence[float] = (0.05, 0.1, 0.3)
    dynamic_num_nodes: int = 1000
    dynamic_trials: int = 3
    trial_engine: str = "batched"

    @classmethod
    def quick(cls) -> "NoiseMatrixConfig":
        """A configuration that completes in seconds."""
        return cls(dynamic_num_nodes=600, dynamic_trials=2)

    @classmethod
    def full(cls) -> "NoiseMatrixConfig":
        """A configuration with more dynamic-consequence trials."""
        return cls(dynamic_num_nodes=4000, dynamic_trials=10,
                   delta_grid=(0.02, 0.05, 0.1, 0.2, 0.3))


def _example_matrices(epsilon: float, rng: np.random.Generator):
    """The catalogue of matrices evaluated by E7."""
    return [
        uniform_noise_matrix(3, epsilon),
        uniform_noise_matrix(5, epsilon),
        diagonally_dominant_counterexample(epsilon),
        cyclic_shift_matrix(4, 2.0 * epsilon),
        reset_matrix(3, 2.0 * epsilon),
        near_uniform_matrix(4, 0.55, 0.10, 0.20, rng),
    ]


@register_experiment(
    experiment_id="E7",
    description="Section 4: majority-preserving matrices",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("batched", "sequential", "counts"),
    config_cls=NoiseMatrixConfig,
)
def run(
    config: Optional[NoiseMatrixConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E7 evaluation and return the result table."""
    config = config or NoiseMatrixConfig.quick()
    rng = as_generator(random_state)
    table = ExperimentTable(
        experiment_id="E7",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    for matrix in _example_matrices(config.epsilon, rng):
        sufficient_eps, sufficient_delta = sufficient_condition_epsilon(matrix)
        for delta in config.delta_grid:
            report = check_majority_preserving(
                matrix, config.epsilon, delta, majority_opinion=1
            )
            table.add_record(
                matrix=matrix.name,
                k=matrix.num_opinions,
                delta=delta,
                lp_worst_gap=report.minimal_gap,
                effective_epsilon=epsilon_for_delta(matrix, delta),
                majority_preserving=report.is_majority_preserving,
                preserves_plurality=report.preserves_plurality,
                sufficient_epsilon=sufficient_eps,
                sufficient_delta_min=sufficient_delta,
            )

    # Dynamic consequence of the counterexample: run the protocol from the
    # worst-case delta-biased distribution returned by the LP (the paper's
    # Section-4 example written in the row-vector convention of Eq. (2); see
    # EXPERIMENTS.md for the convention note).
    counterexample = diagonally_dominant_counterexample(config.epsilon)
    delta = 0.1
    adversarial_shares = worst_case_distribution(counterexample, delta, 1)
    adversarial_shares = adversarial_shares / adversarial_shares.sum()
    instance = PluralityInstance.from_support_fractions(
        config.dynamic_num_nodes, config.dynamic_num_nodes, adversarial_shares
    )
    outcomes = protocol_trial_outcomes(
        instance.initial_state(rng),
        counterexample,
        config.epsilon,
        config.dynamic_trials,
        rng,
        target_opinion=instance.plurality_opinion(),
        trial_engine=config.trial_engine,
    )
    failure_rate, _ = estimate_success_probability(
        [not outcome.success for outcome in outcomes]
    )
    table.add_note(
        "dynamic check: under the diagonally-dominant counterexample the protocol "
        "failed to reach consensus on the original plurality in "
        f"{failure_rate:.0%} of {config.dynamic_trials} trials (expected: all)"
    )
    return table
