"""Shared helpers for running repeated trials and parameter sweeps.

The experiments follow a common pattern: for every point of a small parameter
grid, run several independent trials (each with its own derived RNG stream),
and summarize the per-trial outputs.  These helpers centralize the trial
bookkeeping so that the experiment modules stay declarative.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence, TypeVar

import numpy as np

from repro.utils.rng import RandomState, spawn_generators

__all__ = ["repeat_trials", "sweep_product", "summarize"]

T = TypeVar("T")


def repeat_trials(
    trial: Callable[[np.random.Generator], T],
    num_trials: int,
    random_state: RandomState = None,
) -> List[T]:
    """Run ``trial`` ``num_trials`` times with independent generators.

    Each invocation receives its own :class:`numpy.random.Generator` derived
    deterministically from ``random_state``, so the whole batch is
    reproducible while the trials stay statistically independent.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    generators = spawn_generators(num_trials, random_state)
    return [trial(generator) for generator in generators]


def sweep_product(**parameter_values: Sequence[Any]) -> List[Dict[str, Any]]:
    """The Cartesian product of named parameter lists, as dictionaries.

    >>> sweep_product(n=[10, 20], eps=[0.1])
    [{'n': 10, 'eps': 0.1}, {'n': 20, 'eps': 0.1}]
    """
    if not parameter_values:
        return [{}]
    names = list(parameter_values)
    combinations = itertools.product(
        *(parameter_values[name] for name in names)
    )
    return [dict(zip(names, values)) for values in combinations]


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Mean / standard deviation / min / max of a batch of measurements."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("at least one value is required")
    return {
        "mean": float(array.mean()),
        "std": float(array.std(ddof=1)) if array.size > 1 else 0.0,
        "min": float(array.min()),
        "max": float(array.max()),
    }
