"""Shared helpers for running repeated trials and parameter sweeps.

The experiments follow a common pattern: for every point of a small parameter
grid, run several independent trials (each with its own derived RNG stream),
and summarize the per-trial outputs.  These helpers centralize the trial
bookkeeping so that the experiment modules stay declarative.

Repeated trials have two interchangeable execution engines:

* ``"batched"`` (default) — all trials run as one vectorized batch over an
  ``(R, n)`` opinion matrix (:class:`~repro.core.protocol.EnsembleProtocol`
  for the two-stage protocol,
  :class:`~repro.dynamics.base.EnsembleOpinionDynamics` for the baseline
  dynamics), which is many times faster than looping;
* ``"sequential"`` — the reference implementation: a Python loop of
  single-trial runs, kept for cross-checking the batched path.

:func:`protocol_trial_outcomes` and :func:`dynamics_trial_outcomes` hide the
choice behind one call returning a flat list of per-trial outcomes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.core.protocol import EnsembleProtocol, TwoStageProtocol
from repro.core.state import EnsembleState, PopulationState
from repro.dynamics import make_dynamics, make_ensemble_dynamics
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import EnsembleRandomState, RandomState, as_trial_generators, spawn_generators

__all__ = [
    "repeat_trials",
    "sweep_product",
    "summarize",
    "TrialOutcome",
    "protocol_trial_outcomes",
    "DynamicsTrialOutcome",
    "dynamics_trial_outcomes",
    "TRIAL_ENGINES",
]

T = TypeVar("T")

#: Execution engines accepted by :func:`protocol_trial_outcomes`.
TRIAL_ENGINES = ("batched", "sequential")


def repeat_trials(
    trial: Callable[[np.random.Generator], T],
    num_trials: int,
    random_state: RandomState = None,
) -> List[T]:
    """Run ``trial`` ``num_trials`` times with independent generators.

    Each invocation receives its own :class:`numpy.random.Generator` derived
    deterministically from ``random_state``, so the whole batch is
    reproducible while the trials stay statistically independent.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    generators = spawn_generators(num_trials, random_state)
    return [trial(generator) for generator in generators]


@dataclass(frozen=True)
class TrialOutcome:
    """The per-trial quantities the repeated-trial experiments consume.

    Attributes
    ----------
    success:
        ``True`` iff the trial ended in consensus on the target opinion.
    total_rounds:
        Communication rounds the trial executed.
    bias_after_stage1:
        Bias toward the target opinion at the end of Stage 1 (``None`` when
        Stage 1 recorded no phases).
    correct_fraction:
        Fraction of nodes supporting the target opinion at the end.
    final_bias:
        Bias of the final distribution toward the target opinion.
    """

    success: bool
    total_rounds: int
    bias_after_stage1: Optional[float]
    correct_fraction: float
    final_bias: float = 0.0


def protocol_trial_outcomes(
    initial_state: PopulationState,
    noise: NoiseMatrix,
    epsilon: float,
    num_trials: int,
    random_state: RandomState = None,
    *,
    target_opinion: Optional[int] = None,
    process: str = "push",
    round_scale: float = 1.0,
    trial_engine: str = "batched",
) -> List[TrialOutcome]:
    """Run ``num_trials`` independent protocol trials from ``initial_state``.

    Every trial starts from the same initial population and runs the full
    two-stage protocol; the routing between the batched ensemble engine and
    the sequential reference loop is controlled by ``trial_engine`` (one of
    :data:`TRIAL_ENGINES`).  Both engines derive per-trial randomness from
    ``random_state``, so a fixed seed gives a reproducible batch either way
    (though not the same draws across the two engines).
    """
    if trial_engine not in TRIAL_ENGINES:
        raise ValueError(
            f"trial_engine must be one of {TRIAL_ENGINES}, got {trial_engine!r}"
        )
    num_nodes = initial_state.num_nodes
    if trial_engine == "batched":
        result = EnsembleProtocol(
            num_nodes,
            noise,
            epsilon=epsilon,
            process=process,
            random_state=random_state,
            round_scale=round_scale,
        ).run(initial_state, num_trials, target_opinion=target_opinion)
        stage1_biases = result.biases_after_stage1
        correct_fractions = result.correct_fractions()
        final_biases = result.final_biases
        return [
            TrialOutcome(
                success=bool(result.successes[trial]),
                total_rounds=result.total_rounds,
                bias_after_stage1=(
                    float(stage1_biases[trial])
                    if stage1_biases is not None
                    else None
                ),
                correct_fraction=float(correct_fractions[trial]),
                final_bias=float(final_biases[trial]),
            )
            for trial in range(result.num_trials)
        ]

    def trial(rng: np.random.Generator) -> TrialOutcome:
        result = TwoStageProtocol(
            num_nodes,
            noise,
            epsilon=epsilon,
            process=process,
            random_state=rng,
            round_scale=round_scale,
        ).run(initial_state, target_opinion=target_opinion)
        return TrialOutcome(
            success=result.success,
            total_rounds=result.total_rounds,
            bias_after_stage1=result.bias_after_stage1,
            correct_fraction=result.correct_fraction(),
            final_bias=result.final_bias,
        )

    return repeat_trials(trial, num_trials, random_state)


@dataclass(frozen=True)
class DynamicsTrialOutcome:
    """The per-trial quantities of a repeated baseline-dynamics experiment.

    Attributes
    ----------
    success:
        ``True`` iff the trial reached consensus on the target opinion.
    converged:
        ``True`` iff the trial reached consensus on *some* opinion.
    rounds_executed:
        Synchronous rounds the trial executed before stopping.
    consensus_opinion:
        The agreed opinion when ``converged`` (0 otherwise).
    final_bias:
        Bias of the final distribution toward the target opinion.
    """

    success: bool
    converged: bool
    rounds_executed: int
    consensus_opinion: int
    final_bias: float


def dynamics_trial_outcomes(
    initial_state: Union[PopulationState, EnsembleState],
    noise: NoiseMatrix,
    rule: str,
    max_rounds: int,
    num_trials: int,
    random_state: EnsembleRandomState = None,
    *,
    sample_size: Optional[int] = None,
    target_opinion: Optional[int] = None,
    stop_at_consensus: bool = True,
    trial_engine: str = "batched",
) -> List[DynamicsTrialOutcome]:
    """Run ``num_trials`` independent baseline-dynamics trials.

    The dynamics counterpart of :func:`protocol_trial_outcomes`: ``rule``
    names one of :data:`~repro.dynamics.DYNAMICS_RULES` and ``trial_engine``
    (one of :data:`TRIAL_ENGINES`) routes the batch through the vectorized
    :class:`~repro.dynamics.base.EnsembleOpinionDynamics` engine (default)
    or the sequential reference loop of
    :meth:`~repro.dynamics.base.OpinionDynamics.run` calls.  Both engines
    derive the same per-trial child streams from ``random_state``; the
    batched engine is reproducible trial by trial (a batch is bitwise
    identical to batch-size-1 runs), while agreement between the two engines
    is distributional.

    ``initial_state`` may be one :class:`PopulationState` (every trial
    starts from it) or an :class:`EnsembleState` with per-trial rows
    (``num_trials`` must then match).
    """
    if trial_engine not in TRIAL_ENGINES:
        raise ValueError(
            f"trial_engine must be one of {TRIAL_ENGINES}, got {trial_engine!r}"
        )
    if isinstance(initial_state, EnsembleState) and (
        num_trials != initial_state.num_trials
    ):
        raise ValueError(
            f"num_trials = {num_trials} disagrees with the ensemble's "
            f"{initial_state.num_trials} trials"
        )
    num_nodes = initial_state.num_nodes
    if target_opinion is None:
        target_opinion = (
            initial_state.pooled_plurality_opinion()
            if isinstance(initial_state, EnsembleState)
            else initial_state.plurality_opinion()
        )
    target_opinion = int(target_opinion)

    if trial_engine == "batched":
        dynamic = make_ensemble_dynamics(
            rule, num_nodes, noise, random_state, sample_size=sample_size
        )
        result = dynamic.run(
            initial_state,
            max_rounds,
            num_trials if isinstance(initial_state, PopulationState) else None,
            target_opinion=target_opinion,
            stop_at_consensus=stop_at_consensus,
            record_history=False,
        )
        final_biases = result.final_biases
        return [
            DynamicsTrialOutcome(
                success=bool(result.successes[trial]),
                converged=bool(result.converged[trial]),
                rounds_executed=int(result.rounds_executed[trial]),
                consensus_opinion=int(result.consensus_opinions[trial]),
                final_bias=float(final_biases[trial]),
            )
            for trial in range(result.num_trials)
        ]

    generators = as_trial_generators(random_state, num_trials)
    outcomes: List[DynamicsTrialOutcome] = []
    for trial, generator in enumerate(generators):
        if isinstance(initial_state, EnsembleState):
            trial_state = initial_state.trial_state(trial)
        else:
            trial_state = initial_state
        dynamic = make_dynamics(
            rule, num_nodes, noise, generator, sample_size=sample_size
        )
        result = dynamic.run(
            trial_state,
            max_rounds,
            target_opinion=target_opinion,
            stop_at_consensus=stop_at_consensus,
            record_history=False,
        )
        outcomes.append(
            DynamicsTrialOutcome(
                success=result.success,
                converged=result.converged,
                rounds_executed=result.rounds_executed,
                consensus_opinion=result.consensus_opinion,
                final_bias=(
                    result.final_state.bias_toward(target_opinion)
                    if target_opinion > 0
                    else 0.0
                ),
            )
        )
    return outcomes


def sweep_product(**parameter_values: Sequence[Any]) -> List[Dict[str, Any]]:
    """The Cartesian product of named parameter lists, as dictionaries.

    >>> sweep_product(n=[10, 20], eps=[0.1])
    [{'n': 10, 'eps': 0.1}, {'n': 20, 'eps': 0.1}]
    """
    if not parameter_values:
        return [{}]
    names = list(parameter_values)
    combinations = itertools.product(
        *(parameter_values[name] for name in names)
    )
    return [dict(zip(names, values)) for values in combinations]


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Mean / standard deviation / min / max of a batch of measurements."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("at least one value is required")
    return {
        "mean": float(array.mean()),
        "std": float(array.std(ddof=1)) if array.size > 1 else 0.0,
        "min": float(array.min()),
        "max": float(array.max()),
    }
