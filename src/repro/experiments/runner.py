"""Shared helpers for running repeated trials and parameter sweeps.

The experiments follow a common pattern: for every point of a small parameter
grid, run several independent trials (each with its own derived RNG stream),
and summarize the per-trial outputs.  These helpers centralize the trial
bookkeeping so that the experiment modules stay declarative.

Repeated full-protocol trials have two interchangeable execution engines:

* ``"batched"`` (default) — all trials run as one vectorized
  :class:`~repro.core.protocol.EnsembleProtocol` batch over an ``(R, n)``
  opinion matrix, which is several times faster than looping;
* ``"sequential"`` — the reference implementation: a Python loop of
  single-trial :class:`~repro.core.protocol.TwoStageProtocol` runs, kept for
  cross-checking the batched path.

:func:`protocol_trial_outcomes` hides the choice behind one call returning a
flat list of per-trial outcomes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, TypeVar

import numpy as np

from repro.core.protocol import EnsembleProtocol, TwoStageProtocol
from repro.core.state import PopulationState
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import RandomState, spawn_generators

__all__ = [
    "repeat_trials",
    "sweep_product",
    "summarize",
    "TrialOutcome",
    "protocol_trial_outcomes",
    "TRIAL_ENGINES",
]

T = TypeVar("T")

#: Execution engines accepted by :func:`protocol_trial_outcomes`.
TRIAL_ENGINES = ("batched", "sequential")


def repeat_trials(
    trial: Callable[[np.random.Generator], T],
    num_trials: int,
    random_state: RandomState = None,
) -> List[T]:
    """Run ``trial`` ``num_trials`` times with independent generators.

    Each invocation receives its own :class:`numpy.random.Generator` derived
    deterministically from ``random_state``, so the whole batch is
    reproducible while the trials stay statistically independent.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    generators = spawn_generators(num_trials, random_state)
    return [trial(generator) for generator in generators]


@dataclass(frozen=True)
class TrialOutcome:
    """The per-trial quantities the repeated-trial experiments consume.

    Attributes
    ----------
    success:
        ``True`` iff the trial ended in consensus on the target opinion.
    total_rounds:
        Communication rounds the trial executed.
    bias_after_stage1:
        Bias toward the target opinion at the end of Stage 1 (``None`` when
        Stage 1 recorded no phases).
    correct_fraction:
        Fraction of nodes supporting the target opinion at the end.
    """

    success: bool
    total_rounds: int
    bias_after_stage1: Optional[float]
    correct_fraction: float


def protocol_trial_outcomes(
    initial_state: PopulationState,
    noise: NoiseMatrix,
    epsilon: float,
    num_trials: int,
    random_state: RandomState = None,
    *,
    target_opinion: Optional[int] = None,
    process: str = "push",
    round_scale: float = 1.0,
    trial_engine: str = "batched",
) -> List[TrialOutcome]:
    """Run ``num_trials`` independent protocol trials from ``initial_state``.

    Every trial starts from the same initial population and runs the full
    two-stage protocol; the routing between the batched ensemble engine and
    the sequential reference loop is controlled by ``trial_engine`` (one of
    :data:`TRIAL_ENGINES`).  Both engines derive per-trial randomness from
    ``random_state``, so a fixed seed gives a reproducible batch either way
    (though not the same draws across the two engines).
    """
    if trial_engine not in TRIAL_ENGINES:
        raise ValueError(
            f"trial_engine must be one of {TRIAL_ENGINES}, got {trial_engine!r}"
        )
    num_nodes = initial_state.num_nodes
    if trial_engine == "batched":
        result = EnsembleProtocol(
            num_nodes,
            noise,
            epsilon=epsilon,
            process=process,
            random_state=random_state,
            round_scale=round_scale,
        ).run(initial_state, num_trials, target_opinion=target_opinion)
        stage1_biases = result.biases_after_stage1
        correct_fractions = result.correct_fractions()
        return [
            TrialOutcome(
                success=bool(result.successes[trial]),
                total_rounds=result.total_rounds,
                bias_after_stage1=(
                    float(stage1_biases[trial])
                    if stage1_biases is not None
                    else None
                ),
                correct_fraction=float(correct_fractions[trial]),
            )
            for trial in range(result.num_trials)
        ]

    def trial(rng: np.random.Generator) -> TrialOutcome:
        result = TwoStageProtocol(
            num_nodes,
            noise,
            epsilon=epsilon,
            process=process,
            random_state=rng,
            round_scale=round_scale,
        ).run(initial_state, target_opinion=target_opinion)
        return TrialOutcome(
            success=result.success,
            total_rounds=result.total_rounds,
            bias_after_stage1=result.bias_after_stage1,
            correct_fraction=result.correct_fraction(),
        )

    return repeat_trials(trial, num_trials, random_state)


def sweep_product(**parameter_values: Sequence[Any]) -> List[Dict[str, Any]]:
    """The Cartesian product of named parameter lists, as dictionaries.

    >>> sweep_product(n=[10, 20], eps=[0.1])
    [{'n': 10, 'eps': 0.1}, {'n': 20, 'eps': 0.1}]
    """
    if not parameter_values:
        return [{}]
    names = list(parameter_values)
    combinations = itertools.product(
        *(parameter_values[name] for name in names)
    )
    return [dict(zip(names, values)) for values in combinations]


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Mean / standard deviation / min / max of a batch of measurements."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("at least one value is required")
    return {
        "mean": float(array.mean()),
        "std": float(array.std(ddof=1)) if array.size > 1 else 0.0,
        "min": float(array.min()),
        "max": float(array.max()),
    }
