"""Shared helpers for running repeated trials and parameter sweeps.

The experiments follow a common pattern: for every point of a small parameter
grid, run several independent trials (each with its own derived RNG stream),
and summarize the per-trial outputs.  These helpers centralize the trial
bookkeeping so that the experiment modules stay declarative.

Repeated trials have three interchangeable execution engines:

* ``"batched"`` (default) — all trials run as one vectorized batch over an
  ``(R, n)`` opinion matrix (:class:`~repro.core.protocol.EnsembleProtocol`
  for the two-stage protocol,
  :class:`~repro.dynamics.base.EnsembleOpinionDynamics` for the baseline
  dynamics), which is many times faster than looping;
* ``"sequential"`` — the reference implementation: a Python loop of
  single-trial runs, kept for cross-checking the batched path;
* ``"counts"`` — the sufficient-statistics engine: trials evolve only their
  ``(R, k)`` opinion-count matrices
  (:class:`~repro.core.protocol.CountsProtocol`,
  :class:`~repro.dynamics.base.EnsembleCountsDynamics`), ``O(k^2)`` per
  round per trial *independent of* ``n`` — the tier that scales repeated
  trials to millions of nodes.

``"auto"`` picks between ``"batched"`` and ``"counts"`` by population size
(:func:`resolve_trial_engine`): above :data:`DEFAULT_COUNTS_THRESHOLD`
nodes (or an explicit ``counts_threshold``) the counts engine wins.

:func:`protocol_trial_outcomes` and :func:`dynamics_trial_outcomes` hide the
choice behind one call returning a flat list of per-trial outcomes.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from repro.core.protocol import CountsProtocol, EnsembleProtocol, TwoStageProtocol
from repro.core.schedule import Stage1Schedule, Stage2Schedule
from repro.core.stage1 import CountsStage1Executor, EnsembleStage1Executor, Stage1Executor
from repro.core.stage2 import CountsStage2Executor, EnsembleStage2Executor, Stage2Executor
from repro.core.state import CountsState, EnsembleCountsState, EnsembleState, PopulationState
from repro.network.balls_bins import CountsDeliveryModel
from repro.network.push_model import UniformPushModel
from repro.noise.matrix import NoiseMatrix
from repro.sim.engines import build_dynamics
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_trial_generators,
    resolve_trial_randomness,
    spawn_generators,
)

__all__ = [
    "repeat_trials",
    "sweep_product",
    "summarize",
    "TrialOutcome",
    "protocol_trial_outcomes",
    "DynamicsTrialOutcome",
    "dynamics_trial_outcomes",
    "Stage1TrajectoryResult",
    "stage1_trial_trajectories",
    "Stage2TrajectoryResult",
    "stage2_trial_trajectories",
    "TRIAL_ENGINES",
    "TRIAL_ENGINE_CHOICES",
    "DEFAULT_COUNTS_THRESHOLD",
    "resolve_trial_engine",
    "set_default_counts_threshold",
]

T = TypeVar("T")

#: Concrete execution engines accepted by the trial-outcome helpers.
TRIAL_ENGINES = ("batched", "sequential", "counts")

#: Everything a caller may pass as ``trial_engine``: the per-trial engines,
#: ``"analytic"`` (the distribution-level tier — valid for routing, but
#: rejected by the per-trial helpers, which have no trials to report), and
#: ``"auto"`` (resolves to a concrete engine by population size).
TRIAL_ENGINE_CHOICES = TRIAL_ENGINES + ("analytic", "auto")

#: Population size at which ``trial_engine="auto"`` switches from the
#: batched ``(R, n)`` engine to the counts engine.  At ``n = 10^5`` the
#: counts engine is already >= 20x faster (see
#: ``benchmarks/bench_counts_engine.py``); below ~10^4 either engine
#: finishes in milliseconds and the batched one stays the default because
#: it also supports the ablation knobs.
DEFAULT_COUNTS_THRESHOLD = 50_000

_active_counts_threshold = DEFAULT_COUNTS_THRESHOLD


def set_default_counts_threshold(counts_threshold: Optional[int]) -> int:
    """Override the process-wide ``"auto"`` switch-over population size.

    ``None`` restores :data:`DEFAULT_COUNTS_THRESHOLD`.  Returns the now
    active value.  Used by the CLI's ``--counts-threshold`` so experiment
    configs (which carry only a ``trial_engine`` name) pick it up too.
    """
    global _active_counts_threshold
    if counts_threshold is None:
        _active_counts_threshold = DEFAULT_COUNTS_THRESHOLD
    else:
        if counts_threshold < 1:
            raise ValueError(
                f"counts_threshold must be >= 1, got {counts_threshold}"
            )
        _active_counts_threshold = int(counts_threshold)
    return _active_counts_threshold


def resolve_trial_engine(
    trial_engine: str,
    num_nodes: int,
    counts_threshold: Optional[int] = None,
    *,
    allow_analytic: bool = False,
) -> str:
    """The concrete engine for ``trial_engine`` at population size ``n``.

    Concrete engine names pass through unchanged (after validation);
    ``"auto"`` resolves to ``"counts"`` when ``num_nodes`` is at least
    ``counts_threshold`` (default: the active threshold, normally
    :data:`DEFAULT_COUNTS_THRESHOLD`) and to ``"batched"`` otherwise.

    The boundary is inclusive on the counts side: at *exactly*
    ``num_nodes == counts_threshold`` the counts engine wins (``>=``, not
    ``>``).  The threshold is the smallest population the n-independent
    engine should serve, so the ``repro.sim`` facade, the CLI and the
    experiment configs all see ``auto(n=threshold) == "counts"`` — pinned
    by the test-suite so the semantics cannot drift silently.

    ``allow_analytic=True`` short-circuits ``"auto"`` to ``"analytic"``:
    the caller asserts the scenario is *exactly tractable* (the count
    simplex fits the analytic state budget, plus any closed-form vote
    tables the workload needs), in which case the exact answer beats any
    amount of sampling.  Only the ``repro.sim`` facade sets it — the
    per-trial helpers in this module cannot consume the analytic tier.
    """
    if trial_engine not in TRIAL_ENGINE_CHOICES:
        raise ValueError(
            f"trial_engine must be one of {TRIAL_ENGINE_CHOICES}, "
            f"got {trial_engine!r}"
        )
    if trial_engine != "auto":
        return trial_engine
    if allow_analytic:
        return "analytic"
    if counts_threshold is None:
        counts_threshold = _active_counts_threshold
    elif counts_threshold < 1:
        raise ValueError(
            f"counts_threshold must be >= 1, got {counts_threshold}"
        )
    return "counts" if num_nodes >= counts_threshold else "batched"


def _resolve_engine_for_state(
    trial_engine: str,
    initial_state,
    counts_threshold: Optional[int],
) -> str:
    """Engine resolution that also respects the initial-state type.

    Counts-native states carry no per-node information, so only the counts
    engine can consume them: ``"auto"`` resolves straight to ``"counts"``
    for them, and an explicit per-node engine is rejected with a clear
    error instead of a deep ``TypeError``.
    """
    if trial_engine == "analytic":
        raise ValueError(
            "the per-trial helpers sample independent trials, which the "
            "analytic (distribution-level) engine does not produce; run "
            "repro.sim.simulate(Scenario(..., engine='analytic')) instead"
        )
    counts_native = isinstance(
        initial_state, (CountsState, EnsembleCountsState)
    )
    if counts_native and trial_engine == "auto":
        return "counts"
    resolved = resolve_trial_engine(
        trial_engine, initial_state.num_nodes, counts_threshold
    )
    if counts_native and resolved != "counts":
        raise ValueError(
            f"trial_engine={resolved!r} needs per-node initial states; "
            "CountsState/EnsembleCountsState inputs can only run on "
            "trial_engine='counts'"
        )
    return resolved


def repeat_trials(
    trial: Callable[[np.random.Generator], T],
    num_trials: int,
    random_state: RandomState = None,
) -> List[T]:
    """Run ``trial`` ``num_trials`` times with independent generators.

    Each invocation receives its own :class:`numpy.random.Generator` derived
    deterministically from ``random_state``, so the whole batch is
    reproducible while the trials stay statistically independent.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    generators = spawn_generators(num_trials, random_state)
    return [trial(generator) for generator in generators]


@dataclass(frozen=True)
class TrialOutcome:
    """The per-trial quantities the repeated-trial experiments consume.

    Attributes
    ----------
    success:
        ``True`` iff the trial ended in consensus on the target opinion.
    total_rounds:
        Communication rounds the trial executed.
    bias_after_stage1:
        Bias toward the target opinion at the end of Stage 1 (``None`` when
        Stage 1 recorded no phases).
    correct_fraction:
        Fraction of nodes supporting the target opinion at the end.
    final_bias:
        Bias of the final distribution toward the target opinion.
    stage1_rounds:
        Communication rounds spent in Stage 1.
    opinionated_fraction_after_stage1:
        Fraction of opinionated nodes at the end of Stage 1 (``None`` when
        Stage 1 recorded no phases) — the Lemma 6 quantity.
    """

    success: bool
    total_rounds: int
    bias_after_stage1: Optional[float]
    correct_fraction: float
    final_bias: float = 0.0
    stage1_rounds: int = 0
    opinionated_fraction_after_stage1: Optional[float] = None


def protocol_trial_outcomes(
    initial_state: PopulationState,
    noise: NoiseMatrix,
    epsilon: float,
    num_trials: int,
    random_state: RandomState = None,
    *,
    target_opinion: Optional[int] = None,
    process: str = "push",
    round_scale: float = 1.0,
    trial_engine: str = "batched",
    counts_threshold: Optional[int] = None,
) -> List[TrialOutcome]:
    """Run ``num_trials`` independent protocol trials from ``initial_state``.

    Every trial starts from the same initial population and runs the full
    two-stage protocol; the routing between the batched ensemble engine,
    the counts (sufficient-statistics) engine and the sequential reference
    loop is controlled by ``trial_engine`` (one of
    :data:`TRIAL_ENGINE_CHOICES`; ``"auto"`` switches to ``"counts"`` at
    ``counts_threshold`` nodes).  All engines derive per-trial randomness
    from ``random_state``, so a fixed seed gives a reproducible batch
    either way (though not the same draws across engines).  The counts
    engine ignores ``process``: its delivery is always the counts-native
    Claim-1/Poissonized model.
    """
    num_nodes = initial_state.num_nodes
    trial_engine = _resolve_engine_for_state(
        trial_engine, initial_state, counts_threshold
    )
    if trial_engine in ("batched", "counts"):
        if trial_engine == "batched":
            protocol = EnsembleProtocol(
                num_nodes,
                noise,
                epsilon=epsilon,
                process=process,
                random_state=random_state,
                round_scale=round_scale,
            )
        else:
            protocol = CountsProtocol(
                num_nodes,
                noise,
                epsilon=epsilon,
                random_state=random_state,
                round_scale=round_scale,
            )
        result = protocol.run(
            initial_state, num_trials, target_opinion=target_opinion
        )
        stage1_biases = result.biases_after_stage1
        stage1_opinionated = result.opinionated_after_stage1
        correct_fractions = result.correct_fractions()
        final_biases = result.final_biases
        return [
            TrialOutcome(
                success=bool(result.successes[trial]),
                total_rounds=result.total_rounds,
                bias_after_stage1=(
                    float(stage1_biases[trial])
                    if stage1_biases is not None
                    else None
                ),
                correct_fraction=float(correct_fractions[trial]),
                final_bias=float(final_biases[trial]),
                stage1_rounds=result.stage1_rounds,
                opinionated_fraction_after_stage1=(
                    float(stage1_opinionated[trial]) / num_nodes
                    if stage1_opinionated is not None
                    else None
                ),
            )
            for trial in range(result.num_trials)
        ]

    def trial(rng: np.random.Generator) -> TrialOutcome:
        result = TwoStageProtocol(
            num_nodes,
            noise,
            epsilon=epsilon,
            process=process,
            random_state=rng,
            round_scale=round_scale,
        ).run(initial_state, target_opinion=target_opinion)
        opinionated = result.opinionated_after_stage1
        return TrialOutcome(
            success=result.success,
            total_rounds=result.total_rounds,
            bias_after_stage1=result.bias_after_stage1,
            correct_fraction=result.correct_fraction(),
            final_bias=result.final_bias,
            stage1_rounds=result.stage1_rounds,
            opinionated_fraction_after_stage1=(
                float(opinionated) / num_nodes
                if opinionated is not None
                else None
            ),
        )

    return repeat_trials(trial, num_trials, random_state)


@dataclass(frozen=True)
class DynamicsTrialOutcome:
    """The per-trial quantities of a repeated baseline-dynamics experiment.

    Attributes
    ----------
    success:
        ``True`` iff the trial reached consensus on the target opinion.
    converged:
        ``True`` iff the trial reached consensus on *some* opinion.
    rounds_executed:
        Synchronous rounds the trial executed before stopping.
    consensus_opinion:
        The agreed opinion when ``converged`` (0 otherwise).
    final_bias:
        Bias of the final distribution toward the target opinion.
    """

    success: bool
    converged: bool
    rounds_executed: int
    consensus_opinion: int
    final_bias: float


def dynamics_trial_outcomes(
    initial_state: Union[PopulationState, EnsembleState],
    noise: NoiseMatrix,
    rule: str,
    max_rounds: int,
    num_trials: int,
    random_state: EnsembleRandomState = None,
    *,
    sample_size: Optional[int] = None,
    target_opinion: Optional[int] = None,
    stop_at_consensus: bool = True,
    trial_engine: str = "batched",
    counts_threshold: Optional[int] = None,
    engine_cache: Optional[Dict[Any, Any]] = None,
) -> List[DynamicsTrialOutcome]:
    """Run ``num_trials`` independent baseline-dynamics trials.

    The dynamics counterpart of :func:`protocol_trial_outcomes`: ``rule``
    names one of :data:`~repro.dynamics.DYNAMICS_RULES` and ``trial_engine``
    (one of :data:`TRIAL_ENGINE_CHOICES`) routes the batch through the
    vectorized :class:`~repro.dynamics.base.EnsembleOpinionDynamics` engine
    (default), the ``O(k)``-per-trial counts engine, or the sequential
    reference loop of :meth:`~repro.dynamics.base.OpinionDynamics.run`
    calls.  All engines derive the same per-trial child streams from
    ``random_state``; the batched and counts engines are reproducible trial
    by trial (a batch is bitwise identical to batch-size-1 runs of the same
    engine), while agreement across engines is distributional.

    ``initial_state`` may be one :class:`PopulationState` (every trial
    starts from it) or an :class:`EnsembleState` with per-trial rows
    (``num_trials`` must then match); the counts engine additionally
    accepts the counts-native :class:`CountsState` /
    :class:`EnsembleCountsState` (which the per-node engines cannot
    consume).

    ``engine_cache`` is deprecated: it was the sweep fast path (one engine
    instance per distinct ``(engine, rule, num_nodes, sample_size, noise)``
    combination, reused across the cells of a parameter sweep), superseded
    by the batched sweep layer — build a
    :class:`~repro.sim.ScenarioGrid` and call
    :func:`~repro.sim.simulate_sweep`, which fuses the counts-tier cells
    into one heterogeneous batch instead of merely reusing engine objects.
    Passing a cache still works (same behavior, same results) but emits a
    :class:`DeprecationWarning`.
    """
    if engine_cache is not None:
        warnings.warn(
            "dynamics_trial_outcomes(engine_cache=...) is deprecated; "
            "sweep over a repro.sim.ScenarioGrid with simulate_sweep() "
            "instead, which batches the grid's counts-tier cells",
            DeprecationWarning,
            stacklevel=2,
        )
    if isinstance(
        initial_state, (EnsembleState, EnsembleCountsState)
    ) and num_trials != initial_state.num_trials:
        raise ValueError(
            f"num_trials = {num_trials} disagrees with the ensemble's "
            f"{initial_state.num_trials} trials"
        )
    num_nodes = initial_state.num_nodes
    trial_engine = _resolve_engine_for_state(
        trial_engine, initial_state, counts_threshold
    )
    if target_opinion is None:
        target_opinion = (
            initial_state.pooled_plurality_opinion()
            if isinstance(initial_state, (EnsembleState, EnsembleCountsState))
            else initial_state.plurality_opinion()
        )
    target_opinion = int(target_opinion)

    if trial_engine in ("batched", "counts"):
        # Content-based noise fingerprint: id() could be recycled across
        # short-lived matrices and hand back an engine with the wrong
        # channel.
        cache_key = (
            trial_engine, rule, num_nodes, sample_size,
            noise.matrix.tobytes(),
        )
        dynamic = None
        if engine_cache is not None:
            dynamic = engine_cache.get(cache_key)
        if dynamic is None:
            dynamic = build_dynamics(
                trial_engine, rule, num_nodes, noise, random_state,
                sample_size=sample_size,
            )
            if engine_cache is not None:
                engine_cache[cache_key] = dynamic
        else:
            dynamic.reset_randomness(random_state)
        result = dynamic.run(
            initial_state,
            max_rounds,
            (
                num_trials
                if isinstance(initial_state, (PopulationState, CountsState))
                else None
            ),
            target_opinion=target_opinion,
            stop_at_consensus=stop_at_consensus,
            record_history=False,
        )
        final_biases = result.final_biases
        return [
            DynamicsTrialOutcome(
                success=bool(result.successes[trial]),
                converged=bool(result.converged[trial]),
                rounds_executed=int(result.rounds_executed[trial]),
                consensus_opinion=int(result.consensus_opinions[trial]),
                final_bias=float(final_biases[trial]),
            )
            for trial in range(result.num_trials)
        ]

    generators = as_trial_generators(random_state, num_trials)
    outcomes: List[DynamicsTrialOutcome] = []
    for trial, generator in enumerate(generators):
        if isinstance(initial_state, EnsembleState):
            trial_state = initial_state.trial_state(trial)
        else:
            trial_state = initial_state
        dynamic = build_dynamics(
            "sequential", rule, num_nodes, noise, generator,
            sample_size=sample_size,
        )
        result = dynamic.run(
            trial_state,
            max_rounds,
            target_opinion=target_opinion,
            stop_at_consensus=stop_at_consensus,
            record_history=False,
        )
        outcomes.append(
            DynamicsTrialOutcome(
                success=result.success,
                converged=result.converged,
                rounds_executed=result.rounds_executed,
                consensus_opinion=result.consensus_opinion,
                final_bias=(
                    result.final_state.bias_toward(target_opinion)
                    if target_opinion > 0
                    else 0.0
                ),
            )
        )
    return outcomes


@dataclass(frozen=True)
class Stage1TrajectoryResult:
    """Per-phase Stage-1 measurements for a batch of independent trials.

    Attributes
    ----------
    phase_lengths:
        Rounds per Stage-1 phase (shared by every trial).
    opinionated_fractions:
        ``(R, P)`` array: fraction of opinionated nodes after each phase.
    biases:
        ``(R, P)`` array: bias toward the tracked opinion after each phase.
    """

    phase_lengths: Tuple[int, ...]
    opinionated_fractions: np.ndarray
    biases: np.ndarray

    @property
    def num_trials(self) -> int:
        return self.opinionated_fractions.shape[0]

    @property
    def total_rounds(self) -> int:
        return int(sum(self.phase_lengths))


def stage1_trial_trajectories(
    initial_state: PopulationState,
    noise: NoiseMatrix,
    epsilon: float,
    num_trials: int,
    random_state: EnsembleRandomState = None,
    *,
    track_opinion: int = 1,
    schedule: Optional[Stage1Schedule] = None,
    trial_engine: str = "batched",
    counts_threshold: Optional[int] = None,
) -> Stage1TrajectoryResult:
    """Run *only Stage 1* for ``num_trials`` trials, recording every phase.

    The engine-aware counterpart of driving
    :class:`~repro.core.stage1.Stage1Executor` in a Python loop: the batched
    engine evolves one ``(R, n)`` ensemble, the counts engine one ``(R, k)``
    count matrix, and the sequential reference loops single trials — all
    three produce the same per-phase measurement arrays (Lemma 4/6/7's
    opinionated fraction and bias, experiments E3/E4).  Per-trial randomness
    follows the shared spawned-generator discipline, so a fixed
    ``random_state`` reproduces the batch on any engine.
    """
    num_nodes = initial_state.num_nodes
    if schedule is None:
        schedule = Stage1Schedule.for_population(num_nodes, epsilon)
    trial_engine = _resolve_engine_for_state(
        trial_engine, initial_state, counts_threshold
    )
    phase_lengths = tuple(int(length) for length in schedule.phase_lengths)

    if trial_engine == "batched":
        ensemble = EnsembleState.from_state(initial_state, num_trials)
        engine = UniformPushModel(num_nodes, noise, None)
        randomness = resolve_trial_randomness(
            random_state, num_trials, "per_trial"
        )
        executor = EnsembleStage1Executor(engine, schedule, randomness)
        _, records = executor.run(ensemble, track_opinion=track_opinion)
        fractions = np.stack(
            [record.opinionated_after / num_nodes for record in records],
            axis=1,
        )
        biases = np.stack([record.bias for record in records], axis=1)
        return Stage1TrajectoryResult(phase_lengths, fractions, biases)

    if trial_engine == "counts":
        ensemble = EnsembleCountsState.from_state(initial_state, num_trials)
        delivery = CountsDeliveryModel(num_nodes, noise)
        randomness = resolve_trial_randomness(
            random_state, num_trials, "per_trial"
        )
        executor = CountsStage1Executor(delivery, schedule, randomness)
        _, records = executor.run(ensemble, track_opinion=track_opinion)
        fractions = np.stack(
            [record.opinionated_after / num_nodes for record in records],
            axis=1,
        )
        biases = np.stack([record.bias for record in records], axis=1)
        return Stage1TrajectoryResult(phase_lengths, fractions, biases)

    generators = as_trial_generators(random_state, num_trials)
    fractions = np.empty((num_trials, len(phase_lengths)), dtype=float)
    biases = np.empty((num_trials, len(phase_lengths)), dtype=float)
    for trial, generator in enumerate(generators):
        engine = UniformPushModel(num_nodes, noise, generator)
        executor = Stage1Executor(engine, schedule, generator)
        _, records = executor.run(
            initial_state, track_opinion=track_opinion
        )
        fractions[trial] = [
            record.opinionated_after / num_nodes for record in records
        ]
        biases[trial] = [record.bias for record in records]
    return Stage1TrajectoryResult(phase_lengths, fractions, biases)


@dataclass(frozen=True)
class Stage2TrajectoryResult:
    """Per-phase Stage-2 measurements for a batch of independent trials.

    Attributes
    ----------
    phase_lengths, sample_sizes:
        Rounds and sample size per Stage-2 phase (shared by every trial).
    biases:
        ``(R, P)`` array: bias toward the tracked opinion after each phase.
    consensus:
        ``(R,)`` boolean array: consensus on the tracked opinion at the end.
    """

    phase_lengths: Tuple[int, ...]
    sample_sizes: Tuple[int, ...]
    biases: np.ndarray
    consensus: np.ndarray

    @property
    def num_trials(self) -> int:
        return self.biases.shape[0]

    @property
    def final_biases(self) -> np.ndarray:
        """Bias toward the tracked opinion after the last phase, per trial."""
        return self.biases[:, -1]


def stage2_trial_trajectories(
    initial_state: Union[PopulationState, EnsembleState],
    noise: NoiseMatrix,
    epsilon: float,
    num_trials: int,
    random_state: EnsembleRandomState = None,
    *,
    track_opinion: int = 1,
    schedule: Optional[Stage2Schedule] = None,
    sampling_method: str = "without_replacement",
    use_full_multiset: bool = False,
    trial_engine: str = "batched",
    counts_threshold: Optional[int] = None,
) -> Stage2TrajectoryResult:
    """Run *only Stage 2* for ``num_trials`` trials, recording every phase.

    The engine-aware Stage-2 counterpart of :func:`stage1_trial_trajectories`
    (Lemma 12's per-phase bias amplification, experiments E6/E13).
    ``initial_state`` is either one fully opinionated population (every
    trial starts from it) or a pre-built :class:`EnsembleState` with
    per-trial rows.  The Stage-2 sampling ablations (``sampling_method``,
    ``use_full_multiset``) are served by the batched and sequential engines;
    the counts engine implements only the faithful rule and raises
    ``ValueError`` for anything else.
    """
    num_nodes = initial_state.num_nodes
    if schedule is None:
        schedule = Stage2Schedule.for_population(num_nodes, epsilon)
    if isinstance(initial_state, EnsembleState) and (
        num_trials != initial_state.num_trials
    ):
        raise ValueError(
            f"num_trials = {num_trials} disagrees with the ensemble's "
            f"{initial_state.num_trials} trials"
        )
    trial_engine = _resolve_engine_for_state(
        trial_engine, initial_state, counts_threshold
    )
    phase_lengths = tuple(int(length) for length in schedule.phase_lengths)
    sample_sizes = tuple(int(size) for size in schedule.sample_sizes)

    if trial_engine in ("batched", "counts"):
        randomness = resolve_trial_randomness(
            random_state, num_trials, "per_trial"
        )
        if trial_engine == "batched":
            if isinstance(initial_state, PopulationState):
                ensemble = EnsembleState.from_state(initial_state, num_trials)
            else:
                ensemble = initial_state
            engine = UniformPushModel(num_nodes, noise, None)
            executor = EnsembleStage2Executor(
                engine,
                schedule,
                randomness,
                sampling_method=sampling_method,
                use_full_multiset=use_full_multiset,
            )
        else:
            if isinstance(initial_state, PopulationState):
                ensemble = EnsembleCountsState.from_state(
                    initial_state, num_trials
                )
            else:
                ensemble = EnsembleCountsState.from_ensemble(initial_state)
            delivery = CountsDeliveryModel(num_nodes, noise)
            executor = CountsStage2Executor(
                delivery,
                schedule,
                randomness,
                sampling_method=sampling_method,
                use_full_multiset=use_full_multiset,
            )
        final_states, records = executor.run(
            ensemble, track_opinion=track_opinion
        )
        biases = np.stack([record.bias_after for record in records], axis=1)
        consensus = final_states.consensus_mask(track_opinion)
        return Stage2TrajectoryResult(
            phase_lengths, sample_sizes, biases, consensus
        )

    generators = as_trial_generators(random_state, num_trials)
    biases = np.empty((num_trials, len(phase_lengths)), dtype=float)
    consensus = np.empty(num_trials, dtype=bool)
    for trial, generator in enumerate(generators):
        if isinstance(initial_state, EnsembleState):
            trial_state = initial_state.trial_state(trial)
        else:
            trial_state = initial_state
        engine = UniformPushModel(num_nodes, noise, generator)
        executor = Stage2Executor(
            engine,
            schedule,
            generator,
            sampling_method=sampling_method,
            use_full_multiset=use_full_multiset,
        )
        final_state, records = executor.run(
            trial_state, track_opinion=track_opinion
        )
        biases[trial] = [record.bias_after for record in records]
        consensus[trial] = final_state.has_consensus_on(track_opinion)
    return Stage2TrajectoryResult(
        phase_lengths, sample_sizes, biases, consensus
    )


def sweep_product(**parameter_values: Sequence[Any]) -> List[Dict[str, Any]]:
    """The Cartesian product of named parameter lists, as dictionaries.

    >>> sweep_product(n=[10, 20], eps=[0.1])
    [{'n': 10, 'eps': 0.1}, {'n': 20, 'eps': 0.1}]
    """
    if not parameter_values:
        return [{}]
    names = list(parameter_values)
    combinations = itertools.product(
        *(parameter_values[name] for name in names)
    )
    return [dict(zip(names, values)) for values in combinations]


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Mean / standard deviation / min / max of a batch of measurements."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("at least one value is required")
    return {
        "mean": float(array.mean()),
        "std": float(array.std(ddof=1)) if array.size > 1 else 0.0,
        "min": float(array.min()),
        "max": float(array.max()),
    }
