"""Experiment E12 — baseline comparison under noise.

The related-work section situates the paper's protocol among elementary
dynamics that solve plurality/majority consensus when communication is
reliable: 3-majority [9], h-majority [13, 1], the undecided-state dynamics
[5, 8], the median rule [15] and the plain voter model.  None of those
analyses cover per-message noise, and the paper's contribution is precisely
a protocol that tolerates it.

The experiment starts every algorithm from the same fully opinionated,
weakly biased population and measures success rate (consensus on the initial
plurality opinion), rounds used, and the final bias, both on a noise-free
channel and under the canonical uniform-noise matrix.  The reproduced trend:
without noise the elementary dynamics are fast and reliable; with noise the
one-shot dynamics lose the plurality (or fail to converge within the round
budget) while the paper's two-stage protocol still succeeds, at the cost of
its ``O(log n / eps^2)`` round budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.analysis.convergence import estimate_success_probability
from repro.core.protocol import TwoStageProtocol
from repro.core.state import PopulationState
from repro.dynamics.base import OpinionDynamics
from repro.dynamics.h_majority import HMajorityDynamics, ThreeMajorityDynamics
from repro.dynamics.median_rule import MedianRuleDynamics
from repro.dynamics.undecided_state import UndecidedStateDynamics
from repro.dynamics.voter import VoterDynamics
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import repeat_trials
from repro.experiments.workloads import biased_population
from repro.noise.families import identity_matrix, uniform_noise_matrix
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import RandomState

__all__ = ["BaselineComparisonConfig", "run"]


@dataclass
class BaselineComparisonConfig:
    """Parameters of the E12 comparison."""

    num_nodes: int = 1500
    num_opinions: int = 3
    epsilon: float = 0.25
    initial_bias: float = 0.1
    max_rounds_dynamics: int = 300
    num_trials: int = 4

    @classmethod
    def quick(cls) -> "BaselineComparisonConfig":
        """A configuration that completes in about a minute."""
        return cls(num_nodes=800, max_rounds_dynamics=150, num_trials=3)

    @classmethod
    def full(cls) -> "BaselineComparisonConfig":
        """A larger comparison (several minutes)."""
        return cls(
            num_nodes=5000,
            max_rounds_dynamics=600,
            num_trials=10,
        )


def _baseline_factories(
    config: BaselineComparisonConfig,
) -> List[Tuple[str, Callable[[NoiseMatrix, np.random.Generator], OpinionDynamics]]]:
    """Name / constructor pairs for every baseline dynamic."""
    n = config.num_nodes
    return [
        ("3-majority", lambda noise, rng: ThreeMajorityDynamics(n, noise, rng)),
        ("5-majority", lambda noise, rng: HMajorityDynamics(n, noise, 5, rng)),
        ("undecided-state", lambda noise, rng: UndecidedStateDynamics(n, noise, rng)),
        ("median-rule", lambda noise, rng: MedianRuleDynamics(n, noise, rng)),
        ("voter", lambda noise, rng: VoterDynamics(n, noise, rng)),
    ]


def run(
    config: Optional[BaselineComparisonConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E12 comparison and return the result table."""
    config = config or BaselineComparisonConfig.quick()
    table = ExperimentTable(
        experiment_id="E12",
        title="Protocol vs. elementary dynamics, with and without channel noise",
        paper_claim=(
            "Related work: elementary dynamics (3-majority, undecided-state, median "
            "rule, ...) solve plurality/majority consensus on reliable channels; the "
            "paper's protocol additionally tolerates per-message noise"
        ),
    )
    noiseless = identity_matrix(config.num_opinions)
    noisy = uniform_noise_matrix(config.num_opinions, config.epsilon)

    for channel_name, channel in (("noise-free", noiseless), ("noisy", noisy)):
        # --- The paper's protocol ------------------------------------------------
        def protocol_trial(rng: np.random.Generator):
            initial = biased_population(
                config.num_nodes,
                config.num_opinions,
                config.initial_bias,
                random_state=rng,
            )
            protocol = TwoStageProtocol(
                config.num_nodes,
                channel,
                epsilon=config.epsilon,
                random_state=rng,
            )
            result = protocol.run(initial, target_opinion=1)
            return result.success, result.total_rounds, result.final_bias

        outcomes = repeat_trials(protocol_trial, config.num_trials, random_state)
        success_rate, _ = estimate_success_probability(
            [success for success, _, _ in outcomes]
        )
        table.add_record(
            algorithm="two-stage protocol (this paper)",
            channel=channel_name,
            success_rate=success_rate,
            mean_rounds=float(np.mean([rounds for _, rounds, _ in outcomes])),
            mean_final_bias=float(np.mean([bias for _, _, bias in outcomes])),
        )

        # --- Baseline dynamics ---------------------------------------------------
        for name, factory in _baseline_factories(config):

            def dynamics_trial(rng: np.random.Generator, factory=factory):
                initial = biased_population(
                    config.num_nodes,
                    config.num_opinions,
                    config.initial_bias,
                    random_state=rng,
                )
                dynamic = factory(channel, rng)
                result = dynamic.run(
                    initial,
                    config.max_rounds_dynamics,
                    target_opinion=1,
                )
                return (
                    result.success,
                    result.rounds_executed,
                    result.final_state.bias_toward(1),
                )

            outcomes = repeat_trials(dynamics_trial, config.num_trials, random_state)
            success_rate, _ = estimate_success_probability(
                [success for success, _, _ in outcomes]
            )
            table.add_record(
                algorithm=name,
                channel=channel_name,
                success_rate=success_rate,
                mean_rounds=float(np.mean([rounds for _, rounds, _ in outcomes])),
                mean_final_bias=float(np.mean([bias for _, _, bias in outcomes])),
            )
    table.add_note(
        f"all runs start {config.initial_bias:.0%}-biased toward opinion 1 with every "
        f"node opinionated; dynamics are capped at {config.max_rounds_dynamics} rounds "
        f"(log2(n)/eps^2 = {math.log2(config.num_nodes) / config.epsilon**2:.0f})"
    )
    return table
