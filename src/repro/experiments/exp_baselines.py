"""Experiment E12 — baseline comparison under noise.

The related-work section situates the paper's protocol among elementary
dynamics that solve plurality/majority consensus when communication is
reliable: 3-majority [9], h-majority [13, 1], the undecided-state dynamics
[5, 8], the median rule [15] and the plain voter model.  None of those
analyses cover per-message noise, and the paper's contribution is precisely
a protocol that tolerates it.

The experiment starts every algorithm from the same fully opinionated,
weakly biased population and measures success rate (consensus on the initial
plurality opinion), rounds used, and the final bias, both on a noise-free
channel and under the canonical uniform-noise matrix.  The reproduced trend:
without noise the elementary dynamics are fast and reliable; with noise the
one-shot dynamics lose the plurality (or fail to converge within the round
budget) while the paper's two-stage protocol still succeeds, at the cost of
its ``O(log n / eps^2)`` round budget.

All repeated trials route through the shared trial runner
(:func:`~repro.experiments.runner.protocol_trial_outcomes` and
:func:`~repro.experiments.runner.dynamics_trial_outcomes`), so the whole
comparison runs on the batched ensemble engines by default; set
``trial_engine="sequential"`` in the configuration to cross-check against
the reference loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.convergence import estimate_success_probability
from repro.experiments.results import ExperimentTable
from repro.experiments.runner import (
    dynamics_trial_outcomes,
    protocol_trial_outcomes,
)
from repro.experiments.spec import register_experiment
from repro.experiments.workloads import biased_population
from repro.noise.families import identity_matrix, uniform_noise_matrix
from repro.utils.rng import RandomState, derive_seed
from repro.utils.validation import require_positive_int

__all__ = ["BaselineComparisonConfig", "run"]

_TITLE = "Protocol vs. elementary dynamics, with and without channel noise"
_PAPER_CLAIM = (
    "Related work: elementary dynamics (3-majority, undecided-state, median "
    "rule, ...) solve plurality/majority consensus on reliable channels; the "
    "paper's protocol additionally tolerates per-message noise"
)


@dataclass
class BaselineComparisonConfig:
    """Parameters of the E12 comparison."""

    num_nodes: int = 1500
    num_opinions: int = 3
    epsilon: float = 0.25
    initial_bias: float = 0.1
    max_rounds_dynamics: int = 300
    num_trials: int = 4
    trial_engine: str = "batched"

    @classmethod
    def quick(cls) -> "BaselineComparisonConfig":
        """A configuration that completes in about a minute."""
        return cls(num_nodes=800, max_rounds_dynamics=150, num_trials=3)

    @classmethod
    def full(cls) -> "BaselineComparisonConfig":
        """A larger comparison (several minutes)."""
        return cls(
            num_nodes=5000,
            max_rounds_dynamics=600,
            num_trials=10,
        )


def _baseline_rules() -> List[Tuple[str, str, Optional[int]]]:
    """(table name, runner rule, sample_size) for every baseline dynamic."""
    return [
        ("3-majority", "3-majority", None),
        ("5-majority", "h-majority", 5),
        ("undecided-state", "undecided-state", None),
        ("median-rule", "median-rule", None),
        ("voter", "voter", None),
    ]


@register_experiment(
    experiment_id="E12",
    description="Baseline comparison under noise",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("batched", "sequential", "counts"),
    config_cls=BaselineComparisonConfig,
)
def run(
    config: Optional[BaselineComparisonConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E12 comparison and return the result table."""
    config = config or BaselineComparisonConfig.quick()
    require_positive_int(config.num_trials, "num_trials")
    table = ExperimentTable(
        experiment_id="E12",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    noiseless = identity_matrix(config.num_opinions)
    noisy = uniform_noise_matrix(config.num_opinions, config.epsilon)

    for channel_index, (channel_name, channel) in enumerate(
        (("noise-free", noiseless), ("noisy", noisy))
    ):
        # Every algorithm on this channel starts from the same weakly biased,
        # fully opinionated population (the node placement is irrelevant on
        # the complete graph; a fixed per-channel seed keeps it reproducible).
        initial = biased_population(
            config.num_nodes,
            config.num_opinions,
            config.initial_bias,
            random_state=derive_seed(random_state, channel_index),
        )

        # --- The paper's protocol ------------------------------------------------
        outcomes = protocol_trial_outcomes(
            initial,
            channel,
            config.epsilon,
            config.num_trials,
            random_state,
            target_opinion=1,
            trial_engine=config.trial_engine,
        )
        success_rate, _ = estimate_success_probability(
            [outcome.success for outcome in outcomes]
        )
        table.add_record(
            algorithm="two-stage protocol (this paper)",
            channel=channel_name,
            success_rate=success_rate,
            mean_rounds=float(
                np.mean([outcome.total_rounds for outcome in outcomes])
            ),
            mean_final_bias=float(
                np.mean([outcome.final_bias for outcome in outcomes])
            ),
        )

        # --- Baseline dynamics ---------------------------------------------------
        for name, rule, sample_size in _baseline_rules():
            outcomes = dynamics_trial_outcomes(
                initial,
                channel,
                rule,
                config.max_rounds_dynamics,
                config.num_trials,
                random_state,
                sample_size=sample_size,
                target_opinion=1,
                trial_engine=config.trial_engine,
            )
            success_rate, _ = estimate_success_probability(
                [outcome.success for outcome in outcomes]
            )
            table.add_record(
                algorithm=name,
                channel=channel_name,
                success_rate=success_rate,
                mean_rounds=float(
                    np.mean([outcome.rounds_executed for outcome in outcomes])
                ),
                mean_final_bias=float(
                    np.mean([outcome.final_bias for outcome in outcomes])
                ),
            )
    table.add_note(
        f"all runs start {config.initial_bias:.0%}-biased toward opinion 1 with every "
        f"node opinionated; dynamics are capped at {config.max_rounds_dynamics} rounds "
        f"(log2(n)/eps^2 = {math.log2(config.num_nodes) / config.epsilon**2:.0f}); "
        f"trial engine: {config.trial_engine}"
    )
    return table
