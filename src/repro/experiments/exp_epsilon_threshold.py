"""Experiment E9 — Appendix D: behaviour around the ``eps = n^(-1/4)`` threshold.

Theorem 1 requires ``eps = Omega(n^(-1/4 + eta))``.  Appendix D argues that
for ``eps = Theta(n^(-1/4 - eta))`` the two-stage protocol (with its standard
phase structure) no longer solves rumor spreading in ``O(log n / eps^2)``
rounds: after phase 0 only ``O(log n / eps^2)`` nodes are opinionated and the
bias handed to the next phase is ``~ eps^2 / 2 = n^(-1/2 - 2 eta)``, below the
``sqrt(log n / n)`` level Stage 2 needs.

The experiment fixes ``n`` and sweeps ``eps`` across the threshold, running
the full protocol and recording the success rate and the bias at the end of
Stage 1 relative to the ``sqrt(log n / n)`` requirement.  The reproduced
trend: success is reliable for ``eps`` comfortably above ``n^(-1/4)`` and
degrades as ``eps`` crosses below it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.convergence import estimate_success_probability
from repro.analysis.theory import theoretical_bias_after_stage1
from repro.experiments.results import ExperimentTable
from repro.experiments.spec import register_experiment
from repro.sim import Scenario, ScenarioGrid, simulate_sweep
from repro.utils.rng import RandomState, derive_seed

__all__ = ["EpsilonThresholdConfig", "run"]

_TITLE = "Success across the eps ~ n^(-1/4) noise threshold"
_PAPER_CLAIM = (
    "Theorem 1 requires eps = Omega(n^(-1/4 + eta)); Appendix D argues the "
    "protocol's phase structure fails to deliver the required "
    "sqrt(log n / n) bias to Stage 2 when eps = Theta(n^(-1/4 - eta))"
)


@dataclass
class EpsilonThresholdConfig:
    """Parameters of the E9 sweep.

    ``trial_engine`` selects the repeated-trial execution engine
    (``"batched"`` vectorized ensemble, or the ``"sequential"`` reference
    loop).
    """

    num_nodes: int = 2000
    num_opinions: int = 2
    epsilon_over_threshold: Sequence[float] = (3.0, 2.0, 1.0, 0.6, 0.4)
    num_trials: int = 4
    trial_engine: str = "batched"

    @classmethod
    def quick(cls) -> "EpsilonThresholdConfig":
        """A configuration that completes in under a minute."""
        return cls(
            num_nodes=1200,
            epsilon_over_threshold=(2.5, 1.0, 0.5),
            num_trials=3,
        )

    @classmethod
    def full(cls) -> "EpsilonThresholdConfig":
        """A configuration with a larger population and finer sweep."""
        return cls(
            num_nodes=10000,
            epsilon_over_threshold=(4.0, 2.0, 1.5, 1.0, 0.75, 0.5, 0.35),
            num_trials=8,
        )


@register_experiment(
    experiment_id="E9",
    description="Appendix D: epsilon threshold",
    title=_TITLE,
    paper_claim=_PAPER_CLAIM,
    supported_engines=("batched", "sequential", "counts"),
    config_cls=EpsilonThresholdConfig,
)
def run(
    config: Optional[EpsilonThresholdConfig] = None,
    random_state: RandomState = 0,
) -> ExperimentTable:
    """Run the E9 sweep and return the result table."""
    config = config or EpsilonThresholdConfig.quick()
    table = ExperimentTable(
        experiment_id="E9",
        title=_TITLE,
        paper_claim=_PAPER_CLAIM,
    )
    threshold = config.num_nodes ** (-0.25)
    required_bias = theoretical_bias_after_stage1(config.num_nodes)
    epsilons = [
        min(0.45, multiplier * threshold)
        for multiplier in config.epsilon_over_threshold
    ]
    # One batched sweep over the epsilon axis: the counts tier fuses every
    # grid point into a single heterogeneous ensemble, other tiers fall
    # back to per-point simulate() — results are bitwise identical to a
    # serial loop over the grid's scenarios either way.
    grid = ScenarioGrid(
        Scenario(
            workload="rumor",
            num_nodes=config.num_nodes,
            num_opinions=config.num_opinions,
            epsilon=epsilons[0],
            engine=config.trial_engine,
            num_trials=config.num_trials,
            seed=derive_seed(random_state, 0),
            correct_opinion=1,
        ),
        {"epsilon": epsilons},
    )
    sweep = simulate_sweep(grid)
    for epsilon, result in zip(epsilons, sweep.results):
        success_rate, interval = estimate_success_probability(
            [bool(success) for success in result.successes]
        )
        mean_stage1_bias = (
            float(np.mean(result.bias_after_stage1))
            if result.bias_after_stage1 is not None
            else float("nan")
        )
        mean_rounds = float(np.mean(result.rounds))
        table.add_record(
            n=config.num_nodes,
            epsilon=epsilon,
            eps_over_threshold=epsilon / threshold,
            success_rate=success_rate,
            success_low=interval[0],
            success_high=interval[1],
            mean_stage1_bias=mean_stage1_bias,
            required_stage2_bias=required_bias,
            stage1_bias_sufficient=mean_stage1_bias >= required_bias,
            mean_rounds=mean_rounds,
        )
    table.add_note(
        f"threshold n^(-1/4) = {threshold:.4f} for n = {config.num_nodes}; epsilons "
        "are clamped at 0.45 so the uniform-noise matrix stays well-formed; "
        f"trial engine: {config.trial_engine}"
    )
    return table
