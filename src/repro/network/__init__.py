"""Communication substrates: the noisy uniform push model and its relatives.

The paper analyses one physical communication model and two mathematical
surrogates of it:

* **process O** (:class:`~repro.network.push_model.UniformPushModel`) — the
  noisy uniform push model itself: in each synchronous round every
  opinionated node pushes its opinion to a node chosen uniformly at random,
  and the opinion is perturbed in transit by the noise matrix;
* **process B** (:class:`~repro.network.balls_bins.BallsIntoBinsProcess`) —
  the balls-into-bins reformulation of Definition 3: all messages of a phase
  are re-colored by the noise and thrown into the ``n`` bins u.a.r.;
* **process P** (:class:`~repro.network.poisson_model.PoissonizedProcess`) —
  the Poissonized approximation of Definition 4, where each node receives an
  independent ``Poisson(h_i / n)`` number of copies of each opinion ``i``.

Claim 1 states that O and B induce the same end-of-phase distribution, and
Lemma 2/3 show that events that hold w.h.p. under P also hold w.h.p. under O;
experiment E8 validates both statements statistically using these engines.

A noisy uniform *pull* substrate is also provided for the baseline dynamics
of the related-work comparison (3-majority, h-majority, …), which are
classically stated in terms of pulling a few random opinions per round.
"""

from repro.network.balls_bins import (
    BallsIntoBinsProcess,
    CountsDeliveryModel,
    poisson_tail_probability,
)
from repro.network.delivery import deliver_phase, supports_population_delivery
from repro.network.mailbox import ReceivedMessages
from repro.network.poisson_model import PoissonizedProcess
from repro.network.pull_model import (
    CountsPullModel,
    EnsemblePullModel,
    UniformPullModel,
)
from repro.network.push_model import PushPhaseStatistics, UniformPushModel
from repro.network.topology import GraphPushModel, standard_topology

__all__ = [
    "BallsIntoBinsProcess",
    "CountsDeliveryModel",
    "CountsPullModel",
    "EnsemblePullModel",
    "GraphPushModel",
    "PoissonizedProcess",
    "PushPhaseStatistics",
    "ReceivedMessages",
    "UniformPullModel",
    "UniformPushModel",
    "deliver_phase",
    "poisson_tail_probability",
    "standard_topology",
    "supports_population_delivery",
]
