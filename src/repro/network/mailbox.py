"""Per-node received-message bookkeeping.

All three communication processes (O, B, P) report what each node received
during a phase as a dense integer matrix of shape ``(num_nodes, num_opinions)``:
entry ``(u, i)`` is the number of copies of opinion ``i + 1`` delivered to
node ``u`` during the phase.  :class:`ReceivedMessages` wraps that matrix with
the sampling operations the protocol needs (uniform sub-sampling of the
received multiset, as performed by the reservoir in Stage 2).

:class:`EnsembleReceivedMessages` is the batched counterpart used by the
ensemble engines: a ``(num_trials, num_nodes, num_opinions)`` tensor covering
``R`` independent trials, with the same sampling operations vectorized over
the whole batch (the Stage-2 reservoir sub-sample becomes a batched
multivariate-hypergeometric draw built from ``k - 1`` vectorized
hypergeometric calls instead of a per-node Python loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.multiset import majority_from_counts
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    as_trial_generators,
    is_generator_sequence,
)

__all__ = ["ReceivedMessages", "EnsembleReceivedMessages"]


def _uniform_choice_core(counts: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Inverse-CDF draw of one received opinion per node, 0 for empty rows.

    ``counts`` has shape ``(..., num_opinions)`` and ``uniforms`` the matching
    leading shape; the same kernel serves the single-trial and batched paths.
    """
    cumulative = np.cumsum(counts, axis=-1).astype(float)
    totals = counts.sum(axis=-1)
    thresholds = uniforms * totals
    picks = (thresholds[..., np.newaxis] >= cumulative).sum(axis=-1) + 1
    return np.where(totals > 0, picks, 0).astype(np.int64)


def _subsample_core(
    counts: np.ndarray,
    sample_size: int,
    rng: np.random.Generator,
    method: str,
) -> np.ndarray:
    """Uniform sub-sample of size ``sample_size`` per row of ``counts``.

    ``counts`` has shape ``(..., num_opinions)``; rows with at most
    ``sample_size`` messages are returned untouched.  The
    ``without_replacement`` draw realizes the multivariate hypergeometric
    distribution per row through ``k - 1`` *vectorized* conditional
    hypergeometric draws over all rows at once.
    """
    num_opinions = counts.shape[-1]
    flat = counts.reshape(-1, num_opinions)
    totals = flat.sum(axis=1)
    sampled = flat.copy()
    rows = np.nonzero(totals > sample_size)[0]
    if rows.size:
        if method == "without_replacement":
            subset = flat[rows]
            remaining = totals[rows].copy()
            to_draw = np.full(rows.size, sample_size, dtype=np.int64)
            drawn = np.empty_like(subset)
            for opinion in range(num_opinions - 1):
                good = subset[:, opinion]
                bad = remaining - good
                taken = rng.hypergeometric(good, bad, to_draw)
                drawn[:, opinion] = taken
                to_draw -= taken
                remaining = bad
            drawn[:, num_opinions - 1] = to_draw
            sampled[rows] = drawn
        else:
            probabilities = flat[rows] / totals[rows, np.newaxis].astype(float)
            sampled[rows] = rng.multinomial(sample_size, probabilities)
    return sampled.reshape(counts.shape)


def _majority_core(
    counts: np.ndarray,
    eligible: np.ndarray,
    rng: Optional[np.random.Generator],
    tie_keys: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Row-wise ``maj()`` with uniform tie-break, 0 for ineligible rows.

    The tie-break keys are drawn from ``rng`` unless the caller supplies
    ``tie_keys`` (the batched per-trial-stream path draws one key block per
    trial and passes them in so the mode computation stays vectorized).
    Integer counts plus keys in ``[0, 1)`` order primarily by count and
    uniformly among tied maxima, so one fused argmax picks the same winner
    the masked-keys formulation would for the same keys.
    """
    row_max = counts.max(axis=-1)
    if tie_keys is None:
        tie_keys = rng.random(counts.shape)
    winners = (counts + tie_keys).argmax(axis=-1) + 1
    return np.where(
        eligible & (row_max > 0), winners, 0
    ).astype(np.int64)


@dataclass
class ReceivedMessages:
    """The multiset of opinions each node received during a phase.

    Attributes
    ----------
    counts:
        Integer matrix ``(num_nodes, num_opinions)``; entry ``(u, i)`` is the
        number of copies of opinion ``i + 1`` node ``u`` received.
    """

    counts: np.ndarray

    def __post_init__(self) -> None:
        # Raw-dtype view for validation only; the stored array is pinned to
        # int64 by the astype below.
        counts = np.asarray(self.counts)  # reprolint: disable=int64-dtype-pin
        if counts.ndim != 2:
            raise ValueError(
                f"counts must be a 2-D matrix, got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("received counts must be non-negative")
        self.counts = counts.astype(np.int64, copy=False)

    # ------------------------------------------------------------------ #
    # Shape / totals
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes (rows)."""
        return self.counts.shape[0]

    @property
    def num_opinions(self) -> int:
        """Number of opinions (columns)."""
        return self.counts.shape[1]

    def totals(self) -> np.ndarray:
        """Total number of messages received per node."""
        return self.counts.sum(axis=1)

    def total_messages(self) -> int:
        """Total number of messages delivered in the phase."""
        return int(self.counts.sum())

    def opinion_totals(self) -> np.ndarray:
        """Total number of delivered copies of each opinion (length ``k``)."""
        return self.counts.sum(axis=0)

    def received_any(self) -> np.ndarray:
        """Boolean mask of nodes that received at least one message."""
        return self.totals() > 0

    def merge(self, other: "ReceivedMessages") -> "ReceivedMessages":
        """Combine with another phase's deliveries (element-wise sum)."""
        if self.counts.shape != other.counts.shape:
            raise ValueError(
                "cannot merge ReceivedMessages with different shapes: "
                f"{self.counts.shape} vs {other.counts.shape}"
            )
        return ReceivedMessages(self.counts + other.counts)

    # ------------------------------------------------------------------ #
    # Sampling / voting
    # ------------------------------------------------------------------ #

    def uniform_opinion_choice(self, random_state: RandomState = None) -> np.ndarray:
        """One opinion per node, chosen u.a.r. from its received multiset.

        This is the Stage-1 adoption rule ("chosen u.a.r. counting
        multiplicities").  Nodes that received nothing get 0.
        """
        rng = as_generator(random_state)
        totals = self.totals()
        choices = np.zeros(self.num_nodes, dtype=np.int64)
        receivers = np.nonzero(totals)[0]
        if receivers.size == 0:
            return choices
        # Inverse-CDF draw per receiving node over its own counts.
        cumulative = np.cumsum(self.counts[receivers], axis=1).astype(float)
        thresholds = rng.random(receivers.size) * totals[receivers]
        picks = (thresholds[:, np.newaxis] >= cumulative).sum(axis=1) + 1
        choices[receivers] = picks
        return choices

    def subsample(
        self,
        sample_size: int,
        random_state: RandomState = None,
        *,
        method: str = "without_replacement",
    ) -> np.ndarray:
        """A uniform random sample of size ``sample_size`` per node.

        Implements the Stage-2 "random uniform sample S(u) of size L from
        R_j(u)" (equivalently, the contents of a size-``L`` reservoir after
        reservoir sampling the received stream).  Nodes that received fewer
        than ``sample_size`` messages keep their full multiset — the protocol
        only lets such nodes vote when ``|R_j(u)| >= L``, which callers check
        via :meth:`totals`.

        Parameters
        ----------
        sample_size:
            The target sample size ``L``.
        method:
            ``"without_replacement"`` (exact multiset sub-sampling, via a
            multivariate hypergeometric draw per node) or
            ``"with_replacement"`` (multinomial over the empirical received
            distribution; cheaper and asymptotically equivalent, exposed for
            the sampling ablation E13).

        Returns
        -------
        numpy.ndarray
            Integer matrix ``(num_nodes, num_opinions)`` of sampled counts.
        """
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        if method not in {"without_replacement", "with_replacement"}:
            raise ValueError(
                "method must be 'without_replacement' or 'with_replacement', "
                f"got {method!r}"
            )
        rng = as_generator(random_state)
        totals = self.totals()
        sampled = self.counts.copy()
        needs_sampling = np.nonzero(totals > sample_size)[0]
        if needs_sampling.size == 0:
            return sampled
        if method == "without_replacement":
            for node in needs_sampling:
                sampled[node] = rng.multivariate_hypergeometric(
                    self.counts[node], sample_size
                )
        else:
            probabilities = (
                self.counts[needs_sampling]
                / totals[needs_sampling, np.newaxis].astype(float)
            )
            for offset, node in enumerate(needs_sampling):
                sampled[node] = rng.multinomial(sample_size, probabilities[offset])
        return sampled

    def majority_votes(
        self,
        random_state: RandomState = None,
        *,
        sample_size: Optional[int] = None,
        sampling_method: str = "without_replacement",
    ) -> np.ndarray:
        """Per-node ``maj()`` of the (optionally sub-sampled) received multiset.

        Nodes that received no messages vote 0 (no opinion); when
        ``sample_size`` is given, nodes that received fewer than
        ``sample_size`` messages also vote 0, matching the Stage-2 rule that
        only nodes with ``|R_j(u)| >= L`` update.
        """
        rng = as_generator(random_state)
        if sample_size is None:
            counts = self.counts
            eligible = self.received_any()
        else:
            counts = self.subsample(
                sample_size, rng, method=sampling_method
            )
            eligible = self.totals() >= sample_size
        votes = majority_from_counts(counts, rng)
        return np.where(eligible, votes, 0).astype(np.int64)


@dataclass
class EnsembleReceivedMessages:
    """The received multisets of ``R`` independent trials, as one tensor.

    Attributes
    ----------
    counts:
        Integer tensor ``(num_trials, num_nodes, num_opinions)``; entry
        ``(r, u, i)`` is the number of copies of opinion ``i + 1`` node ``u``
        of trial ``r`` received during the phase.

    Every sampling method accepts either one shared randomness source (fully
    vectorized over the batch) or a sequence of per-trial sources; in the
    latter case trial ``r`` consumes draws from its own generator only, so a
    batched call is reproducible trial by trial.
    """

    counts: np.ndarray

    def __post_init__(self) -> None:
        # Raw-dtype view for validation only; the stored array is pinned to
        # int64 by the astype below.
        counts = np.asarray(self.counts)  # reprolint: disable=int64-dtype-pin
        if counts.ndim != 3:
            raise ValueError(
                f"ensemble counts must be a 3-D tensor, got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("received counts must be non-negative")
        self.counts = counts.astype(np.int64, copy=False)

    # ------------------------------------------------------------------ #
    # Shape / totals
    # ------------------------------------------------------------------ #

    @property
    def num_trials(self) -> int:
        """Number of trials ``R``."""
        return self.counts.shape[0]

    @property
    def num_nodes(self) -> int:
        """Number of nodes per trial."""
        return self.counts.shape[1]

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.counts.shape[2]

    def totals(self) -> np.ndarray:
        """Messages received per node, shape ``(R, n)``."""
        return self.counts.sum(axis=2)

    def total_messages(self) -> np.ndarray:
        """Messages delivered per trial, shape ``(R,)``."""
        return self.counts.sum(axis=(1, 2))

    def trial(self, index: int) -> ReceivedMessages:
        """Trial ``index`` as a standalone :class:`ReceivedMessages`."""
        return ReceivedMessages(self.counts[index].copy())

    # ------------------------------------------------------------------ #
    # Sampling / voting
    # ------------------------------------------------------------------ #

    def uniform_opinion_choice(
        self, random_state: EnsembleRandomState = None
    ) -> np.ndarray:
        """One opinion per node per trial, u.a.r. from its received multiset.

        The Stage-1 adoption rule batched over the ensemble; returns an
        ``(R, n)`` integer matrix with 0 for nodes that received nothing.
        """
        if is_generator_sequence(random_state):
            generators = as_trial_generators(random_state, self.num_trials)
            return np.stack(
                [
                    _uniform_choice_core(
                        self.counts[trial], generator.random(self.num_nodes)
                    )
                    for trial, generator in enumerate(generators)
                ]
            )
        rng = as_generator(random_state)
        uniforms = rng.random((self.num_trials, self.num_nodes))
        return _uniform_choice_core(self.counts, uniforms)

    def subsample(
        self,
        sample_size: int,
        random_state: EnsembleRandomState = None,
        *,
        method: str = "without_replacement",
    ) -> np.ndarray:
        """A uniform random sample of size ``sample_size`` per node per trial.

        The batched version of :meth:`ReceivedMessages.subsample`; the
        without-replacement draw is a batched multivariate hypergeometric
        realized with ``k - 1`` vectorized hypergeometric calls (no per-node
        Python loop).  Returns an ``(R, n, k)`` integer tensor.
        """
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        if method not in {"without_replacement", "with_replacement"}:
            raise ValueError(
                "method must be 'without_replacement' or 'with_replacement', "
                f"got {method!r}"
            )
        if is_generator_sequence(random_state):
            generators = as_trial_generators(random_state, self.num_trials)
            return np.stack(
                [
                    _subsample_core(self.counts[trial], sample_size, generator, method)
                    for trial, generator in enumerate(generators)
                ]
            )
        rng = as_generator(random_state)
        return _subsample_core(self.counts, sample_size, rng, method)

    def majority_votes(
        self,
        random_state: EnsembleRandomState = None,
        *,
        sample_size: Optional[int] = None,
        sampling_method: str = "without_replacement",
    ) -> np.ndarray:
        """Per-node ``maj()`` votes batched over the ensemble.

        The batched version of :meth:`ReceivedMessages.majority_votes`;
        returns an ``(R, n)`` integer matrix with 0 for nodes that do not
        update (nothing received, or fewer than ``sample_size`` messages).
        """
        if is_generator_sequence(random_state):
            generators = as_trial_generators(random_state, self.num_trials)
            if sample_size is None:
                # Fast path (the dynamics' hot loop): the per-trial streams
                # only contribute the tie-break keys, so fill one key block
                # per trial in place and run the mode computation batched.
                tie_keys = np.empty(self.counts.shape, dtype=np.float64)
                for trial, generator in enumerate(generators):
                    generator.random(out=tie_keys[trial])
                return _majority_core(
                    self.counts, self.totals() > 0, None, tie_keys=tie_keys
                )
            votes = []
            for trial, generator in enumerate(generators):
                counts = _subsample_core(
                    self.counts[trial], sample_size, generator, sampling_method
                )
                eligible = self.counts[trial].sum(axis=-1) >= sample_size
                votes.append(_majority_core(counts, eligible, generator))
            return np.stack(votes)
        rng = as_generator(random_state)
        totals = self.totals()
        if sample_size is None:
            counts = self.counts
            eligible = totals > 0
        else:
            counts = _subsample_core(self.counts, sample_size, rng, sampling_method)
            eligible = totals >= sample_size
        return _majority_core(counts, eligible, rng)
