"""Per-node received-message bookkeeping.

All three communication processes (O, B, P) report what each node received
during a phase as a dense integer matrix of shape ``(num_nodes, num_opinions)``:
entry ``(u, i)`` is the number of copies of opinion ``i + 1`` delivered to
node ``u`` during the phase.  :class:`ReceivedMessages` wraps that matrix with
the sampling operations the protocol needs (uniform sub-sampling of the
received multiset, as performed by the reservoir in Stage 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.multiset import majority_from_counts
from repro.utils.rng import RandomState, as_generator

__all__ = ["ReceivedMessages"]


@dataclass
class ReceivedMessages:
    """The multiset of opinions each node received during a phase.

    Attributes
    ----------
    counts:
        Integer matrix ``(num_nodes, num_opinions)``; entry ``(u, i)`` is the
        number of copies of opinion ``i + 1`` node ``u`` received.
    """

    counts: np.ndarray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts)
        if counts.ndim != 2:
            raise ValueError(
                f"counts must be a 2-D matrix, got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("received counts must be non-negative")
        self.counts = counts.astype(np.int64, copy=False)

    # ------------------------------------------------------------------ #
    # Shape / totals
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes (rows)."""
        return self.counts.shape[0]

    @property
    def num_opinions(self) -> int:
        """Number of opinions (columns)."""
        return self.counts.shape[1]

    def totals(self) -> np.ndarray:
        """Total number of messages received per node."""
        return self.counts.sum(axis=1)

    def total_messages(self) -> int:
        """Total number of messages delivered in the phase."""
        return int(self.counts.sum())

    def opinion_totals(self) -> np.ndarray:
        """Total number of delivered copies of each opinion (length ``k``)."""
        return self.counts.sum(axis=0)

    def received_any(self) -> np.ndarray:
        """Boolean mask of nodes that received at least one message."""
        return self.totals() > 0

    def merge(self, other: "ReceivedMessages") -> "ReceivedMessages":
        """Combine with another phase's deliveries (element-wise sum)."""
        if self.counts.shape != other.counts.shape:
            raise ValueError(
                "cannot merge ReceivedMessages with different shapes: "
                f"{self.counts.shape} vs {other.counts.shape}"
            )
        return ReceivedMessages(self.counts + other.counts)

    # ------------------------------------------------------------------ #
    # Sampling / voting
    # ------------------------------------------------------------------ #

    def uniform_opinion_choice(self, random_state: RandomState = None) -> np.ndarray:
        """One opinion per node, chosen u.a.r. from its received multiset.

        This is the Stage-1 adoption rule ("chosen u.a.r. counting
        multiplicities").  Nodes that received nothing get 0.
        """
        rng = as_generator(random_state)
        totals = self.totals()
        choices = np.zeros(self.num_nodes, dtype=np.int64)
        receivers = np.nonzero(totals)[0]
        if receivers.size == 0:
            return choices
        # Inverse-CDF draw per receiving node over its own counts.
        cumulative = np.cumsum(self.counts[receivers], axis=1).astype(float)
        thresholds = rng.random(receivers.size) * totals[receivers]
        picks = (thresholds[:, np.newaxis] >= cumulative).sum(axis=1) + 1
        choices[receivers] = picks
        return choices

    def subsample(
        self,
        sample_size: int,
        random_state: RandomState = None,
        *,
        method: str = "without_replacement",
    ) -> np.ndarray:
        """A uniform random sample of size ``sample_size`` per node.

        Implements the Stage-2 "random uniform sample S(u) of size L from
        R_j(u)" (equivalently, the contents of a size-``L`` reservoir after
        reservoir sampling the received stream).  Nodes that received fewer
        than ``sample_size`` messages keep their full multiset — the protocol
        only lets such nodes vote when ``|R_j(u)| >= L``, which callers check
        via :meth:`totals`.

        Parameters
        ----------
        sample_size:
            The target sample size ``L``.
        method:
            ``"without_replacement"`` (exact multiset sub-sampling, via a
            multivariate hypergeometric draw per node) or
            ``"with_replacement"`` (multinomial over the empirical received
            distribution; cheaper and asymptotically equivalent, exposed for
            the sampling ablation E13).

        Returns
        -------
        numpy.ndarray
            Integer matrix ``(num_nodes, num_opinions)`` of sampled counts.
        """
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        if method not in {"without_replacement", "with_replacement"}:
            raise ValueError(
                "method must be 'without_replacement' or 'with_replacement', "
                f"got {method!r}"
            )
        rng = as_generator(random_state)
        totals = self.totals()
        sampled = self.counts.copy()
        needs_sampling = np.nonzero(totals > sample_size)[0]
        if needs_sampling.size == 0:
            return sampled
        if method == "without_replacement":
            for node in needs_sampling:
                sampled[node] = rng.multivariate_hypergeometric(
                    self.counts[node], sample_size
                )
        else:
            probabilities = (
                self.counts[needs_sampling]
                / totals[needs_sampling, np.newaxis].astype(float)
            )
            for offset, node in enumerate(needs_sampling):
                sampled[node] = rng.multinomial(sample_size, probabilities[offset])
        return sampled

    def majority_votes(
        self,
        random_state: RandomState = None,
        *,
        sample_size: Optional[int] = None,
        sampling_method: str = "without_replacement",
    ) -> np.ndarray:
        """Per-node ``maj()`` of the (optionally sub-sampled) received multiset.

        Nodes that received no messages vote 0 (no opinion); when
        ``sample_size`` is given, nodes that received fewer than
        ``sample_size`` messages also vote 0, matching the Stage-2 rule that
        only nodes with ``|R_j(u)| >= L`` update.
        """
        rng = as_generator(random_state)
        if sample_size is None:
            counts = self.counts
            eligible = self.received_any()
        else:
            counts = self.subsample(
                sample_size, rng, method=sampling_method
            )
            eligible = self.totals() >= sample_size
        votes = majority_from_counts(counts, rng)
        return np.where(eligible, votes, 0).astype(np.int64)
