"""Process B: the balls-into-bins reformulation (Definition 3).

For a fixed phase, view the messages sent during the phase as colored balls
(one color per opinion) and the nodes as bins.  The process has two steps:

1. each ball of color ``i`` is independently re-colored ``j`` with
   probability ``p_ij`` (the noise acting on the message);
2. every ball is thrown into a bin chosen uniformly at random.

Claim 1 of the paper states that the end-of-phase state of the protocol under
the real push model (process O) has exactly the same distribution as if the
messages had been delivered by this process.  The engine below implements the
process directly from the phase's message histogram so that experiment E8 can
compare the two empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.network.mailbox import EnsembleReceivedMessages, ReceivedMessages
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    as_trial_generators,
    is_generator_sequence,
)
from repro.utils.validation import require_positive_int

__all__ = [
    "BallsIntoBinsProcess",
    "ensemble_recolor_and_throw",
    "CompiledPhaseLaw",
    "CountsDeliveryModel",
    "HeterogeneousCountsDeliveryModel",
    "poisson_tail_probability",
]


# reprolint: counts-tier
@lru_cache(maxsize=64)
def _poisson_tail_tables(threshold: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached ``(indices, log_factorial)`` work arrays of the Poisson tail.

    The tail is evaluated once per phase per threshold, and the same
    thresholds recur across phases, trials, sweep points and repeated engine
    construction — hoisting the ``O(L)`` cumulative-log table out of
    :func:`poisson_tail_probability` makes the per-call cost proportional to
    the batch size only.  The arrays are read-only views shared by every
    caller.
    """
    indices = np.arange(threshold, dtype=float)
    log_factorial = np.zeros(threshold)
    if threshold > 1:
        log_factorial[1:] = np.cumsum(np.log(np.arange(1, threshold)))
    indices.setflags(write=False)
    log_factorial.setflags(write=False)
    return indices, log_factorial


# reprolint: counts-tier
def poisson_tail_probability(threshold: int, lam: np.ndarray) -> np.ndarray:
    """``P(Poisson(lam) >= threshold)``, vectorized over ``lam``.

    Computed in log space (no scipy dependency) so that phase intensities in
    the hundreds — the Stage-2 final phase has ``Lambda ~ 2 L' ~ log n /
    eps^2`` — neither underflow ``exp(-Lambda)`` nor lose the tail.  Exact
    up to float64 rounding.
    """
    lam = np.asarray(lam, dtype=float)
    if threshold <= 0:
        return np.ones(lam.shape)
    indices, log_factorial = _poisson_tail_tables(threshold)
    positive = lam > 0
    all_positive = lam.ndim > 0 and bool(positive.all())
    if not all_positive and not positive.any():
        return np.zeros(lam.shape)
    lam_pos = lam if all_positive else lam[positive]
    log_terms = (
        -lam_pos[:, np.newaxis]
        + indices[np.newaxis, :] * np.log(lam_pos)[:, np.newaxis]
        - log_factorial[np.newaxis, :]
    )
    top = log_terms.max(axis=1)
    cdf = np.exp(top) * np.exp(
        log_terms - top[:, np.newaxis]
    ).sum(axis=1)
    if all_positive:
        return np.clip(1.0 - cdf, 0.0, 1.0)
    tail = np.zeros(lam.shape)
    tail[positive] = np.clip(1.0 - cdf, 0.0, 1.0)
    return tail


# reprolint: counts-tier
@dataclass(frozen=True)
class CompiledPhaseLaw:
    """Everything about a counts phase that is constant across its rounds.

    Built once per distinct ``(num_rounds, sample_size)`` by
    :meth:`CountsDeliveryModel.compile_phase` and reused for every round and
    trial of the phase: the vote-law path decision (closed-form table, dense
    large-sample table, or bounded-chunk fallback) is made once, and the
    backing tables (Poisson-tail log-factorial, ``maj()`` composition
    tables) are warmed into their caches at compile time, so the phase
    samplers do no re-derivation.  ``sample_size`` is ``None`` for Stage-1
    phases, which have no vote step.
    """

    num_rounds: int
    sample_size: Optional[int] = None
    vote_path: Optional[str] = None


# reprolint: counts-tier
class CountsDeliveryModel:
    """Counts-native phase delivery: Claim-1 recoloring + Poissonized bins.

    The counts engine's substitute for a per-node delivery engine.  A phase
    is reduced to its message histogram (Claim 1's balls-into-bins
    reformulation, Definition 3): step 1 — every ball is re-colored through
    the noise matrix — is sampled *exactly* with one multinomial per color
    (:meth:`recolor`).  Step 2 — throwing the balls into the ``n`` bins —
    is summarized under the Poissonized process P (Definition 4, the
    paper's own analysis device): every node independently receives
    ``Poisson(h_i / n)`` copies of opinion ``i``, which makes the per-node
    outcomes i.i.d. and therefore reducible to ``O(k)`` closed-form
    probabilities per trial:

    * Stage-1 adoption (:meth:`adoption_probabilities`): by Poisson
      splitting, a node that received at least one ball adopts color ``j``
      with probability ``h_j / B`` independent of how many balls arrived,
      so the per-node outcome law over {stay undecided, adopt 1, …, adopt
      k} is ``(e^-Lambda, (1 - e^-Lambda) h / B)`` with
      ``Lambda = B / n``.
    * Stage-2 eligibility (:meth:`update_probability`): a node re-votes iff
      it received at least ``L`` messages, an event of probability
      ``P(Poisson(Lambda) >= L)``.
    * Stage-2 votes (:meth:`vote_probabilities`): a size-``L`` uniform
      subsample of i.i.d.-colored arrivals is ``L`` i.i.d. draws from
      ``h / B`` — exactly the observation law the closed-form ``maj()``
      table consumes.

    Lemma 2 bounds the distance between process P and the real push process
    O, so protocol runs under this model agree with the per-node engines
    statistically (checked by the engine-agreement test-suite); the
    dynamics' counts engines do not use this class and are exact outright.
    """

    def __init__(self, num_nodes: int, noise: NoiseMatrix) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise

    @property
    def num_opinions(self) -> int:
        """Number of ball colors ``k``."""
        return self.noise.num_opinions

    def _validate_histograms(self, histograms: np.ndarray) -> np.ndarray:
        array = np.asarray(histograms, dtype=np.int64)
        if array.ndim != 2 or array.shape[1] != self.num_opinions:
            raise ValueError(
                f"histograms must have shape (R, {self.num_opinions}), "
                f"got shape {array.shape}"
            )
        if array.size and array.min() < 0:
            raise ValueError("histogram entries must be non-negative")
        return array

    def phase_histograms(
        self,
        counts: np.ndarray,
        num_rounds: int,
        random_state: EnsembleRandomState = None,
    ) -> np.ndarray:
        """The phase's message histograms from the senders' opinion counts.

        Every opinionated node pushes once per round, so the base model
        returns ``counts * num_rounds``.  Fault-injecting subclasses
        override this to append adversarial balls (``random_state`` exists
        for their benefit; the base draw is deterministic).
        """
        return np.asarray(counts, dtype=np.int64) * np.int64(num_rounds)

    def resolve_vote_path(self, sample_size: int) -> str:
        """Which sampler :meth:`sample_vote_counts` uses for ``sample_size``.

        ``"table"`` — the closed-form composition table over
        {no opinion, 1, …, k} (small samples); ``"dense"`` — the exact dense
        table over opinionated observations only (large samples, any ``k=2``
        and thousands for ``k=3``); ``"chunk"`` — the bounded-chunk
        per-voter fallback (``O(num_voters)`` work).  The decision depends
        only on ``(sample_size, k)``, so phase compilers hoist it.
        """
        from repro.network.pull_model import (  # local: avoid import cycle
            dense_vote_law_is_tractable,
            vote_table_is_tractable,
        )

        if vote_table_is_tractable(sample_size, self.num_opinions):
            return "table"
        if dense_vote_law_is_tractable(sample_size, self.num_opinions):
            return "dense"
        return "chunk"

    def compile_phase(
        self, num_rounds: int, sample_size: Optional[int] = None
    ) -> CompiledPhaseLaw:
        """Hoist a phase's round/trial-invariant law work into one object.

        Decides the vote-law path once and warms the caches the phase
        samplers read (the Poisson-tail log-factorial table and, on the
        dense path, the ``maj()`` composition table), so that per-phase
        execution touches only batch-sized arrays.
        """
        if sample_size is None:
            return CompiledPhaseLaw(num_rounds=int(num_rounds))
        sample_size = int(sample_size)
        vote_path = self.resolve_vote_path(sample_size)
        _poisson_tail_tables(sample_size)
        if vote_path == "dense":
            from repro.network.pull_model import _dense_majority_vote_table

            _dense_majority_vote_table(sample_size, self.num_opinions)
        return CompiledPhaseLaw(
            num_rounds=int(num_rounds),
            sample_size=sample_size,
            vote_path=vote_path,
        )

    def recolor(
        self,
        histograms: np.ndarray,
        random_state: EnsembleRandomState = None,
        *,
        validate: bool = True,
    ) -> np.ndarray:
        """Step 1 of Definition 3 for ``R`` trials: exact noise re-coloring.

        ``histograms`` has shape ``(R, k)``; the result is the post-noise
        histogram matrix (same shape, int64, row sums preserved).  With a
        per-trial randomness sequence trial ``r`` consumes exactly the
        draws :meth:`NoiseMatrix.apply_to_counts` would make for its row.
        Executors that built the histograms themselves pass
        ``validate=False`` to skip the redundant shape/sign re-checks.
        """
        if validate:
            histograms = self._validate_histograms(histograms)
        return self.noise.apply_to_count_matrix(
            histograms, random_state
        ).astype(np.int64, copy=False)

    def adoption_probabilities(
        self, noisy_histograms: np.ndarray, *, validate: bool = True
    ) -> np.ndarray:
        """Per-undecided-node Stage-1 outcome law, shape ``(R, k + 1)``.

        Column 0 is "received nothing, stay undecided"; columns ``1..k``
        are the adoption probabilities of each opinion.
        """
        noisy = (
            self._validate_histograms(noisy_histograms)
            if validate
            else noisy_histograms
        )
        totals = noisy.sum(axis=1, dtype=np.int64)
        lam = totals / self.num_nodes
        none_mass = np.exp(-lam)
        shares = np.divide(
            noisy,
            totals[:, np.newaxis],
            out=np.zeros(noisy.shape, dtype=float),
            where=totals[:, np.newaxis] > 0,
        )
        probabilities = (1.0 - none_mass)[:, np.newaxis] * shares
        return np.concatenate(
            [none_mass[:, np.newaxis], probabilities], axis=1
        )

    def update_probability(
        self,
        noisy_histograms: np.ndarray,
        sample_size: int,
        *,
        validate: bool = True,
    ) -> np.ndarray:
        """Per-node probability of receiving at least ``sample_size``
        messages during the phase, shape ``(R,)``."""
        noisy = (
            self._validate_histograms(noisy_histograms)
            if validate
            else noisy_histograms
        )
        totals = noisy.sum(axis=1, dtype=np.int64)
        return poisson_tail_probability(
            int(sample_size), totals / self.num_nodes
        )

    def vote_probabilities(
        self, noisy_histograms: np.ndarray, *, validate: bool = True
    ) -> np.ndarray:
        """The i.i.d. color law of a re-voting node's sample, shape ``(R, k)``.

        Rows with an empty histogram come back all-zero (no node can be
        eligible there, so the law is never used).
        """
        noisy = (
            self._validate_histograms(noisy_histograms)
            if validate
            else noisy_histograms
        )
        totals = noisy.sum(axis=1, keepdims=True, dtype=np.int64)
        return np.divide(
            noisy,
            totals,
            out=np.zeros(noisy.shape, dtype=float),
            where=totals > 0,
        )

    def sample_adoptions(
        self,
        noisy_histograms: np.ndarray,
        undecided_counts: np.ndarray,
        random_state: EnsembleRandomState = None,
        *,
        validate: bool = True,
    ) -> np.ndarray:
        """Stage-1 end-of-phase adoptions, shape ``(R, k + 1)`` int64.

        Entry ``(r, 0)`` is the number of trial-``r`` undecided nodes that
        received nothing and stay undecided; entry ``(r, j)`` the number
        adopting opinion ``j`` — one multinomial per trial over the
        :meth:`adoption_probabilities` law.
        """
        if validate:
            noisy = self._validate_histograms(noisy_histograms)
            undecided = np.asarray(undecided_counts, dtype=np.int64)
            if undecided.shape != (noisy.shape[0],):
                raise ValueError(
                    f"undecided_counts must have shape ({noisy.shape[0]},), "
                    f"got {undecided.shape}"
                )
            if undecided.size and undecided.min() < 0:
                raise ValueError("undecided counts must be non-negative")
        else:
            noisy = noisy_histograms
            undecided = undecided_counts
        probabilities = self.adoption_probabilities(noisy, validate=False)
        if is_generator_sequence(random_state):
            generators = as_trial_generators(random_state, noisy.shape[0])
            adopted = np.empty(
                (noisy.shape[0], self.num_opinions + 1), dtype=np.int64
            )
            for trial, generator in enumerate(generators):
                adopted[trial] = generator.multinomial(
                    int(undecided[trial]), probabilities[trial]
                )
            return adopted
        rng = as_generator(random_state)
        return rng.multinomial(undecided, probabilities).astype(
            np.int64, copy=False
        )

    #: Bounded chunk size of the per-voter fallback sampler: keeps every
    #: intermediate array ``O(chunk * k)`` regardless of how many of the
    #: ``n`` nodes re-vote in a phase.
    VOTE_CHUNK = 32_768

    def sample_vote_counts(
        self,
        noisy_histograms: np.ndarray,
        num_voters: np.ndarray,
        sample_size: int,
        random_state: EnsembleRandomState = None,
        *,
        vote_path: Optional[str] = None,
        validate: bool = True,
    ) -> np.ndarray:
        """Per-trial tallies of ``num_voters`` i.i.d. ``maj()`` votes.

        Each eligible node's vote is ``maj()`` of ``sample_size`` i.i.d.
        draws from the trial's :meth:`vote_probabilities` law (the exact
        Stage-2 sample law under Poissonization).  Three samplers, chosen
        by :meth:`resolve_vote_path` (or the precomputed ``vote_path`` of a
        :class:`CompiledPhaseLaw`):

        * ``"table"`` — the closed-form vote law; one multinomial per trial;
        * ``"dense"`` — the dense large-sample vote law (exact, evaluated in
          log space over opinionated compositions only); one multinomial per
          trial, so the phase cost is independent of ``num_voters``.  The
          dense law is the *same distribution* as the chunk fallback it
          replaces but consumes different raw draws, so enabling it on a
          formerly chunked phase is a distributional (not bitwise) change —
          see ``docs/performance.md``;
        * ``"chunk"`` — bounded chunks of :data:`VOTE_CHUNK` per-voter
          compositions (``O(num_voters)`` work but never an ``n``-sized
          array), for ``(sample_size, k)`` beyond both table budgets.

        Returns an ``(R, k)`` int64 matrix.
        """
        from repro.network.pull_model import (  # local: avoid import cycle
            dense_majority_vote_law,
            majority_vote_law,
        )

        if validate:
            noisy = self._validate_histograms(noisy_histograms)
            voters = np.asarray(num_voters, dtype=np.int64)
            if voters.shape != (noisy.shape[0],):
                raise ValueError(
                    f"num_voters must have shape ({noisy.shape[0]},), "
                    f"got {voters.shape}"
                )
            if voters.size and voters.min() < 0:
                raise ValueError("voter counts must be non-negative")
        else:
            noisy = noisy_histograms
            voters = num_voters
        sample_size = int(sample_size)
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        num_trials, num_opinions = noisy.shape
        vote_law_probabilities = self.vote_probabilities(noisy, validate=False)
        if vote_path is None:
            vote_path = self.resolve_vote_path(sample_size)
        if vote_path == "table":
            observation_law = np.concatenate(
                [np.zeros((num_trials, 1)), vote_law_probabilities], axis=1
            )
            vote_pmf = np.clip(
                majority_vote_law(observation_law, sample_size), 0.0, 1.0
            )[:, 1:]
            # Renormalize away the rounding dust; the no-vote column is
            # exactly zero because every sampled message carries an opinion.
            row_sums = vote_pmf.sum(axis=1, keepdims=True)
            vote_pmf = np.divide(
                vote_pmf,
                row_sums,
                out=np.full(vote_pmf.shape, 1.0 / num_opinions),
                where=row_sums > 0,
            )
        elif vote_path == "dense":
            vote_pmf = dense_majority_vote_law(
                vote_law_probabilities, sample_size
            )
        elif vote_path != "chunk":
            raise ValueError(
                f"vote_path must be 'table', 'dense' or 'chunk', got "
                f"{vote_path!r}"
            )
        if vote_path != "chunk":
            if is_generator_sequence(random_state):
                generators = as_trial_generators(random_state, num_trials)
                votes = np.empty((num_trials, num_opinions), dtype=np.int64)
                for trial, generator in enumerate(generators):
                    votes[trial] = generator.multinomial(
                        int(voters[trial]), vote_pmf[trial]
                    )
                return votes
            rng = as_generator(random_state)
            return rng.multinomial(voters, vote_pmf).astype(
                np.int64, copy=False
            )
        # Chunked per-voter fallback: enumerate each voter's sample
        # composition directly (a k-cell multinomial) and tally the argmax
        # with uniform tie-break keys — distribution-identical to the
        # closed form, with every array bounded by VOTE_CHUNK.
        if is_generator_sequence(random_state):
            generators = as_trial_generators(random_state, num_trials)
        else:
            generators = [as_generator(random_state)] * num_trials
        votes = np.zeros((num_trials, num_opinions), dtype=np.int64)
        for trial, generator in enumerate(generators):
            remaining = int(voters[trial])
            if remaining == 0:
                continue
            pvals = vote_law_probabilities[trial]
            if pvals.sum() <= 0:
                raise ValueError(
                    "cannot sample votes from an empty message histogram"
                )
            while remaining > 0:
                chunk = min(remaining, self.VOTE_CHUNK)
                compositions = generator.multinomial(
                    sample_size, pvals, size=chunk
                )
                tie_keys = generator.random(compositions.shape)
                winners = (compositions + tie_keys).argmax(axis=1)
                votes[trial] += np.bincount(
                    winners, minlength=num_opinions
                ).astype(np.int64, copy=False)
                remaining -= chunk
        return votes


# reprolint: counts-tier
class HeterogeneousCountsDeliveryModel:
    """Counts-native phase delivery for rows with *per-row parameters*.

    The sweep engine's delivery model: rows of one merged ``(A, k)``
    histogram matrix belong to contiguous blocks (one block per grid
    point), each with its own population size ``n``, noise channel and
    Stage-2 sample size.  Every method reproduces, row for row, exactly
    the values and random draws that a homogeneous
    :class:`CountsDeliveryModel` built for that row's block would produce
    on the block alone — merged evaluation is used only for operations
    whose floating-point result is row-stable (elementwise arithmetic and
    per-row reductions), while the ``maj()`` vote law (a wide matmul whose
    summation tree depends on the batch shape) is always evaluated per
    block at the block's own row count.  This is what makes the sweep's
    per-point results bitwise identical to a serial per-scenario loop.

    Parameters
    ----------
    block_slices:
        Contiguous, non-overlapping slices partitioning ``range(A)``, one
        per grid point.
    num_nodes:
        One population size per block.
    noises:
        One :class:`~repro.noise.matrix.NoiseMatrix` per block; all blocks
        must share the same number of opinions ``k``.
    """

    def __init__(
        self,
        block_slices: Sequence[slice],
        num_nodes: Sequence[int],
        noises: Sequence[NoiseMatrix],
    ) -> None:
        if not block_slices:
            raise ValueError("at least one block is required")
        if not (len(block_slices) == len(num_nodes) == len(noises)):
            raise ValueError(
                "block_slices, num_nodes and noises must have equal length"
            )
        for noise in noises:
            if not isinstance(noise, NoiseMatrix):
                raise TypeError(
                    f"noise must be a NoiseMatrix, got {type(noise).__name__}"
                )
        self.num_opinions = noises[0].num_opinions
        if any(noise.num_opinions != self.num_opinions for noise in noises):
            raise ValueError(
                "every block must have the same number of opinions"
            )
        self.block_slices = list(block_slices)
        self.block_num_nodes = [
            require_positive_int(n, "num_nodes") for n in num_nodes
        ]
        self.noises = list(noises)
        total = 0
        rows_nodes = []
        for block, sl in enumerate(self.block_slices):
            if sl.start != total or sl.stop <= sl.start:
                raise ValueError(
                    "block_slices must be contiguous, non-empty and ordered"
                )
            total = sl.stop
            rows_nodes.append(
                np.full(sl.stop - sl.start, self.block_num_nodes[block], dtype=np.int64)
            )
        self.num_rows = total
        #: Per-row population size, shape ``(A,)``.
        self.num_nodes = np.concatenate(rows_nodes)

    def _validate_histograms(self, histograms: np.ndarray) -> np.ndarray:
        array = np.asarray(histograms, dtype=np.int64)
        if array.shape != (self.num_rows, self.num_opinions):
            raise ValueError(
                f"histograms must have shape ({self.num_rows}, "
                f"{self.num_opinions}), got shape {array.shape}"
            )
        if array.size and array.min() < 0:
            raise ValueError("histogram entries must be non-negative")
        return array

    def _resolve_vote_path(self, sample_size: int) -> str:
        """Cached per-``L`` vote-path decision (see ``resolve_vote_path``).

        The decision depends only on ``(sample_size, num_opinions)``, so it
        is resolved once per distinct sample size and reused by every phase
        substep instead of re-probing the tractability predicates per call.
        """
        cache = self.__dict__.setdefault("_vote_path_cache", {})
        path = cache.get(sample_size)
        if path is None:
            probe = CountsDeliveryModel(
                self.block_num_nodes[0], self.noises[0]
            )
            path = probe.resolve_vote_path(sample_size)
            cache[sample_size] = path
        return path

    def recolor(
        self, histograms: np.ndarray, generators
    ) -> np.ndarray:
        """Exact per-row noise re-coloring (one block's channel per row).

        ``generators`` is either one source per row (per-trial mode: row
        ``r`` consumes exactly its serial draws) or a single shared stream
        (batched mode: one column-wise multinomial per block and source
        opinion — far fewer generator calls, different draw order).
        """
        histograms = self._validate_histograms(histograms)
        if is_generator_sequence(generators):
            noisy = np.empty_like(histograms)
            for block, sl in enumerate(self.block_slices):
                noisy[sl] = self.noises[block].recolor_rows(
                    histograms[sl], generators[sl.start : sl.stop]
                )
            return noisy
        rng = as_generator(generators)
        noisy = np.zeros_like(histograms)
        stacked = self._stacked_noise_rows()
        for source in range(self.num_opinions):
            column = histograms[:, source]
            if column.any():
                noisy += rng.multinomial(column, stacked[source])
        return noisy

    def _stacked_noise_rows(self) -> np.ndarray:
        """Per-source per-row channel laws, shape ``(k, A, k)``.

        ``stacked[s, r]`` is row ``s`` of the noise matrix governing merged
        row ``r`` — the pvals layout that lets shared-stream recoloring draw
        one batched multinomial per *source opinion* across every block at
        once, instead of one numpy call per block and source.  Built once
        per (cached) submodel.
        """
        cached = self.__dict__.get("_stacked_noise_rows_cache")
        if cached is None:
            k = self.num_opinions
            cached = np.empty((k, self.num_rows, k))
            for block, sl in enumerate(self.block_slices):
                cached[:, sl, :] = self.noises[block].matrix[
                    :, np.newaxis, :
                ]
            self.__dict__["_stacked_noise_rows_cache"] = cached
        return cached

    def adoption_probabilities(self, noisy_histograms: np.ndarray) -> np.ndarray:
        """Stage-1 outcome laws with per-row ``n``, shape ``(A, k + 1)``."""
        noisy = self._validate_histograms(noisy_histograms)
        totals = noisy.sum(axis=1, dtype=np.int64)
        lam = totals / self.num_nodes
        none_mass = np.exp(-lam)
        shares = np.divide(
            noisy,
            totals[:, np.newaxis],
            out=np.zeros(noisy.shape, dtype=float),
            where=totals[:, np.newaxis] > 0,
        )
        probabilities = (1.0 - none_mass)[:, np.newaxis] * shares
        return np.concatenate(
            [none_mass[:, np.newaxis], probabilities], axis=1
        )

    def sample_adoptions(
        self,
        noisy_histograms: np.ndarray,
        undecided_counts: np.ndarray,
        generators,
    ) -> np.ndarray:
        """Stage-1 adoptions: one multinomial per row from its own stream
        (per-trial mode) or one batched multinomial (shared-stream mode)."""
        noisy = self._validate_histograms(noisy_histograms)
        undecided = np.asarray(undecided_counts, dtype=np.int64)
        probabilities = self.adoption_probabilities(noisy)
        if not is_generator_sequence(generators):
            rng = as_generator(generators)
            return rng.multinomial(undecided, probabilities).astype(
                np.int64, copy=False
            )
        adopted = np.empty(
            (self.num_rows, self.num_opinions + 1), dtype=np.int64
        )
        undecided_list = undecided.tolist()
        for row in range(self.num_rows):
            adopted[row] = generators[row].multinomial(
                undecided_list[row], probabilities[row]
            )
        return adopted

    def update_probability(
        self, noisy_histograms: np.ndarray, sample_sizes: np.ndarray
    ) -> np.ndarray:
        """Per-row Stage-2 eligibility with per-row thresholds.

        ``sample_sizes`` is an ``(A,)`` integer vector; rows sharing a
        threshold are evaluated in one merged (row-stable) tail call.
        """
        noisy = self._validate_histograms(noisy_histograms)
        thresholds = np.asarray(sample_sizes, dtype=np.int64)
        totals = noisy.sum(axis=1, dtype=np.int64)
        lam = totals / self.num_nodes
        tail = np.empty(self.num_rows, dtype=float)
        for threshold in np.unique(thresholds):
            mask = thresholds == threshold
            tail[mask] = poisson_tail_probability(int(threshold), lam[mask])
        return tail

    def sample_updaters(
        self,
        group_sizes: np.ndarray,
        update_probability: np.ndarray,
        generators,
    ) -> np.ndarray:
        """Stage-2 re-voter counts: one binomial per row (per-trial mode)
        or one batched binomial over the whole matrix (shared-stream)."""
        group_sizes = np.asarray(group_sizes, dtype=np.int64)
        probabilities = np.asarray(update_probability)
        if not is_generator_sequence(generators):
            rng = as_generator(generators)
            return rng.binomial(
                group_sizes, probabilities[:, np.newaxis]
            ).astype(np.int64, copy=False)
        updaters = np.empty(group_sizes.shape, dtype=np.int64)
        sizes = group_sizes.tolist()
        probability_list = probabilities.tolist()
        for row in range(updaters.shape[0]):
            updaters[row] = generators[row].binomial(
                sizes[row], probability_list[row]
            )
        return updaters

    def vote_probabilities(self, noisy_histograms: np.ndarray) -> np.ndarray:
        """The per-row i.i.d. color law of a re-voter's sample."""
        noisy = self._validate_histograms(noisy_histograms)
        totals = noisy.sum(axis=1, keepdims=True, dtype=np.int64)
        return np.divide(
            noisy,
            totals,
            out=np.zeros(noisy.shape, dtype=float),
            where=totals > 0,
        )

    def sample_vote_counts(
        self,
        noisy_histograms: np.ndarray,
        num_voters: np.ndarray,
        sample_sizes: Sequence[int],
        generators: Sequence,
    ) -> np.ndarray:
        """Per-row ``maj()`` vote tallies with a per-block sample size.

        The vote law is evaluated *per block* (at the block's own row
        shape — the wide composition matmul is not row-stable across batch
        sizes); the clip/renormalization and the per-row multinomials are
        merged.  Blocks beyond the closed-form table budget use the dense
        large-sample law (evaluated row by row, hence row-stable) when
        tractable, and otherwise fall back to the homogeneous model's
        bounded-chunk sampler on their slice, consuming exactly the serial
        draws.
        """
        from repro.network.pull_model import (  # local: avoid import cycle
            dense_majority_vote_law,
            majority_vote_law,
        )

        noisy = self._validate_histograms(noisy_histograms)
        voters = np.asarray(num_voters, dtype=np.int64)
        per_trial = is_generator_sequence(generators)
        shared_rng = None if per_trial else as_generator(generators)
        vote_law_probabilities = self.vote_probabilities(noisy)
        observation_law = np.concatenate(
            [np.zeros((self.num_rows, 1)), vote_law_probabilities], axis=1
        )
        votes = np.empty((self.num_rows, self.num_opinions), dtype=np.int64)
        law = np.zeros((self.num_rows, self.num_opinions + 1), dtype=float)
        dense_pmf = np.empty((self.num_rows, self.num_opinions), dtype=float)
        tractable_rows = np.zeros(self.num_rows, dtype=bool)
        dense_rows = np.zeros(self.num_rows, dtype=bool)
        for block, sl in enumerate(self.block_slices):
            sample_size = int(sample_sizes[block])
            vote_path = self._resolve_vote_path(sample_size)
            if vote_path == "table":
                law[sl] = majority_vote_law(observation_law[sl], sample_size)
                tractable_rows[sl] = True
            elif vote_path == "dense":
                dense_pmf[sl] = dense_majority_vote_law(
                    vote_law_probabilities[sl], sample_size
                )
                dense_rows[sl] = True
            else:
                fallback = CountsDeliveryModel(
                    self.block_num_nodes[block], self.noises[block]
                )
                votes[sl] = fallback.sample_vote_counts(
                    noisy[sl],
                    voters[sl],
                    sample_size,
                    list(generators[sl]) if per_trial else shared_rng,
                )
        law_rows = tractable_rows | dense_rows
        if law_rows.any():
            vote_pmf = np.clip(law, 0.0, 1.0)[:, 1:]
            row_sums = vote_pmf.sum(axis=1, keepdims=True)
            vote_pmf = np.divide(
                vote_pmf,
                row_sums,
                out=np.full(vote_pmf.shape, 1.0 / self.num_opinions),
                where=row_sums > 0,
            )
            if dense_rows.any():
                vote_pmf[dense_rows] = dense_pmf[dense_rows]
            if per_trial:
                voters_list = voters.tolist()
                for row in np.nonzero(law_rows)[0]:
                    votes[row] = generators[row].multinomial(
                        voters_list[row], vote_pmf[row]
                    )
            else:
                votes[law_rows] = shared_rng.multinomial(
                    voters[law_rows], vote_pmf[law_rows]
                )
        return votes


def ensemble_recolor_and_throw(
    num_nodes: int,
    noise: NoiseMatrix,
    message_histograms: np.ndarray,
    random_state: EnsembleRandomState = None,
) -> EnsembleReceivedMessages:
    """Run the two-step process of Definition 3 for ``R`` trials at once.

    ``message_histograms`` has shape ``(R, k)``: row ``r`` is trial ``r``'s
    phase message multiset ``M_j``.  Step 1 re-colors every ball through the
    noise matrix; step 2 throws every ball into a uniform bin, realized as a
    multinomial over the ``n`` bins (``O(n)`` per trial and color, however
    many balls are in flight).  This sampler also backs the batched push
    engine: by Claim 1 the end-of-phase counts of process O are distributed
    exactly as this process's output.

    ``random_state`` may be one shared source (two broadcast draws per
    opinion for the whole batch) or a per-trial sequence (trial ``r``'s balls
    consume only trial ``r``'s generator).
    """
    histograms = np.asarray(message_histograms, dtype=np.int64)
    if histograms.ndim != 2 or histograms.shape[1] != noise.num_opinions:
        raise ValueError(
            f"message_histograms must have shape (R, {noise.num_opinions}), "
            f"got shape {histograms.shape}"
        )
    if np.any(histograms < 0):
        raise ValueError("message_histogram entries must be non-negative")
    num_trials = histograms.shape[0]
    num_opinions = noise.num_opinions
    bins = np.full(num_nodes, 1.0 / num_nodes)
    counts = np.zeros((num_trials, num_nodes, num_opinions), dtype=np.int64)
    if is_generator_sequence(random_state):
        generators = as_trial_generators(random_state, num_trials)
        for trial, generator in enumerate(generators):
            noisy = noise.apply_to_counts(histograms[trial], generator)
            for opinion_index in np.nonzero(noisy)[0]:
                counts[trial, :, opinion_index] = generator.multinomial(
                    int(noisy[opinion_index]), bins
                )
    else:
        rng = as_generator(random_state)
        noisy = noise.apply_to_count_matrix(histograms, rng)
        for opinion_index in range(num_opinions):
            column = noisy[:, opinion_index]
            if column.any():
                counts[:, :, opinion_index] = rng.multinomial(column, bins)
    return EnsembleReceivedMessages(counts)


class BallsIntoBinsProcess:
    """The two-step balls-into-bins process of Definition 3.

    Parameters
    ----------
    num_nodes:
        Number of bins ``n`` (= number of nodes).
    noise:
        The noise matrix used for the re-coloring step.
    random_state:
        Randomness for re-coloring and throwing.
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self._rng = as_generator(random_state)

    @property
    def num_opinions(self) -> int:
        """Number of ball colors ``k``."""
        return self.noise.num_opinions

    def _validate_histogram(self, message_histogram: Sequence[int]) -> np.ndarray:
        histogram = np.asarray(message_histogram, dtype=np.int64)
        if histogram.shape != (self.num_opinions,):
            raise ValueError(
                f"message_histogram must have length {self.num_opinions}, "
                f"got shape {histogram.shape}"
            )
        if np.any(histogram < 0):
            raise ValueError("message_histogram entries must be non-negative")
        return histogram

    def recolor(self, message_histogram: Sequence[int]) -> np.ndarray:
        """Step 1: apply the noise to every ball independently.

        Returns the post-noise histogram ``h`` (the paper's ``N_j`` counts).
        """
        histogram = self._validate_histogram(message_histogram)
        return self.noise.apply_to_counts(histogram, self._rng)

    def throw(self, noisy_histogram: Sequence[int]) -> ReceivedMessages:
        """Step 2: throw every (already re-colored) ball into a uniform bin."""
        histogram = self._validate_histogram(noisy_histogram)
        counts = np.zeros((self.num_nodes, self.num_opinions), dtype=np.int64)
        for opinion_index in np.nonzero(histogram)[0]:
            targets = self._rng.integers(
                0, self.num_nodes, size=int(histogram[opinion_index])
            )
            counts[:, opinion_index] += np.bincount(
                targets, minlength=self.num_nodes
            )
        return ReceivedMessages(counts)

    def run_phase(self, message_histogram: Sequence[int]) -> ReceivedMessages:
        """Run both steps for a phase described by its message histogram.

        ``message_histogram[i]`` is the number of messages carrying opinion
        ``i + 1`` sent during the phase (the multiset ``M_j``): for the
        paper's protocol this is ``num_rounds`` times the sender-opinion
        histogram, since every opinionated node pushes once per round.
        """
        noisy = self.recolor(message_histogram)
        return self.throw(noisy)

    def run_phase_from_senders(
        self, sender_opinions: np.ndarray, num_rounds: int
    ) -> ReceivedMessages:
        """Convenience wrapper mirroring ``UniformPushModel.run_phase``.

        Builds ``M_j`` from the sender opinions (each sender contributes
        ``num_rounds`` balls of its color) and runs the process.
        """
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        opinions = np.asarray(sender_opinions, dtype=np.int64).ravel()
        if opinions.size and (opinions.min() < 1 or opinions.max() > self.num_opinions):
            raise ValueError(
                f"sender opinions must be in [1, {self.num_opinions}]"
            )
        histogram = np.bincount(opinions, minlength=self.num_opinions + 1)[1:]
        return self.run_phase(histogram * num_rounds)

    def run_ensemble_phase_from_senders(
        self,
        sender_histograms: np.ndarray,
        num_rounds: int,
        random_state: EnsembleRandomState = None,
    ) -> EnsembleReceivedMessages:
        """Batched phase delivery for ``R`` trials (shape ``(R, k)`` input).

        Row ``r`` of ``sender_histograms`` is trial ``r``'s sender-opinion
        histogram; each sender contributes ``num_rounds`` balls.  When
        ``random_state`` is omitted the engine's own generator is used in
        shared-stream mode.
        """
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        if random_state is None:
            random_state = self._rng
        histograms = np.asarray(sender_histograms, dtype=np.int64)
        return ensemble_recolor_and_throw(
            self.num_nodes, self.noise, histograms * num_rounds, random_state
        )
