"""Process B: the balls-into-bins reformulation (Definition 3).

For a fixed phase, view the messages sent during the phase as colored balls
(one color per opinion) and the nodes as bins.  The process has two steps:

1. each ball of color ``i`` is independently re-colored ``j`` with
   probability ``p_ij`` (the noise acting on the message);
2. every ball is thrown into a bin chosen uniformly at random.

Claim 1 of the paper states that the end-of-phase state of the protocol under
the real push model (process O) has exactly the same distribution as if the
messages had been delivered by this process.  The engine below implements the
process directly from the phase's message histogram so that experiment E8 can
compare the two empirically.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.network.mailbox import EnsembleReceivedMessages, ReceivedMessages
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    as_trial_generators,
    is_generator_sequence,
)
from repro.utils.validation import require_positive_int

__all__ = ["BallsIntoBinsProcess", "ensemble_recolor_and_throw"]


def ensemble_recolor_and_throw(
    num_nodes: int,
    noise: NoiseMatrix,
    message_histograms: np.ndarray,
    random_state: EnsembleRandomState = None,
) -> EnsembleReceivedMessages:
    """Run the two-step process of Definition 3 for ``R`` trials at once.

    ``message_histograms`` has shape ``(R, k)``: row ``r`` is trial ``r``'s
    phase message multiset ``M_j``.  Step 1 re-colors every ball through the
    noise matrix; step 2 throws every ball into a uniform bin, realized as a
    multinomial over the ``n`` bins (``O(n)`` per trial and color, however
    many balls are in flight).  This sampler also backs the batched push
    engine: by Claim 1 the end-of-phase counts of process O are distributed
    exactly as this process's output.

    ``random_state`` may be one shared source (two broadcast draws per
    opinion for the whole batch) or a per-trial sequence (trial ``r``'s balls
    consume only trial ``r``'s generator).
    """
    histograms = np.asarray(message_histograms, dtype=np.int64)
    if histograms.ndim != 2 or histograms.shape[1] != noise.num_opinions:
        raise ValueError(
            f"message_histograms must have shape (R, {noise.num_opinions}), "
            f"got shape {histograms.shape}"
        )
    if np.any(histograms < 0):
        raise ValueError("message_histogram entries must be non-negative")
    num_trials = histograms.shape[0]
    num_opinions = noise.num_opinions
    bins = np.full(num_nodes, 1.0 / num_nodes)
    counts = np.zeros((num_trials, num_nodes, num_opinions), dtype=np.int64)
    if is_generator_sequence(random_state):
        generators = as_trial_generators(random_state, num_trials)
        for trial, generator in enumerate(generators):
            noisy = noise.apply_to_counts(histograms[trial], generator)
            for opinion_index in np.nonzero(noisy)[0]:
                counts[trial, :, opinion_index] = generator.multinomial(
                    int(noisy[opinion_index]), bins
                )
    else:
        rng = as_generator(random_state)
        noisy = noise.apply_to_count_matrix(histograms, rng)
        for opinion_index in range(num_opinions):
            column = noisy[:, opinion_index]
            if column.any():
                counts[:, :, opinion_index] = rng.multinomial(column, bins)
    return EnsembleReceivedMessages(counts)


class BallsIntoBinsProcess:
    """The two-step balls-into-bins process of Definition 3.

    Parameters
    ----------
    num_nodes:
        Number of bins ``n`` (= number of nodes).
    noise:
        The noise matrix used for the re-coloring step.
    random_state:
        Randomness for re-coloring and throwing.
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self._rng = as_generator(random_state)

    @property
    def num_opinions(self) -> int:
        """Number of ball colors ``k``."""
        return self.noise.num_opinions

    def _validate_histogram(self, message_histogram: Sequence[int]) -> np.ndarray:
        histogram = np.asarray(message_histogram, dtype=np.int64)
        if histogram.shape != (self.num_opinions,):
            raise ValueError(
                f"message_histogram must have length {self.num_opinions}, "
                f"got shape {histogram.shape}"
            )
        if np.any(histogram < 0):
            raise ValueError("message_histogram entries must be non-negative")
        return histogram

    def recolor(self, message_histogram: Sequence[int]) -> np.ndarray:
        """Step 1: apply the noise to every ball independently.

        Returns the post-noise histogram ``h`` (the paper's ``N_j`` counts).
        """
        histogram = self._validate_histogram(message_histogram)
        return self.noise.apply_to_counts(histogram, self._rng)

    def throw(self, noisy_histogram: Sequence[int]) -> ReceivedMessages:
        """Step 2: throw every (already re-colored) ball into a uniform bin."""
        histogram = self._validate_histogram(noisy_histogram)
        counts = np.zeros((self.num_nodes, self.num_opinions), dtype=np.int64)
        for opinion_index in np.nonzero(histogram)[0]:
            targets = self._rng.integers(
                0, self.num_nodes, size=int(histogram[opinion_index])
            )
            counts[:, opinion_index] += np.bincount(
                targets, minlength=self.num_nodes
            )
        return ReceivedMessages(counts)

    def run_phase(self, message_histogram: Sequence[int]) -> ReceivedMessages:
        """Run both steps for a phase described by its message histogram.

        ``message_histogram[i]`` is the number of messages carrying opinion
        ``i + 1`` sent during the phase (the multiset ``M_j``): for the
        paper's protocol this is ``num_rounds`` times the sender-opinion
        histogram, since every opinionated node pushes once per round.
        """
        noisy = self.recolor(message_histogram)
        return self.throw(noisy)

    def run_phase_from_senders(
        self, sender_opinions: np.ndarray, num_rounds: int
    ) -> ReceivedMessages:
        """Convenience wrapper mirroring ``UniformPushModel.run_phase``.

        Builds ``M_j`` from the sender opinions (each sender contributes
        ``num_rounds`` balls of its color) and runs the process.
        """
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        opinions = np.asarray(sender_opinions, dtype=np.int64).ravel()
        if opinions.size and (opinions.min() < 1 or opinions.max() > self.num_opinions):
            raise ValueError(
                f"sender opinions must be in [1, {self.num_opinions}]"
            )
        histogram = np.bincount(opinions, minlength=self.num_opinions + 1)[1:]
        return self.run_phase(histogram * num_rounds)

    def run_ensemble_phase_from_senders(
        self,
        sender_histograms: np.ndarray,
        num_rounds: int,
        random_state: EnsembleRandomState = None,
    ) -> EnsembleReceivedMessages:
        """Batched phase delivery for ``R`` trials (shape ``(R, k)`` input).

        Row ``r`` of ``sender_histograms`` is trial ``r``'s sender-opinion
        histogram; each sender contributes ``num_rounds`` balls.  When
        ``random_state`` is omitted the engine's own generator is used in
        shared-stream mode.
        """
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        if random_state is None:
            random_state = self._rng
        histograms = np.asarray(sender_histograms, dtype=np.int64)
        return ensemble_recolor_and_throw(
            self.num_nodes, self.noise, histograms * num_rounds, random_state
        )
