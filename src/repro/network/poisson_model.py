"""Process P: the Poissonized delivery process (Definition 4).

Given the post-noise message histogram ``h`` of a phase (``h_i`` messages
carry opinion ``i``), process P delivers to every node an *independent*
``Poisson(h_i / n)`` number of copies of each opinion ``i``.  Unlike the real
push model, the deliveries to distinct nodes (and of distinct opinions) are
mutually independent, which is what makes Chernoff-type concentration
directly applicable; Lemma 2/3 of the paper transfer w.h.p. statements from
this process back to the real one at a multiplicative cost of
``e^k * sqrt(prod_i h_i)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.network.mailbox import EnsembleReceivedMessages, ReceivedMessages
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import (
    EnsembleRandomState,
    RandomState,
    as_generator,
    as_trial_generators,
    is_generator_sequence,
)
from repro.utils.validation import require_positive_int

__all__ = ["PoissonizedProcess"]


class PoissonizedProcess:
    """The independent-Poisson delivery process of Definition 4.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    noise:
        The noise matrix; used when the caller supplies the *pre-noise*
        message histogram and wants the engine to apply the re-coloring step
        itself (mirroring process B).
    random_state:
        Randomness source.
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self._rng = as_generator(random_state)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k``."""
        return self.noise.num_opinions

    def _validate_histogram(self, histogram: Sequence[int]) -> np.ndarray:
        array = np.asarray(histogram, dtype=np.int64)
        if array.shape != (self.num_opinions,):
            raise ValueError(
                f"histogram must have length {self.num_opinions}, got shape {array.shape}"
            )
        if np.any(array < 0):
            raise ValueError("histogram entries must be non-negative")
        return array

    def deliver(self, noisy_histogram: Sequence[int]) -> ReceivedMessages:
        """Deliver according to process P given the post-noise histogram ``h``.

        Entry ``(u, i)`` of the result is an independent draw from
        ``Poisson(h_i / n)``.
        """
        histogram = self._validate_histogram(noisy_histogram)
        rates = histogram.astype(float) / self.num_nodes
        counts = self._rng.poisson(
            lam=rates, size=(self.num_nodes, self.num_opinions)
        )
        return ReceivedMessages(counts.astype(np.int64))

    def run_phase(self, message_histogram: Sequence[int]) -> ReceivedMessages:
        """Apply the noise to the pre-noise histogram, then deliver.

        This mirrors ``BallsIntoBinsProcess.run_phase`` so the two processes
        can be driven by identical inputs in the E8 comparison.
        """
        histogram = self._validate_histogram(message_histogram)
        noisy = self.noise.apply_to_counts(histogram, self._rng)
        return self.deliver(noisy)

    def run_phase_from_senders(
        self, sender_opinions: np.ndarray, num_rounds: int
    ) -> ReceivedMessages:
        """Convenience wrapper mirroring ``UniformPushModel.run_phase``."""
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        opinions = np.asarray(sender_opinions, dtype=np.int64).ravel()
        if opinions.size and (opinions.min() < 1 or opinions.max() > self.num_opinions):
            raise ValueError(
                f"sender opinions must be in [1, {self.num_opinions}]"
            )
        histogram = np.bincount(opinions, minlength=self.num_opinions + 1)[1:]
        return self.run_phase(histogram * num_rounds)

    def run_ensemble_phase_from_senders(
        self,
        sender_histograms: np.ndarray,
        num_rounds: int,
        random_state: EnsembleRandomState = None,
    ) -> EnsembleReceivedMessages:
        """Batched phase delivery for ``R`` trials (shape ``(R, k)`` input).

        Applies the noise to each trial's message histogram and then draws
        the independent ``Poisson(h_i / n)`` deliveries of Definition 4 for
        the whole ``(R, n, k)`` batch at once.  When ``random_state`` is
        omitted the engine's own generator is used in shared-stream mode.
        """
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        if random_state is None:
            random_state = self._rng
        histograms = np.asarray(sender_histograms, dtype=np.int64)
        if histograms.ndim != 2 or histograms.shape[1] != self.num_opinions:
            raise ValueError(
                f"sender_histograms must have shape (R, {self.num_opinions}), "
                f"got shape {histograms.shape}"
            )
        if np.any(histograms < 0):
            raise ValueError("sender_histograms entries must be non-negative")
        messages = histograms * num_rounds
        num_trials = histograms.shape[0]
        if is_generator_sequence(random_state):
            generators = as_trial_generators(random_state, num_trials)
            counts = np.empty(
                (num_trials, self.num_nodes, self.num_opinions), dtype=np.int64
            )
            for trial, generator in enumerate(generators):
                noisy = self.noise.apply_to_counts(messages[trial], generator)
                counts[trial] = generator.poisson(
                    lam=noisy.astype(float) / self.num_nodes,
                    size=(self.num_nodes, self.num_opinions),
                )
            return EnsembleReceivedMessages(counts)
        rng = as_generator(random_state)
        noisy = self.noise.apply_to_count_matrix(messages, rng)
        rates = noisy.astype(float) / self.num_nodes
        counts = rng.poisson(
            lam=rates[:, np.newaxis, :],
            size=(num_trials, self.num_nodes, self.num_opinions),
        )
        return EnsembleReceivedMessages(counts.astype(np.int64))

    def expected_counts(self, noisy_histogram: Sequence[int]) -> np.ndarray:
        """The mean matrix of :meth:`deliver` (``h_i / n`` in every row)."""
        histogram = self._validate_histogram(noisy_histogram)
        rates = histogram.astype(float) / self.num_nodes
        return np.tile(rates, (self.num_nodes, 1))
