"""Dispatch helper between delivery engines and the protocol executors.

The complete-graph engines (processes O, B, P) are *anonymous*: a phase is
fully described by the multiset of sender opinions, so they expose
``run_phase_from_senders(sender_opinions, num_rounds)``.  Topology-aware
engines (e.g. :class:`~repro.network.topology.GraphPushModel`) additionally
need to know *which* node holds which opinion, so they expose
``run_phase_from_population(opinions, num_rounds)`` taking the full opinion
vector (0 = undecided, undecided nodes do not push).

:func:`deliver_phase` hides that difference from the Stage-1/Stage-2
executors: it prefers the population-aware entry point when the engine
provides one and falls back to the anonymous one otherwise.

:func:`make_delivery_engine` is the canonical factory for the three
complete-graph engines (processes O, B and P) by name; it backs both the
protocol drivers and the :mod:`repro.sim` facade's engine registry (the
legacy :func:`repro.core.protocol.make_engine` is a deprecated alias).
"""

from __future__ import annotations

import numpy as np

from repro.network.balls_bins import BallsIntoBinsProcess
from repro.network.mailbox import EnsembleReceivedMessages, ReceivedMessages
from repro.network.poisson_model import PoissonizedProcess
from repro.network.push_model import UniformPushModel
from repro.noise.matrix import NoiseMatrix
from repro.utils.multiset import opinion_counts_matrix
from repro.utils.rng import EnsembleRandomState, RandomState

__all__ = [
    "DELIVERY_PROCESSES",
    "deliver_phase",
    "make_delivery_engine",
    "supports_population_delivery",
    "deliver_ensemble_phase",
    "supports_ensemble_delivery",
]

#: Delivery processes accepted by :func:`make_delivery_engine`.
DELIVERY_PROCESSES = ("push", "balls_bins", "poisson")


def make_delivery_engine(
    process: str,
    num_nodes: int,
    noise: NoiseMatrix,
    random_state: RandomState = None,
):
    """Instantiate a complete-graph delivery engine by name.

    ``process`` is one of ``"push"`` (process O, the real model),
    ``"balls_bins"`` (process B) or ``"poisson"`` (process P).
    """
    if process == "push":
        return UniformPushModel(num_nodes, noise, random_state)
    if process == "balls_bins":
        return BallsIntoBinsProcess(num_nodes, noise, random_state)
    if process == "poisson":
        return PoissonizedProcess(num_nodes, noise, random_state)
    raise ValueError(
        f"process must be one of {DELIVERY_PROCESSES}, got {process!r}"
    )


def supports_population_delivery(engine) -> bool:
    """``True`` if the engine consumes the full opinion vector per phase."""
    return hasattr(engine, "run_phase_from_population")


def deliver_phase(engine, opinions: np.ndarray, num_rounds: int) -> ReceivedMessages:
    """Deliver one protocol phase on ``engine``.

    Parameters
    ----------
    engine:
        A delivery engine exposing either ``run_phase_from_population`` (full
        opinion vector, topology-aware) or ``run_phase_from_senders``
        (anonymous multiset of sender opinions).
    opinions:
        The full opinion vector of the population (0 = undecided).  Undecided
        nodes do not push.
    num_rounds:
        Number of rounds in the phase.
    """
    opinions = np.asarray(opinions, dtype=np.int64)
    if supports_population_delivery(engine):
        return engine.run_phase_from_population(opinions, num_rounds)
    if hasattr(engine, "run_phase_from_senders"):
        sender_opinions = opinions[opinions > 0]
        return engine.run_phase_from_senders(sender_opinions, num_rounds)
    raise TypeError(
        "engine must expose run_phase_from_population or run_phase_from_senders"
    )


def supports_ensemble_delivery(engine) -> bool:
    """``True`` if the engine can deliver a whole ``(R, n)`` batch per phase."""
    return hasattr(engine, "run_ensemble_phase_from_senders")


def deliver_ensemble_phase(
    engine,
    opinions: np.ndarray,
    num_rounds: int,
    random_state: EnsembleRandomState = None,
) -> EnsembleReceivedMessages:
    """Deliver one protocol phase for ``R`` independent trials at once.

    Parameters
    ----------
    engine:
        An anonymous delivery engine exposing
        ``run_ensemble_phase_from_senders`` (all three complete-graph
        processes O, B, P do; topology-aware engines do not).
    opinions:
        The ``(R, n)`` opinion matrix of the ensemble (0 = undecided).
        Undecided nodes do not push; each trial's sender-opinion histogram is
        extracted with a single batched bincount.
    num_rounds:
        Number of rounds in the phase.
    random_state:
        One shared randomness source, or a sequence of per-trial sources for
        trial-by-trial reproducibility; ``None`` lets the engine use its own
        generator.
    """
    if not supports_ensemble_delivery(engine):
        raise TypeError(
            "engine must expose run_ensemble_phase_from_senders; the "
            "complete-graph engines (push, balls_bins, poisson) do, "
            "topology-aware engines must go through the sequential path"
        )
    histograms = opinion_counts_matrix(opinions, int(engine.num_opinions))
    return engine.run_ensemble_phase_from_senders(
        histograms, num_rounds, random_state
    )
