"""Process O: the noisy uniform push model.

This is the communication model of Section 2.1.  In every synchronous round
each opinionated node pushes its current opinion to a node chosen uniformly
at random (sender and receiver stay mutually anonymous); the opinion is
perturbed in transit by the noise matrix, independently for every message.
All simultaneously delivered messages are received (the Appendix A choice).

The engine exposes two granularities:

* :meth:`UniformPushModel.run_round` — one synchronous round, returning the
  per-node received-opinion counts of that round;
* :meth:`UniformPushModel.run_phase` — a block of rounds with a fixed set of
  sender opinions (the situation inside every phase of the paper's protocol,
  where nodes only change opinion at phase boundaries), returning the
  aggregated counts.

Both a vectorized implementation and a deliberately naive per-message Python
reference implementation are provided; the ablation benchmark E13 compares
them, and the test-suite checks they agree in distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.balls_bins import ensemble_recolor_and_throw
from repro.network.mailbox import EnsembleReceivedMessages, ReceivedMessages
from repro.noise.matrix import NoiseMatrix
from repro.utils.rng import EnsembleRandomState, RandomState, as_generator
from repro.utils.validation import require_positive_int

__all__ = ["UniformPushModel", "PushPhaseStatistics"]


@dataclass(frozen=True)
class PushPhaseStatistics:
    """Summary statistics of a simulated push phase.

    Attributes
    ----------
    num_rounds:
        Number of synchronous rounds in the phase.
    messages_sent:
        Total number of messages pushed during the phase
        (= ``num_rounds * number of senders``).
    messages_corrupted:
        Number of messages whose delivered opinion differs from the sent one.
    max_received_by_single_node:
        The largest number of messages any single node received (the paper's
        Appendix A remarks this is ``O(log n)`` per round w.h.p.).
    """

    num_rounds: int
    messages_sent: int
    messages_corrupted: int
    max_received_by_single_node: int


class UniformPushModel:
    """The noisy uniform push model over the complete graph on ``num_nodes``.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    noise:
        The noise matrix ``P`` applied independently to every message.
    random_state:
        Randomness used for target selection and noise.
    """

    def __init__(
        self,
        num_nodes: int,
        noise: NoiseMatrix,
        random_state: RandomState = None,
    ) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if not isinstance(noise, NoiseMatrix):
            raise TypeError(
                f"noise must be a NoiseMatrix, got {type(noise).__name__}"
            )
        self.noise = noise
        self._rng = as_generator(random_state)

    @property
    def num_opinions(self) -> int:
        """Number of opinions ``k`` understood by the channel."""
        return self.noise.num_opinions

    # ------------------------------------------------------------------ #
    # Input validation
    # ------------------------------------------------------------------ #

    def _validate_sender_opinions(self, sender_opinions: np.ndarray) -> np.ndarray:
        opinions = np.asarray(sender_opinions, dtype=np.int64).ravel()
        if opinions.size and (opinions.min() < 1 or opinions.max() > self.num_opinions):
            raise ValueError(
                "sender opinions must be in "
                f"[1, {self.num_opinions}]; undecided (0) nodes do not push"
            )
        return opinions

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #

    def run_round(self, sender_opinions: np.ndarray) -> ReceivedMessages:
        """Simulate a single synchronous round.

        Parameters
        ----------
        sender_opinions:
            The opinions (``1..k``) of the nodes that push this round, one
            entry per pushing node.  Undecided nodes must be filtered out by
            the caller (they do not push).

        Returns
        -------
        ReceivedMessages
            The per-node counts of delivered (noisy) opinions for this round.
        """
        return self.run_phase(sender_opinions, num_rounds=1)

    def run_phase(
        self,
        sender_opinions: np.ndarray,
        num_rounds: int,
        *,
        collect_statistics: bool = False,
    ) -> ReceivedMessages:
        """Simulate ``num_rounds`` rounds with a fixed sender-opinion multiset.

        Each pushing node sends one message per round; over the phase it
        therefore sends ``num_rounds`` copies of its opinion, each to an
        independently chosen uniform target and each independently corrupted
        by the noise matrix.

        Returns the aggregated :class:`ReceivedMessages`; when
        ``collect_statistics`` is true the result carries a
        ``statistics`` attribute with a :class:`PushPhaseStatistics`.
        """
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        opinions = self._validate_sender_opinions(sender_opinions)
        counts = np.zeros((self.num_nodes, self.num_opinions), dtype=np.int64)
        corrupted = 0
        max_single_round = 0
        for _ in range(num_rounds):
            if opinions.size == 0:
                continue
            delivered = self.noise.apply_to_opinions(opinions, self._rng)
            corrupted += int(np.count_nonzero(delivered != opinions))
            targets = self._rng.integers(0, self.num_nodes, size=opinions.size)
            round_counts = np.zeros_like(counts)
            np.add.at(round_counts, (targets, delivered - 1), 1)
            per_node = round_counts.sum(axis=1)
            if per_node.size:
                max_single_round = max(max_single_round, int(per_node.max()))
            counts += round_counts
        result = ReceivedMessages(counts)
        if collect_statistics:
            result.statistics = PushPhaseStatistics(
                num_rounds=num_rounds,
                messages_sent=int(opinions.size) * num_rounds,
                messages_corrupted=corrupted,
                max_received_by_single_node=max_single_round,
            )
        return result

    def run_phase_from_senders(
        self, sender_opinions: np.ndarray, num_rounds: int
    ) -> ReceivedMessages:
        """Alias of :meth:`run_phase` matching the other engines' interface.

        All three processes (O, B, P) expose ``run_phase_from_senders`` so the
        protocol executors can be parameterized by the delivery process.
        """
        return self.run_phase(sender_opinions, num_rounds)

    def run_ensemble_phase_from_senders(
        self,
        sender_histograms: np.ndarray,
        num_rounds: int,
        random_state: EnsembleRandomState = None,
    ) -> EnsembleReceivedMessages:
        """Batched phase delivery for ``R`` independent trials.

        Row ``r`` of ``sender_histograms`` (shape ``(R, k)``) is trial
        ``r``'s sender-opinion histogram; every sender pushes once per round.
        Within a phase the sender multiset is fixed, so the phase's messages
        are i.i.d. — by Claim 1 the aggregated end-of-phase counts of
        process O are distributed *exactly* as the balls-into-bins process on
        ``num_rounds`` copies of the histogram.  The batched engine therefore
        samples that reformulation directly, replacing the per-round
        simulation loop with a handful of vectorized draws per phase.

        When ``random_state`` is omitted the engine's own generator is used
        in shared-stream mode; pass a sequence of per-trial sources for
        trial-by-trial reproducibility.
        """
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        if random_state is None:
            random_state = self._rng
        histograms = np.asarray(sender_histograms, dtype=np.int64)
        return ensemble_recolor_and_throw(
            self.num_nodes, self.noise, histograms * num_rounds, random_state
        )

    def run_phase_naive(
        self, sender_opinions: np.ndarray, num_rounds: int
    ) -> ReceivedMessages:
        """Per-message reference implementation of :meth:`run_phase`.

        Iterates over individual messages in pure Python.  Statistically
        equivalent to the vectorized engine (the tests check this); it exists
        as the baseline of the vectorization ablation and as an executable
        specification of the model.
        """
        num_rounds = require_positive_int(num_rounds, "num_rounds")
        opinions = self._validate_sender_opinions(sender_opinions)
        counts = np.zeros((self.num_nodes, self.num_opinions), dtype=np.int64)
        matrix = self.noise.matrix
        for _ in range(num_rounds):
            for opinion in opinions:
                delivered = int(
                    self._rng.choice(self.num_opinions, p=matrix[opinion - 1]) + 1
                )
                target = int(self._rng.integers(0, self.num_nodes))
                counts[target, delivered - 1] += 1
        return ReceivedMessages(counts)

    def expected_received_distribution(
        self, sender_opinions: np.ndarray, num_rounds: int
    ) -> np.ndarray:
        """Expected per-node, per-opinion received counts (no sampling).

        Useful for tests: the expectation of entry ``(u, i)`` of the phase
        count matrix is ``num_rounds * h_i / n`` where ``h`` is the noisy
        image of the sender-opinion histogram (Eq. (2) of the paper).
        """
        opinions = self._validate_sender_opinions(sender_opinions)
        histogram = np.bincount(
            opinions, minlength=self.num_opinions + 1
        )[1:].astype(float)
        noisy = self.noise.propagate(histogram)
        return np.tile(noisy * num_rounds / self.num_nodes, (self.num_nodes, 1))
